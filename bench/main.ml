(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation section (Figures 7-23) and runs Bechamel micro-benchmarks of
   the collector's hot paths.

   Usage:
     main.exe                 regenerate every figure (headline at scale 0.5,
                              sweeps at scale 0.25)
     main.exe fig9 fig21 ...  regenerate selected figures
     main.exe --quick         everything at reduced scale (CI smoke run)
     main.exe micro           only the Bechamel micro-benchmarks
     main.exe --scale 0.4     override the headline scale *)

module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Textable = Otfgc_support.Textable

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths                          *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Heap = Otfgc_heap.Heap
  module Color = Otfgc_heap.Color
  module Sched = Otfgc_sched.Sched
  module Rng = Otfgc_support.Rng
  open Otfgc

  let kb = 1024

  (* allocation + free round trip on the segregated free lists *)
  let test_alloc_free =
    let heap =
      Heap.create { Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
    in
    Test.make ~name:"heap: alloc+free 32B"
      (Staged.stage (fun () ->
           let a = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
           Heap.free heap a))

  (* the generational write barrier outside a collection (MarkCard path) *)
  let test_barrier_idle =
    let rt =
      Runtime.create
        ~heap_config:{ Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
        ~gc_config:(Gc_config.generational ()) ()
    in
    Runtime.set_fine_grained rt false;
    let st = Runtime.state rt in
    let heap = Runtime.heap rt in
    let x = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
    let y = Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:Color.C0) in
    let m = Otfgc.Mutator.create ~id:0 ~name:"bench" ~n_regs:4 in
    Test.make ~name:"barrier: update (idle, card mark)"
      (Staged.stage (fun () -> Collector.update st m ~x ~i:0 ~y))

  (* MarkGray on a clear object (shade + push + undo) *)
  let test_mark_gray =
    let rt =
      Runtime.create
        ~heap_config:{ Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
        ~gc_config:(Gc_config.generational ()) ()
    in
    Runtime.set_fine_grained rt false;
    let st = Runtime.state rt in
    let heap = Runtime.heap rt in
    let x =
      Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:st.Otfgc.State.clear_color)
    in
    Test.make ~name:"collector: mark_gray + reset"
      (Staged.stage (fun () ->
           ignore (Collector.mark_gray st ~sync:false x : bool);
           Heap.set_color heap x st.Otfgc.State.clear_color;
           ignore (Otfgc.Gray_queue.pop st.Otfgc.State.gray)))

  (* one full collection cycle over a small populated heap *)
  let test_full_cycle =
    Test.make ~name:"collector: full cycle, 64KB heap, ~800 objects"
      (Staged.stage (fun () ->
           let rt =
             Runtime.create
               ~heap_config:
                 { Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
               ~gc_config:(Gc_config.generational ()) ()
           in
           Runtime.set_fine_grained rt false;
           let sched = Sched.create ~policy:Sched.round_robin () in
           ignore (Runtime.spawn_collector rt sched);
           let m = Runtime.new_mutator rt ~name:"m" () in
           ignore
             (Sched.spawn sched ~name:"m" (fun () ->
                  for _ = 1 to 800 do
                    let a = Runtime.alloc rt m ~size:32 ~n_slots:1 in
                    Otfgc.Mutator.set_reg m 0 a
                  done;
                  ignore (Runtime.collect_and_wait rt m ~full:true);
                  Runtime.retire_mutator rt m));
           Sched.run sched))

  let tests =
    Test.make_grouped ~name:"otfgc" ~fmt:"%s %s"
      [ test_alloc_free; test_barrier_idle; test_mark_gray; test_full_cycle ]

  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    print_endline "Micro-benchmarks (monotonic clock, ns/run):";
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.printf "  %-45s %12.1f ns\n" name est
        | _ -> Printf.printf "  %-45s (no estimate)\n" name)
      results;
    print_newline ()
end

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                 *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale =
    let rec find = function
      | "--scale" :: v :: _ -> float_of_string v
      | _ :: rest -> find rest
      | [] -> if quick then 0.15 else 0.5
    in
    find args
  in
  let fig_ids =
    List.filter
      (fun a -> String.length a >= 3 && String.sub a 0 3 = "fig")
      args
  in
  let micro_only = List.mem "micro" args in
  if micro_only then Micro.run ()
  else begin
    let lab_main = Lab.create ~scale () in
    let lab_sweep = Lab.create ~scale:(scale /. 2.) () in
    let entries =
      if fig_ids = [] then Registry.all
      else
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown figure id %s (fig7..fig23)\n" id;
                None)
          fig_ids
    in
    Printf.printf
      "Reproducing %d figure(s) at scale %.2f (sweeps %.2f); workloads and \
       heaps are 1/8 of the paper's, so compare shapes, not absolutes.\n\n"
      (List.length entries) scale (scale /. 2.);
    List.iter
      (fun e ->
        let t0 = Unix.gettimeofday () in
        let lab = if e.Registry.heavy then lab_sweep else lab_main in
        let table = e.Registry.run lab in
        Textable.print table;
        Printf.printf "[%s done in %.1fs]\n\n%!" e.Registry.id
          (Unix.gettimeofday () -. t0))
      entries;
    if fig_ids = [] && not quick then Micro.run ()
  end
