(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation section (Figures 7-23) and runs Bechamel micro-benchmarks of
   the collector's hot paths.

   Usage:
     main.exe                 regenerate every figure (headline at scale 0.5,
                              sweeps at scale 0.25)
     main.exe fig9 fig21 ...  regenerate selected figures
     main.exe --quick         everything at reduced scale (CI smoke run)
     main.exe micro           only the Bechamel micro-benchmarks
                              (micro --quick: reduced quota, CI smoke)
     main.exe trajectory      run the pinned perf-trajectory grid (fanned
                              out across --jobs domains), diff it against
                              the last committed BENCH_*.json and exit 1 on
                              regression; on failure an attribution table
                              ranks the collector phases and event counters
                              that moved most (trajectory --quick: the CI
                              gate; --out FILE overrides BENCH_0010.json;
                              --threshold PCT overrides the 5% noise bar;
                              --against FILE pins the baseline explicitly —
                              an unreadable or incomparable FILE is then a
                              hard failure; --report FILE renders every
                              committed BENCH_*.json plus the current run
                              into a self-contained HTML/SVG dashboard)
     main.exe speedup         real-domains wall-clock speedup sweep:
                              raytracer at fixed total work for mutator
                              counts 1,2,4..., written in the trajectory
                              schema to --out (default speedup.json);
                              --gc-workers N widens the collection crew
                              (worker-scaling curve); --slo adds the SLO
                              column (p50/p99.9 handshake and stall tail
                              latencies) per point; records the visible
                              core count and warns on oversubscription;
                              machine-dependent, never gated
     main.exe --scale 0.4     override the headline scale
     main.exe --jobs 8        simulation parallelism (domains; default
                              OTFGC_JOBS or the recommended domain count)
     main.exe --no-cache      ignore the persistent _cache/ directory

   All runs are enumerated up front and fanned out across domains as one
   batch; results are memoised on disk under _cache/, so a repeated
   regeneration performs zero simulation runs. *)

module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Textable = Otfgc_support.Textable

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths                          *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Heap = Otfgc_heap.Heap
  module Color = Otfgc_heap.Color
  module Sched = Otfgc_sched.Sched
  module Rng = Otfgc_support.Rng
  open Otfgc

  let kb = 1024

  (* allocation + free round trip on the segregated free lists *)
  let test_alloc_free =
    let heap =
      Heap.create { Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
    in
    Test.make ~name:"heap: alloc+free 32B"
      (Staged.stage (fun () ->
           let a = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
           Heap.free heap a))

  (* ---------------------------------------------------------------- *)
  (* Hot-path data structures, new representation vs the original      *)
  (* list-based one (kept inline here as the benchmark baseline)       *)
  (* ---------------------------------------------------------------- *)

  module Space = Otfgc_heap.Space
  module Layout = Otfgc_heap.Layout
  module Freelist = Otfgc_heap.Freelist
  module Card_table = Otfgc_heap.Card_table

  (* The cons-list segregated freelist this repo used before the
     bitmap/array rewrite — same validity rule and candidate order. *)
  module Legacy_freelist = struct
    let n_exact = 63
    let n_classes = n_exact + 1
    let class_of_granules gr = if gr <= n_exact then gr - 1 else n_exact

    type t = { space : Space.t; lists : int list array }

    let push_raw t addr =
      let cls =
        class_of_granules (Space.block_size t.space addr / Layout.granule)
      in
      t.lists.(cls) <- addr :: t.lists.(cls)

    let create space =
      let t = { space; lists = Array.make n_classes [] } in
      Space.iter_blocks space (fun addr kind _size ->
          if kind = Space.Free then push_raw t addr);
      t

    let valid t cls addr =
      Space.is_block_start t.space addr
      && Space.kind_of t.space addr = Space.Free
      && class_of_granules (Space.block_size t.space addr / Layout.granule)
         = cls

    let rec pop_class t cls =
      match t.lists.(cls) with
      | [] -> None
      | addr :: rest ->
          t.lists.(cls) <- rest;
          if valid t cls addr then Some addr else pop_class t cls

    let pop_large t ~granules =
      let rec scan acc = function
        | [] ->
            t.lists.(n_exact) <- List.rev acc;
            None
        | addr :: rest ->
            if not (valid t n_exact addr) then scan acc rest
            else if
              Space.block_size t.space addr / Layout.granule >= granules
            then begin
              t.lists.(n_exact) <- List.rev_append acc rest;
              Some addr
            end
            else scan (addr :: acc) rest
      in
      scan [] t.lists.(n_exact)

    let pop t ~bytes_wanted =
      let want_g = Layout.granules_of_bytes (Stdlib.max 1 bytes_wanted) in
      let want_b = Layout.bytes_of_granules want_g in
      let exact =
        if want_g <= n_exact then pop_class t (want_g - 1) else None
      in
      match exact with
      | Some addr -> Some addr
      | None ->
          let found = ref None in
          let cls = ref (if want_g <= n_exact then want_g else n_exact) in
          while !found = None && !cls < n_exact do
            (match pop_class t !cls with
            | Some addr -> found := Some addr
            | None -> ());
            incr cls
          done;
          let found =
            match !found with
            | Some a -> Some a
            | None -> pop_large t ~granules:want_g
          in
          (match found with
          | None -> None
          | Some addr ->
              let have = Space.block_size t.space addr in
              if have > want_b then begin
                let rest = Space.split t.space addr ~first_bytes:want_b in
                push_raw t rest
              end;
              Some addr)
  end

  (* exact-class steady state: after the first split the 32 B class stays
     populated, so each run is pop (bitmap probe or class head) + push *)
  let test_freelist_pop_exact =
    let s = Space.create ~initial_bytes:(256 * kb) ~max_bytes:(256 * kb) () in
    let fl = Freelist.create s in
    Test.make ~name:"freelist: pop+push 32B exact"
      (Staged.stage (fun () ->
           let a = Option.get (Freelist.pop fl ~bytes_wanted:32) in
           Freelist.push fl a))

  let test_freelist_pop_exact_legacy =
    let s = Space.create ~initial_bytes:(256 * kb) ~max_bytes:(256 * kb) () in
    let fl = Legacy_freelist.create s in
    Test.make ~name:"freelist: pop+push 32B exact (legacy list)"
      (Staged.stage (fun () ->
           let a = Option.get (Legacy_freelist.pop fl ~bytes_wanted:32) in
           Legacy_freelist.push_raw fl a))

  (* split + behind-the-back coalesce + stale drop, the sweep-adjacent
     worst case.  The only donor block sits in the top exact class
     (1008 B = class 62), so every run drops a stale entry and then must
     locate that distant class: one ctz probe on the bitmap versus the
     legacy walk over ~60 empty classes. *)
  let test_freelist_split_stale =
    let s = Space.create ~initial_bytes:1008 ~max_bytes:1008 () in
    let fl = Freelist.create s in
    Test.make ~name:"freelist: split 1008B + coalesce + stale"
      (Staged.stage (fun () ->
           let a = Option.get (Freelist.pop fl ~bytes_wanted:32) in
           ignore (Space.coalesce_with_next s a : bool);
           Freelist.push fl a))

  let test_freelist_split_stale_legacy =
    let s = Space.create ~initial_bytes:1008 ~max_bytes:1008 () in
    let fl = Legacy_freelist.create s in
    Test.make ~name:"freelist: split 1008B + coalesce + stale (legacy list)"
      (Staged.stage (fun () ->
           let a = Option.get (Legacy_freelist.pop fl ~bytes_wanted:32) in
           ignore (Space.coalesce_with_next s a : bool);
           Legacy_freelist.push_raw fl a))

  (* first-fit miss over a long large class: 1024 one-KB blocks (kept
     apart by allocated guards), asking for 2 KB.  The array scan touches
     each entry once; the legacy scan also rebuilds the whole list. *)
  let mk_fragmented n =
    let s =
      Space.create ~initial_bytes:(n * 1040) ~max_bytes:(n * 1040) ()
    in
    let a = ref 0 in
    for _ = 1 to n - 1 do
      let guard = Space.split s !a ~first_bytes:1024 in
      let next = Space.split s guard ~first_bytes:16 in
      Space.set_kind s guard Space.Allocated;
      a := next
    done;
    s

  let test_freelist_large_miss =
    let s = mk_fragmented 1024 in
    let fl = Freelist.create s in
    Test.make ~name:"freelist: large-class miss, 1024 entries"
      (Staged.stage (fun () ->
           assert (Freelist.pop fl ~bytes_wanted:2048 = None)))

  let test_freelist_large_miss_legacy =
    let s = mk_fragmented 1024 in
    let fl = Legacy_freelist.create s in
    Test.make ~name:"freelist: large-class miss, 1024 entries (legacy list)"
      (Staged.stage (fun () ->
           assert (Legacy_freelist.pop fl ~bytes_wanted:2048 = None)))

  (* the gray stack, array vs the original cons list *)
  module Legacy_gray = struct
    type t = int list ref

    let create () : t = ref []
    let push (t : t) x = t := x :: !t

    let pop (t : t) =
      match !t with
      | [] -> None
      | x :: rest ->
          t := rest;
          Some x
  end

  let gray_batch = 256

  let test_gray_push_pop =
    let q = Otfgc.Gray_queue.create () in
    Test.make ~name:"gray: push+pop x256 (array stack)"
      (Staged.stage (fun () ->
           for i = 1 to gray_batch do
             Otfgc.Gray_queue.push q i
           done;
           for _ = 1 to gray_batch do
             ignore (Otfgc.Gray_queue.pop q : int option)
           done))

  let test_gray_push_pop_legacy =
    let q = Legacy_gray.create () in
    Test.make ~name:"gray: push+pop x256 (legacy list)"
      (Staged.stage (fun () ->
           for i = 1 to gray_batch do
             Legacy_gray.push q i
           done;
           for _ = 1 to gray_batch do
             ignore (Legacy_gray.pop q : int option)
           done))

  (* card-object enumeration: 512 B cards packed with 32 B objects (16
     per card), holes punched so the walks see free blocks too.  The
     crossing map jumps straight to the card's first block; the legacy
     walk (the pre-rewrite Heap.objects_on_card) probes granule by
     granule and conses a list. *)
  let mk_card_heap () =
    let heap =
      Heap.create
        { Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 512 }
    in
    let objs = ref [] in
    (try
       while true do
         match Heap.alloc heap ~size:32 ~n_slots:0 ~color:Color.C0 with
         | Some a -> objs := a :: !objs
         | None -> raise Exit
       done
     with Exit -> ());
    List.iteri (fun i a -> if i mod 5 = 0 then Heap.free heap a) !objs;
    heap

  let legacy_objects_on_card heap card =
    let s = Heap.space heap in
    let first, last = Card_table.card_bounds (Heap.cards heap) card in
    let last = Stdlib.min last (Space.capacity s) in
    if first >= Space.capacity s then []
    else begin
      let acc = ref [] in
      let a = ref first in
      while !a < last do
        if Space.is_block_start s !a then begin
          if Space.kind_of s !a = Space.Allocated then acc := !a :: !acc;
          a := !a + Space.block_size s !a
        end
        else a := !a + Layout.granule
      done;
      List.rev !acc
    end

  let test_card_objects =
    let heap = mk_card_heap () in
    let acc = ref 0 in
    Test.make ~name:"cards: objects on 64 cards (crossing map)"
      (Staged.stage (fun () ->
           acc := 0;
           for card = 0 to 63 do
             Heap.iter_objects_on_card heap card (fun x -> acc := !acc + x)
           done))

  let test_card_objects_legacy =
    let heap = mk_card_heap () in
    let acc = ref 0 in
    Test.make ~name:"cards: objects on 64 cards (legacy walk)"
      (Staged.stage (fun () ->
           acc := 0;
           for card = 0 to 63 do
             List.iter
               (fun x -> acc := !acc + x)
               (legacy_objects_on_card heap card)
           done))

  (* the generational write barrier outside a collection (MarkCard path) *)
  let test_barrier_idle =
    let rt =
      Runtime.create
        ~heap_config:{ Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
        ~gc_config:(Gc_config.generational ()) ()
    in
    Runtime.set_fine_grained rt false;
    let st = Runtime.state rt in
    let heap = Runtime.heap rt in
    let x = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
    let y = Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:Color.C0) in
    let m = Otfgc.Mutator.create ~id:0 ~name:"bench" ~n_regs:4 in
    Test.make ~name:"barrier: update (idle, card mark)"
      (Staged.stage (fun () -> Collector.update st m ~x ~i:0 ~y))

  (* telemetry overhead on the mutator hot loop: alloc + write barrier +
     free, with the observability layer left at its default (disabled;
     only the always-on flat counters tick) and fully enabled (counters,
     histograms and the event ring armed).  The disabled variant is the
     zero-allocation guarantee the telemetry layer promises.  A third
     variant additionally arms the heap observatory: the barrier's cost
     charge crosses the cadence threshold every [sample_every] units and
     triggers a full census (heap walk + reachability oracle), so the
     measured delta is the amortised sampling overhead the acceptance
     bar caps at 10%. *)
  let mk_hot_loop ?(sample_every = 0) ~instrumented () =
    let rt =
      Runtime.create
        ~heap_config:{ Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
        ~gc_config:(Gc_config.generational ()) ()
    in
    Runtime.set_fine_grained rt false;
    if instrumented then begin
      Otfgc.Event_log.set_enabled (Runtime.events rt) true;
      Otfgc.Telemetry.set_enabled (Runtime.telemetry rt) true
    end;
    if sample_every > 0 then
      Otfgc.Sampler.configure (Runtime.sampler rt) ~every:sample_every;
    let st = Runtime.state rt in
    let heap = Runtime.heap rt in
    let x = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
    let y = Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:Color.C0) in
    let m = Otfgc.Mutator.create ~id:0 ~name:"bench" ~n_regs:4 in
    fun () ->
      let a = Option.get (Heap.alloc heap ~size:32 ~n_slots:2 ~color:Color.C0) in
      Collector.update st m ~x ~i:0 ~y;
      Heap.free heap a

  let test_hot_loop_telemetry_off =
    Test.make ~name:"telemetry: alloc+barrier+free (disabled)"
      (Staged.stage (mk_hot_loop ~instrumented:false ()))

  let test_hot_loop_telemetry_on =
    Test.make ~name:"telemetry: alloc+barrier+free (enabled)"
      (Staged.stage (mk_hot_loop ~instrumented:true ()))

  let test_hot_loop_sampling_on =
    Test.make ~name:"telemetry: alloc+barrier+free (sampling 64Ki)"
      (Staged.stage (mk_hot_loop ~sample_every:65536 ~instrumented:true ()))

  (* MarkGray on a clear object (shade + push + undo) *)
  let test_mark_gray =
    let rt =
      Runtime.create
        ~heap_config:{ Heap.initial_bytes = 256 * kb; max_bytes = 256 * kb; card_size = 16 }
        ~gc_config:(Gc_config.generational ()) ()
    in
    Runtime.set_fine_grained rt false;
    let st = Runtime.state rt in
    let heap = Runtime.heap rt in
    let x =
      Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:st.Otfgc.State.clear_color)
    in
    Test.make ~name:"collector: mark_gray + reset"
      (Staged.stage (fun () ->
           ignore
             (Collector.mark_gray st ~tel:st.Otfgc.State.telemetry ~sync:false
                x
               : bool);
           Heap.set_color heap x st.Otfgc.State.clear_color;
           ignore (Otfgc.Gray_queue.pop st.Otfgc.State.gray)))

  (* one full collection cycle over a small populated heap *)
  let test_full_cycle =
    Test.make ~name:"collector: full cycle, 64KB heap, ~800 objects"
      (Staged.stage (fun () ->
           let rt =
             Runtime.create
               ~heap_config:
                 { Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
               ~gc_config:(Gc_config.generational ()) ()
           in
           Runtime.set_fine_grained rt false;
           let sched = Sched.create ~policy:Sched.round_robin () in
           ignore (Runtime.spawn_collector rt sched);
           let m = Runtime.new_mutator rt ~name:"m" () in
           ignore
             (Sched.spawn sched ~name:"m" (fun () ->
                  for _ = 1 to 800 do
                    let a = Runtime.alloc rt m ~size:32 ~n_slots:1 in
                    Otfgc.Mutator.set_reg m 0 a
                  done;
                  ignore (Runtime.collect_and_wait rt m ~full:true);
                  Runtime.retire_mutator rt m));
           Sched.run sched))

  (* word-level dirty-card scan over a mostly-clean table: 4 MB of heap
     at 16-byte cards = 256K mark bytes, 1 card in 1024 dirty — the
     Section 8.5.3 regime where scanning clean cards dominates *)
  let test_iter_dirty =
    let module Card_table = Otfgc_heap.Card_table in
    let tbl = Card_table.create ~card_size:16 ~max_heap_bytes:(4 * 1024 * kb) in
    let n = Card_table.n_cards tbl in
    let i = ref 0 in
    while !i < n do
      Card_table.mark_card tbl !i;
      i := !i + 1024
    done;
    let acc = ref 0 in
    Test.make ~name:"cards: iter_dirty 4MB/16B, 0.1% dirty"
      (Staged.stage (fun () ->
           acc := 0;
           Card_table.iter_dirty tbl (fun c -> acc := !acc + c)))

  let test_dirty_count =
    let module Card_table = Otfgc_heap.Card_table in
    let tbl = Card_table.create ~card_size:16 ~max_heap_bytes:(4 * 1024 * kb) in
    let n = Card_table.n_cards tbl in
    let i = ref 0 in
    while !i < n do
      Card_table.mark_card tbl !i;
      i := !i + 1024
    done;
    Test.make ~name:"cards: dirty_count 4MB/16B, 0.1% dirty"
      (Staged.stage (fun () -> ignore (Card_table.dirty_count tbl : int)))

  (* word-blitting page accounting over a multi-page span (sweep path) *)
  let test_touch_range =
    let module Layout = Otfgc_heap.Layout in
    let module Page_set = Otfgc_heap.Page_set in
    let tables = Layout.make_tables ~max_heap_bytes:(4 * 1024 * kb) ~card_size:16 in
    let ps = Page_set.create tables in
    let span = 64 * Layout.page_size in
    Test.make ~name:"pages: touch_range 64 pages"
      (Staged.stage (fun () -> Page_set.touch_range ps Layout.page_size span))

  let tests =
    Test.make_grouped ~name:"otfgc" ~fmt:"%s %s"
      [
        test_alloc_free;
        test_freelist_pop_exact;
        test_freelist_pop_exact_legacy;
        test_freelist_split_stale;
        test_freelist_split_stale_legacy;
        test_freelist_large_miss;
        test_freelist_large_miss_legacy;
        test_gray_push_pop;
        test_gray_push_pop_legacy;
        test_card_objects;
        test_card_objects_legacy;
        test_barrier_idle;
        test_hot_loop_telemetry_off;
        test_hot_loop_telemetry_on;
        test_hot_loop_sampling_on;
        test_mark_gray;
        test_full_cycle;
        test_iter_dirty;
        test_dirty_count;
        test_touch_range;
      ]

  let run ?(quick = false) () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      if quick then
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.05) ~stabilize:false ()
      else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    print_endline "Micro-benchmarks (monotonic clock, ns/run):";
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.printf "  %-45s %12.1f ns\n" name est
        | _ -> Printf.printf "  %-45s (no estimate)\n" name)
      results;
    print_newline ()
end

(* ------------------------------------------------------------------ *)
(* Perf-trajectory grid and regression gate                            *)
(* ------------------------------------------------------------------ *)

module Traj = struct
  module Heap = Otfgc_heap.Heap
  module Gc_config = Otfgc.Gc_config
  module Profile = Otfgc_workloads.Profile
  module Driver = Otfgc_workloads.Driver
  module Trajectory = Otfgc_metrics.Trajectory
  module Dashboard = Otfgc_metrics.Dashboard
  module Json = Otfgc_support.Json

  let seed = 42
  let young = 512 * 1024

  (* The pinned scenario grid — the same eight configurations the test
     suite's digest guard pins, so the gate and the guard watch the same
     behaviours: both workload families, every collector mode, and the
     young-trigger and card-size sensitivities. *)
  let grid =
    [
      ("jack-gen", Profile.jack, Gc_config.generational ~young_bytes:young (), 16);
      ( "jack-nongen",
        Profile.jack,
        { Gc_config.non_generational with Gc_config.young_bytes = young },
        16 );
      ( "jack-aging2",
        Profile.jack,
        Gc_config.aging ~young_bytes:young ~oldest_age:2 (),
        16 );
      ("jack-adaptive", Profile.jack, Gc_config.adaptive ~young_bytes:young (), 16);
      ( "jack-young256k",
        Profile.jack,
        Gc_config.generational ~young_bytes:(256 * 1024) (),
        16 );
      ( "anagram-gen",
        Profile.anagram,
        Gc_config.generational ~young_bytes:young (),
        16 );
      ( "anagram-nongen",
        Profile.anagram,
        { Gc_config.non_generational with Gc_config.young_bytes = young },
        16 );
      ( "anagram-card64",
        Profile.anagram,
        Gc_config.generational ~young_bytes:young (),
        64 );
    ]

  let run_scenario ~scale (name, profile, gc, card) =
    let heap = { Driver.default_heap with Heap.card_size = card } in
    let t0 = Unix.gettimeofday () in
    (* always a fresh simulation — wall_ms must measure this machine,
       and the gate must measure this build, so no cache on either axis *)
    let r, rt = Driver.run_rt ~heap ~seed ~scale ~gc profile in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Printf.printf "  %-16s %8.0f ms wall\n%!" name wall_ms;
    (* schema v2: the gated set plus the per-phase work split and the
       headline telemetry counters, for regression attribution *)
    Trajectory.scenario_of_runtime ~name ~wall_ms r rt

  (* The baseline is the highest-numbered committed BENCH_NNNN.json,
     found by walking from the working directory up toward the
     filesystem root (dune runs executables from _build/default). *)
  let bench_number name =
    if
      String.length name > String.length "BENCH_.json"
      && String.sub name 0 6 = "BENCH_"
      && Filename.check_suffix name ".json"
    then int_of_string_opt (String.sub name 6 (String.length name - 11))
    else None

  let find_baseline () =
    let best_in dir =
      Array.fold_left
        (fun acc name ->
          match bench_number name with
          | Some k -> (
              match acc with
              | Some (k0, _) when k0 >= k -> acc
              | _ -> Some (k, Filename.concat dir name))
          | None -> acc)
        None
        (try Sys.readdir dir with Sys_error _ -> [||])
    in
    let rec up dir =
      match best_in dir with
      | Some (_, path) -> Some path
      | None ->
          let parent = Filename.dirname dir in
          if parent = dir then None else up parent
    in
    up (Sys.getcwd ())

  let load path =
    match
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      contents
    with
    | exception Sys_error e -> Error e
    | contents -> (
    match Json.of_string contents with
    | Error e -> Error (Printf.sprintf "%s: JSON parse error: %s" path e)
    | Ok j -> (
        match Trajectory.of_json j with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok t -> Ok t))

  let write path t =
    let oc = open_out path in
    output_string oc (Json.to_string (Trajectory.to_json t));
    output_char oc '\n';
    close_out oc

  (* Every committed BENCH_NNNN.json, ascending, from the first ancestor
     directory that holds any — the dashboard's run axis. *)
  let committed_benches () =
    let rec up dir =
      let found =
        Array.fold_left
          (fun acc name ->
            match bench_number name with
            | Some k -> (k, name) :: acc
            | None -> acc)
          []
          (try Sys.readdir dir with Sys_error _ -> [||])
      in
      if found <> [] then Some (dir, List.sort compare found)
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent
    in
    up (Sys.getcwd ())

  (* Render committed history + the current run into a self-contained
     HTML/SVG dashboard; the result is validated before it is written,
     so a malformed page fails the build, not the later reader. *)
  let write_report ~path current =
    let committed =
      match committed_benches () with
      | None -> []
      | Some (dir, entries) ->
          List.filter_map
            (fun (_, name) ->
              match load (Filename.concat dir name) with
              | Ok t -> Some (Filename.remove_extension name, t)
              | Error e ->
                  Printf.eprintf "warning: dashboard skipping %s: %s\n" name e;
                  None)
            entries
    in
    let runs = committed @ [ ("current", current) ] in
    match Dashboard.render ~runs with
    | Error e ->
        Printf.eprintf "dashboard: %s\n" e;
        1
    | Ok html -> (
        match Dashboard.validate html with
        | Error e ->
            Printf.eprintf "dashboard failed self-validation: %s\n" e;
            1
        | Ok () ->
            let oc = open_out path in
            output_string oc html;
            close_out oc;
            Printf.printf
              "trajectory dashboard written to %s (%d runs, %d committed)\n"
              path (List.length runs)
              (List.length committed);
            0)

  (* Exit status: 0 = gate passed or (re)seeded, 1 = regression or a
     hard --against/--report failure. *)
  let run ~quick ~jobs ~out ~threshold ~against ~report =
    let scale = if quick then 0.05 else 0.2 in
    Printf.printf
      "Trajectory grid: %d scenarios at scale %.2f, seed %d, %d job(s) \
       (gated metrics are simulated and deterministic; wall times are \
       informational).\n%!"
      (List.length grid) scale seed jobs;
    (* Each scenario is an independent deterministic simulation, so the
       grid fans out across a domain pool; wall_ms measures the scenario's
       own domain, which is as meaningful as the sequential number on a
       shared CI machine (both are informational, never gated). *)
    let scenarios =
      Otfgc_support.Pool.with_pool ~jobs (fun pool ->
          Otfgc_support.Pool.map pool (run_scenario ~scale)
            (Array.of_list grid))
    in
    let current =
      Trajectory.make ~scale ~seed ~quick (Array.to_list scenarios)
    in
    let seeded verdict =
      write out current;
      Printf.printf "%s\ntrajectory written to %s — commit it to arm the gate\n"
        verdict out;
      0
    in
    let gate baseline ~path =
      match Trajectory.diff ~threshold_pct:threshold ~baseline ~current () with
      | Error e -> Error (Printf.sprintf "baseline %s not comparable: %s" path e)
      | Ok regs ->
          print_newline ();
          print_string (Trajectory.render_diff ~baseline ~current regs);
          if regs <> [] then
            (* rank the ungated phase/counter metrics that moved most —
               the "why" behind the aggregate that tripped the gate *)
            print_string
              (Trajectory.render_attribution
                 (Trajectory.attribution ~baseline ~current));
          write out current;
          Printf.printf "trajectory written to %s (baseline: %s)\n" out path;
          Ok (if regs = [] then 0 else 1)
    in
    let code =
      match against with
      | Some path -> (
          (* an explicit baseline must gate: unreadable or incomparable
             is a hard failure, never a silent reseed *)
          match load path with
          | Error e ->
              Printf.eprintf "--against %s: %s\n" path e;
              1
          | Ok baseline -> (
              match gate baseline ~path with
              | Ok code -> code
              | Error e ->
                  Printf.eprintf "--against %s\n" e;
                  1))
      | None -> (
          match find_baseline () with
          | None -> seeded "no committed BENCH_*.json baseline found"
          | Some path -> (
              match load path with
              | Error e -> seeded ("baseline unreadable (" ^ e ^ ")")
              | Ok baseline -> (
                  match gate baseline ~path with
                  | Ok code -> code
                  | Error e -> seeded e)))
    in
    match report with
    | None -> code
    | Some path ->
        let rc = write_report ~path current in
        if code <> 0 then code else rc
end

(* ------------------------------------------------------------------ *)
(* Real-domains speedup sweep                                          *)
(* ------------------------------------------------------------------ *)

module Speedup = struct
  module Gc_config = Otfgc.Gc_config
  module Runtime = Otfgc.Runtime
  module Telemetry = Otfgc.Telemetry
  module Status = Otfgc.Status
  module Histogram = Otfgc_support.Histogram
  module Profile = Otfgc_workloads.Profile
  module Driver = Otfgc_workloads.Driver
  module Substrate = Otfgc_sched.Substrate
  module Trajectory = Otfgc_metrics.Trajectory
  module Run_result = Otfgc_metrics.Run_result
  module Json = Otfgc_support.Json

  let seed = 42

  (* Mutator counts swept: 1, 2, 4, ... up to the machine, capped at 8
     (the paper's interesting range is a 4-way SMP).  Always at least
     1 and 2, so the curve has a slope even on small CI runners. *)
  let mutator_counts () =
    let cores = Domain.recommended_domain_count () in
    let rec up acc m = if m > Stdlib.max 2 (Stdlib.min 8 cores) then List.rev acc else up (m :: acc) (m * 2) in
    up [] 1

  let p99_us h = Histogram.percentile h 99.0
  let pct h p = Histogram.percentile h p

  (* One sweep point: the raytracer workload on [m] real domains at fixed
     TOTAL allocation volume (per-thread scale = base / m), so the curve
     answers "does adding mutator domains shorten the wall clock for the
     same total work while the collector runs concurrently?".
     [gc_workers] widens the collection crew (collector domain plus
     helpers) — the worker-scaling sweep varies it at fixed m. *)
  let run_point ~scale ~gc_workers ~slo m =
    let cores = Domain.recommended_domain_count () in
    (* m mutator domains + the collector domain + (gc_workers - 1)
       helpers all want a core at once during a cycle. *)
    if m + gc_workers > cores then
      Printf.printf
        "  warning: m=%d mutators + %d collector worker(s) oversubscribe \
         the %d visible core(s); wall-clock numbers will understate \
         concurrency\n%!"
        m gc_workers cores;
    let profile = Profile.raytracer ~threads:m in
    let t0 = Unix.gettimeofday () in
    let result, rt =
      Driver.run_rt ~seed ~scale:(scale /. float_of_int m)
        ~substrate:Substrate.Domains ~gc_workers
        ~instrument:(fun rt -> Telemetry.set_enabled (Runtime.telemetry rt) true)
        ~gc:(Gc_config.generational ()) profile
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let tel = Runtime.telemetry rt in
    let hs =
      (* the three handshakes share one merged latency distribution *)
      let h = Histogram.create () in
      List.iter
        (fun s -> Histogram.add_into ~src:(Telemetry.handshake_latency tel s) ~dst:h)
        [ Status.Sync1; Status.Sync2; Status.Async ];
      h
    in
    let throughput_mb_s =
      float_of_int result.Run_result.total_alloc_bytes
      /. (1024. *. 1024.) /. wall_s
    in
    let slo_col =
      (* the SLO column: tail wall-clock latencies the report gates on *)
      if slo then
        Printf.sprintf
          "  SLO[hs p50/p90/p99.9 %d/%d/%d us, stall p90/p99.9 %d/%d us]"
          (pct hs 50.) (pct hs 90.) (pct hs 99.9)
          (pct (Telemetry.stall_latency tel) 90.)
          (pct (Telemetry.stall_latency tel) 99.9)
      else ""
    in
    Printf.printf
      "  m=%d w=%d  %7.1f MB alloc  %6.2f s wall  %8.2f MB/s  p99 handshake \
       %d us  p99 stall %d us  %d steal(s)%s\n%!"
      m gc_workers
      (float_of_int result.Run_result.total_alloc_bytes /. (1024. *. 1024.))
      wall_s throughput_mb_s (p99_us hs)
      (p99_us (Telemetry.stall_latency tel))
      (Telemetry.steals tel) slo_col;
    let slo_metrics =
      if slo then
        [
          ("slo_p50_handshake_us", float_of_int (pct hs 50.));
          ("slo_p90_handshake_us", float_of_int (pct hs 90.));
          ("slo_p999_handshake_us", float_of_int (pct hs 99.9));
          ("slo_p50_stall_us",
           float_of_int (pct (Telemetry.stall_latency tel) 50.));
          ("slo_p90_stall_us",
           float_of_int (pct (Telemetry.stall_latency tel) 90.));
          ("slo_p999_stall_us",
           float_of_int (pct (Telemetry.stall_latency tel) 99.9));
        ]
      else []
    in
    {
      Trajectory.name = Printf.sprintf "speedup-m%d-w%d" m gc_workers;
      wall_ms = wall_s *. 1000.;
      metrics =
        [
          ("mutators", float_of_int m);
          ("gc_workers", float_of_int gc_workers);
          ("cores", float_of_int cores);
          ("throughput_mb_s", throughput_mb_s);
          ("total_alloc_bytes", float_of_int result.Run_result.total_alloc_bytes);
          ("p99_handshake_us", float_of_int (p99_us hs));
          ("p99_stall_us", float_of_int (p99_us (Telemetry.stall_latency tel)));
          ("steals", float_of_int (Telemetry.steals tel));
          ("steal_failures", float_of_int (Telemetry.steal_failures tel));
          ("lock_waits", float_of_int (Telemetry.lock_waits_total tel));
          ("n_cycles",
           float_of_int
             (result.Run_result.n_partial + result.Run_result.n_full
            + result.Run_result.n_non_gen));
        ]
        @ slo_metrics;
    }

  (* Wall-clock speedup curve on real domains.  Everything here is
     machine-dependent and NEVER gated: the output goes to its own JSON
     (CI uploads it as an artifact for trend-reading), reusing the
     trajectory schema so existing tooling parses it.  [quick] shrinks
     the volume for smoke runs.  [gc_workers] > 1 turns the sweep into
     the worker-scaling curve (EXPERIMENTS.md): same mutator counts, a
     parallel collection crew per point. *)
  let run ~quick ~gc_workers ~slo ~out =
    let scale = if quick then 0.05 else 0.5 in
    let counts = mutator_counts () in
    let cores = Domain.recommended_domain_count () in
    Printf.printf
      "Speedup sweep: raytracer on real domains, fixed total work (scale \
       %.2f), m in {%s}, gc workers %d, %d core(s) visible.\nWall-clock \
       numbers are machine-dependent — recorded, never gated.\n%!"
      scale
      (String.concat ", " (List.map string_of_int counts))
      gc_workers cores;
    let scenarios = List.map (run_point ~scale ~gc_workers ~slo) counts in
    let t = Trajectory.make ~scale ~seed ~quick scenarios in
    let oc = open_out out in
    output_string oc (Json.to_string (Trajectory.to_json t));
    output_char oc '\n';
    close_out oc;
    Printf.printf "speedup curve written to %s\n" out;
    0
end

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                 *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale =
    let rec find = function
      | "--scale" :: v :: _ -> float_of_string v
      | _ :: rest -> find rest
      | [] -> if quick then 0.15 else 0.5
    in
    find args
  in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> n
          | _ ->
              Printf.eprintf "--jobs wants a positive integer, got %S\n" v;
              exit 2)
      | _ :: rest -> find rest
      | [] -> Otfgc_support.Pool.default_jobs ()
    in
    find args
  in
  let cache_dir = if List.mem "--no-cache" args then None else Some "_cache" in
  let fig_ids =
    List.filter
      (fun a -> String.length a >= 3 && String.sub a 0 3 = "fig")
      args
  in
  let micro_only = List.mem "micro" args in
  if List.mem "trajectory" args then begin
    let out =
      let rec find = function
        | "--out" :: v :: _ -> v
        | _ :: rest -> find rest
        | [] -> "BENCH_0010.json"
      in
      find args
    in
    let against =
      let rec find = function
        | "--against" :: v :: _ -> Some v
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let report =
      let rec find = function
        | "--report" :: v :: _ -> Some v
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let threshold =
      let rec find = function
        | "--threshold" :: v :: _ -> (
            match float_of_string_opt v with
            | Some f when f >= 0. -> f
            | _ ->
                Printf.eprintf "--threshold wants a percentage, got %S\n" v;
                exit 2)
        | _ :: rest -> find rest
        | [] -> 5.
      in
      find args
    in
    exit (Traj.run ~quick ~jobs ~out ~threshold ~against ~report)
  end
  else if List.mem "speedup" args then begin
    let out =
      let rec find = function
        | "--out" :: v :: _ -> v
        | _ :: rest -> find rest
        | [] -> "speedup.json"
      in
      find args
    in
    let gc_workers =
      let rec find = function
        | "--gc-workers" :: v :: _ -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> n
            | _ ->
                Printf.eprintf "--gc-workers wants a positive integer, got %S\n" v;
                exit 2)
        | _ :: rest -> find rest
        | [] -> 1
      in
      find args
    in
    exit (Speedup.run ~quick ~gc_workers ~slo:(List.mem "--slo" args) ~out)
  end
  else if micro_only then Micro.run ~quick ()
  else begin
    let lab_main = Lab.create ~scale ~jobs ~cache_dir () in
    let lab_sweep = Lab.create ~scale:(scale /. 2.) ~jobs ~cache_dir () in
    let entries =
      if fig_ids = [] then Registry.all
      else
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown figure id %s (fig7..fig23)\n" id;
                None)
          fig_ids
    in
    Printf.printf
      "Reproducing %d figure(s) at scale %.2f (sweeps %.2f) on %d domain(s); \
       workloads and heaps are 1/8 of the paper's, so compare shapes, not \
       absolutes.\n\n%!"
      (List.length entries) scale (scale /. 2.) jobs;
    (* One batch per lab: every selected figure's grid, deduplicated and
       fanned out across the domain pool before any table rendering. *)
    let batch lab heavy =
      let cfgs =
        List.concat_map
          (fun e -> if e.Registry.heavy = heavy then e.Registry.configs else [])
          entries
      in
      if cfgs <> [] then begin
        let t0 = Unix.gettimeofday () in
        Lab.prefetch lab cfgs;
        let c = Lab.counters lab in
        Printf.printf
          "[%s grids: %d configs -> %d simulated, %d from disk cache in %.1fs]\n%!"
          (if heavy then "sweep" else "headline")
          (List.length cfgs) c.Lab.computed c.Lab.disk_hits
          (Unix.gettimeofday () -. t0)
      end
    in
    batch lab_main false;
    batch lab_sweep true;
    print_newline ();
    List.iter
      (fun e ->
        let t0 = Unix.gettimeofday () in
        let lab = if e.Registry.heavy then lab_sweep else lab_main in
        let table = e.Registry.run lab in
        Textable.print table;
        Printf.printf "[%s done in %.1fs]\n\n%!" e.Registry.id
          (Unix.gettimeofday () -. t0))
      entries;
    let totals =
      let a = Lab.counters lab_main and b = Lab.counters lab_sweep in
      Lab.
        {
          computed = a.computed + b.computed;
          mem_hits = a.mem_hits + b.mem_hits;
          disk_hits = a.disk_hits + b.disk_hits;
        }
    in
    Printf.printf
      "cache: %d runs simulated, %d memo hits, %d disk hits%s\n%!"
      totals.Lab.computed totals.Lab.mem_hits totals.Lab.disk_hits
      (match cache_dir with
      | Some d -> Printf.sprintf " (persisted under %s/)" d
      | None -> "");
    if fig_ids = [] && not quick then Micro.run ()
  end
