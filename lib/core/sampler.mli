(** Census sampling state carried by {!State.t} — the data half of the
    heap observatory ({!Observatory} is the logic half).

    A sampler owns one {!Otfgc_support.Timeseries} whose columns are the
    census schema below, plus the cadence bookkeeping the hot-path check
    reads: sampling is armed by {!configure} with a positive interval in
    simulated cost units, and {!Observatory.maybe_sample} fires once per
    interval of {!Cost.elapsed_multi}.  Disabled (interval 0) by
    default, and entirely out of band — taking a census charges no cost,
    touches no pages and never yields, so enabling it cannot perturb a
    run (pinned by the digest-identity tests). *)

type t = {
  mutable every : int;  (** cost units between samples; [0] = off *)
  mutable next_at : int;
      (** elapsed-time threshold for the next sample (maintained by
          {!Observatory}) *)
  mutable oracle : bool;
      (** run the reachability oracle per census (floating-garbage
          columns; zeros when off) *)
  series : Otfgc_support.Timeseries.t;
}
(** Transparent like {!State.t}: the observatory updates the cadence
    fields in place on the sampling fast path.  Outside code should
    treat the record as read-only and go through {!configure}. *)

val create : unit -> t
(** Disabled sampler with an empty series. *)

val configure : ?oracle:bool -> t -> every:int -> unit
(** Arm sampling every [every] cost units ([0] disarms); [oracle]
    (default [true]) controls whether each census runs the reachability
    oracle for the floating-garbage columns.  Resets the cadence so the
    next check samples immediately. *)

val enabled : t -> bool
val every : t -> int

val series : t -> Otfgc_support.Timeseries.t
(** The census series (one row per sample, columns as below). *)

val reset : t -> unit
(** Drop committed samples and re-arm (end-of-warmup measurement
    reset).  Keeps the configured cadence. *)

(** {2 Census schema}

    Column names in index order, and the matching indices.  One row per
    sample: elapsed time and collector phase, heap accounting, per-color
    block/byte counts (blue = free blocks; the five colors partition the
    heap, so the byte columns sum to [capacity]), young/old generation
    sizes, freelist and card/gray/remset occupancy, the oracle's
    floating-garbage measure, and cumulative promotion/stall counters. *)

val columns : string array

val i_at : int
val i_phase : int
val i_collecting : int
val i_capacity : int
val i_allocated_bytes : int
val i_blue_blocks : int
val i_blue_bytes : int
val i_c0_objects : int
val i_c0_bytes : int
val i_c1_objects : int
val i_c1_bytes : int
val i_gray_objects : int
val i_gray_bytes : int
val i_black_objects : int
val i_black_bytes : int
val i_young_objects : int
val i_young_bytes : int
val i_old_objects : int
val i_old_bytes : int
val i_freelist_entries : int
val i_freelist_stale : int
val i_dirty_cards : int
val i_gray_depth : int
val i_remset_entries : int
val i_floating_objects : int
val i_floating_bytes : int
val i_promotions : int
val i_stalls : int
