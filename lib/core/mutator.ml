let nil = Otfgc_heap.Heap.nil

type t = {
  id : int;
  name : string;
  (* Atomic so the real-domains substrate's three-handshake protocol is a
     genuine wait-free poll: the collector reads every mutator's status
     word, each mutator CASes only its own.  Under the cooperative
     substrate the atomic is uncontended and the simulated schedule is
     untouched (get/set are not yield points). *)
  status : Status.t Atomic.t;
  active : bool Atomic.t;
  regs : int array;
  mutable stack : int array;
  mutable sp : int;
  (* Real-domains substrate extensions; unused (and cost-free) under the
     cooperative substrate. *)
  cache : Alloc_cache.t;
  mutable own_cost : Cost.t option;
  mutable own_telemetry : Telemetry.t option;
  mutable ring : Flight_recorder.ring option;
      (** flight-recorder track (domains substrate, recorder armed) *)
}

let create ~id ~name ~n_regs =
  if n_regs < 0 then invalid_arg "Mutator.create: negative register count";
  {
    id;
    name;
    status = Atomic.make Status.Async;
    active = Atomic.make true;
    regs = Array.make n_regs nil;
    stack = Array.make 16 nil;
    sp = 0;
    cache = Alloc_cache.create ();
    own_cost = None;
    own_telemetry = None;
    ring = None;
  }

let id t = t.id
let name t = t.name
let status t = Atomic.get t.status
let set_status t s = Atomic.set t.status s
let active t = Atomic.get t.active
let retire t = Atomic.set t.active false

let cache t = t.cache
let own_cost t = t.own_cost
let own_telemetry t = t.own_telemetry

let set_own_ledgers t cost telemetry =
  t.own_cost <- Some cost;
  t.own_telemetry <- Some telemetry

let ring t = t.ring
let set_ring t r = t.ring <- r

let n_regs t = Array.length t.regs
let get_reg t i = t.regs.(i)
let set_reg t i v = t.regs.(i) <- v
let clear_reg t i = t.regs.(i) <- nil

let push t v =
  if t.sp = Array.length t.stack then begin
    let bigger = Array.make (2 * t.sp) nil in
    Array.blit t.stack 0 bigger 0 t.sp;
    t.stack <- bigger
  end;
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  if t.sp = 0 then invalid_arg "Mutator.pop: empty stack";
  t.sp <- t.sp - 1;
  let v = t.stack.(t.sp) in
  t.stack.(t.sp) <- nil;
  v

let stack_depth t = t.sp

let iter_roots t f =
  Array.iter (fun v -> if v <> nil then f v) t.regs;
  for i = 0 to t.sp - 1 do
    if t.stack.(i) <> nil then f t.stack.(i)
  done
