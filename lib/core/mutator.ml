let nil = Otfgc_heap.Heap.nil

type t = {
  id : int;
  name : string;
  mutable status : Status.t;
  mutable active : bool;
  regs : int array;
  mutable stack : int array;
  mutable sp : int;
}

let create ~id ~name ~n_regs =
  if n_regs < 0 then invalid_arg "Mutator.create: negative register count";
  {
    id;
    name;
    status = Status.Async;
    active = true;
    regs = Array.make n_regs nil;
    stack = Array.make 16 nil;
    sp = 0;
  }

let id t = t.id
let name t = t.name
let status t = t.status
let set_status t s = t.status <- s
let active t = t.active
let retire t = t.active <- false

let n_regs t = Array.length t.regs
let get_reg t i = t.regs.(i)
let set_reg t i v = t.regs.(i) <- v
let clear_reg t i = t.regs.(i) <- nil

let push t v =
  if t.sp = Array.length t.stack then begin
    let bigger = Array.make (2 * t.sp) nil in
    Array.blit t.stack 0 bigger 0 t.sp;
    t.stack <- bigger
  end;
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  if t.sp = 0 then invalid_arg "Mutator.pop: empty stack";
  t.sp <- t.sp - 1;
  let v = t.stack.(t.sp) in
  t.stack.(t.sp) <- nil;
  v

let stack_depth t = t.sp

let iter_roots t f =
  Array.iter (fun v -> if v <> nil then f v) t.regs;
  for i = 0 to t.sp - 1 do
    if t.stack.(i) <> nil then f t.stack.(i)
  done
