type t = Async | Sync1 | Sync2

let equal a b =
  match (a, b) with
  | Async, Async | Sync1, Sync1 | Sync2, Sync2 -> true
  | _ -> false

let to_string = function Async -> "async" | Sync1 -> "sync1" | Sync2 -> "sync2"
let pp ppf s = Format.pp_print_string ppf (to_string s)

let next = function Async -> Sync1 | Sync1 -> Sync2 | Sync2 -> Async

let index = function Async -> 0 | Sync1 -> 1 | Sync2 -> 2

let of_index = function
  | 0 -> Async
  | 1 -> Sync1
  | 2 -> Sync2
  | n -> invalid_arg (Printf.sprintf "Status.of_index: %d" n)
