(** Stop-the-world reachability oracle for differential testing.

    Computes reachability atomically (no yields), which in the simulator is
    a legal "instantaneous" snapshot.  Tests use it to check the two
    properties the paper's correctness argument promises:

    - {b safety}: no reachable object is ever blue/freed — checked at any
      instant, including mid-cycle under adversarial schedules;
    - {b completeness}: after quiescence and two full collections, no
      garbage remains (one cycle may leave floating garbage by design). *)

val reachable : State.t -> (int, unit) Hashtbl.t
(** Transitive closure from all active mutator roots and globals. *)

val check_safety : State.t -> (unit, string) result
(** [Error] describes the first reachable-but-not-allocated object found
    (a root or slot pointing at freed or never-allocated memory). *)

val garbage : State.t -> int list
(** Allocated objects not reachable from any root, in address order. *)

val live_count : State.t -> int

val check_intergen_invariant : State.t -> (unit, string) result
(** The generational collectors' load-bearing invariant: every pointer
    from an old (black) object to a young object lies on a dirty card (or
    its source is in the remembered set).  Only meaningful at quiescent
    instants — the aging barrier's store-then-mark ordering leaves a legal
    transient window mid-run — and trivially [Ok] for the
    non-generational collector. *)
