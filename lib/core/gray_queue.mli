(** The shared set of objects "remaining to be traced".

    The DLG papers leave the mechanism for tracking gray objects open; we
    use a single shared push/pop stack, represented as a growable int
    array (no allocation per shaded object).  Mutators push when their
    write barrier shades an object; the collector pushes during card
    scanning and root marking and pops during the trace.  Under the
    simulator's scheduling model each push/pop is one atomic step, which
    models a lock-free mark stack.

    An object is pushed at most once per cycle in steady state (only
    clear-colored — or, in the sync window, allocation-colored — objects
    are shaded, and shading recolors them gray), so duplicates are rare
    but tolerated: the trace re-checks the color of popped entries. *)

type t

val create : unit -> t

val set_locked : t -> bool -> unit
(** Arm (or disarm) an internal mutex around every operation.  Off by
    default — the cooperative substrate's interleavings are already
    one-step-atomic.  The real-domains driver arms it; the mutex then
    also provides the release/acquire edge that publishes a shading
    mutator's plain color write to the collector's trace. *)

val push : t -> int -> unit
val pop : t -> int option
val is_empty : t -> bool
val clear : t -> unit

val size : t -> int
(** Current number of queued entries (for tests and stats). *)

val max_size : t -> int
(** High-water mark since creation (for stats). *)
