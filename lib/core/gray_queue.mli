(** The shared set of objects "remaining to be traced".

    The DLG papers leave the mechanism for tracking gray objects open; we
    use a single shared push/pop stack, represented as a growable int
    array (no allocation per shaded object).  Mutators push when their
    write barrier shades an object; the collector pushes during card
    scanning and root marking and pops during the trace.  Under the
    simulator's scheduling model each push/pop is one atomic step, which
    models a lock-free mark stack.

    An object is pushed at most once per cycle in steady state (only
    clear-colored — or, in the sync window, allocation-colored — objects
    are shaded, and shading recolors them gray), so duplicates are rare
    but tolerated: the trace re-checks the color of popped entries. *)

type t

val create : unit -> t

val set_locked : t -> bool -> unit
(** Arm (or disarm) an internal mutex around every operation.  Off by
    default — the cooperative substrate's interleavings are already
    one-step-atomic.  The real-domains driver arms it; the mutex then
    also provides the release/acquire edge that publishes a shading
    mutator's plain color write to the collector's trace. *)

val set_workers : t -> int -> unit
(** Shard the queue across [n] collector workers (Chase–Lev deque per
    worker) when [n > 1]; [n <= 1] restores the single shared queue.
    Mutator pushes keep going through the shared mutex queue either
    way.  Call only while no cycle is in flight. *)

val n_workers : t -> int
(** Number of worker deques currently armed (0 when unsharded). *)

val set_worker_id : t -> int -> unit
(** Tag the calling domain as collector worker [wid] (domain-local).
    Subsequent {!push}es from this domain go to its own deque when the
    queue is sharded.  The default tag is [-1] (mutator / shared). *)

val worker_id : t -> int
(** The calling domain's worker tag ([-1] if never set). *)

val push : t -> int -> unit
val pop : t -> int option
(** Pop from the shared queue only (serial collector, and workers
    draining mutator barrier pushes). *)

val pop_local : t -> w:int -> int option
(** Worker [w] pops its own deque (owner side, lock-free).  Only valid
    when sharded and called from worker [w]. *)

val steal : t -> victim:int -> int option
(** Steal from worker [victim]'s deque.  [None] = empty or lost race. *)

val is_empty : t -> bool

val all_empty : t -> bool
(** Shared queue and every worker deque observed empty (one moment
    each; the termination protocol re-validates with its activity
    counter). *)

val clear : t -> unit

val size : t -> int
(** Current number of queued entries (for tests and stats). *)

val max_size : t -> int
(** High-water mark since creation (for stats). *)
