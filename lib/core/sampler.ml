module Timeseries = Otfgc_support.Timeseries

(* Column indices into the census series.  Kept as plain ints so the
   census writer is a straight run of [Timeseries.set] calls with no
   lookups on the sampling path. *)
let i_at = 0
let i_phase = 1
let i_collecting = 2
let i_capacity = 3
let i_allocated_bytes = 4
let i_blue_blocks = 5
let i_blue_bytes = 6
let i_c0_objects = 7
let i_c0_bytes = 8
let i_c1_objects = 9
let i_c1_bytes = 10
let i_gray_objects = 11
let i_gray_bytes = 12
let i_black_objects = 13
let i_black_bytes = 14
let i_young_objects = 15
let i_young_bytes = 16
let i_old_objects = 17
let i_old_bytes = 18
let i_freelist_entries = 19
let i_freelist_stale = 20
let i_dirty_cards = 21
let i_gray_depth = 22
let i_remset_entries = 23
let i_floating_objects = 24
let i_floating_bytes = 25
let i_promotions = 26
let i_stalls = 27

let columns =
  [|
    "at";
    "phase";
    "collecting";
    "capacity";
    "allocated_bytes";
    "blue_blocks";
    "blue_bytes";
    "c0_objects";
    "c0_bytes";
    "c1_objects";
    "c1_bytes";
    "gray_objects";
    "gray_bytes";
    "black_objects";
    "black_bytes";
    "young_objects";
    "young_bytes";
    "old_objects";
    "old_bytes";
    "freelist_entries";
    "freelist_stale";
    "dirty_cards";
    "gray_depth";
    "remset_entries";
    "floating_objects";
    "floating_bytes";
    "promotions";
    "stalls";
  |]

type t = {
  mutable every : int; (* cost units between samples; 0 = sampling off *)
  mutable next_at : int; (* elapsed-time threshold for the next sample *)
  mutable oracle : bool; (* include the oracle's floating-garbage count *)
  series : Timeseries.t;
}

let create () =
  { every = 0; next_at = 0; oracle = true; series = Timeseries.create ~columns }

let configure ?(oracle = true) t ~every =
  if every < 0 then invalid_arg "Sampler.configure: negative interval";
  t.every <- every;
  t.oracle <- oracle;
  t.next_at <- 0

let enabled t = t.every > 0
let every t = t.every
let series t = t.series

let reset t =
  Timeseries.clear t.series;
  t.next_at <- 0
