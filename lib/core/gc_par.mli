(** Multi-worker collection crew for the domains substrate.

    Worker 0 is the orchestrating collector domain; helpers 1..n-1 park
    in [Collector.gc_worker_loop] and are released into each parallel
    phase by an epoch increment.  Serial collectors (and the simulator)
    never configure a crew, so [active] stays false and the collector
    takes the historical single-threaded paths unchanged.

    See DESIGN.md §11 for the deque protocol, the termination-detection
    argument, and the lock-ordering discipline. *)

type phase = Idle | Cards_simple | Cards_aging | Trace | Sweep

type worker = {
  wid : int;
  cost : Cost.t;  (** worker 0: the shared collector ledger itself *)
  tel : Telemetry.t;
  pages : Otfgc_heap.Page_set.t;
      (** worker 0: the shared page set itself; helpers: private sets
          unioned in by {!merge_pages} at the cycle barrier *)
  mutable ring : Flight_recorder.ring option;
      (** flight-recorder track (armed recorder only; see
          {!attach_rings}) *)
  mutable tick : int;  (** local pacing counter (domains: no yields) *)
  scratch : int array ref;  (** per-worker card-walk scratch buffer *)
  mutable dirty_cards : int;
  mutable intergen_scanned : int;
  mutable card_scan_bytes : int;
  mutable objects_traced : int;
  mutable promotions : int;
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable steals : int;
  mutable steal_failures : int;
}

type t = {
  mutable n_workers : int;
  mutable workers : worker array;
  epoch : int Atomic.t;  (** phase-release counter helpers poll *)
  mutable phase : phase;  (** valid once the epoch store publishes it *)
  done_count : int Atomic.t;  (** helpers finished with the open phase *)
  idle : int Atomic.t;  (** trace: workers currently out of work *)
  activity : int Atomic.t;  (** trace: work-taken stamp *)
  term : bool Atomic.t;  (** trace: termination declared *)
  mutable sweep_bounds : int array;  (** n+1 block-aligned region bounds *)
}

val create : unit -> t
(** Inactive crew: [n_workers = 1], no worker records. *)

val configure :
  t ->
  n:int ->
  cost0:Cost.t ->
  tel0:Telemetry.t ->
  pages0:Otfgc_heap.Page_set.t ->
  layout:Otfgc_heap.Layout.tables ->
  unit
(** Arm an [n]-worker crew.  Worker 0 aliases the shared ledgers and
    page set; helpers get private ones (merged by {!merge_ledgers} and
    {!merge_pages}); [layout] sizes the helpers' page sets. *)

val active : t -> bool
(** True iff a multi-worker crew is armed ([n_workers > 1]). *)

val drain_partials : t -> Gc_stats.cycle -> unit
(** Fold every worker's per-phase partial counters into the cycle
    record and zero them.  Orchestrator only, at a phase barrier. *)

val merge_ledgers : t -> cost0:Cost.t -> tel0:Telemetry.t -> unit
(** Fold helper cost/telemetry ledgers into the shared ones and reset
    them.  Orchestrator only, before end-of-cycle work accounting. *)

val merge_pages : t -> dst:Otfgc_heap.Page_set.t -> unit
(** Union helper page sets into [dst] (the shared set) and clear them.
    Orchestrator only, before the cycle's [Page_set.count]. *)

val attach_rings : t -> Flight_recorder.t -> unit
(** Give each helper its flight-recorder track (worker 0 records on the
    collector ring).  Call after {!configure}, once the recorder is
    armed. *)

val open_phase : t -> phase -> unit
(** Publish a phase and release the helpers into it (epoch bump).
    Resets the termination protocol when the phase is [Trace]. *)

val helpers_done : t -> bool
(** All helpers have incremented [done_count] for the open phase. *)

val try_terminate : t -> queues_empty:(unit -> bool) -> bool
(** Trace-termination check; call only while registered idle.  True
    once termination is declared (possibly by this call). *)

val leave_idle : t -> unit
(** Leave the idle set to look for work: stamps [activity] {e before}
    decrementing [idle], the ordering the check relies on. *)
