type kind = Partial | Full | Non_gen

let kind_name = function
  | Partial -> "partial"
  | Full -> "full"
  | Non_gen -> "non-gen"

let kind_index = function Partial -> 0 | Full -> 1 | Non_gen -> 2

let kind_of_index = function
  | 0 -> Partial
  | 1 -> Full
  | 2 -> Non_gen
  | n -> invalid_arg (Printf.sprintf "Gc_stats.kind_of_index: %d" n)

type cycle = {
  kind : kind;
  seq : int;
  mutable objects_traced : int;
  mutable intergen_scanned : int;
  mutable card_scan_bytes : int;
  mutable dirty_cards : int;
  mutable total_cards : int;
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable promotions : int;
  mutable young_objects_at_start : int;
  mutable young_bytes_at_start : int;
  mutable live_objects_at_end : int;
  mutable live_bytes_at_end : int;
  mutable work : int;
  mutable pages_touched : int;
  mutable active_span : int;
  mutable floating_objects : int;
  mutable floating_bytes : int;
  mutable trace_workers : int;
  mutable steals : int;
  mutable steal_failures : int;
}

type t = {
  mutable completed : cycle list;
  mutable next_seq : int;
  (* Completed-cycle count, readable without synchronisation from other
     domains (the list itself is only prefix-consistent under races). *)
  n_done : int Atomic.t;
  (* Live aggregates for the metrics observer: cumulative totals over
     completed cycles, published as atomics once per [end_cycle] (never
     on a hot path) so a concurrent reader sees monotone, tear-free
     counters without walking [completed]. Indexed by [kind_index]. *)
  done_by_kind : int Atomic.t array;
  freed_bytes : int Atomic.t;
  freed_objects : int Atomic.t;
  promoted : int Atomic.t;
  cycle_work : int Atomic.t;
}

let create () =
  {
    completed = [];
    next_seq = 0;
    n_done = Atomic.make 0;
    done_by_kind = Array.init 3 (fun _ -> Atomic.make 0);
    freed_bytes = Atomic.make 0;
    freed_objects = Atomic.make 0;
    promoted = Atomic.make 0;
    cycle_work = Atomic.make 0;
  }

let reset t =
  t.completed <- [];
  t.next_seq <- 0;
  Atomic.set t.n_done 0;
  Array.iter (fun a -> Atomic.set a 0) t.done_by_kind;
  Atomic.set t.freed_bytes 0;
  Atomic.set t.freed_objects 0;
  Atomic.set t.promoted 0;
  Atomic.set t.cycle_work 0

let begin_cycle t kind =
  let c =
    {
      kind;
      seq = t.next_seq;
      objects_traced = 0;
      intergen_scanned = 0;
      card_scan_bytes = 0;
      dirty_cards = 0;
      total_cards = 0;
      objects_freed = 0;
      bytes_freed = 0;
      promotions = 0;
      young_objects_at_start = 0;
      young_bytes_at_start = 0;
      live_objects_at_end = 0;
      live_bytes_at_end = 0;
      work = 0;
      pages_touched = 0;
      active_span = 0;
      floating_objects = 0;
      floating_bytes = 0;
      trace_workers = 1;
      steals = 0;
      steal_failures = 0;
    }
  in
  t.next_seq <- t.next_seq + 1;
  c

let end_cycle t c =
  t.completed <- c :: t.completed;
  Atomic.incr t.done_by_kind.(kind_index c.kind);
  (* fetch_and_add, not set: the per-kind/per-metric cells are only ever
     touched here, so adds keep them exact under any reader interleaving *)
  ignore (Atomic.fetch_and_add t.freed_bytes c.bytes_freed : int);
  ignore (Atomic.fetch_and_add t.freed_objects c.objects_freed : int);
  ignore (Atomic.fetch_and_add t.promoted c.promotions : int);
  ignore (Atomic.fetch_and_add t.cycle_work c.work : int);
  Atomic.incr t.n_done

let n_completed t = Atomic.get t.n_done
let n_completed_of t kind = Atomic.get t.done_by_kind.(kind_index kind)
let live_bytes_freed t = Atomic.get t.freed_bytes
let live_objects_freed t = Atomic.get t.freed_objects
let live_promotions t = Atomic.get t.promoted
let live_cycle_work t = Atomic.get t.cycle_work

let cycles t = List.rev t.completed

let count t kind =
  List.length (List.filter (fun c -> c.kind = kind) t.completed)

let total_collector_work t =
  List.fold_left (fun acc c -> acc + c.work) 0 t.completed

let fold_kind t kind f init =
  List.fold_left (fun acc c -> if c.kind = kind then f acc c else acc) init t.completed

let mean t kind metric =
  let n, s = fold_kind t kind (fun (n, s) c -> (n + 1, s +. metric c)) (0, 0.) in
  if n = 0 then 0. else s /. float_of_int n

let sum t kind metric = fold_kind t kind (fun s c -> s +. metric c) 0.

let has t kind = List.exists (fun c -> c.kind = kind) t.completed
