module Heap = Otfgc_heap.Heap
open State

let roots st =
  let acc = ref [] in
  List.iter
    (fun m -> Mutator.iter_roots m (fun r -> acc := r :: !acc))
    (State.active_mutators st);
  List.iter (fun g -> acc := g :: !acc) st.globals;
  !acc

let reachable st =
  let seen = Hashtbl.create 1024 in
  let stack = ref (roots st) in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
        stack := rest;
        if x <> Heap.nil && not (Hashtbl.mem seen x) then begin
          Hashtbl.add seen x ();
          if Heap.is_object st.heap x then
            Heap.iter_slots st.heap x (fun y -> stack := y :: !stack)
        end
  done;
  seen

let check_safety st =
  let seen = reachable st in
  let bad = ref None in
  Hashtbl.iter
    (fun x () ->
      if !bad = None && not (Heap.is_object st.heap x) then
        bad := Some x)
    seen;
  match !bad with
  | None -> Ok ()
  | Some x ->
      Error
        (Printf.sprintf "reachable address %d is not an allocated object" x)

let garbage st =
  let seen = reachable st in
  let acc = ref [] in
  Heap.iter_objects st.heap (fun x ->
      if not (Hashtbl.mem seen x) then acc := x :: !acc);
  List.rev !acc

let live_count st = Hashtbl.length (reachable st)

let check_intergen_invariant st =
  let module Color = Otfgc_heap.Color in
  let module Card_table = Otfgc_heap.Card_table in
  let module Remset = Otfgc_heap.Remset in
  if not (Gc_config.is_generational st.cfg.Gc_config.mode) then Ok ()
  else begin
    let heap = st.heap in
    let cards = Heap.cards heap in
    let rs = Heap.remset heap in
    let bad = ref None in
    Heap.iter_objects heap (fun x ->
        if !bad = None && Color.equal (Heap.color heap x) Color.Black then
          Heap.iter_slots heap x (fun y ->
              if
                !bad = None
                && Heap.is_object heap y
                && not (Color.equal (Heap.color heap y) Color.Black)
              then begin
                let covered =
                  match st.cfg.Gc_config.intergen with
                  | Gc_config.Card_marking ->
                      Card_table.is_dirty cards (Card_table.card_of_addr cards x)
                  | Gc_config.Remembered_set -> Remset.mem rs x
                in
                if not covered then
                  bad :=
                    Some
                      (Printf.sprintf
                         "old object %d holds young %d with no dirty \
                          card/remset entry"
                         x y)
              end));
    match !bad with None -> Ok () | Some e -> Error e
  end
