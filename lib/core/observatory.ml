module Heap = Otfgc_heap.Heap
module Space = Otfgc_heap.Space
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Age_table = Otfgc_heap.Age_table
module Remset = Otfgc_heap.Remset
module Freelist = Otfgc_heap.Freelist
module Timeseries = Otfgc_support.Timeseries
open State

(* Generation membership for the census.  Promotion is a color-table
   fact for the simple policy (old = black, see Collector.is_old) and an
   age-table fact for the aging collectors (promoted objects freeze at
   the sentinel 255 — during a sweep, black also covers just-traced
   young survivors, which the sentinel excludes).  The non-generational
   collector has no old generation at all: black there is merely the
   current mark color. *)
let is_old st x =
  match st.cfg.Gc_config.mode with
  | Gc_config.Non_generational -> false
  | Gc_config.Generational -> Color.equal (Heap.color st.heap x) Color.Black
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      Age_table.get (Heap.ages st.heap) x = 255

(* One census row.  Out of band by construction: reads only — no cost
   charges, no page touches, no scheduling points — so a run with
   sampling armed is step-for-step identical to one without. *)
let sample st ~now =
  let s = st.sampler in
  s.Sampler.next_at <- now + s.Sampler.every;
  let heap = st.heap in
  let space = Heap.space heap in
  let ts = s.Sampler.series in
  let blue_n = ref 0
  and blue_b = ref 0
  and c0_n = ref 0
  and c0_b = ref 0
  and c1_n = ref 0
  and c1_b = ref 0
  and gray_n = ref 0
  and gray_b = ref 0
  and black_n = ref 0
  and black_b = ref 0
  and young_n = ref 0
  and young_b = ref 0
  and old_n = ref 0
  and old_b = ref 0 in
  Space.iter_blocks space (fun addr kind size ->
      match kind with
      | Space.Free ->
          (* the color table byte under a free block's header can be a
             stale remnant of a split — the block kind is authoritative *)
          incr blue_n;
          blue_b := !blue_b + size
      | Space.Allocated ->
          (match Heap.color heap addr with
          | Color.Blue ->
              incr blue_n;
              blue_b := !blue_b + size
          | Color.C0 ->
              incr c0_n;
              c0_b := !c0_b + size
          | Color.C1 ->
              incr c1_n;
              c1_b := !c1_b + size
          | Color.Gray ->
              incr gray_n;
              gray_b := !gray_b + size
          | Color.Black ->
              incr black_n;
              black_b := !black_b + size);
          if is_old st addr then begin
            incr old_n;
            old_b := !old_b + size
          end
          else begin
            incr young_n;
            young_b := !young_b + size
          end);
  let floating_n = ref 0 and floating_b = ref 0 in
  (* no oracle under real domains: mutators keep running, so there is no
     consistent reachability snapshot mid-run (the driver runs the
     oracle at quiescence instead) *)
  if s.Sampler.oracle && not st.parallel then
    List.iter
      (fun x ->
        incr floating_n;
        floating_b := !floating_b + Heap.size heap x)
      (Oracle.garbage st);
  let fl = Heap.freelist heap in
  Timeseries.set ts Sampler.i_at now;
  Timeseries.set ts Sampler.i_phase
    (Cost.phase_index (Cost.current_phase st.cost));
  Timeseries.set ts Sampler.i_collecting
    (if Atomic.get st.collecting then 1 else 0);
  Timeseries.set ts Sampler.i_capacity (Heap.capacity heap);
  Timeseries.set ts Sampler.i_allocated_bytes (Heap.allocated_bytes heap);
  Timeseries.set ts Sampler.i_blue_blocks !blue_n;
  Timeseries.set ts Sampler.i_blue_bytes !blue_b;
  Timeseries.set ts Sampler.i_c0_objects !c0_n;
  Timeseries.set ts Sampler.i_c0_bytes !c0_b;
  Timeseries.set ts Sampler.i_c1_objects !c1_n;
  Timeseries.set ts Sampler.i_c1_bytes !c1_b;
  Timeseries.set ts Sampler.i_gray_objects !gray_n;
  Timeseries.set ts Sampler.i_gray_bytes !gray_b;
  Timeseries.set ts Sampler.i_black_objects !black_n;
  Timeseries.set ts Sampler.i_black_bytes !black_b;
  Timeseries.set ts Sampler.i_young_objects !young_n;
  Timeseries.set ts Sampler.i_young_bytes !young_b;
  Timeseries.set ts Sampler.i_old_objects !old_n;
  Timeseries.set ts Sampler.i_old_bytes !old_b;
  Timeseries.set ts Sampler.i_freelist_entries (Freelist.entry_count fl);
  Timeseries.set ts Sampler.i_freelist_stale (Freelist.stale_entries fl);
  Timeseries.set ts Sampler.i_dirty_cards
    (Card_table.dirty_count (Heap.cards heap));
  Timeseries.set ts Sampler.i_gray_depth (Gray_queue.size st.gray);
  Timeseries.set ts Sampler.i_remset_entries (Remset.size (Heap.remset heap));
  Timeseries.set ts Sampler.i_floating_objects !floating_n;
  Timeseries.set ts Sampler.i_floating_bytes !floating_b;
  Timeseries.set ts Sampler.i_promotions (Telemetry.promotions st.telemetry);
  Timeseries.set ts Sampler.i_stalls (Telemetry.stalls st.telemetry);
  Timeseries.commit ts

let sample_now st = sample st ~now:(Cost.elapsed_multi st.cost)

let maybe_sample st =
  let s = st.sampler in
  (* Simulator only: the census walk reads the block structure without
     synchronisation, which mutator cache refills mutate concurrently
     under real domains.  Domains runs census at cycle segment
     boundaries instead ({!phase_sample}, under the heap lock). *)
  if s.Sampler.every > 0 && not st.parallel then begin
    let now = Cost.elapsed_multi st.cost in
    if now >= s.Sampler.next_at then sample st ~now
  end

(* Domains-substrate census: taken by the orchestrating collector at
   cycle segment boundaries (cycle start, after cards, after trace,
   after sweep), under the heap lock so the block walk cannot race a
   mutator refill splitting blocks.  The cadence clock is
   [State.now_units] — real microseconds on this substrate — so
   [Sampler.configure]'s [every] is a wall-clock interval here. *)
let phase_sample st =
  let s = st.sampler in
  if st.parallel && s.Sampler.every > 0 then begin
    let now = State.now_units st in
    if now >= s.Sampler.next_at then begin
      State.lock_heap st;
      sample st ~now;
      State.unlock_heap st
    end
  end
