(** Handshake statuses (Section 7).

    The collector posts a status; each mutator independently copies it the
    next time it cooperates.  The period between the first and second
    handshakes is [Sync1], between the second and third [Sync2], and the
    rest of the time [Async].  Each mutator has its own view of the current
    period depending on when it last cooperated. *)

type t = Async | Sync1 | Sync2

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val next : t -> t
(** The status the collector posts after the given one:
    [Async -> Sync1 -> Sync2 -> Async]. *)

val index : t -> int
(** Dense index ([Async] 0, [Sync1] 1, [Sync2] 2) — used to key per-status
    telemetry tables and to int-encode statuses in the event ring. *)

val of_index : int -> t
(** Inverse of {!index}; raises [Invalid_argument] outside [0..2]. *)
