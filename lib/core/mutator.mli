(** A mutator thread's GC-visible state.

    Each simulated application thread owns one of these: its handshake
    status and its root set (the "stack and registers" of the paper —
    reference slots that the write barrier does {e not} cover and that the
    mutator itself marks gray when responding to the third handshake).

    The root set is a fixed-size register file plus an unbounded stack;
    workloads use registers for working references and the stack to model
    call frames. *)

type t

val create : id:int -> name:string -> n_regs:int -> t

val id : t -> int
val name : t -> string

val status : t -> Status.t
(** The handshake status word.  Stored in an [Atomic.t]: under the
    real-domains substrate the collector polls it from another domain,
    and the ack in [Cooperate] is the release store that publishes the
    mutator's preceding root-marking writes. *)

val set_status : t -> Status.t -> unit

val active : t -> bool
(** An inactive (retired) mutator no longer participates in handshakes.
    Atomic, for the same cross-domain poll. *)

val retire : t -> unit

(** {2 Real-domains substrate extensions}

    Unused under the cooperative substrate: the cache stays empty and the
    ledgers stay [None], so simulated runs are bit-identical. *)

val cache : t -> Alloc_cache.t
(** This mutator's domain-local allocation cache. *)

val own_cost : t -> Cost.t option
val own_telemetry : t -> Telemetry.t option

val set_own_ledgers : t -> Cost.t -> Telemetry.t -> unit
(** Give the mutator private cost/telemetry ledgers (installed by
    [Runtime.new_mutator] when the runtime is in parallel mode; folded
    into the shared ledgers at end of run). *)

val ring : t -> Flight_recorder.ring option
(** This mutator's flight-recorder track, when the recorder is armed
    (domains substrate only); [None] means every record site is a no-op. *)

val set_ring : t -> Flight_recorder.ring option -> unit

(** {2 Registers} *)

val n_regs : t -> int

val get_reg : t -> int -> int
(** Contents of register [i]; {!Otfgc_heap.Heap.nil} when empty. *)

val set_reg : t -> int -> int -> unit
val clear_reg : t -> int -> unit

(** {2 Stack} *)

val push : t -> int -> unit
val pop : t -> int
(** Raises [Invalid_argument] on an empty stack. *)

val stack_depth : t -> int

val iter_roots : t -> (int -> unit) -> unit
(** Every non-nil root: registers then stack.  This is what gets marked
    gray at the third handshake. *)
