(** A mutator thread's GC-visible state.

    Each simulated application thread owns one of these: its handshake
    status and its root set (the "stack and registers" of the paper —
    reference slots that the write barrier does {e not} cover and that the
    mutator itself marks gray when responding to the third handshake).

    The root set is a fixed-size register file plus an unbounded stack;
    workloads use registers for working references and the stack to model
    call frames. *)

type t

val create : id:int -> name:string -> n_regs:int -> t

val id : t -> int
val name : t -> string

val status : t -> Status.t
val set_status : t -> Status.t -> unit

val active : t -> bool
(** An inactive (retired) mutator no longer participates in handshakes. *)

val retire : t -> unit

(** {2 Registers} *)

val n_regs : t -> int

val get_reg : t -> int -> int
(** Contents of register [i]; {!Otfgc_heap.Heap.nil} when empty. *)

val set_reg : t -> int -> int -> unit
val clear_reg : t -> int -> unit

(** {2 Stack} *)

val push : t -> int -> unit
val pop : t -> int
(** Raises [Invalid_argument] on an empty stack. *)

val stack_depth : t -> int

val iter_roots : t -> (int -> unit) -> unit
(** Every non-nil root: registers then stack.  This is what gets marked
    gray at the third handshake. *)
