type phase =
  | Cycle_start of { kind : Gc_stats.kind; full : bool }
  | Init_full_done
  | Handshake_posted of Status.t
  | Handshake_complete of Status.t
  | Intergen_scanned of { seeds : int }
  | Colors_toggled
  | Trace_complete of { traced : int }
  | Sweep_complete of { freed : int; bytes : int }
  | Cycle_end
  | Heap_grown of { capacity : int }
  | Mutator_ack of { mid : int; status : Status.t }
  | Stall_begin of { mid : int }
  | Stall_end of { mid : int }
  | Promoted of { count : int }

type event = { at : int; phase : phase }

(* Events live int-encoded in a bounded ring of [stride]-int records
   (timestamp, tag, two payload words), so an enabled log costs one array
   store per field and a long run cannot grow without bound: once
   [max_events] records are held, each emit overwrites the oldest. *)
let stride = 4

let tag_of = function
  | Cycle_start _ -> 0
  | Init_full_done -> 1
  | Handshake_posted _ -> 2
  | Handshake_complete _ -> 3
  | Intergen_scanned _ -> 4
  | Colors_toggled -> 5
  | Trace_complete _ -> 6
  | Sweep_complete _ -> 7
  | Cycle_end -> 8
  | Heap_grown _ -> 9
  | Mutator_ack _ -> 10
  | Stall_begin _ -> 11
  | Stall_end _ -> 12
  | Promoted _ -> 13

let args_of = function
  | Cycle_start { kind; full } ->
      (Gc_stats.kind_index kind, if full then 1 else 0)
  | Init_full_done | Colors_toggled | Cycle_end -> (0, 0)
  | Handshake_posted s | Handshake_complete s -> (Status.index s, 0)
  | Intergen_scanned { seeds } -> (seeds, 0)
  | Trace_complete { traced } -> (traced, 0)
  | Sweep_complete { freed; bytes } -> (freed, bytes)
  | Heap_grown { capacity } -> (capacity, 0)
  | Mutator_ack { mid; status } -> (mid, Status.index status)
  | Stall_begin { mid } | Stall_end { mid } -> (mid, 0)
  | Promoted { count } -> (count, 0)

let decode tag a b =
  match tag with
  | 0 -> Cycle_start { kind = Gc_stats.kind_of_index a; full = b = 1 }
  | 1 -> Init_full_done
  | 2 -> Handshake_posted (Status.of_index a)
  | 3 -> Handshake_complete (Status.of_index a)
  | 4 -> Intergen_scanned { seeds = a }
  | 5 -> Colors_toggled
  | 6 -> Trace_complete { traced = a }
  | 7 -> Sweep_complete { freed = a; bytes = b }
  | 8 -> Cycle_end
  | 9 -> Heap_grown { capacity = a }
  | 10 -> Mutator_ack { mid = a; status = Status.of_index b }
  | 11 -> Stall_begin { mid = a }
  | 12 -> Stall_end { mid = a }
  | 13 -> Promoted { count = a }
  | n -> invalid_arg (Printf.sprintf "Event_log.decode: tag %d" n)

type t = {
  mutable buf : int array;
  mutable start : int;  (* index (in events) of the oldest record *)
  mutable len : int;    (* records held *)
  mutable dropped : int;
  max_events : int;
  mutable enabled : bool;
}

let default_max_events = 1 lsl 16
let initial_events = 64

let create ?(max_events = default_max_events) () =
  if max_events < 1 then invalid_arg "Event_log.create: max_events < 1";
  {
    buf = Array.make (Stdlib.min initial_events max_events * stride) 0;
    start = 0;
    len = 0;
    dropped = 0;
    max_events;
    enabled = false;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let capacity_events t = Array.length t.buf / stride

let grow t =
  let cap = capacity_events t in
  let cap' = Stdlib.min t.max_events (2 * cap) in
  let buf' = Array.make (cap' * stride) 0 in
  (* unroll the ring so the oldest record lands at slot 0 *)
  for i = 0 to t.len - 1 do
    let src = (t.start + i) mod cap * stride in
    Array.blit t.buf src buf' (i * stride) stride
  done;
  t.buf <- buf';
  t.start <- 0

let emit t ~at phase =
  if t.enabled then begin
    let cap = capacity_events t in
    if t.len = cap && cap < t.max_events then grow t;
    let cap = capacity_events t in
    let slot =
      if t.len = cap then begin
        (* full at the bound: overwrite the oldest *)
        let s = t.start in
        t.start <- (t.start + 1) mod cap;
        t.dropped <- t.dropped + 1;
        s
      end
      else begin
        let s = (t.start + t.len) mod cap in
        t.len <- t.len + 1;
        s
      end
    in
    let base = slot * stride in
    let a, b = args_of phase in
    t.buf.(base) <- at;
    t.buf.(base + 1) <- tag_of phase;
    t.buf.(base + 2) <- a;
    t.buf.(base + 3) <- b
  end

let nth_event t i =
  let cap = capacity_events t in
  let base = (t.start + i) mod cap * stride in
  {
    at = t.buf.(base);
    phase = decode t.buf.(base + 1) t.buf.(base + 2) t.buf.(base + 3);
  }

let events t = List.init t.len (nth_event t)

let iter t f =
  for i = 0 to t.len - 1 do
    f (nth_event t i)
  done

let length t = t.len
let dropped t = t.dropped

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let pp_phase ppf = function
  | Cycle_start { kind; full = _ } ->
      Format.fprintf ppf "cycle start (%s)" (Gc_stats.kind_name kind)
  | Init_full_done -> Format.pp_print_string ppf "InitFullCollection done"
  | Handshake_posted s ->
      Format.fprintf ppf "handshake posted: %s" (Status.to_string s)
  | Handshake_complete s ->
      Format.fprintf ppf "handshake complete: %s" (Status.to_string s)
  | Intergen_scanned { seeds } ->
      Format.fprintf ppf "inter-gen scan done (%d old objects grayed)" seeds
  | Colors_toggled -> Format.pp_print_string ppf "allocation/clear colors toggled"
  | Trace_complete { traced } ->
      Format.fprintf ppf "trace complete (%d objects)" traced
  | Sweep_complete { freed; bytes } ->
      Format.fprintf ppf "sweep complete (%d objects / %d bytes freed)" freed bytes
  | Cycle_end -> Format.pp_print_string ppf "cycle end"
  | Heap_grown { capacity } ->
      Format.fprintf ppf "heap grown to %d bytes" capacity
  | Mutator_ack { mid; status } ->
      Format.fprintf ppf "mutator %d acks %s" mid (Status.to_string status)
  | Stall_begin { mid } -> Format.fprintf ppf "mutator %d stalls on allocation" mid
  | Stall_end { mid } -> Format.fprintf ppf "mutator %d resumes" mid
  | Promoted { count } ->
      Format.fprintf ppf "%d objects promoted to the old generation" count

let pp_timeline ppf t =
  iter t (fun e -> Format.fprintf ppf "%10d  %a@." e.at pp_phase e.phase)
