type phase =
  | Cycle_start of { kind : Gc_stats.kind; full : bool }
  | Init_full_done
  | Handshake_posted of Status.t
  | Handshake_complete of Status.t
  | Intergen_scanned of { seeds : int }
  | Colors_toggled
  | Trace_complete of { traced : int }
  | Sweep_complete of { freed : int; bytes : int }
  | Cycle_end
  | Heap_grown of { capacity : int }

type event = { at : int; phase : phase }

type t = { mutable events : event list; mutable enabled : bool }

let create () = { events = []; enabled = false }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let emit t ~at phase = if t.enabled then t.events <- { at; phase } :: t.events

let events t = List.rev t.events
let clear t = t.events <- []

let pp_phase ppf = function
  | Cycle_start { kind; full = _ } ->
      Format.fprintf ppf "cycle start (%s)" (Gc_stats.kind_name kind)
  | Init_full_done -> Format.pp_print_string ppf "InitFullCollection done"
  | Handshake_posted s ->
      Format.fprintf ppf "handshake posted: %s" (Status.to_string s)
  | Handshake_complete s ->
      Format.fprintf ppf "handshake complete: %s" (Status.to_string s)
  | Intergen_scanned { seeds } ->
      Format.fprintf ppf "inter-gen scan done (%d old objects grayed)" seeds
  | Colors_toggled -> Format.pp_print_string ppf "allocation/clear colors toggled"
  | Trace_complete { traced } ->
      Format.fprintf ppf "trace complete (%d objects)" traced
  | Sweep_complete { freed; bytes } ->
      Format.fprintf ppf "sweep complete (%d objects / %d bytes freed)" freed bytes
  | Cycle_end -> Format.pp_print_string ppf "cycle end"
  | Heap_grown { capacity } ->
      Format.fprintf ppf "heap grown to %d bytes" capacity

let pp_timeline ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%10d  %a@." e.at pp_phase e.phase)
    (events t)
