(** Per-collection statistics, matching the quantities reported in the
    paper's Figures 10–15 and 22–23.

    The collector fills in a {!cycle} record as it runs; "out-of-band"
    measurements (e.g. the young-generation census at cycle start) are
    taken by the harness without charging collector work or page touches,
    exactly like the paper's instrumented JVM counters. *)

type kind = Partial | Full | Non_gen

val kind_name : kind -> string

val kind_index : kind -> int
(** Dense index ([Partial] 0, [Full] 1, [Non_gen] 2), used to int-encode
    kinds in the event ring. *)

val kind_of_index : int -> kind
(** Inverse of {!kind_index}; raises [Invalid_argument] outside [0..2]. *)

type cycle = {
  kind : kind;
  seq : int;  (** 0-based collection index within the run *)
  (* trace *)
  mutable objects_traced : int;
      (** objects blackened by the trace (Figure 11 "objects scanned") *)
  mutable intergen_scanned : int;
      (** old objects examined during the dirty-card scan (Figure 11
          "objects scanned for inter-gen pointers") *)
  mutable card_scan_bytes : int;
      (** bytes of old objects examined on dirty cards (Figure 23) *)
  mutable dirty_cards : int;   (** dirty cards found by ClearCards (Figure 22) *)
  mutable total_cards : int;
      (** "allocated cards": cards covered by the bytes allocated since the
          previous collection — Figure 22's denominator *)
  (* sweep *)
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable promotions : int;
      (** objects promoted to the old generation this cycle: blackened by
          the trace under simple promotion, newly tenured by the sweep
          under aging/adaptive promotion *)
  (* census (out of band) *)
  mutable young_objects_at_start : int;
  mutable young_bytes_at_start : int;
  mutable live_objects_at_end : int;
  mutable live_bytes_at_end : int;
  (* cost & locality *)
  mutable work : int;          (** collector work units for this cycle (Figure 13) *)
  mutable pages_touched : int; (** Figure 15 *)
  mutable active_span : int;
      (** elapsed-work span of the cycle: how much total (mutator +
          collector) work the system performed while the cycle was in
          progress — the wall-clock-activity measure behind Figure 10's
          "percent time GC active" *)
  mutable floating_objects : int;
      (** allocated-but-unreachable objects the cycle's sweep left behind
          (floating garbage), measured out of band by the oracle right
          after the sweep — Section 5's "at most one cycle" claim made
          quantitative *)
  mutable floating_bytes : int;
  (* parallel collection (domains substrate; 1/0/0 under the serial
     collector, so sim figures are unchanged) *)
  mutable trace_workers : int;
      (** collector worker domains that ran this cycle's trace *)
  mutable steals : int;  (** successful gray-deque steals *)
  mutable steal_failures : int;
      (** steal attempts that found an empty deque or lost the race *)
}

type t

val create : unit -> t

val reset : t -> unit
(** Drop all recorded cycles (end-of-warmup measurement reset). *)

val begin_cycle : t -> kind -> cycle
(** Allocate and register the record for a starting collection. *)

val end_cycle : t -> cycle -> unit
(** Mark the cycle complete; only completed cycles count in aggregates. *)

val cycles : t -> cycle list
(** Completed cycles, oldest first. *)

val n_completed : t -> int
(** Number of completed cycles, as an atomic read — the form mutators on
    the real-domains substrate poll while waiting for a cycle they
    requested (the list in {!cycles} is only safe to read from the
    collector's own domain or at quiescence). *)

(** {2 Live aggregates}

    Cumulative totals over completed cycles, published as atomics once
    per {!end_cycle} so the metrics observer on another domain can read
    monotone, tear-free counters mid-run without walking the cycle
    list.  Each equals the corresponding fold over {!cycles} whenever
    the collector is between cycles (and always at quiescence). *)

val n_completed_of : t -> kind -> int
(** Completed cycles of one kind (atomic read). *)

val live_bytes_freed : t -> int
val live_objects_freed : t -> int
val live_promotions : t -> int

val live_cycle_work : t -> int
(** Collector work summed over completed cycles (atomic read; the live
    counterpart of {!total_collector_work}). *)

val count : t -> kind -> int

val total_collector_work : t -> int
(** Work across completed cycles. *)

(** {2 Aggregates for the figure harness} *)

val mean : t -> kind -> (cycle -> float) -> float
(** Mean of a metric over completed cycles of a kind; [0.] if none. *)

val sum : t -> kind -> (cycle -> float) -> float

val has : t -> kind -> bool
