(** The on-the-fly collectors — the paper's Figures 1–6 as code.

    Three variants share this module, selected by {!Gc_config.mode}:

    - [Non_generational]: the DLG mark-sweep baseline with the black/white
      color toggle of Remark 5.1 (trace recolors live objects to the mark
      color; sweep reclaims the clear color; the two names swap at the end
      of each sweep).
    - [Generational]: Sections 3–5 / Figures 1–3.  Black objects form the
      old generation; a partial collection seeds its trace by graying the
      black objects on dirty cards; objects created during the cycle get
      the "yellow" allocation color, with the sync1/sync2 graying exception
      of Section 4; the allocation and clear colors toggle at cycle start.
    - [Generational_aging]: Section 6 / Figures 4–6.  A side age table, a
      tenuring threshold, always-on card marking, the 3-step card-clearing
      protocol that survives the mutator/collector card race of Section
      7.2, and a sweep that de-promotes (recolors and ages) young
      survivors.

    Mutator-facing routines ({!update}, {!cooperate}, {!allocation_color})
    must be called from the owning mutator's process; collector routines
    run in the collector process spawned by {!Runtime}.  Every
    shared-memory micro-step calls {!State.step}, so schedules explore the
    same interleavings the paper's fine-grained atomicity argument is
    about. *)

(** {2 Mutator routines (Figure 1 / Figure 4)} *)

val update : State.t -> Mutator.t -> x:int -> i:int -> y:int -> unit
(** The write barrier plus the store [heap\[x,i\] <- y].  [y] may be
    {!Otfgc_heap.Heap.nil}. *)

val cooperate : State.t -> Mutator.t -> unit
(** Handshake poll: adopt the collector's posted status, marking the
    mutator's own roots gray when leaving [Sync2]. *)

val allocation_color : State.t -> Otfgc_heap.Color.t
(** Color for a new object under the current mode and phase (the [Create]
    routine's color choice). *)

(** {2 The collector process} *)

val run_cycle : State.t -> full:bool -> Gc_stats.cycle
(** One complete collection cycle: clear, mark (handshakes + card scan +
    color toggle), trace, sweep, post-cycle growth.  Returns the completed
    statistics record (also appended to [state.stats]). *)

val collector_loop : State.t -> unit
(** Body of the collector thread: wait for a trigger or shutdown, run
    cycles.  Spawn as a daemon process. *)

val gc_worker_loop : State.t -> int -> unit
(** Body of collector helper worker [wid] (1..n-1) on the domains
    substrate: park on the crew's epoch counter, run each opened
    phase's share (card scan / trace / sweep), check in at the phase
    barrier; exits at shutdown.  Spawn as a daemon domain after
    [Runtime.set_gc_workers]. *)

(** {2 Exposed for tests} *)

val mark_gray : State.t -> tel:Telemetry.t -> sync:bool -> int -> bool
(** The [MarkGray] routine; [sync] is the caller's "my status is not
    async" flag (enables the yellow-graying exception in [Generational]
    mode); [tel] is the caller-context telemetry (the shared ledger under
    the simulator).  Returns whether the object was shaded.  No cost is
    charged — callers do. *)

val clear_cards : State.t -> Gc_stats.cycle -> unit
(** The card-scanning routine of the current mode (Figure 3 or Figure 6),
    exposed so tests can drive races against it directly. *)
