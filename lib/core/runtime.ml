module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
open State

exception Out_of_memory

type t = { st : State.t; mutable next_mutator_id : int }

let create ?(heap_config = Heap.default_config) ?(gc_config = Gc_config.default)
    () =
  Gc_config.validate gc_config;
  let heap = Heap.create heap_config in
  { st = State.create heap gc_config; next_mutator_id = 0 }

let state t = t.st
let heap t = t.st.heap
let stats t = t.st.stats
let cost t = t.st.cost
let events t = t.st.events
let telemetry t = t.st.telemetry
let sampler t = t.st.sampler

let set_fine_grained t v = t.st.fine_grained <- v

let new_mutator t ~name ?(n_regs = 16) () =
  if t.st.collecting then Sched.wait_until (fun () -> not t.st.collecting);
  let m = Mutator.create ~id:t.next_mutator_id ~name ~n_regs in
  t.next_mutator_id <- t.next_mutator_id + 1;
  (* Idle collector means status_c = Async, matching the fresh mutator. *)
  Mutator.set_status m t.st.status_c;
  t.st.mutators <- t.st.mutators @ [ m ];
  m

let retire_mutator _t m = Mutator.retire m

let spawn_collector t sched =
  Sched.spawn sched ~daemon:true ~name:"collector" (fun () ->
      Collector.collector_loop t.st)

let shutdown t = t.st.shutdown <- true

let cooperate t m = Collector.cooperate t.st m

let add_global t addr = t.st.globals <- addr :: t.st.globals

let request_collection t ~full =
  let st = t.st in
  if not st.collecting && st.gc_request = No_request then
    st.gc_request <- (if full then Want_full else Want_partial)

let collect_and_wait t m ~full =
  let st = t.st in
  (* Wait out any cycle already in progress so ours is a fresh one. *)
  while st.collecting || st.gc_request <> No_request do
    Collector.cooperate st m;
    Sched.yield ()
  done;
  let n0 = List.length (Gc_stats.cycles st.stats) in
  st.gc_request <- (if full then Want_full else Want_partial);
  while List.length (Gc_stats.cycles st.stats) = n0 || st.collecting do
    Collector.cooperate st m;
    Sched.yield ()
  done;
  List.nth (Gc_stats.cycles st.stats) n0

(* Section 3.3 triggering: a partial collection once [young_bytes] have
   been allocated since the last collection; a full collection when the
   heap is "almost full" — the same full trigger with and without
   generations (Section 8). *)
let maybe_trigger t =
  let st = t.st in
  if (not st.collecting) && st.gc_request = No_request then begin
    let cap = Heap.capacity st.heap in
    let almost_full =
      float_of_int (Heap.allocated_bytes st.heap)
      >= st.cfg.Gc_config.full_trigger_fraction *. float_of_int cap
      (* while the heap can still grow cheaply, growing is preferred over
         collecting only when allocation actually fails; the fraction
         applies to current capacity, as in the prototype JVM *)
    in
    if almost_full then st.gc_request <- Want_full
    else if
      Gc_config.is_generational st.cfg.Gc_config.mode
      && st.bytes_since_gc >= st.cfg.Gc_config.young_bytes
    then st.gc_request <- Want_partial
  end

let try_alloc t ~size ~n_slots =
  let st = t.st in
  let color = Collector.allocation_color st in
  Heap.alloc st.heap ~size ~n_slots ~color

let alloc t m ~size ~n_slots =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Cost.mutator st.cost Cost.c_alloc;
  Observatory.maybe_sample st;
  match try_alloc t ~size ~n_slots with
  | Some addr ->
      st.bytes_since_gc <- st.bytes_since_gc + Heap.size st.heap addr;
      maybe_trigger t;
      addr
  | None ->
      (* Slow path — collect before growing, as the prototype JVM does:
         request a full collection if none is pending, stall (cooperating,
         or handshakes would never complete) until it finishes, retry; only
         when a whole collection has run and allocation still fails does
         the heap grow towards its maximum, and only when that too is
         exhausted is the program out of memory. *)
      let result = ref Heap.nil in
      Telemetry.hit_stall st.telemetry;
      let stall_from = Cost.elapsed_multi st.cost in
      if Event_log.enabled st.events then
        Event_log.emit st.events ~at:stall_from
          (Event_log.Stall_begin { mid = Mutator.id m });
      (* Only a full (or non-generational) collection can reclaim tenured
         garbage; partials completing while we wait do not count as "a
         collection ran and it still does not fit". *)
      let fulls_done () =
        Gc_stats.count st.stats Gc_stats.Full
        + Gc_stats.count st.stats Gc_stats.Non_gen
      in
      let baseline = ref (fulls_done ()) in
      while !result = Heap.nil do
        match try_alloc t ~size ~n_slots with
        | Some addr -> result := addr
        | None ->
            (if (not st.collecting) && st.gc_request = No_request then
               if fulls_done () = !baseline then st.gc_request <- Want_full
               else if
                 Heap.grow st.heap
                   ~want_bytes:
                     (Stdlib.max size (Stdlib.max 65536 (Heap.capacity st.heap / 2)))
               then baseline := fulls_done ()
               else raise Out_of_memory);
            Collector.cooperate st m;
            Cost.stall st.cost Cost.c_cooperate;
            Observatory.maybe_sample st;
            Sched.yield ()
      done;
      let stall_to = Cost.elapsed_multi st.cost in
      Telemetry.record_stall st.telemetry (stall_to - stall_from);
      if Event_log.enabled st.events then
        Event_log.emit st.events ~at:stall_to
          (Event_log.Stall_end { mid = Mutator.id m });
      st.bytes_since_gc <- st.bytes_since_gc + Heap.size st.heap !result;
      maybe_trigger t;
      !result

let load t m ~x ~i =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Cost.mutator st.cost Cost.c_load;
  Heap.get_slot st.heap x i

let store t m ~x ~i ~y =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Collector.update st m ~x ~i ~y

(* Scalar fields need no write barrier: the collector only cares about
   references (Section 2: the barrier is required only on modifications of
   references inside heap objects). *)
let load_data t m ~x ~i =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Cost.mutator st.cost Cost.c_load;
  Heap.get_data st.heap x i

let store_data t m ~x ~i ~v =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Cost.mutator st.cost Cost.c_store;
  Heap.set_data st.heap x i v

let work t m n =
  let st = t.st in
  Collector.cooperate st m;
  let units = n * Cost.c_compute in
  Cost.mutator st.cost units;
  Observatory.maybe_sample st;
  (* Scheduled time must track charged work on both sides (the collector
     yields once per ~8 units), so a long computation burns proportionally
     many scheduling quanta — during which the collector runs. *)
  for _ = 1 to Stdlib.max 1 (units / 8) do
    Sched.yield ()
  done
