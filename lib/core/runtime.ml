module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Substrate = Otfgc_sched.Substrate
open State

exception Out_of_memory

type t = { st : State.t; mutable next_mutator_id : int }

let create ?(heap_config = Heap.default_config) ?(gc_config = Gc_config.default)
    () =
  Gc_config.validate gc_config;
  let heap = Heap.create heap_config in
  { st = State.create heap gc_config; next_mutator_id = 0 }

let state t = t.st
let heap t = t.st.heap
let stats t = t.st.stats
let cost t = t.st.cost
let events t = t.st.events
let telemetry t = t.st.telemetry
let sampler t = t.st.sampler

let set_fine_grained t v = t.st.fine_grained <- v
let set_parallel t v = t.st.parallel <- v; Gray_queue.set_locked t.st.gray v

(* Arm an [n]-worker collection crew (domains substrate only; call
   before any process starts).  [n <= 1] leaves the serial collector —
   the default — fully untouched: no deques, no crew, historical code
   paths throughout. *)
let set_gc_workers t n =
  let n = Stdlib.max 1 n in
  if n > 1 then begin
    Gc_par.configure t.st.par ~n ~cost0:t.st.cost ~tel0:t.st.telemetry
      ~pages0:t.st.pages ~layout:(Heap.layout t.st.heap);
    Gray_queue.set_workers t.st.gray n;
    (* a recorder armed before the crew: give the new workers tracks *)
    if Flight_recorder.armed t.st.recorder then
      Gc_par.attach_rings t.st.par t.st.recorder
  end

let recorder t = t.st.recorder

(* Arm the flight recorder (domains substrate only; call before any
   process starts — instrument hooks run right after [set_parallel] and
   [set_gc_workers] in the driver, which is the right moment).  Workers
   configured before or after arming both end up with tracks; mutators
   get theirs at registration. *)
let arm_recorder t =
  let st = t.st in
  if st.parallel then begin
    Flight_recorder.arm st.recorder;
    if Gc_par.active st.par then Gc_par.attach_rings st.par st.recorder
  end

let gc_workers t = if Gc_par.active t.st.par then t.st.par.Gc_par.n_workers else 1
let gc_worker_loop t wid = Collector.gc_worker_loop t.st wid

(* Registration must not race a cycle start: the handshake set has to be
   stable from the moment [collecting] rises (a mutator registering
   mid-handshake would either miss the posted status or be waited on
   without ever having seen it).  The collector raises [collecting] under
   [reg_lock] (Collector.run_cycle), so holding the lock and seeing
   [collecting = false] guarantees no cycle can begin until we release —
   the fresh mutator is published (status = Async = status_c) before any
   handshake is posted.  Under the simulator the wait alone suffices, as
   it always has: nothing runs between our check and the registration. *)
let new_mutator t ~name ?(n_regs = 16) () =
  let st = t.st in
  if st.parallel then begin
    let made = ref None in
    while !made = None do
      Substrate.wait_until (fun () -> not (Atomic.get st.collecting));
      Mutex.lock st.reg_lock;
      if Atomic.get st.collecting then Mutex.unlock st.reg_lock
      else begin
        let m = Mutator.create ~id:t.next_mutator_id ~name ~n_regs in
        t.next_mutator_id <- t.next_mutator_id + 1;
        let c = Cost.create () in
        let tel = Telemetry.create () in
        Telemetry.set_enabled tel (Telemetry.enabled st.telemetry);
        Mutator.set_own_ledgers m c tel;
        if Flight_recorder.armed st.recorder then
          Mutator.set_ring m
            (Flight_recorder.new_ring st.recorder ~track:name
               ~tid:(Flight_recorder.mutator_tid (Mutator.id m)));
        Mutator.set_status m (Atomic.get st.status_c);
        State.register_mutator st m;
        Mutex.unlock st.reg_lock;
        made := Some m
      end
    done;
    Option.get !made
  end
  else begin
    if Atomic.get st.collecting then
      Sched.wait_until (fun () -> not (Atomic.get st.collecting));
    let m = Mutator.create ~id:t.next_mutator_id ~name ~n_regs in
    t.next_mutator_id <- t.next_mutator_id + 1;
    (* Idle collector means status_c = Async, matching the fresh mutator. *)
    Mutator.set_status m (Atomic.get st.status_c);
    State.register_mutator st m;
    m
  end

let retire_mutator t m =
  let st = t.st in
  if st.parallel then begin
    (* Return the allocation cache's reserved blocks and flush the batched
       counters before the mutator stops participating — after [retire]
       nobody would ever drain them. *)
    let cache = Mutator.cache m in
    State.lock_heap st;
    Alloc_cache.drain cache (fun addr -> Heap.release_reserved st.heap addr);
    let bytes, objects = Alloc_cache.take_pending cache in
    if objects > 0 || bytes > 0 then
      Heap.add_alloc_stats st.heap ~bytes ~objects;
    State.unlock_heap st
  end;
  Mutator.retire m

let spawn_collector t sched =
  Sched.spawn sched ~daemon:true ~name:"collector" (fun () ->
      Collector.collector_loop t.st)

let collector_loop t = Collector.collector_loop t.st
let shutdown t = Atomic.set t.st.shutdown true

let cooperate t m = Collector.cooperate t.st m

let add_global t addr = t.st.globals <- addr :: t.st.globals

let request_collection t ~full =
  let st = t.st in
  if not (Atomic.get st.collecting) then
    ignore
      (Atomic.compare_and_set st.gc_request No_request
         (if full then Want_full else Want_partial)
        : bool)

(* Busy-wait helper: under the simulator, cooperate-then-yield exactly as
   the historical code did (schedules untouched); under domains, a
   spin-then-sleep wait that still polls the handshake each iteration. *)
let wait_while st m cond =
  if st.parallel then
    Substrate.wait_until (fun () ->
        Collector.cooperate st m;
        not (cond ()))
  else
    while cond () do
      Collector.cooperate st m;
      Sched.yield ()
    done

let collect_and_wait t m ~full =
  let st = t.st in
  (* Wait out any cycle already in progress so ours is a fresh one. *)
  wait_while st m (fun () ->
      Atomic.get st.collecting || Atomic.get st.gc_request <> No_request);
  let n0 = Gc_stats.n_completed st.stats in
  Atomic.set st.gc_request (if full then Want_full else Want_partial);
  wait_while st m (fun () ->
      Gc_stats.n_completed st.stats = n0 || Atomic.get st.collecting);
  List.nth (Gc_stats.cycles st.stats) n0

(* Section 3.3 triggering: a partial collection once [young_bytes] have
   been allocated since the last collection; a full collection when the
   heap is "almost full" — the same full trigger with and without
   generations (Section 8).  The CAS posts the request only if none is
   pending, which is exactly the old check-then-set under the simulator
   and the required atomicity under domains. *)
let maybe_trigger t =
  let st = t.st in
  if not (Atomic.get st.collecting) then begin
    let cap = Heap.capacity st.heap in
    let almost_full =
      float_of_int (Heap.allocated_bytes st.heap)
      >= st.cfg.Gc_config.full_trigger_fraction *. float_of_int cap
      (* while the heap can still grow cheaply, growing is preferred over
         collecting only when allocation actually fails; the fraction
         applies to current capacity, as in the prototype JVM *)
    in
    if almost_full then
      ignore (Atomic.compare_and_set st.gc_request No_request Want_full : bool)
    else if
      Gc_config.is_generational st.cfg.Gc_config.mode
      && Atomic.get st.bytes_since_gc >= st.cfg.Gc_config.young_bytes
    then
      ignore
        (Atomic.compare_and_set st.gc_request No_request Want_partial : bool)
  end

let try_alloc t ~size ~n_slots =
  let st = t.st in
  State.lock_heap st;
  let color = Collector.allocation_color st in
  let r = Heap.alloc st.heap ~size ~n_slots ~color in
  State.unlock_heap st;
  r

let note_allocated st addr =
  ignore (Atomic.fetch_and_add st.bytes_since_gc (Heap.size st.heap addr) : int)

(* The simulator's allocation path: one free-list pop per object, inline
   stall loop.  Byte-identical to the historical behavior. *)
let alloc_sim t m ~size ~n_slots =
  let st = t.st in
  Collector.cooperate st m;
  Sched.yield ();
  Cost.mutator st.cost Cost.c_alloc;
  Observatory.maybe_sample st;
  match try_alloc t ~size ~n_slots with
  | Some addr ->
      note_allocated st addr;
      maybe_trigger t;
      addr
  | None ->
      (* Slow path — collect before growing, as the prototype JVM does:
         request a full collection if none is pending, stall (cooperating,
         or handshakes would never complete) until it finishes, retry; only
         when a whole collection has run and allocation still fails does
         the heap grow towards its maximum, and only when that too is
         exhausted is the program out of memory. *)
      let result = ref Heap.nil in
      Telemetry.hit_stall st.telemetry;
      let stall_from = Cost.elapsed_multi st.cost in
      if Event_log.enabled st.events then
        Event_log.emit st.events ~at:stall_from
          (Event_log.Stall_begin { mid = Mutator.id m });
      (* Only a full (or non-generational) collection can reclaim tenured
         garbage; partials completing while we wait do not count as "a
         collection ran and it still does not fit". *)
      let fulls_done () =
        Gc_stats.count st.stats Gc_stats.Full
        + Gc_stats.count st.stats Gc_stats.Non_gen
      in
      let baseline = ref (fulls_done ()) in
      while !result = Heap.nil do
        match try_alloc t ~size ~n_slots with
        | Some addr -> result := addr
        | None ->
            (if
               (not (Atomic.get st.collecting))
               && Atomic.get st.gc_request = No_request
             then
               if fulls_done () = !baseline then
                 Atomic.set st.gc_request Want_full
               else if
                 Heap.grow st.heap
                   ~want_bytes:
                     (Stdlib.max size
                        (Stdlib.max 65536 (Heap.capacity st.heap / 2)))
               then baseline := fulls_done ()
               else raise Out_of_memory);
            Collector.cooperate st m;
            Cost.stall st.cost Cost.c_cooperate;
            Observatory.maybe_sample st;
            Sched.yield ()
      done;
      let stall_to = Cost.elapsed_multi st.cost in
      Telemetry.record_stall st.telemetry (stall_to - stall_from);
      if Event_log.enabled st.events then
        Event_log.emit st.events ~at:stall_to
          (Event_log.Stall_end { mid = Mutator.id m });
      note_allocated st !result;
      maybe_trigger t;
      !result

(* Blocks a mutator pulls into its own cache per refill: the TLAB batch
   size.  Small enough that reserved memory stays a few KB per mutator,
   large enough that the refill drops out of the hot path. *)
let refill_target = 16

(* Blocks a restock reserves from the heap beyond the refiller's own
   batch, left stocked in the class pool for other mutators: each heap
   lock acquisition feeds several pool-only refills in that class. *)
let pool_extra = 32

(* Hand every pooled block back to the free list.  Called when an
   allocation stalls (a hoarded block might be the one that fits) and
   at the run finale (pooled blocks are kind-Allocated and would count
   against the heap-empty-at-quiescence invariant).  Takes each class
   lock, then the heap lock inside it — the legal order. *)
let drain_pools t =
  let st = t.st in
  Block_pool.drain st.pool (fun addr ->
      State.lock_heap st;
      Heap.release_reserved st.heap addr;
      State.unlock_heap st)

(* The domains allocation path: domain-local cache first, per-size-class
   pool second (class lock only — refills in different classes never
   contend), heap-locked restock third, collect-then-grow stall loop
   last (same policy as the simulator's, with real waits). *)
let alloc_domains t m ~size ~n_slots =
  let st = t.st in
  let heap = st.heap in
  let cache = Mutator.cache m in
  let cost = State.mcost st m in
  Collector.cooperate st m;
  Substrate.yield ();
  Cost.mutator cost Cost.c_alloc;
  let cacheable = Alloc_cache.cacheable ~size in
  (* Lock-free: the block is already reserved (kind Allocated, Blue), so
     issuing touches only its own granule entries; the allocation color is
     read after cooperate, so its staleness is bounded by the handshake
     window the protocol already tolerates. *)
  let issue_from addr =
    let color = Collector.allocation_color st in
    let real = Heap.issue heap addr ~n_slots ~color in
    Alloc_cache.note_issued cache ~bytes:real;
    ignore (Atomic.fetch_and_add st.bytes_since_gc real : int);
    maybe_trigger t;
    addr
  in
  let refill () =
    let cls = Block_pool.class_of ~size in
    (match Mutator.ring m with
    | None ->
        if Block_pool.lock st.pool ~cls then
          Telemetry.hit_lock_wait (State.mtelemetry st m) ~cls
    | Some r ->
        (* timed path: the clock is read only when the try_lock failed,
           so the uncontended refill stays as cheap as the untimed one *)
        let waited = Block_pool.lock_ns st.pool ~cls in
        if waited > 0 then begin
          Telemetry.hit_lock_wait (State.mtelemetry st m) ~cls;
          let t1 = Flight_recorder.now_ns () in
          Flight_recorder.span r Flight_recorder.Lock_wait ~a:cls
            ~t0:(t1 - waited) ~t1
        end);
    let got = ref 0 in
    (* stocked blocks first: the class lock is the only lock taken *)
    let rec from_pool () =
      if !got < refill_target then
        match Block_pool.pop st.pool ~cls with
        | Some a ->
            Alloc_cache.put cache ~size a;
            incr got;
            from_pool ()
        | None -> ()
    in
    from_pool ();
    if !got < refill_target then begin
      (* dry pool: restock from the free list under the heap lock
         (class -> heap, the legal order) and flush the batched
         allocation counters while holding it *)
      State.lock_heap st;
      let bytes, objects = Alloc_cache.take_pending cache in
      if objects > 0 || bytes > 0 then
        Heap.add_alloc_stats heap ~bytes ~objects;
      (try
         while !got < refill_target do
           match Heap.reserve heap ~size with
           | Some a ->
               Alloc_cache.put cache ~size a;
               incr got
           | None -> raise Exit
         done;
         let stocked = ref 0 in
         while !stocked < pool_extra do
           match Heap.reserve heap ~size with
           | Some a ->
               Block_pool.push st.pool ~cls a;
               incr stocked
           | None -> raise Exit
         done
       with Exit -> ());
      State.unlock_heap st
    end;
    Block_pool.unlock st.pool ~cls;
    !got > 0
  in
  let attempt () =
    if cacheable then
      match Alloc_cache.get cache ~size with
      | Some addr -> Some (issue_from addr)
      | None ->
          if refill () then
            match Alloc_cache.get cache ~size with
            | Some addr -> Some (issue_from addr)
            | None -> None
          else None
    else
      match try_alloc t ~size ~n_slots with
      | Some addr ->
          note_allocated st addr;
          maybe_trigger t;
          Some addr
      | None -> None
  in
  match attempt () with
  | Some addr -> addr
  | None ->
      let tel = State.mtelemetry st m in
      Telemetry.hit_stall tel;
      (* blocks hoarded in other classes' pools may be exactly the
         memory this request needs — return them all before stalling *)
      drain_pools t;
      let stall_ns0 =
        match Mutator.ring m with
        | Some _ -> Flight_recorder.now_ns ()
        | None -> 0
      in
      let stall_from = State.now_units st in
      let fulls_done () =
        Gc_stats.count st.stats Gc_stats.Full
        + Gc_stats.count st.stats Gc_stats.Non_gen
      in
      let baseline = ref (fulls_done ()) in
      let result = ref Heap.nil in
      while !result = Heap.nil do
        match attempt () with
        | Some addr -> result := addr
        | None ->
            (if
               (not (Atomic.get st.collecting))
               && Atomic.get st.gc_request = No_request
             then
               if fulls_done () = !baseline then
                 ignore
                   (Atomic.compare_and_set st.gc_request No_request Want_full
                     : bool)
               else begin
                 State.lock_heap st;
                 let grown =
                   Heap.grow heap
                     ~want_bytes:
                       (Stdlib.max size
                          (Stdlib.max 65536 (Heap.capacity heap / 2)))
                 in
                 State.unlock_heap st;
                 if grown then baseline := fulls_done ()
                 else raise Out_of_memory
               end);
            Cost.stall cost Cost.c_cooperate;
            (* Sleep out the requested cycle (cooperating, or handshakes
               would never complete), then retry. *)
            Substrate.wait_until (fun () ->
                Collector.cooperate st m;
                (not (Atomic.get st.collecting))
                && Atomic.get st.gc_request = No_request)
      done;
      Telemetry.record_stall tel (State.now_units st - stall_from);
      (match Mutator.ring m with
      | Some r ->
          Flight_recorder.span r Flight_recorder.Stall ~a:(Mutator.id m)
            ~t0:stall_ns0 ~t1:(Flight_recorder.now_ns ())
      | None -> ());
      !result

let alloc t m ~size ~n_slots =
  if t.st.parallel then alloc_domains t m ~size ~n_slots
  else alloc_sim t m ~size ~n_slots

let load t m ~x ~i =
  let st = t.st in
  Collector.cooperate st m;
  Substrate.yield ();
  Cost.mutator (State.mcost st m) Cost.c_load;
  Heap.get_slot st.heap x i

let store t m ~x ~i ~y =
  let st = t.st in
  Collector.cooperate st m;
  Substrate.yield ();
  Collector.update st m ~x ~i ~y

(* Scalar fields need no write barrier: the collector only cares about
   references (Section 2: the barrier is required only on modifications of
   references inside heap objects). *)
let load_data t m ~x ~i =
  let st = t.st in
  Collector.cooperate st m;
  Substrate.yield ();
  Cost.mutator (State.mcost st m) Cost.c_load;
  Heap.get_data st.heap x i

let store_data t m ~x ~i ~v =
  let st = t.st in
  Collector.cooperate st m;
  Substrate.yield ();
  Cost.mutator (State.mcost st m) Cost.c_store;
  Heap.set_data st.heap x i v

let work t m n =
  let st = t.st in
  Collector.cooperate st m;
  let units = n * Cost.c_compute in
  Cost.mutator (State.mcost st m) units;
  Observatory.maybe_sample st;
  (* Scheduled time must track charged work on both sides (the collector
     yields once per ~8 units), so a long computation burns proportionally
     many scheduling quanta — during which the collector runs. *)
  for _ = 1 to Stdlib.max 1 (units / 8) do
    Substrate.yield ()
  done
