(** Structured log of collector phase transitions.

    When enabled, the collector records each phase of every cycle with a
    timestamp in elapsed work units — the observability a production
    collector would expose through JFR-style events.  The log is what
    [gcsim run --trace] and the heapscope example print; tests use it to
    assert phase ordering (handshakes strictly precede the trace, the
    trace precedes the sweep, ...). *)

type phase =
  | Cycle_start of { kind : Gc_stats.kind; full : bool }
  | Init_full_done
  | Handshake_posted of Status.t
  | Handshake_complete of Status.t
  | Intergen_scanned of { seeds : int }
      (** dirty-card scan or remembered-set drain finished; [seeds] = old
          objects grayed *)
  | Colors_toggled
  | Trace_complete of { traced : int }
  | Sweep_complete of { freed : int; bytes : int }
  | Cycle_end
  | Heap_grown of { capacity : int }

type event = { at : int;  (** elapsed work units *) phase : phase }

type t

val create : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Off by default; recording costs nothing when disabled. *)

val emit : t -> at:int -> phase -> unit

val events : t -> event list
(** Oldest first. *)

val clear : t -> unit

val pp_phase : Format.formatter -> phase -> unit

val pp_timeline : Format.formatter -> t -> unit
(** Render the whole log, one event per line, timestamps left-aligned. *)
