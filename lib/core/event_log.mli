(** Structured log of collector phase transitions and mutator-side events.

    When enabled, the collector records each phase of every cycle — and
    the mutators record their handshake acknowledgements and allocation
    stalls — with a timestamp in elapsed work units: the observability a
    production collector would expose through JFR-style events.  The log
    is what [gcsim run --trace] prints and what the Perfetto trace export
    consumes; tests use it to assert phase ordering (handshakes strictly
    precede the trace, the trace precedes the sweep, ...).

    Storage is a bounded ring of int-encoded records (4 ints per event):
    an enabled log never allocates per emit beyond occasional capacity
    doubling up to [max_events], and a long run overwrites its oldest
    events instead of growing without bound.  Disabled (the default),
    [emit] is a single flag test. *)

type phase =
  | Cycle_start of { kind : Gc_stats.kind; full : bool }
  | Init_full_done
  | Handshake_posted of Status.t
  | Handshake_complete of Status.t
  | Intergen_scanned of { seeds : int }
      (** dirty-card scan or remembered-set drain finished; [seeds] = old
          objects grayed *)
  | Colors_toggled
  | Trace_complete of { traced : int }
  | Sweep_complete of { freed : int; bytes : int }
  | Cycle_end
  | Heap_grown of { capacity : int }
  | Mutator_ack of { mid : int; status : Status.t }
      (** mutator [mid] adopted the posted status (handshake response) *)
  | Stall_begin of { mid : int }
      (** mutator [mid] entered the allocation slow path (heap exhausted) *)
  | Stall_end of { mid : int }  (** its allocation finally succeeded *)
  | Promoted of { count : int }
      (** objects promoted to the old generation by the finishing cycle *)

type event = { at : int;  (** elapsed work units *) phase : phase }

type t

val create : ?max_events:int -> unit -> t
(** [max_events] (default 65536) bounds the ring; beyond it the oldest
    events are overwritten.  Raises [Invalid_argument] if < 1. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Off by default; recording costs nothing when disabled. *)

val emit : t -> at:int -> phase -> unit

val events : t -> event list
(** Oldest first (decoded on demand). *)

val iter : t -> (event -> unit) -> unit
(** Oldest first, without materialising the list. *)

val length : t -> int
(** Events currently held (≤ [max_events]). *)

val dropped : t -> int
(** Events overwritten since the last {!clear} because the ring was at
    its bound. *)

val clear : t -> unit

val pp_phase : Format.formatter -> phase -> unit

val pp_timeline : Format.formatter -> t -> unit
(** Render the whole log, one event per line, timestamps left-aligned. *)
