(** Per-size-class pools of heap-reserved blocks, each behind its own
    mutex — the sharded tier between mutator allocation caches and the
    heap-locked free list on the domains substrate.

    Pooled blocks are reserved (kind Allocated, color Blue), so the
    sweep and every collector walk skip them; the collector never takes
    a class lock.  Lock ordering is class lock -> heap lock, never the
    reverse (DESIGN.md §11).  Unused under the simulator. *)

type t

val create : unit -> t

val n_classes : int
(** [Alloc_cache.n_classes + 1]: one shard per cacheable size class
    plus the ceiling class at coarse granules. *)

val class_of : size:int -> int
(** Same binning as [Alloc_cache] (granule-rounded size class). *)

val lock : t -> cls:int -> bool
(** Take class [cls]'s lock.  [true] iff the fast [try_lock] failed and
    the call had to block — the caller records it as a lock wait. *)

val lock_ns : t -> cls:int -> int
(** Timed {!lock}: nanoseconds spent blocked — [0] on the uncontended
    fast path, [>= 1] when the call had to wait (flight-recorder
    lock-wait spans; the caller still counts [> 0] as a lock wait). *)

val unlock : t -> cls:int -> unit

val pop : t -> cls:int -> int option
(** Pop a pooled block.  Caller must hold the class lock. *)

val push : t -> cls:int -> int -> unit
(** Stock a reserved block.  Caller must hold the class lock. *)

val level : t -> cls:int -> int
(** Current stock of a class (takes the lock; for tests/stats). *)

val drain : t -> (int -> unit) -> unit
(** Empty every shard through [f] (called with the class lock held; [f]
    may take the heap lock — the legal nesting order). *)
