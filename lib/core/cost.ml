type t = {
  mutable mutator_work : int;
  mutable collector_work : int;
  mutable stall_work : int;
}

let create () = { mutator_work = 0; collector_work = 0; stall_work = 0 }

let mutator t n = t.mutator_work <- t.mutator_work + n
let collector t n = t.collector_work <- t.collector_work + n
let stall t n = t.stall_work <- t.stall_work + n

let mutator_work t = t.mutator_work
let collector_work t = t.collector_work
let stall_work t = t.stall_work

let elapsed_multi t = t.mutator_work + t.collector_work + t.stall_work

(* On a uniprocessor a stalled mutator leaves the only CPU to the
   collector, but nothing else makes progress, so stalls weigh double. *)
let elapsed_uni t = t.mutator_work + t.collector_work + (2 * t.stall_work)

let reset t =
  t.mutator_work <- 0;
  t.collector_work <- 0;
  t.stall_work <- 0

(* Calibrated against the paper's measured ratios (Figures 11, 13, 14):
   tracing one object costs ~0.68 us (226 cycles on the 332 MHz PPC) ~ 2-3
   allocation iterations; sweeping costs ~3 ns per heap byte; the write
   barrier is a handful of instructions.  Units are ~10 ns. *)
let c_alloc = 6
let c_store = 1
let c_load = 1
let c_compute = 1
let c_mark_card = 1
let c_mark_gray = 3
let c_barrier_check = 1
let c_cooperate = 1
let c_handshake = 4
let c_scan_slot = 6
let c_trace_obj = 25
let c_card_visit = 4
let c_card_obj = 2
let c_sweep_block = 4
let c_free = 2
let c_root = 2
let c_card_miss = 3
let c_remset_test = 1
let c_remset_append = 2
