type phase = Idle | Clear | Handshake | Card_scan | Trace | Sweep

let n_phases = 6

let phase_index = function
  | Idle -> 0
  | Clear -> 1
  | Handshake -> 2
  | Card_scan -> 3
  | Trace -> 4
  | Sweep -> 5

let phases = [ Idle; Clear; Handshake; Card_scan; Trace; Sweep ]

let phase_name = function
  | Idle -> "idle"
  | Clear -> "clear"
  | Handshake -> "handshake"
  | Card_scan -> "card-scan"
  | Trace -> "trace"
  | Sweep -> "sweep"

type category = App | Barrier_fast | Barrier_slow | Card_mark

let n_categories = 4

let category_index = function
  | App -> 0
  | Barrier_fast -> 1
  | Barrier_slow -> 2
  | Card_mark -> 3

let categories = [ App; Barrier_fast; Barrier_slow; Card_mark ]

let category_name = function
  | App -> "app"
  | Barrier_fast -> "barrier-fast"
  | Barrier_slow -> "barrier-slow"
  | Card_mark -> "card-mark"

type t = {
  mutable mutator_work : int;
  mutable collector_work : int;
  mutable stall_work : int;
  (* Attribution side tables: every charge above is simultaneously binned
     by the collector's current phase (collector charges) or by mutator
     category (mutator charges), so the split always sums exactly to the
     headline counters.  Plain array increments — no allocation, and no
     change to any total the experiments report. *)
  mutable phase : int;
  by_phase : int array;
  by_category : int array;
}

let create () =
  {
    mutator_work = 0;
    collector_work = 0;
    stall_work = 0;
    phase = 0;
    by_phase = Array.make n_phases 0;
    by_category = Array.make n_categories 0;
  }

let mutator t n =
  t.mutator_work <- t.mutator_work + n;
  t.by_category.(0) <- t.by_category.(0) + n

let mutator_cat t c n =
  t.mutator_work <- t.mutator_work + n;
  let i = category_index c in
  t.by_category.(i) <- t.by_category.(i) + n

let collector t n =
  t.collector_work <- t.collector_work + n;
  t.by_phase.(t.phase) <- t.by_phase.(t.phase) + n

let stall t n = t.stall_work <- t.stall_work + n

let set_phase t p = t.phase <- phase_index p
let current_phase t = List.nth phases t.phase

let mutator_work t = t.mutator_work
let collector_work t = t.collector_work
let stall_work t = t.stall_work

let phase_work t p = t.by_phase.(phase_index p)
let category_work t c = t.by_category.(category_index c)

let elapsed_multi t = t.mutator_work + t.collector_work + t.stall_work

(* On a uniprocessor a stalled mutator leaves the only CPU to the
   collector, but nothing else makes progress, so stalls weigh double. *)
let elapsed_uni t = t.mutator_work + t.collector_work + (2 * t.stall_work)

(* Fold a per-mutator ledger (real-domains substrate) into the shared
   one.  Work adds linearly, so the merged totals equal what a single
   shared ledger would have accumulated without the races. *)
let merge_into ~src ~dst =
  dst.mutator_work <- dst.mutator_work + src.mutator_work;
  dst.collector_work <- dst.collector_work + src.collector_work;
  dst.stall_work <- dst.stall_work + src.stall_work;
  for i = 0 to n_phases - 1 do
    dst.by_phase.(i) <- dst.by_phase.(i) + src.by_phase.(i)
  done;
  for i = 0 to n_categories - 1 do
    dst.by_category.(i) <- dst.by_category.(i) + src.by_category.(i)
  done

let reset t =
  t.mutator_work <- 0;
  t.collector_work <- 0;
  t.stall_work <- 0;
  t.phase <- 0;
  Array.fill t.by_phase 0 n_phases 0;
  Array.fill t.by_category 0 n_categories 0

(* Calibrated against the paper's measured ratios (Figures 11, 13, 14):
   tracing one object costs ~0.68 us (226 cycles on the 332 MHz PPC) ~ 2-3
   allocation iterations; sweeping costs ~3 ns per heap byte; the write
   barrier is a handful of instructions.  Units are ~10 ns. *)
let c_alloc = 6
let c_store = 1
let c_load = 1
let c_compute = 1
let c_mark_card = 1
let c_mark_gray = 3
let c_barrier_check = 1
let c_cooperate = 1
let c_handshake = 4
let c_scan_slot = 6
let c_trace_obj = 25
let c_card_visit = 4
let c_card_obj = 2
let c_sweep_block = 4
let c_free = 2
let c_root = 2
let c_card_miss = 3
let c_remset_test = 1
let c_remset_append = 2
