(** The heap observatory — periodic heap censuses into the state's
    {!Sampler} series.

    {!maybe_sample} is the hook planted on the simulator's busiest
    paths (allocation, application work, the write barrier, the
    collector's pacing tick); while the sampler is disarmed it costs
    two loads and a compare.  Once armed ({!Sampler.configure}), a
    census row is taken each time {!Cost.elapsed_multi} crosses the
    next cadence threshold, whichever side of the simulation gets there
    first.

    A census is strictly out of band: it only reads (heap walk, side
    tables, counters, optionally the reachability {!Oracle}), charges
    no cost, touches no pages and never yields — so arming the sampler
    cannot change a run's schedule or results (digest-pinned). *)

val maybe_sample : State.t -> unit
(** Take a census iff sampling is armed and the cadence interval has
    elapsed since the last row.  Simulator only: under the domains
    substrate the unsynchronised heap walk would race mutator cache
    refills, so this is a no-op there — see {!phase_sample}. *)

val phase_sample : State.t -> unit
(** Domains-substrate census hook, called by the collector at cycle
    segment boundaries (cycle start, after the card scan, after the
    trace, after the sweep): samples iff armed and the cadence interval
    — wall-clock microseconds on this substrate — has elapsed, under
    the heap lock so the walk cannot race a mutator refill.  No-op on
    the simulator. *)

val sample_now : State.t -> unit
(** Take a census unconditionally (used for final-snapshot rows and by
    tests; works even while the sampler is disarmed). *)
