type t = {
  lines : int array; (* tag per set; -1 = empty *)
  mask : int;
  mutable hits : int;
  mutable misses : int;
}

let cards_per_line = 64
let line_shift = Otfgc_support.Bits.log2_exact cards_per_line

let create ?(n_lines = 64) () =
  if not (Otfgc_support.Bits.is_pow2 n_lines) then
    invalid_arg "Card_cache.create: n_lines must be a positive power of two";
  { lines = Array.make n_lines (-1); mask = n_lines - 1; hits = 0; misses = 0 }

let access t card_index =
  let line = card_index lsr line_shift in
  let set = line land t.mask in
  if t.lines.(set) = line then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.lines.(set) <- line;
    t.misses <- t.misses + 1;
    false
  end

let hits t = t.hits
let misses t = t.misses
