(** Deterministic work-unit cost model.

    The paper measures elapsed time on a dedicated machine whose CPUs are
    kept saturated (four copies of each application on the 4-way SMP), so
    elapsed time is proportional to total CPU work consumed by mutators
    plus collector.  The simulator makes that quantity explicit: every
    mutator action, barrier path and collector step adds a fixed number of
    work units to a ledger.  Experiments compare ledgers, never wall-clock.

    Two derived "elapsed time" metrics (see DESIGN.md):
    - multiprocessor: [mutator + collector] work (all CPUs busy, so
      collector cycles are paid for);
    - uniprocessor: the same plus the allocation-stall work (a mutator
      spinning on an exhausted heap while the collector runs serially
      costs real time on one CPU). *)

type t

val create : unit -> t

(** {2 Attribution axes}

    Every collector charge is additionally binned under the phase the
    collector declared via {!set_phase}, and every mutator charge under a
    category chosen at the charge site, so telemetry can answer "where
    inside a cycle does the work go" without changing any total: the
    per-phase (per-category) sums equal {!collector_work}
    ({!mutator_work}) by construction.  Binning is a single array
    increment — allocation-free and always on. *)

type phase = Idle | Clear | Handshake | Card_scan | Trace | Sweep

val phases : phase list
(** All phases, in {!phase_index} order. *)

val phase_name : phase -> string
val phase_index : phase -> int

type category = App | Barrier_fast | Barrier_slow | Card_mark
(** Mutator work classes: application progress (compute, raw loads and
    stores, allocation fast path), the barrier's always-on checks and
    handshake polls, the barrier's shading slow path (graying values in
    the sync window or while tracing, root marking at the third
    handshake), and inter-generational recording (card dirtying or
    remembered-set appends, including their cache-miss surcharges).
    Stalls keep their own headline counter ({!stall_work}). *)

val categories : category list
val category_name : category -> string

(** {2 Charging} *)

val mutator : t -> int -> unit
(** Work performed by application code, attributed to {!App}. *)

val mutator_cat : t -> category -> int -> unit
(** Work performed by application code, attributed to the given class. *)

val collector : t -> int -> unit
(** Work performed by the collector thread (attributed to the current
    phase). *)

val stall : t -> int -> unit
(** Mutator cycles burned waiting for memory. *)

val set_phase : t -> phase -> unit
(** Declare the collector phase subsequent collector charges belong to.
    Only the collector calls this. *)

val current_phase : t -> phase

(** {2 Reading} *)

val mutator_work : t -> int
val collector_work : t -> int
val stall_work : t -> int

val phase_work : t -> phase -> int
(** Collector work charged under a phase; sums to {!collector_work}. *)

val category_work : t -> category -> int
(** Mutator work charged under a category; sums to {!mutator_work}. *)

val elapsed_multi : t -> int
(** Saturated-SMP elapsed-time proxy: mutator + collector + stall work
    (the benchmark copy's clock keeps running while its mutator stalls,
    even though other copies use the CPU). *)

val elapsed_uni : t -> int
(** Uniprocessor elapsed-time proxy: stalls weigh double — nothing else
    makes progress while the only CPU waits on the collector. *)

val reset : t -> unit
(** Zero the ledger (end-of-warmup measurement reset). *)

val merge_into : src:t -> dst:t -> unit
(** Add every counter of [src] into [dst] ([src] unchanged).  The
    real-domains substrate gives each mutator its own ledger to avoid
    racy increments and folds them into the shared one at end of run. *)

(** {2 Cost constants}

    Rough relative magnitudes; what matters for the reproduced figures is
    that they are identical across collector variants. *)

(* allocation fast path *)
val c_alloc : int

(* raw pointer store *)
val c_store : int

val c_load : int

(* one unit of pure application work *)
val c_compute : int

(* write barrier: dirty a card *)
val c_mark_card : int

(* write barrier or collector: shade an object *)
val c_mark_gray : int

(* write barrier: status/phase tests *)
val c_barrier_check : int

(* handshake poll *)
val c_cooperate : int

(* collector: post a handshake, per mutator *)
val c_handshake : int

(* trace: examine one slot *)
val c_scan_slot : int

(* trace: per-object overhead *)
val c_trace_obj : int

(* card scan: per dirty card *)
val c_card_visit : int

(* card scan: per object examined *)
val c_card_obj : int

(* sweep: per block *)
val c_sweep_block : int

(* sweep: reclaim one object *)
val c_free : int

(* root marking, per root *)
val c_root : int

val c_card_miss : int
(** Extra mutator cost when a card-table store misses the {!Card_cache} —
    the locality effect behind the card-size tradeoff of Section 8.5.3. *)

(* remembered-set barrier: dedup-flag test / buffer append *)
val c_remset_test : int
val c_remset_append : int
