(** Toy cache model for card-table accesses by the write barrier.

    Section 8.5.3 of the paper attributes part of the card-size tradeoff to
    mutator locality: every pointer store touches one card-table byte, so a
    large table (small cards) accessed at scattered addresses costs cache
    misses, while a small table (large cards) stays resident.  Work-unit
    costs alone cannot express this, so the runtime charges an extra miss
    penalty determined by this direct-mapped cache of card-table lines
    (64 card bytes per line, like a 64-byte cache line). *)

type t

val create : ?n_lines:int -> unit -> t
(** Direct-mapped cache with [n_lines] lines (default 64, must be a power
    of two). *)

val access : t -> int -> bool
(** [access t card_index] simulates touching the card-table byte for the
    given card; returns [true] on a hit, [false] on a miss (and installs
    the line). *)

val hits : t -> int
val misses : t -> int
