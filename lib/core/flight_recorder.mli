(** Flight recorder for the domains substrate: lock-free, per-domain,
    bounded rings of monotonic-clock events (collector phase spans,
    handshake request->ack pairs, allocation stalls, steal attempts,
    block-pool lock waits, sampled safepoint polls), drained post-run
    into the Perfetto trace, the contention profile and the SLO report.

    Each ring has exactly one writer — the domain it belongs to — and is
    read only after the run, so recording is four plain array stores
    plus a clock read.  A full ring overwrites its oldest event and
    counts the loss.  Disarmed (the default, and always under the
    simulator), every record site reduces to a single option/bool check:
    the recorder is out of band by construction and the sim digest guard
    never sees it.  See DESIGN.md §12. *)

type kind =
  | Phase  (** collector phase span; payload = [Cost.phase_index] *)
  | Cycle  (** whole collection cycle; payload = 0 partial / 1 full *)
  | Handshake  (** posted->complete span; payload = [Status.index] *)
  | Ack  (** mutator adopted a posted status; payload = [Status.index] *)
  | Poll  (** sampled safepoint poll; payload = polls so far *)
  | Stall  (** allocation stall span; payload = mutator id *)
  | Lock_wait  (** block-pool class lock wait; payload = size class *)
  | Steal  (** steal attempt span; payload = 1 hit / 0 miss *)
  | Idle  (** trace worker parked out of work; payload = 0 *)

val kind_name : kind -> string

type ring
(** A single-writer bounded event ring, bound to one Perfetto track. *)

type event = {
  track : string;
  tid : int;
  kind : kind;
  a : int;
  t0_ns : int;
  dur_ns : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Disarmed recorder; [capacity] is events per ring (default 16384). *)

val arm : t -> unit
(** Idempotent.  Creates the collector and handshake rings; from then on
    [new_ring] hands out per-domain rings.  Call before any domain that
    should record starts running. *)

val armed : t -> bool
val now_ns : unit -> int

(** {2 Track ids (Perfetto [tid] scheme)} *)

val collector_tid : int
val mutator_tid : int -> int
val worker_tid : int -> int
(** Helper GC worker [wid >= 1]; high band, disjoint from mutators. *)

val handshake_tid : int
(** Dedicated track: handshake spans straddle collector phase spans, so
    they cannot live on the collector track without breaking nesting. *)

val new_ring : t -> track:string -> tid:int -> ring option
(** Fresh ring for one domain, or [None] while disarmed.  Registration
    takes a mutex; recording into the result never does. *)

val collector_ring : t -> ring option
val handshake_ring : t -> ring option

(** {2 Recording (single-writer per ring, wait-free)} *)

val span : ring -> kind -> a:int -> t0:int -> t1:int -> unit
val instant : ring -> kind -> a:int -> at:int -> unit

val poll_sample_interval : int
(** Every [poll_sample_interval]-th counted poll lands in the ring. *)

val poll : ring -> unit
(** Count a safepoint poll; every {!poll_sample_interval}-th also
    records a [Poll] instant (the only one that reads the clock). *)

val note_handshake_posted : t -> unit
(** Collector only: stamp the open handshake's posted time. *)

val note_handshake_completed : t -> status:int -> unit
(** Collector only: close the open handshake span on the handshake
    track; [status] is the posted [Status.index]. *)

(** {2 Draining (post-run, writers quiescent)} *)

val events : t -> event list
(** Every surviving event from every ring, merged and stably sorted by
    start timestamp (so the merged stream is monotone in [t0_ns]). *)

val dropped : t -> int
(** Events lost to ring overflow, summed over all rings. *)

val total_polls : t -> int

val tracks : t -> (string * int) list
(** Registered [(track name, tid)] pairs, sorted by tid. *)
