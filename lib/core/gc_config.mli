(** Collector configuration: which algorithm variant runs and how
    collections are triggered.

    The three variants are the ones the paper compares:
    - {!Non_generational}: the DLG on-the-fly mark-sweep collector with the
      black/white color toggle retrofitted (Remark 5.1) — the baseline of
      every experiment;
    - {!Generational}: the paper's main collector (Sections 3–5): logical
      generations (black = old), card marking, the yellow allocation color
      and the allocation/clear color toggle, simple promotion policy
      (promoted after surviving one collection);
    - {!Generational_aging}: the aging variant (Section 6, Figures 4–6)
      with a tenuring threshold. *)

type mode =
  | Non_generational
  | Generational
  | Generational_aging of { oldest_age : int }
      (** Objects whose age reaches [oldest_age] are tenured.  The paper
          evaluates thresholds 2, 4, 6, 8 and 10 (Figures 18–20); objects
          are born with age 0 and aged at each sweep they survive, so
          [oldest_age = 1] behaves like the simple policy. *)
  | Generational_adaptive
      (** Section 6's "dynamic policies could easily be implemented": the
          aging machinery with a tenuring threshold adjusted at run time
          from each partial collection's young survival rate. *)

type intergen =
  | Card_marking
      (** the paper's choice (Section 3.1): dirty bits at card
          granularity, scanned and cleared by the collector *)
  | Remembered_set
      (** the alternative the paper weighs and rejects for lack of a
          header bit: exact per-object remembering with a dedup flag —
          implemented here as an ablation (simple promotion only) *)

type t = {
  mode : mode;
  intergen : intergen;
  young_bytes : int;
      (** Partial-collection trigger: a partial collection is requested
          once this many bytes have been allocated since the last
          collection (Section 3.3).  Ignored by [Non_generational]. *)
  full_trigger_fraction : float;
      (** A (full) collection is requested when allocated bytes exceed this
          fraction of current capacity — the paper's "heap almost full",
          identical with and without generations. *)
  grow_headroom_fraction : float;
      (** After a collection (or on allocation failure) the heap grows when
          free space is below this fraction of capacity. *)
  naive_card_clear : bool;
      (** Use the naive 2-step card-clearing protocol instead of the 3-step
          protocol of Section 7.2 — deliberately racy; exists so tests can
          demonstrate the race the paper describes.  Only meaningful for
          [Generational_aging]. *)
}

val default : t
(** [Generational] with card marking, 512 KB young generation, full
    trigger at 0.75, growth headroom 0.25, 3-step card clearing. *)

val non_generational : t
val generational : ?young_bytes:int -> ?intergen:intergen -> unit -> t
val aging : ?young_bytes:int -> oldest_age:int -> unit -> t
val adaptive : ?young_bytes:int -> unit -> t

val mode_name : mode -> string
val intergen_name : intergen -> string

val validate : t -> unit
(** Reject unsupported combinations (remembered sets with aging). *)

val is_generational : mode -> bool
