type t = { mutable items : int list; mutable size : int; mutable max_size : int }

let create () = { items = []; size = 0; max_size = 0 }

let push t x =
  t.items <- x :: t.items;
  t.size <- t.size + 1;
  if t.size > t.max_size then t.max_size <- t.size

let pop t =
  match t.items with
  | [] -> None
  | x :: rest ->
      t.items <- rest;
      t.size <- t.size - 1;
      Some x

let is_empty t = t.items = []

let clear t =
  t.items <- [];
  t.size <- 0

let size t = t.size
let max_size t = t.max_size
