(* Growable int-array stack.  The previous representation was a cons-cell
   stack, which allocated one minor-heap cell per shaded object; pushes
   and pops are now stores into a flat buffer that only the occasional
   doubling reallocates.  LIFO order is identical, so trace order — and
   therefore every simulated figure — is unchanged. *)

type t = { mutable buf : int array; mutable size : int; mutable max_size : int }

let create () = { buf = Array.make 64 0; size = 0; max_size = 0 }

let push t x =
  let n = t.size in
  if n = Array.length t.buf then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.buf 0 bigger 0 n;
    t.buf <- bigger
  end;
  Array.unsafe_set t.buf n x;
  t.size <- n + 1;
  if t.size > t.max_size then t.max_size <- t.size

let pop t =
  if t.size = 0 then None
  else begin
    let n = t.size - 1 in
    t.size <- n;
    Some (Array.unsafe_get t.buf n)
  end

let is_empty t = t.size = 0
let clear t = t.size <- 0
let size t = t.size
let max_size t = t.max_size
