(* Growable int-array stack.  The previous representation was a cons-cell
   stack, which allocated one minor-heap cell per shaded object; pushes
   and pops are now stores into a flat buffer that only the occasional
   doubling reallocates.  LIFO order is identical, so trace order — and
   therefore every simulated figure — is unchanged.

   Under the real-domains substrate mutators and the collector push and
   pop concurrently, so the driver arms a mutex ([set_locked]); the
   cooperative substrate leaves it off and pays nothing.  The mutex also
   carries the publication ordering the DLG barrier needs: a mutator's
   plain color-byte write (shading) happens-before its push's unlock,
   which happens-before the collector's pop of the same entry.

   With multiple collector workers ([set_workers n], n > 1) the queue
   becomes sharded: each worker owns a Chase–Lev deque and pushes/pops
   it lock-free; other workers steal from the top.  Mutator barrier
   pushes still land in the shared mutex queue (mutators have no deque
   and need the mutex's publication edge anyway); workers drain the
   shared queue opportunistically when their own deque runs dry.  The
   deque's SC atomics provide the same publication edge for
   worker-to-worker transfers: a worker's plain color write
   happens-before its deque push's atomic bottom store, which
   happens-before a thief's top CAS claiming the entry. *)

module Ws_deque = Otfgc_sched.Ws_deque

type t = {
  mutable buf : int array;
  mutable size : int;
  mutable max_size : int;
  mutable lock : Mutex.t option;
  mutable deques : Ws_deque.t array; (* [||] unless set_workers n>1 *)
  worker_key : int Domain.DLS.key; (* -1 = not a collector worker *)
}

let create () =
  {
    buf = Array.make 64 0;
    size = 0;
    max_size = 0;
    lock = None;
    deques = [||];
    worker_key = Domain.DLS.new_key (fun () -> -1);
  }

let set_locked t v =
  t.lock <- (if v then Some (Mutex.create ()) else None)

let set_workers t n =
  t.deques <- (if n > 1 then Array.init n (fun _ -> Ws_deque.create ()) else [||])

let n_workers t = Array.length t.deques
let set_worker_id t wid = Domain.DLS.set t.worker_key wid
let worker_id t = Domain.DLS.get t.worker_key

let push_unlocked t x =
  let n = t.size in
  if n = Array.length t.buf then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.buf 0 bigger 0 n;
    t.buf <- bigger
  end;
  Array.unsafe_set t.buf n x;
  t.size <- n + 1;
  if t.size > t.max_size then t.max_size <- t.size

let pop_unlocked t =
  if t.size = 0 then None
  else begin
    let n = t.size - 1 in
    t.size <- n;
    Some (Array.unsafe_get t.buf n)
  end

let push_shared t x =
  match t.lock with
  | None -> push_unlocked t x
  | Some l ->
      Mutex.lock l;
      push_unlocked t x;
      Mutex.unlock l

let push t x =
  if Array.length t.deques = 0 then push_shared t x
  else
    let wid = Domain.DLS.get t.worker_key in
    if wid >= 0 then Ws_deque.push t.deques.(wid) x else push_shared t x

let pop t =
  match t.lock with
  | None -> pop_unlocked t
  | Some l ->
      Mutex.lock l;
      let r = pop_unlocked t in
      Mutex.unlock l;
      r

let pop_local t ~w = Ws_deque.pop t.deques.(w)
let steal t ~victim = Ws_deque.steal t.deques.(victim)

let is_empty t =
  let shared_empty =
    match t.lock with
    | None -> t.size = 0
    | Some l ->
        Mutex.lock l;
        let r = t.size = 0 in
        Mutex.unlock l;
        r
  in
  shared_empty && Array.for_all Ws_deque.is_empty t.deques

let all_empty = is_empty

let clear t =
  (match t.lock with
  | None -> t.size <- 0
  | Some l ->
      Mutex.lock l;
      t.size <- 0;
      Mutex.unlock l);
  Array.iter Ws_deque.clear t.deques

let size t =
  t.size + Array.fold_left (fun acc d -> acc + Ws_deque.size d) 0 t.deques

let max_size t =
  t.max_size + Array.fold_left (fun acc d -> acc + Ws_deque.max_size d) 0 t.deques
