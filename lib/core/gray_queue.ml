(* Growable int-array stack.  The previous representation was a cons-cell
   stack, which allocated one minor-heap cell per shaded object; pushes
   and pops are now stores into a flat buffer that only the occasional
   doubling reallocates.  LIFO order is identical, so trace order — and
   therefore every simulated figure — is unchanged.

   Under the real-domains substrate mutators and the collector push and
   pop concurrently, so the driver arms a mutex ([set_locked]); the
   cooperative substrate leaves it off and pays nothing.  The mutex also
   carries the publication ordering the DLG barrier needs: a mutator's
   plain color-byte write (shading) happens-before its push's unlock,
   which happens-before the collector's pop of the same entry. *)

type t = {
  mutable buf : int array;
  mutable size : int;
  mutable max_size : int;
  mutable lock : Mutex.t option;
}

let create () = { buf = Array.make 64 0; size = 0; max_size = 0; lock = None }

let set_locked t v =
  t.lock <- (if v then Some (Mutex.create ()) else None)

let push_unlocked t x =
  let n = t.size in
  if n = Array.length t.buf then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.buf 0 bigger 0 n;
    t.buf <- bigger
  end;
  Array.unsafe_set t.buf n x;
  t.size <- n + 1;
  if t.size > t.max_size then t.max_size <- t.size

let pop_unlocked t =
  if t.size = 0 then None
  else begin
    let n = t.size - 1 in
    t.size <- n;
    Some (Array.unsafe_get t.buf n)
  end

let push t x =
  match t.lock with
  | None -> push_unlocked t x
  | Some l ->
      Mutex.lock l;
      push_unlocked t x;
      Mutex.unlock l

let pop t =
  match t.lock with
  | None -> pop_unlocked t
  | Some l ->
      Mutex.lock l;
      let r = pop_unlocked t in
      Mutex.unlock l;
      r

let is_empty t =
  match t.lock with
  | None -> t.size = 0
  | Some l ->
      Mutex.lock l;
      let r = t.size = 0 in
      Mutex.unlock l;
      r

let clear t =
  match t.lock with
  | None -> t.size <- 0
  | Some l ->
      Mutex.lock l;
      t.size <- 0;
      Mutex.unlock l

let size t = t.size
let max_size t = t.max_size
