(** Shared collector/mutator state — the memory both sides race on.

    One value of this type corresponds to the process-wide state of the
    paper's JVM: the heap and its side tables, the collector's posted
    status, the two toggling color names, the "collector is tracing" flag
    read by write barriers, the gray set, triggers, and the ledgers.

    The record is deliberately transparent: the collectors in this library
    are the paper's Figures 1–6 transliterated, and hiding every field
    behind accessors would only obscure the correspondence.  Outside code
    should treat it as read-only and go through {!Runtime}.

    The fields both sides race on are [Atomic.t]: under the cooperative
    substrate an atomic get/set is one simulated step, exactly as the
    plain loads and stores were, so schedules — and every simulated
    figure — are unchanged; under the real-domains substrate they carry
    the inter-domain orderings DESIGN §10 spells out. *)

type gc_request = No_request | Want_partial | Want_full

type t = {
  heap : Otfgc_heap.Heap.t;
  cfg : Gc_config.t;
  (* handshake machinery *)
  status_c : Status.t Atomic.t;  (** status posted by the collector *)
  mutable mutator_slots : Mutator.t array;
      (** registry backing store; read through {!iter_mutators} (count
          first, then the array — the publication order) *)
  n_mutators : int Atomic.t;
  mutable globals : int list;   (** global roots, marked by the collector *)
  (* colors *)
  mutable allocation_color : Otfgc_heap.Color.t;
      (** [Generational]/[Generational_aging]: the color newly created
          objects get ("yellow" while a cycle runs).  [Non_generational]:
          the mark color — what the trace recolors live objects to.
          Plain on purpose: only the collector writes it, and the
          handshake protocol bounds every mutator's staleness (DESIGN
          §10). *)
  mutable clear_color : Otfgc_heap.Color.t;
      (** the color the sweep reclaims *)
  (* phase flags, each written only by the collector *)
  tracing : bool Atomic.t;    (** the barrier's "Collector is tracing" *)
  sweeping : bool Atomic.t;   (** sweep in progress (create-color decision) *)
  collecting : bool Atomic.t; (** a collection cycle is in progress *)
  gc_request : gc_request Atomic.t;
  bytes_since_gc : int Atomic.t;
  shutdown : bool Atomic.t;
  (* instrumentation *)
  gray : Gray_queue.t;
  stats : Gc_stats.t;
  events : Event_log.t;  (** phase-transition log (off by default) *)
  telemetry : Telemetry.t;
      (** counters and latency histograms (histograms off by default) *)
  mutable cur_cycle : Gc_stats.cycle option;
  pages : Otfgc_heap.Page_set.t;
  cost : Cost.t;
  card_cache : Card_cache.t;
  remset_cache : Card_cache.t;
      (** locality model for the remembered set's dedup-flag table *)
  mutable tenure_threshold : int;
      (** survivals before tenure for [Generational_adaptive]; adjusted by
          the collector from each partial collection's survival rate *)
  mutable fine_grained : bool;
      (** yield inside barrier/shade micro-steps (on for race testing, off
          for long benchmark runs — see DESIGN.md) *)
  mutable collector_tick : int;
      (** work units accumulated since the collector last yielded; the
          collector yields once per ~[collector_speed] units so that
          simulated time advances proportionally to work on both sides *)
  mutable collector_speed : int;
      (** work units the collector performs per scheduling slot (default
          8, matching one mutator-operation's worth).  The scheduler gives
          every process equal slots — each thread owns a CPU — so when
          reproducing the paper's 4-way machine with more threads than
          CPUs, the driver raises this: the collector keeps a whole CPU
          while the mutators share what remains, making it ~N/3 times
          faster than each of N > 3 mutators. *)
  sampler : Sampler.t;
      (** census sampling cadence and series (off by default); driven by
          {!Observatory} from the runtime/collector sampling hooks *)
  recorder : Flight_recorder.t;
      (** per-domain wall-clock event rings (disarmed by default — one
          option check per record site; armed only on the domains
          substrate via [Runtime.arm_recorder]) *)
  (* real-domains substrate *)
  mutable parallel : bool;
      (** running on real domains; set once by the driver before any
          process starts *)
  heap_lock : Mutex.t;
      (** guards the space/free-list structure (block boundaries, kinds,
          free-list entries, allocation counters) in parallel mode *)
  reg_lock : Mutex.t;
      (** guards mutator registration against cycle starts *)
  par : Gc_par.t;
      (** multi-worker collection crew (inactive unless the driver arms
          it with [--gc-workers] > 1 on the domains substrate) *)
  pool : Block_pool.t;
      (** per-size-class pools of reserved blocks — the sharded middle
          tier of the domains allocation path *)
}

val create : Otfgc_heap.Heap.t -> Gc_config.t -> t
(** Fresh idle state: status [Async], allocation color {!Otfgc_heap.Color.C0},
    clear color [C1], nothing requested, cooperative substrate. *)

val step : t -> unit
(** Fine-grained scheduling point: yields iff [fine_grained] (a no-op or
    stress jitter under the domains substrate). *)

(** {2 Mutator registry} *)

val register_mutator : t -> Mutator.t -> unit
(** Append to the registry — O(1) amortised.  In parallel mode callers
    must hold [reg_lock]. *)

val iter_mutators : t -> (Mutator.t -> unit) -> unit
(** All registered mutators, in registration order; safe to call from any
    domain concurrently with registration. *)

val mutators : t -> Mutator.t list
(** {!iter_mutators} as a list. *)

val active_mutators : t -> Mutator.t list

val for_all_active_mutators : t -> (Mutator.t -> bool) -> bool
(** Allocation-free [List.for_all p (active_mutators t)] — the handshake
    completion poll, run once per wait iteration on the domains
    substrate. *)

val count_active_mutators : t -> int

(** {2 Parallel-mode helpers} *)

val lock_heap : t -> unit
(** Take [heap_lock] iff [parallel] (no-ops under the simulator, so the
    cooperative schedule is untouched). *)

val unlock_heap : t -> unit

val mcost : t -> Mutator.t -> Cost.t
(** The ledger mutator-context work is charged to: the shared ledger
    under the simulator (bit-identical to the historical behavior), the
    mutator's own under real domains. *)

val mtelemetry : t -> Mutator.t -> Telemetry.t
(** Likewise for telemetry counters/instruments hit from mutator code. *)

val now_units : t -> int
(** Timestamp for latency instruments: {!Cost.elapsed_multi} (simulated
    units) under the simulator, real microseconds under domains. *)

val young_color : t -> Otfgc_heap.Color.t -> bool
(** Whether an object of the given color belongs to the young generation
    under the simple promotion policy (i.e. is not black). *)
