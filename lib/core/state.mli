(** Shared collector/mutator state — the memory both sides race on.

    One value of this type corresponds to the process-wide state of the
    paper's JVM: the heap and its side tables, the collector's posted
    status, the two toggling color names, the "collector is tracing" flag
    read by write barriers, the gray set, triggers, and the ledgers.

    The record is deliberately transparent: the collectors in this library
    are the paper's Figures 1–6 transliterated, and hiding every field
    behind accessors would only obscure the correspondence.  Outside code
    should treat it as read-only and go through {!Runtime}. *)

type gc_request = No_request | Want_partial | Want_full

type t = {
  heap : Otfgc_heap.Heap.t;
  cfg : Gc_config.t;
  (* handshake machinery *)
  mutable status_c : Status.t;  (** status posted by the collector *)
  mutable mutators : Mutator.t list;
  mutable globals : int list;   (** global roots, marked by the collector *)
  (* colors *)
  mutable allocation_color : Otfgc_heap.Color.t;
      (** [Generational]/[Generational_aging]: the color newly created
          objects get ("yellow" while a cycle runs).  [Non_generational]:
          the mark color — what the trace recolors live objects to. *)
  mutable clear_color : Otfgc_heap.Color.t;
      (** the color the sweep reclaims *)
  (* phase flags, each written only by the collector *)
  mutable tracing : bool;     (** the barrier's "Collector is tracing" *)
  mutable sweeping : bool;    (** sweep in progress (create-color decision) *)
  mutable collecting : bool;  (** a collection cycle is in progress *)
  mutable gc_request : gc_request;
  mutable bytes_since_gc : int;
  mutable shutdown : bool;
  (* instrumentation *)
  gray : Gray_queue.t;
  stats : Gc_stats.t;
  events : Event_log.t;  (** phase-transition log (off by default) *)
  telemetry : Telemetry.t;
      (** counters and latency histograms (histograms off by default) *)
  mutable cur_cycle : Gc_stats.cycle option;
  pages : Otfgc_heap.Page_set.t;
  cost : Cost.t;
  card_cache : Card_cache.t;
  remset_cache : Card_cache.t;
      (** locality model for the remembered set's dedup-flag table *)
  mutable tenure_threshold : int;
      (** survivals before tenure for [Generational_adaptive]; adjusted by
          the collector from each partial collection's survival rate *)
  mutable fine_grained : bool;
      (** yield inside barrier/shade micro-steps (on for race testing, off
          for long benchmark runs — see DESIGN.md) *)
  mutable collector_tick : int;
      (** work units accumulated since the collector last yielded; the
          collector yields once per ~[collector_speed] units so that
          simulated time advances proportionally to work on both sides *)
  mutable collector_speed : int;
      (** work units the collector performs per scheduling slot (default
          8, matching one mutator-operation's worth).  The scheduler gives
          every process equal slots — each thread owns a CPU — so when
          reproducing the paper's 4-way machine with more threads than
          CPUs, the driver raises this: the collector keeps a whole CPU
          while the mutators share what remains, making it ~N/3 times
          faster than each of N > 3 mutators. *)
  sampler : Sampler.t;
      (** census sampling cadence and series (off by default); driven by
          {!Observatory} from the runtime/collector sampling hooks *)
}

val create : Otfgc_heap.Heap.t -> Gc_config.t -> t
(** Fresh idle state: status [Async], allocation color {!Otfgc_heap.Color.C0},
    clear color [C1], nothing requested. *)

val step : t -> unit
(** Fine-grained scheduling point: yields iff [fine_grained]. *)

val active_mutators : t -> Mutator.t list

val young_color : t -> Otfgc_heap.Color.t -> bool
(** Whether an object of the given color belongs to the young generation
    under the simple promotion policy (i.e. is not black). *)
