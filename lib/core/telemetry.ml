module Histogram = Otfgc_support.Histogram

type t = {
  mutable enabled : bool;
  (* event counters: bare int increments, always on *)
  mutable barrier_updates : int;
  mutable yellow_fires : int;
  mutable promotions : int;
  mutable dirty_card_finds : int;
  mutable handshake_acks : int;
  mutable stalls : int;
  mutable card_marks : int;
  mutable remset_records : int;
  (* parallel-collection counters *)
  mutable steals : int;
  mutable steal_failures : int;
  lock_waits : int array; (* per allocation size class; last slot = overflow *)
  mutable trace_workers : int; (* gauge: widest trace-phase worker count *)
  (* latency instruments, recorded only when enabled *)
  handshake_latency : Histogram.t array;  (* indexed by Status.index *)
  stall_latency : Histogram.t;
  cycle_progress : Histogram.t;
  mutable handshake_posted_at : int;
}

(* one per alloc-cache size class (64) plus an overflow slot for the
   ceiling class at coarse granules *)
let n_lock_classes = 65

let create () =
  {
    enabled = false;
    barrier_updates = 0;
    yellow_fires = 0;
    promotions = 0;
    dirty_card_finds = 0;
    handshake_acks = 0;
    stalls = 0;
    card_marks = 0;
    remset_records = 0;
    steals = 0;
    steal_failures = 0;
    lock_waits = Array.make n_lock_classes 0;
    trace_workers = 0;
    handshake_latency = Array.init 3 (fun _ -> Histogram.create ());
    stall_latency = Histogram.create ();
    cycle_progress = Histogram.create ();
    handshake_posted_at = 0;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let reset t =
  t.barrier_updates <- 0;
  t.yellow_fires <- 0;
  t.promotions <- 0;
  t.dirty_card_finds <- 0;
  t.handshake_acks <- 0;
  t.stalls <- 0;
  t.card_marks <- 0;
  t.remset_records <- 0;
  t.steals <- 0;
  t.steal_failures <- 0;
  Array.fill t.lock_waits 0 n_lock_classes 0;
  t.trace_workers <- 0;
  Array.iter Histogram.clear t.handshake_latency;
  Histogram.clear t.stall_latency;
  Histogram.clear t.cycle_progress;
  t.handshake_posted_at <- 0

(* Fold a per-mutator telemetry (real-domains substrate) into the shared
   one: counters add, histograms merge sample streams. *)
let merge_into ~src ~dst =
  dst.barrier_updates <- dst.barrier_updates + src.barrier_updates;
  dst.yellow_fires <- dst.yellow_fires + src.yellow_fires;
  dst.promotions <- dst.promotions + src.promotions;
  dst.dirty_card_finds <- dst.dirty_card_finds + src.dirty_card_finds;
  dst.handshake_acks <- dst.handshake_acks + src.handshake_acks;
  dst.stalls <- dst.stalls + src.stalls;
  dst.card_marks <- dst.card_marks + src.card_marks;
  dst.remset_records <- dst.remset_records + src.remset_records;
  dst.steals <- dst.steals + src.steals;
  dst.steal_failures <- dst.steal_failures + src.steal_failures;
  for i = 0 to n_lock_classes - 1 do
    dst.lock_waits.(i) <- dst.lock_waits.(i) + src.lock_waits.(i)
  done;
  (* gauge, not a counter: the run's widest trace crew *)
  if src.trace_workers > dst.trace_workers then
    dst.trace_workers <- src.trace_workers;
  Array.iteri
    (fun i h -> Histogram.add_into ~src:h ~dst:dst.handshake_latency.(i))
    src.handshake_latency;
  Histogram.add_into ~src:src.stall_latency ~dst:dst.stall_latency;
  Histogram.add_into ~src:src.cycle_progress ~dst:dst.cycle_progress

(* counters *)
let hit_barrier t = t.barrier_updates <- t.barrier_updates + 1
let hit_yellow t = t.yellow_fires <- t.yellow_fires + 1
let add_promotions t n = t.promotions <- t.promotions + n
let hit_dirty_card t = t.dirty_card_finds <- t.dirty_card_finds + 1
let hit_ack t = t.handshake_acks <- t.handshake_acks + 1
let hit_stall t = t.stalls <- t.stalls + 1
let hit_card_mark t = t.card_marks <- t.card_marks + 1
let hit_remset_record t = t.remset_records <- t.remset_records + 1
let add_steals t n = t.steals <- t.steals + n
let add_steal_failures t n = t.steal_failures <- t.steal_failures + n

let hit_lock_wait t ~cls =
  let i = if cls < 0 then 0 else Stdlib.min cls (n_lock_classes - 1) in
  t.lock_waits.(i) <- t.lock_waits.(i) + 1

let note_trace_workers t n =
  if n > t.trace_workers then t.trace_workers <- n

let barrier_updates t = t.barrier_updates
let yellow_fires t = t.yellow_fires
let promotions t = t.promotions
let dirty_card_finds t = t.dirty_card_finds
let handshake_acks t = t.handshake_acks
let stalls t = t.stalls
let card_marks t = t.card_marks
let remset_records t = t.remset_records
let steals t = t.steals
let steal_failures t = t.steal_failures
let lock_waits t = Array.copy t.lock_waits
let lock_waits_total t = Array.fold_left ( + ) 0 t.lock_waits
let trace_workers t = t.trace_workers

(* instruments *)
let handshake_posted t ~at = if t.enabled then t.handshake_posted_at <- at

let handshake_completed t status ~at =
  if t.enabled then
    Histogram.record t.handshake_latency.(Status.index status)
      (at - t.handshake_posted_at)

let record_stall t duration =
  if t.enabled then Histogram.record t.stall_latency duration

let record_progress t units =
  if t.enabled then Histogram.record t.cycle_progress units

let handshake_latency t status = t.handshake_latency.(Status.index status)
let stall_latency t = t.stall_latency
let cycle_progress t = t.cycle_progress
