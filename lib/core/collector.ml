module Heap = Otfgc_heap.Heap
module Space = Otfgc_heap.Space
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Age_table = Otfgc_heap.Age_table
module Page_set = Otfgc_heap.Page_set
module Remset = Otfgc_heap.Remset
module Layout = Otfgc_heap.Layout
module Substrate = Otfgc_sched.Substrate
open State

let mode_of st = st.cfg.Gc_config.mode

(* Internal tenuring threshold: the paper allocates objects "with age 1"
   and promotes at [oldest_age]; our age table starts at 0, so an object is
   old once it has survived [oldest_age - 1] collections.  The sweep
   promotes (keeps black, stops aging) when the current sweep is the
   object's (oldest_age - 1)-th survival, i.e. when age + 1 >= survivals
   needed; promoted objects are frozen at the age sentinel 255. *)
let survivals_to_tenure st =
  match mode_of st with
  | Gc_config.Generational_aging { oldest_age } -> Stdlib.max 1 (oldest_age - 1)
  | Gc_config.Generational_adaptive -> Stdlib.max 1 st.tenure_threshold
  | _ -> 1

(* Between collections, an object is old exactly when it is black: the
   sweep leaves black only on promoted objects and de-promotes everything
   else, whatever the threshold.  Figure 6 writes the test as
   "black && age = oldestAge", which is equivalent under a fixed
   threshold — but NOT under adaptive tenuring: after the threshold rises,
   earlier promotions sit at a lower age and the age-qualified test would
   skip them during the card scan, leaving their young children ungrayed
   (a reachable-object loss our seed-hunting property tests caught).  The
   color alone is the invariant. *)
let is_old st x = Color.equal (Heap.color st.heap x) Color.Black

(* ------------------------------------------------------------------ *)
(* MarkGray (Figure 1 and Figure 4)                                    *)
(* ------------------------------------------------------------------ *)

(* Figure 1: shade objects with the clear color and — in [Generational]
   mode when the calling mutator is in sync1/sync2 — objects with the
   allocation color (the "yellow exception" of Section 4, which protects
   yellow objects created in the window between the card scan and the color
   toggle).  Figure 4 (aging) and the non-generational DLG barrier shade
   the clear color only.  A scheduling point sits between the color load
   and the gray store: the paper's machine model only makes individual
   loads and stores atomic.  [tel] is the caller-context telemetry —
   per-mutator under real domains when a barrier shades, shared when the
   collector does. *)
let mark_gray st ~tel ~sync x =
  if x = Heap.nil then false
  else begin
    let c = Heap.color st.heap x in
    State.step st;
    let clearish = Color.equal c st.clear_color in
    let yellow =
      (not clearish) && sync
      && (match mode_of st with
         | Gc_config.Generational -> Color.equal c st.allocation_color
         | Gc_config.Non_generational | Gc_config.Generational_aging _
         | Gc_config.Generational_adaptive ->
             false)
    in
    if clearish || yellow then begin
      if yellow then Telemetry.hit_yellow tel;
      (* Shade, then publish.  Under real domains the color write is
         plain but the push's mutex release orders it before any
         collector pop (see Gray_queue); duplicate pushes from racing
         shaders are tolerated — the trace re-checks colors. *)
      Heap.set_color st.heap x Color.Gray;
      Gray_queue.push st.gray x;
      true
    end
    else false
  end

let charged_mark_gray st ~charge ~tel ~sync x =
  if mark_gray st ~tel ~sync x then charge Cost.c_mark_gray

(* Collector-side charge that also paces the collector process: one yield
   per ~8 work units, so scheduled time advances proportionally to the
   cost model on both sides — the collector owns a CPU and is not slower
   per unit of work than the mutators it runs beside.  (On the domains
   substrate the yield point is free — the hardware paces for real.) *)
let charge_tick st k =
  Cost.collector st.cost k;
  Observatory.maybe_sample st;
  st.collector_tick <- st.collector_tick + k;
  if st.collector_tick >= st.collector_speed then begin
    st.collector_tick <- 0;
    Substrate.yield ()
  end

(* Phase-transition and mutator-event log entry (no cost: observability
   must not perturb the schedule). *)
let emit st phase =
  Event_log.emit st.events ~at:(Cost.elapsed_multi st.cost) phase

(* ------------------------------------------------------------------ *)
(* MarkCard                                                            *)
(* ------------------------------------------------------------------ *)

(* Mutator side: dirty the card holding the object's header.  With 16-byte
   cards this is the paper's "object marking".  The card-cache model
   charges the locality cost of touching a scattered card table
   (Section 8.5.3) — a simulated-cost artifact, skipped under real domains
   where the hardware's own cache does the charging and the model's shared
   state would race. *)
let mutator_mark_card st ~cost ~tel x =
  let cards = Heap.cards st.heap in
  let idx = Card_table.card_of_addr cards x in
  let hit = if st.parallel then true else Card_cache.access st.card_cache idx in
  Telemetry.hit_card_mark tel;
  Cost.mutator_cat cost Cost.Card_mark
    (Cost.c_mark_card + if hit then 0 else Cost.c_card_miss);
  State.step st;
  Card_table.mark_card cards idx

(* Remembered-set alternative (Section 3.1 ablation): remember the exact
   object instead of dirtying its card.  The dedup flag sits in a side
   table with the same locality concerns as the card table. *)
let mutator_record_remset st ~cost ~tel x =
  let rs = Heap.remset st.heap in
  let hit =
    if st.parallel then true
    else Card_cache.access st.remset_cache (Layout.granule_index x)
  in
  Cost.mutator_cat cost Cost.Card_mark
    (Cost.c_remset_test + if hit then 0 else Cost.c_card_miss);
  State.step st;
  if Remset.record rs x then begin
    Telemetry.hit_remset_record tel;
    Cost.mutator_cat cost Cost.Card_mark Cost.c_remset_append
  end

(* Inter-generational tracking as configured (simple promotion only). *)
let track_intergen st ~cost ~tel x =
  match st.cfg.Gc_config.intergen with
  | Gc_config.Card_marking -> mutator_mark_card st ~cost ~tel x
  | Gc_config.Remembered_set -> mutator_record_remset st ~cost ~tel x

(* ------------------------------------------------------------------ *)
(* The write barrier: Update (Figure 1 / Figure 4)                     *)
(* ------------------------------------------------------------------ *)

let update st m ~x ~i ~y =
  let cost = State.mcost st m in
  let tel = State.mtelemetry st m in
  Telemetry.hit_barrier tel;
  Cost.mutator_cat cost Cost.Barrier_fast Cost.c_barrier_check;
  Observatory.maybe_sample st;
  let charge = Cost.mutator_cat cost Cost.Barrier_slow in
  let in_sync = not (Status.equal (Mutator.status m) Status.Async) in
  (match mode_of st with
  | Gc_config.Non_generational ->
      (* DLG barrier: gray old and new values between the handshakes, gray
         the old value (deletion barrier) while the collector traces. *)
      if in_sync then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:true old;
        charged_mark_gray st ~charge ~tel ~sync:true y
      end
      else if Atomic.get st.tracing then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:false old
      end;
      State.step st;
      Heap.set_slot st.heap x i y;
      Cost.mutator cost Cost.c_store
  | Gc_config.Generational ->
      (* Figure 1: card marking only during async (Section 7.1); the
         sync1/sync2 graying of both values — including yellow ones via
         MarkGray's exception — covers inter-generational pointers created
         in that window. *)
      if in_sync then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:true old;
        charged_mark_gray st ~charge ~tel ~sync:true y
      end
      else if Atomic.get st.tracing then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:false old;
        track_intergen st ~cost ~tel x
      end
      else track_intergen st ~cost ~tel x;
      State.step st;
      Heap.set_slot st.heap x i y;
      Cost.mutator cost Cost.c_store
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      (* Figure 4: cards are marked in every phase, and strictly after the
         store — the ordering half of the Section 7.2 race argument.
         Under real domains the card mark is an atomic (SC) store, so the
         plain slot store above it cannot be reordered past it. *)
      if in_sync then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:true old;
        charged_mark_gray st ~charge ~tel ~sync:true y
      end
      else if Atomic.get st.tracing then begin
        let old = Heap.get_slot st.heap x i in
        State.step st;
        charged_mark_gray st ~charge ~tel ~sync:false old
      end;
      State.step st;
      Heap.set_slot st.heap x i y;
      Cost.mutator cost Cost.c_store;
      mutator_mark_card st ~cost ~tel x)

(* ------------------------------------------------------------------ *)
(* Cooperate (Figure 1)                                                *)
(* ------------------------------------------------------------------ *)

let cooperate st m =
  let cost = State.mcost st m in
  Cost.mutator_cat cost Cost.Barrier_fast Cost.c_cooperate;
  (* Flight recorder: count the safepoint poll (armed domains runs only;
     [ring] is [None] everywhere else, so this is one option check). *)
  (match Mutator.ring m with
  | Some r -> Flight_recorder.poll r
  | None -> ());
  if not (Status.equal (Mutator.status m) (Atomic.get st.status_c)) then begin
    let tel = State.mtelemetry st m in
    let target = Atomic.get st.status_c in
    if Status.equal (Mutator.status m) Status.Sync2 then
      (* Responding to the third handshake: mark own roots gray.  The
         mutator is still in sync2 here, so in [Generational] mode the
         yellow exception applies to its roots as well. *)
      Mutator.iter_roots m (fun r ->
          Cost.mutator_cat cost Cost.Barrier_slow Cost.c_root;
          State.step st;
          charged_mark_gray st
            ~charge:(Cost.mutator_cat cost Cost.Barrier_slow)
            ~tel ~sync:true r);
    State.step st;
    (* The ack: an atomic store, so under real domains the root-marking
       writes above are published to the collector's wait_handshake
       poll. *)
    Mutator.set_status m target;
    Telemetry.hit_ack tel;
    (match Mutator.ring m with
    | Some r ->
        Flight_recorder.instant r Flight_recorder.Ack
          ~a:(Status.index target)
          ~at:(Flight_recorder.now_ns ())
    | None -> ());
    if Event_log.enabled st.events then
      emit st (Event_log.Mutator_ack { mid = Mutator.id m; status = target })
  end

(* ------------------------------------------------------------------ *)
(* Create's color choice                                               *)
(* ------------------------------------------------------------------ *)

let allocation_color st =
  match mode_of st with
  | Gc_config.Non_generational ->
      (* Remark 5.1 baseline.  The create color must follow the phase as
         the *mutators* can witness it: before the third handshake a
         mutator's write barrier may not be active yet, so objects created
         then must get the clear color — they are protected by the root
         marking at the mutator's own third-handshake response (and by the
         sync-window barrier once it is active).  Only once every mutator
         has marked its roots (trace) — and through the sweep, whose
         end-of-cycle toggle makes the mark color the next clear color —
         do creations take the mark color.  Using a collector-side
         "cycle started" flag here instead loses objects: a mark-colored
         object created before the first handshake is never traced, and
         root marking does not shade it, so the clear chain hanging off it
         is reclaimed while reachable. *)
      if Atomic.get st.tracing || Atomic.get st.sweeping then
        st.allocation_color
      else st.clear_color
  | Gc_config.Generational | Gc_config.Generational_aging _
  | Gc_config.Generational_adaptive ->
      st.allocation_color

(* ------------------------------------------------------------------ *)
(* Handshakes (Figure 3)                                               *)
(* ------------------------------------------------------------------ *)

let post_handshake st s =
  Cost.set_phase st.cost Cost.Handshake;
  Cost.collector st.cost
    (Cost.c_handshake * (1 + State.count_active_mutators st));
  Substrate.yield ();
  (* The post is the release store every mutator's cooperate acquires:
     whatever the collector wrote before (color toggles, card clears) is
     visible to a mutator once it has adopted [s]. *)
  Atomic.set st.status_c s;
  (* The latency sample and the event share one timestamp, so the recorded
     latency equals the posted->complete event gap exactly. *)
  let at = State.now_units st in
  Telemetry.handshake_posted st.telemetry ~at;
  Flight_recorder.note_handshake_posted st.recorder;
  Event_log.emit st.events ~at (Event_log.Handshake_posted s)

let wait_handshake st =
  Substrate.wait_until (fun () ->
      let target = Atomic.get st.status_c in
      State.for_all_active_mutators st (fun m ->
          Status.equal (Mutator.status m) target));
  let at = State.now_units st in
  Telemetry.handshake_completed st.telemetry (Atomic.get st.status_c) ~at;
  Flight_recorder.note_handshake_completed st.recorder
    ~status:(Status.index (Atomic.get st.status_c));
  Event_log.emit st.events ~at
    (Event_log.Handshake_complete (Atomic.get st.status_c))

let switch_allocation_clear_colors st =
  (* Two separate stores, as in Figure 3; a mutator allocating between them
     is protected by root marking at the third handshake. *)
  let tmp = st.clear_color in
  st.clear_color <- st.allocation_color;
  State.step st;
  st.allocation_color <- tmp;
  emit st Event_log.Colors_toggled

(* ------------------------------------------------------------------ *)
(* ClearCards (Figure 3 and Figure 6)                                  *)
(* ------------------------------------------------------------------ *)

let cards_covering_capacity st =
  let cs = Card_table.card_size (Heap.cards st.heap) in
  (Heap.capacity st.heap + cs - 1) / cs

let touch_card_table_scan st n =
  let base = (Heap.layout st.heap).Layout.card_table_base in
  Page_set.touch_range st.pages base n

(* Figure 3 (simple promotion): clear every dirty card and gray the black
   (old) objects on it, seeding the partial trace with the sources of all
   potential inter-generational pointers.  Marks can be cleared
   unconditionally: every survivor is promoted, so surviving
   inter-generational pointers become intra-generational.

   The heap lock (parallel mode only) brackets each dirty card's object
   walk: [iter_objects_on_card] reads the block structure, which mutator
   cache refills may be splitting concurrently. *)
let clear_cards_simple st cycle =
  Cost.set_phase st.cost Cost.Card_scan;
  let heap = st.heap in
  let cards = Heap.cards heap in
  let n = cards_covering_capacity st in
  touch_card_table_scan st n;
  for card = 0 to n - 1 do
    (* reading the card table costs ~one unit per cache line *)
    if card land 63 = 0 then charge_tick st 1;
    if Card_table.is_dirty cards card then begin
      Telemetry.hit_dirty_card st.telemetry;
      cycle.Gc_stats.dirty_cards <- cycle.Gc_stats.dirty_cards + 1;
      charge_tick st Cost.c_card_visit;
      Card_table.clear_card cards card;
      State.step st;
      State.lock_heap st;
      Heap.iter_objects_on_card heap card (fun x ->
          charge_tick st Cost.c_card_obj;
          Page_set.touch_range st.pages x Layout.granule;
          State.step st;
          if Color.equal (Heap.color heap x) Color.Black then begin
            cycle.Gc_stats.intergen_scanned <-
              cycle.Gc_stats.intergen_scanned + 1;
            cycle.Gc_stats.card_scan_bytes <-
              cycle.Gc_stats.card_scan_bytes + Heap.size heap x;
            Page_set.touch_heap_object st.pages ~addr:x ~size:(Heap.size heap x);
            Page_set.touch_color st.pages x;
            Heap.set_color heap x Color.Gray;
            Gray_queue.push st.gray x;
            Cost.collector st.cost Cost.c_mark_gray
          end);
      State.unlock_heap st
    end
  done

(* Figure 6 (aging): scan the pointers of old objects on dirty cards, gray
   their targets, and keep the card dirty iff it still references a young
   object.  The default is the 3-step protocol of Section 7.2 — clear
   first, then scan, then re-mark — which tolerates a concurrent mutator
   store; [naive_card_clear] selects the broken check-then-clear ordering
   so tests can exhibit the race the paper describes. *)
let clear_cards_aging st cycle =
  Cost.set_phase st.cost Cost.Card_scan;
  let heap = st.heap in
  let cards = Heap.cards heap in
  let naive = st.cfg.Gc_config.naive_card_clear in
  let n = cards_covering_capacity st in
  touch_card_table_scan st n;
  for card = 0 to n - 1 do
    if card land 63 = 0 then charge_tick st 1;
    if Card_table.is_dirty cards card then begin
      Telemetry.hit_dirty_card st.telemetry;
      cycle.Gc_stats.dirty_cards <- cycle.Gc_stats.dirty_cards + 1;
      charge_tick st Cost.c_card_visit;
      if not naive then begin
        (* Step 1: clear the mark before checking. *)
        Card_table.clear_card cards card;
        State.step st
      end;
      (* Step 2: scan the objects on the card.  Old objects' young targets
         are grayed (they seed the partial trace).  Young objects' targets
         are NOT grayed — a dead young parent must not keep its children
         alive — but they do keep the card dirty: the parent may be
         promoted by this very cycle's sweep, turning its pointers
         inter-generational while its card mark would otherwise already be
         gone.  (Figure 6 only scans old objects; the accompanying text —
         "if no young object is referenced from a given card, the collector
         clears the card's mark" — requires this wider check, and the
         narrower one demonstrably loses objects: see test_props.ml.) *)
      let has_young = ref false in
      State.lock_heap st;
      Heap.iter_objects_on_card heap card (fun x ->
          charge_tick st Cost.c_card_obj;
          Page_set.touch_range st.pages x Layout.granule;
          Page_set.touch_age st.pages x;
          State.step st;
          let old = is_old st x in
          cycle.Gc_stats.card_scan_bytes <-
            cycle.Gc_stats.card_scan_bytes + Heap.size heap x;
          if old then begin
            cycle.Gc_stats.intergen_scanned <-
              cycle.Gc_stats.intergen_scanned + 1;
            Page_set.touch_heap_object st.pages ~addr:x ~size:(Heap.size heap x)
          end;
          let k = Heap.n_slots heap x in
          for i = 0 to k - 1 do
            charge_tick st Cost.c_scan_slot;
            let y = Heap.get_slot heap x i in
            State.step st;
            if y <> Heap.nil then begin
              if old then begin
                charged_mark_gray st ~charge:(Cost.collector st.cost)
                  ~tel:st.telemetry ~sync:false y;
                Page_set.touch_color st.pages y
              end;
              Page_set.touch_age st.pages y;
              if not (is_old st y) then has_young := true
            end
          done);
      State.unlock_heap st;
      (* Step 3: keep the mark consistent with what the scan found. *)
      if naive then begin
        if not !has_young then begin
          State.step st;
          Card_table.clear_card cards card
        end
      end
      else if !has_young then begin
        State.step st;
        Card_table.mark_card cards card;
        Cost.collector st.cost Cost.c_mark_card
      end
    end
  done

(* Remembered-set analogue of ClearCards (simple promotion): drain the
   exact set of recorded objects and gray the black ones; no card scans,
   no re-marking protocol — every surviving inter-generational pointer
   becomes intra-generational at the coming promotion, exactly as in the
   simple card algorithm. *)
let scan_remset_simple st cycle =
  Cost.set_phase st.cost Cost.Card_scan;
  let heap = st.heap in
  let entries = Remset.drain (Heap.remset heap) in
  cycle.Gc_stats.dirty_cards <- List.length entries;
  List.iter
    (fun x ->
      Telemetry.hit_dirty_card st.telemetry;
      charge_tick st Cost.c_card_obj;
      Page_set.touch_remset st.pages x;
      State.step st;
      (* entries can be stale: the recorded object may have died in the
         previous cycle (its dedup flag was dropped at free time) *)
      State.lock_heap st;
      if Heap.is_object heap x && Color.equal (Heap.color heap x) Color.Black
      then begin
        cycle.Gc_stats.intergen_scanned <- cycle.Gc_stats.intergen_scanned + 1;
        cycle.Gc_stats.card_scan_bytes <-
          cycle.Gc_stats.card_scan_bytes + Heap.size heap x;
        Page_set.touch_heap_object st.pages ~addr:x ~size:(Heap.size heap x);
        Page_set.touch_color st.pages x;
        Heap.set_color heap x Color.Gray;
        Gray_queue.push st.gray x;
        Cost.collector st.cost Cost.c_mark_gray
      end;
      State.unlock_heap st)
    entries

let clear_cards st cycle =
  match mode_of st with
  | Gc_config.Non_generational -> ()
  | Gc_config.Generational -> (
      match st.cfg.Gc_config.intergen with
      | Gc_config.Card_marking -> clear_cards_simple st cycle
      | Gc_config.Remembered_set -> scan_remset_simple st cycle)
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      clear_cards_aging st cycle

(* ------------------------------------------------------------------ *)
(* InitFullCollection (Figure 3 and Figure 6)                          *)
(* ------------------------------------------------------------------ *)

(* Recolor the old generation (black, plus any gray leftovers) to the
   allocation color so the imminent toggle exposes it to the trace and the
   sweep.  The simple algorithm also wipes the card table (all pointers
   become intra-generational); the aging algorithm keeps the dirty bits —
   old objects stay old through a full collection, so their
   inter-generational pointers remain relevant (Section 6).

   Parallel mode takes the heap lock per block step: refills split blocks
   ahead of the cursor, but a split only introduces boundaries and the
   end boundary of the current block survives, so the cursor advance
   stays valid across the unlock (the same argument the sweep relies
   on). *)
let init_full_collection st ~clear_card_marks =
  Cost.set_phase st.cost Cost.Clear;
  let heap = st.heap in
  let space = Heap.space heap in
  let addr = ref 0 in
  while !addr < Heap.capacity heap do
    charge_tick st 2;
    State.lock_heap st;
    (* header-to-header walk: the cursor is a block start by construction,
       so the bounds-check-free accessors apply *)
    let size = Space.unsafe_size space !addr in
    (if Space.unsafe_kind space !addr = Space.Allocated then begin
       Page_set.touch_color st.pages !addr;
       let c = Heap.color heap !addr in
       if Color.equal c Color.Black || Color.equal c Color.Gray then
         Heap.set_color heap !addr st.allocation_color
     end);
    State.unlock_heap st;
    addr := !addr + size
  done;
  if clear_card_marks then
    match st.cfg.Gc_config.intergen with
    | Gc_config.Card_marking ->
        let cards = Heap.cards heap in
        let n = cards_covering_capacity st in
        touch_card_table_scan st n;
        charge_tick st (1 + (n / 64));
        Card_table.clear_all cards
    | Gc_config.Remembered_set ->
        let rs = Heap.remset heap in
        charge_tick st (1 + (Remset.size rs / 8));
        Remset.clear rs

(* ------------------------------------------------------------------ *)
(* Trace (Figure 2 / Figure 5: MarkBlack)                              *)
(* ------------------------------------------------------------------ *)

let trace_target st =
  match mode_of st with
  | Gc_config.Non_generational ->
      st.allocation_color (* mark color; no persistent black generation *)
  | Gc_config.Generational | Gc_config.Generational_aging _
  | Gc_config.Generational_adaptive ->
      Color.Black

let mark_black st cycle x =
  let heap = st.heap in
  let target = trace_target st in
  if not (Color.equal (Heap.color heap x) target) then begin
    charge_tick st Cost.c_trace_obj;
    Page_set.touch_heap_object st.pages ~addr:x ~size:(Heap.size heap x);
    Page_set.touch_color st.pages x;
    let k = Heap.n_slots heap x in
    for i = 0 to k - 1 do
      charge_tick st Cost.c_scan_slot;
      let y = Heap.get_slot heap x i in
      State.step st;
      if y <> Heap.nil then begin
        charged_mark_gray st ~charge:(Cost.collector st.cost)
          ~tel:st.telemetry ~sync:false y;
        Page_set.touch_color st.pages y
      end
    done;
    State.step st;
    Heap.set_color heap x target;
    cycle.Gc_stats.objects_traced <- cycle.Gc_stats.objects_traced + 1;
    (* Simple promotion (Figure 2): blackening IS promotion — every traced
       survivor joins the old generation.  Aging modes promote in the
       sweep instead; the non-generational mark color is not a generation. *)
    match mode_of st with
    | Gc_config.Generational ->
        cycle.Gc_stats.promotions <- cycle.Gc_stats.promotions + 1
    | Gc_config.Non_generational | Gc_config.Generational_aging _
    | Gc_config.Generational_adaptive ->
        ()
  end

(* The gray set is a shared queue and every shading publishes into it
   atomically, so "the queue is empty" coincides with "no gray object
   exists", which by the snapshot argument of the DLG proof means the trace
   is complete.  Objects shaded by a mutator after this check are dead
   (every live object is already marked); they ride through the sweep as
   gray floating garbage and are normalised back to the allocation color
   there. *)
let trace st cycle =
  Cost.set_phase st.cost Cost.Trace;
  let running = ref true in
  while !running do
    charge_tick st 1;
    match Gray_queue.pop st.gray with
    | None -> running := false
    | Some x -> mark_black st cycle x
  done

(* ------------------------------------------------------------------ *)
(* Sweep (Figure 2 / Figure 5)                                         *)
(* ------------------------------------------------------------------ *)

let sweep st cycle =
  Cost.set_phase st.cost Cost.Sweep;
  let heap = st.heap in
  let space = Heap.space heap in
  let ages = Heap.ages heap in
  let tenure = survivals_to_tenure st in
  let addr = ref 0 in
  while !addr < Heap.capacity heap do
    State.lock_heap st;
    (* header-to-header walk, so the bounds-check-free accessors apply;
       merge_free_prev and free only ever move block boundaries at or
       before the cursor, never ahead of it.  In parallel mode the lock
       covers one block step; a refill splitting a free block ahead of
       the cursor between steps preserves this block's end boundary, so
       the advance below stays a block start. *)
    let size = Space.unsafe_size space !addr in
    (* sweeping is linear in bytes: header cost plus a per-64-byte term *)
    charge_tick st (Cost.c_sweep_block + (size / 64));
    let x = !addr in
    (match Space.unsafe_kind space x with
    | Space.Free ->
        (* merge runs of free blocks leftward as the cursor passes *)
        ignore (Heap.merge_free_prev heap x : int)
    | Space.Allocated ->
        Page_set.touch_color st.pages x;
        let c = Heap.color heap x in
        if Color.equal c Color.Blue then
          (* a reserved block in some mutator's allocation cache (real
             domains only): not an object yet — leave it alone *)
          ()
        else if Color.equal c st.clear_color then begin
          charge_tick st Cost.c_free;
          cycle.Gc_stats.objects_freed <- cycle.Gc_stats.objects_freed + 1;
          cycle.Gc_stats.bytes_freed <- cycle.Gc_stats.bytes_freed + size;
          (* the free-list link is written into the block itself *)
          Page_set.touch_range st.pages x Layout.granule;
          Heap.free heap x;
          ignore (Heap.merge_free_prev heap x : int)
        end
        else begin
          match mode_of st with
          | Gc_config.Non_generational | Gc_config.Generational ->
              (* Late-shaded floating garbage: give it the allocation color
                 so it becomes collectible next cycle instead of leaking as
                 an eternal gray. *)
              if Color.equal c Color.Gray then
                Heap.set_color heap x st.allocation_color
          | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
              (* Figure 5: promoted objects stay black and stop aging;
                 young survivors (traced black this cycle, or created
                 yellow during it, or floating gray) are recolored to the
                 allocation color and aged.

                 Promotion is monotone: a promoted object's age freezes at
                 the sentinel 255, so a *rising* adaptive threshold can
                 never demote it.  De-promotion is unsound — it turns an
                 old->young edge loose on a card that was legitimately
                 cleaned while the edge was old->old, and the young target
                 is then reclaimed while reachable (found by an 8000-seed
                 hunt; regression in test_props.ml). *)
              let age = Age_table.get ages x in
              if Color.equal c Color.Black && (age = 255 || age + 1 >= tenure)
              then begin
                if age <> 255 then begin
                  cycle.Gc_stats.promotions <- cycle.Gc_stats.promotions + 1;
                  Age_table.set ages x 255;
                  Page_set.touch_age st.pages x
                end
              end
              else begin
                if not (Color.equal c st.allocation_color) then
                  Heap.set_color heap x st.allocation_color;
                (* never age a young object into the sentinel *)
                if age < 254 then Age_table.incr ages x;
                Page_set.touch_age st.pages x;
                Cost.collector st.cost 1
              end
        end);
    State.unlock_heap st;
    addr := !addr + size
  done

(* ------------------------------------------------------------------ *)
(* Parallel phases (domains substrate, Gc_par crew)                    *)
(* ------------------------------------------------------------------ *)

(* Worker-context variants of the card scan, trace and sweep.  Worker 0
   is the orchestrating collector domain (its ledgers alias the shared
   ones, so phase attribution is unchanged); helpers charge private
   ledgers merged at cycle end.  Per-cycle statistics go to the
   worker's partial counters, folded into the cycle record at each
   phase barrier.  Page touches go to the worker's private [Page_set]
   (worker 0's aliases the shared one), unioned into the shared set at
   cycle end before [pages_touched] is read: the touched-page union
   over any partition of the work equals the serial set, so the count
   is exact at every crew width.  [Observatory] census sampling —
   which needs a quiescent walk — runs at phase boundaries on the
   orchestrator instead ([Observatory.phase_sample]). *)

(* Card ownership: round-robin chunks of 64 cards (one card-table cache
   line's worth) per worker, so dirty-card clusters spread across the
   crew without splitting any single card. *)
let par_card_chunk = 64

let owns_card st (w : Gc_par.worker) card =
  (card / par_card_chunk) mod st.par.Gc_par.n_workers = w.Gc_par.wid

(* Every worker reads the whole card table, so every worker touches the
   whole scan range — the union is the single range the serial scan
   touches. *)
let par_touch_card_table_scan st (w : Gc_par.worker) n =
  let base = (Heap.layout st.heap).Layout.card_table_base in
  Page_set.touch_range w.Gc_par.pages base n

let par_cards_simple st (w : Gc_par.worker) =
  Cost.set_phase w.Gc_par.cost Cost.Card_scan;
  let heap = st.heap in
  let cards = Heap.cards heap in
  let n = cards_covering_capacity st in
  let pages = w.Gc_par.pages in
  par_touch_card_table_scan st w n;
  let charge = Cost.collector w.Gc_par.cost in
  for card = 0 to n - 1 do
    if owns_card st w card then begin
      if card land 63 = 0 then charge 1;
      if Card_table.is_dirty cards card then begin
        Telemetry.hit_dirty_card w.Gc_par.tel;
        w.Gc_par.dirty_cards <- w.Gc_par.dirty_cards + 1;
        charge Cost.c_card_visit;
        Card_table.clear_card cards card;
        State.lock_heap st;
        Heap.iter_objects_on_card_buf heap ~scratch:w.Gc_par.scratch card
          (fun x ->
            charge Cost.c_card_obj;
            Page_set.touch_range pages x Layout.granule;
            if Color.equal (Heap.color heap x) Color.Black then begin
              w.Gc_par.intergen_scanned <- w.Gc_par.intergen_scanned + 1;
              w.Gc_par.card_scan_bytes <-
                w.Gc_par.card_scan_bytes + Heap.size heap x;
              Page_set.touch_heap_object pages ~addr:x
                ~size:(Heap.size heap x);
              Page_set.touch_color pages x;
              Heap.set_color heap x Color.Gray;
              Gray_queue.push st.gray x;
              charge Cost.c_mark_gray
            end);
        State.unlock_heap st
      end
    end
  done

let par_cards_aging st (w : Gc_par.worker) =
  Cost.set_phase w.Gc_par.cost Cost.Card_scan;
  let heap = st.heap in
  let cards = Heap.cards heap in
  let n = cards_covering_capacity st in
  let pages = w.Gc_par.pages in
  par_touch_card_table_scan st w n;
  let charge = Cost.collector w.Gc_par.cost in
  for card = 0 to n - 1 do
    if owns_card st w card then begin
      if card land 63 = 0 then charge 1;
      if Card_table.is_dirty cards card then begin
        Telemetry.hit_dirty_card w.Gc_par.tel;
        w.Gc_par.dirty_cards <- w.Gc_par.dirty_cards + 1;
        charge Cost.c_card_visit;
        (* 3-step protocol, per card, same as the serial scan: each card
           has exactly one owner, so the clear/scan/re-mark sequence
           races only the mutators it was already designed to race. *)
        Card_table.clear_card cards card;
        let has_young = ref false in
        State.lock_heap st;
        Heap.iter_objects_on_card_buf heap ~scratch:w.Gc_par.scratch card
          (fun x ->
            charge Cost.c_card_obj;
            Page_set.touch_range pages x Layout.granule;
            Page_set.touch_age pages x;
            let old = is_old st x in
            w.Gc_par.card_scan_bytes <-
              w.Gc_par.card_scan_bytes + Heap.size heap x;
            if old then begin
              w.Gc_par.intergen_scanned <- w.Gc_par.intergen_scanned + 1;
              Page_set.touch_heap_object pages ~addr:x
                ~size:(Heap.size heap x)
            end;
            let k = Heap.n_slots heap x in
            for i = 0 to k - 1 do
              charge Cost.c_scan_slot;
              let y = Heap.get_slot heap x i in
              if y <> Heap.nil then begin
                if old then begin
                  charged_mark_gray st ~charge ~tel:w.Gc_par.tel ~sync:false y;
                  Page_set.touch_color pages y
                end;
                Page_set.touch_age pages y;
                if not (is_old st y) then has_young := true
              end
            done);
        State.unlock_heap st;
        if !has_young then begin
          Card_table.mark_card cards card;
          charge Cost.c_mark_card
        end
      end
    end
  done

(* Trace-phase worker: drain own deque (LIFO, lock-free), then the
   shared queue (mutator barrier pushes), then steal; when everything
   looks dry, register idle and run the Gc_par termination protocol. *)
let par_mark_black st (w : Gc_par.worker) x =
  let heap = st.heap in
  let target = trace_target st in
  let charge = Cost.collector w.Gc_par.cost in
  let pages = w.Gc_par.pages in
  if not (Color.equal (Heap.color heap x) target) then begin
    charge Cost.c_trace_obj;
    Page_set.touch_heap_object pages ~addr:x ~size:(Heap.size heap x);
    Page_set.touch_color pages x;
    let k = Heap.n_slots heap x in
    for i = 0 to k - 1 do
      charge Cost.c_scan_slot;
      let y = Heap.get_slot heap x i in
      if y <> Heap.nil then begin
        charged_mark_gray st ~charge ~tel:w.Gc_par.tel ~sync:false y;
        Page_set.touch_color pages y
      end
    done;
    Heap.set_color heap x target;
    (* two workers can race on a duplicate entry and both blacken [x];
       the recolor is idempotent and the double-count is bounded by the
       (rare) duplicates the serial trace already tolerates *)
    w.Gc_par.objects_traced <- w.Gc_par.objects_traced + 1;
    match mode_of st with
    | Gc_config.Generational ->
        w.Gc_par.promotions <- w.Gc_par.promotions + 1
    | Gc_config.Non_generational | Gc_config.Generational_aging _
    | Gc_config.Generational_adaptive ->
        ()
  end

let par_trace st (w : Gc_par.worker) =
  Cost.set_phase w.Gc_par.cost Cost.Trace;
  let par = st.par in
  let n = par.Gc_par.n_workers in
  let gray = st.gray in
  let charge = Cost.collector w.Gc_par.cost in
  let ring = w.Gc_par.ring in
  (* flight-recorder timestamp, 0 when the recorder is disarmed (one
     option check — the branch every instrumented site pays) *)
  let fnow () =
    match ring with Some _ -> Flight_recorder.now_ns () | None -> 0
  in
  let fspan kind ~a ~t0 =
    match ring with
    | Some r -> Flight_recorder.span r kind ~a ~t0 ~t1:(Flight_recorder.now_ns ())
    | None -> ()
  in
  (* per-worker deterministic victim sequence (no shared rng state) *)
  let rng = ref ((w.Gc_par.wid * 0x9E3779B9) lor 1) in
  let next_victim () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod n
  in
  let rec run () =
    match Gray_queue.pop_local gray ~w:w.Gc_par.wid with
    | Some x ->
        charge 1;
        par_mark_black st w x;
        run ()
    | None -> (
        match Gray_queue.pop gray with
        | Some x ->
            charge 1;
            par_mark_black st w x;
            run ()
        | None -> try_steal (2 * n))
  and try_steal budget =
    if budget = 0 then idle ()
    else
      let victim = next_victim () in
      if victim = w.Gc_par.wid then try_steal budget
      else begin
        let t0 = fnow () in
        match Gray_queue.steal gray ~victim with
        | Some x ->
            w.Gc_par.steals <- w.Gc_par.steals + 1;
            fspan Flight_recorder.Steal ~a:1 ~t0;
            charge 1;
            par_mark_black st w x;
            run ()
        | None ->
            w.Gc_par.steal_failures <- w.Gc_par.steal_failures + 1;
            fspan Flight_recorder.Steal ~a:0 ~t0;
            try_steal (budget - 1)
      end
  and idle () =
    let t0 = fnow () in
    Atomic.incr par.Gc_par.idle;
    wait_idle t0
  and wait_idle t0 =
    (* Park with the substrate's spin-then-sleep backoff (bare cpu_relax
       here starves the very workers we wait on when cores are scarce)
       until there is work, a termination verdict, or this worker itself
       declares termination. *)
    Substrate.wait_until (fun () ->
        Atomic.get par.Gc_par.term
        || (not (Gray_queue.is_empty gray))
        || Gc_par.try_terminate par ~queues_empty:(fun () ->
               Gray_queue.all_empty gray));
    if Atomic.get par.Gc_par.term then
      fspan Flight_recorder.Idle ~a:w.Gc_par.wid ~t0
    else if not (Gray_queue.is_empty gray) then begin
      (* activity stamp before the idle decrement — the ordering the
         termination check's soundness argument needs *)
      Gc_par.leave_idle par;
      fspan Flight_recorder.Idle ~a:w.Gc_par.wid ~t0;
      run ()
    end
    else wait_idle t0
  in
  run ()

(* Sweep-region boundaries: n+1 block-aligned addresses computed under
   the heap lock.  They stay block starts for the whole phase — splits
   only add boundaries, merges only coalesce blocks strictly inside one
   region (each worker suppresses the leftward merge at its region
   start), and mutator-triggered growth is blocked while [collecting]
   is up. *)
let compute_sweep_bounds st =
  let n = st.par.Gc_par.n_workers in
  let space = Heap.space st.heap in
  let cap = Heap.capacity st.heap in
  let bounds = Array.make (n + 1) 0 in
  State.lock_heap st;
  for i = 1 to n - 1 do
    bounds.(i) <- Space.find_block_start space (i * cap / n)
  done;
  State.unlock_heap st;
  bounds.(n) <- cap;
  for i = 1 to n do
    if bounds.(i) < bounds.(i - 1) then bounds.(i) <- bounds.(i - 1)
  done;
  st.par.Gc_par.sweep_bounds <- bounds

let par_sweep st (w : Gc_par.worker) =
  Cost.set_phase w.Gc_par.cost Cost.Sweep;
  let heap = st.heap in
  let space = Heap.space heap in
  let ages = Heap.ages heap in
  let tenure = survivals_to_tenure st in
  let bounds = st.par.Gc_par.sweep_bounds in
  let lo = bounds.(w.Gc_par.wid) in
  let hi = bounds.(w.Gc_par.wid + 1) in
  let charge = Cost.collector w.Gc_par.cost in
  let pages = w.Gc_par.pages in
  let addr = ref lo in
  while !addr < hi do
    State.lock_heap st;
    let size = Space.unsafe_size space !addr in
    charge (Cost.c_sweep_block + (size / 64));
    let x = !addr in
    (match Space.unsafe_kind space x with
    | Space.Free ->
        (* never merge across the region seam: the leftward merge at
           [lo] would extend a block the previous worker's cursor may
           still stand on *)
        if x > lo then ignore (Heap.merge_free_prev heap x : int)
    | Space.Allocated ->
        Page_set.touch_color pages x;
        let c = Heap.color heap x in
        if Color.equal c Color.Blue then ()
        else if Color.equal c st.clear_color then begin
          charge Cost.c_free;
          w.Gc_par.objects_freed <- w.Gc_par.objects_freed + 1;
          w.Gc_par.bytes_freed <- w.Gc_par.bytes_freed + size;
          Page_set.touch_range pages x Layout.granule;
          Heap.free heap x;
          if x > lo then ignore (Heap.merge_free_prev heap x : int)
        end
        else begin
          match mode_of st with
          | Gc_config.Non_generational | Gc_config.Generational ->
              if Color.equal c Color.Gray then
                Heap.set_color heap x st.allocation_color
          | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive
            ->
              let age = Age_table.get ages x in
              if Color.equal c Color.Black && (age = 255 || age + 1 >= tenure)
              then begin
                if age <> 255 then begin
                  w.Gc_par.promotions <- w.Gc_par.promotions + 1;
                  Age_table.set ages x 255;
                  Page_set.touch_age pages x
                end
              end
              else begin
                if not (Color.equal c st.allocation_color) then
                  Heap.set_color heap x st.allocation_color;
                if age < 254 then Age_table.incr ages x;
                Page_set.touch_age pages x;
                charge 1
              end
        end);
    State.unlock_heap st;
    addr := !addr + size
  done

(* Orchestrator side: open a phase, run worker 0's share inline, wait
   for the helpers' barrier, fold the partials into the cycle. *)
let run_phase st cycle p ~self =
  let par = st.par in
  Gc_par.open_phase par p;
  self par.Gc_par.workers.(0);
  Substrate.wait_until (fun () -> Gc_par.helpers_done par);
  Gc_par.drain_partials par cycle;
  par.Gc_par.phase <- Gc_par.Idle

(* Flight-recorder tag for a crew phase — the same numbering the
   collector ring's cycle segments use (0 clear, 1 cards, 2 trace,
   3 sweep), so one name table serves every track in the export. *)
let par_phase_tag = function
  | Gc_par.Idle -> 0
  | Gc_par.Cards_simple | Gc_par.Cards_aging -> 1
  | Gc_par.Trace -> 2
  | Gc_par.Sweep -> 3

(* Helper-domain body: park on the epoch counter, run each opened
   phase's share, check in at the barrier.  Spawned once per run by the
   driver (daemon domains, like the collector). *)
let gc_worker_loop st wid =
  Gray_queue.set_worker_id st.gray wid;
  let par = st.par in
  let w = par.Gc_par.workers.(wid) in
  let seen = ref (Atomic.get par.Gc_par.epoch) in
  while not (Atomic.get st.shutdown) do
    Substrate.wait_until (fun () ->
        Atomic.get st.shutdown || Atomic.get par.Gc_par.epoch <> !seen);
    if Atomic.get par.Gc_par.epoch <> !seen then begin
      seen := Atomic.get par.Gc_par.epoch;
      let phase = par.Gc_par.phase in
      let t0 =
        match w.Gc_par.ring with
        | Some _ -> Flight_recorder.now_ns ()
        | None -> 0
      in
      (match phase with
      | Gc_par.Idle -> ()
      | Gc_par.Cards_simple -> par_cards_simple st w
      | Gc_par.Cards_aging -> par_cards_aging st w
      | Gc_par.Trace -> par_trace st w
      | Gc_par.Sweep -> par_sweep st w);
      (match w.Gc_par.ring with
      | Some r when phase <> Gc_par.Idle ->
          Flight_recorder.span r Flight_recorder.Phase ~a:(par_phase_tag phase)
            ~t0 ~t1:(Flight_recorder.now_ns ())
      | _ -> ());
      Atomic.incr par.Gc_par.done_count
    end
  done

(* ------------------------------------------------------------------ *)
(* Census: out-of-band instrumentation (no cost, no pages, no yields)  *)
(* ------------------------------------------------------------------ *)

(* Count the reclamation candidates — the clear-colored objects — at the
   moment the trace is about to start (out of band: no cost, no pages, no
   yields).  Taken after the color toggle, so "% freed in partial
   collections" (Figure 12) has a well-defined denominator that later
   allocations (yellow) cannot perturb.  Reserved cache blocks are
   allocated-but-Blue and never clear-colored, so they do not count. *)
let census st cycle =
  let heap = st.heap in
  let young_o = ref 0 and young_b = ref 0 in
  State.lock_heap st;
  Heap.iter_objects heap (fun x ->
      if Color.equal (Heap.color heap x) st.clear_color then begin
        incr young_o;
        young_b := !young_b + Heap.size heap x
      end);
  State.unlock_heap st;
  cycle.Gc_stats.young_objects_at_start <- !young_o;
  cycle.Gc_stats.young_bytes_at_start <- !young_b

(* ------------------------------------------------------------------ *)
(* The collection cycle (Figure 2 / Figure 5)                          *)
(* ------------------------------------------------------------------ *)

let run_cycle st ~full =
  let mode = mode_of st in
  let kind =
    match mode with
    | Gc_config.Non_generational -> Gc_stats.Non_gen
    | _ -> if full then Gc_stats.Full else Gc_stats.Partial
  in
  (* Raising [collecting] under the registration lock fences out a
     mutator mid-registration: after this, newcomers wait for the cycle
     to finish (Runtime.new_mutator), so the handshake set is stable
     modulo retirement. *)
  if st.parallel then Mutex.lock st.reg_lock;
  Atomic.set st.collecting true;
  if st.parallel then Mutex.unlock st.reg_lock;
  Atomic.set st.gc_request No_request;
  let window_bytes = Atomic.exchange st.bytes_since_gc 0 in
  let cycle = Gc_stats.begin_cycle st.stats kind in
  (* Figure 22 reports dirty cards as a percentage of "allocated cards":
     the cards covered by the allocation window since the last collection. *)
  cycle.Gc_stats.total_cards <-
    Stdlib.max 1 (window_bytes / Card_table.card_size (Heap.cards st.heap));
  st.cur_cycle <- Some cycle;
  emit st (Event_log.Cycle_start { kind; full });
  (* Flight-recorder helpers for the collector track: cycle and phase
     spans nest (Cycle > Phase > worker-0 Steal/Idle), which the trace
     export's validator checks.  Disarmed: one option check each. *)
  let frc = Flight_recorder.collector_ring st.recorder in
  let fnow () =
    match frc with Some _ -> Flight_recorder.now_ns () | None -> 0
  in
  let fspan kind ~a t0 =
    match frc with
    | Some r ->
        Flight_recorder.span r kind ~a ~t0 ~t1:(Flight_recorder.now_ns ())
    | None -> ()
  in
  let cycle_t0 = fnow () in
  Page_set.reset st.pages;
  Gray_queue.clear st.gray;
  Observatory.phase_sample st;
  let work0 = Cost.collector_work st.cost in
  let elapsed0 = Cost.elapsed_multi st.cost in
  let mutator_work0 = Cost.mutator_work st.cost in
  (* clear phase *)
  let clear_t0 = fnow () in
  (match mode with
  | Gc_config.Non_generational -> ()
  | Gc_config.Generational ->
      if full then begin
        init_full_collection st ~clear_card_marks:true;
        emit st Event_log.Init_full_done
      end
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      if full then begin
        init_full_collection st ~clear_card_marks:false;
        emit st Event_log.Init_full_done
      end);
  (match mode with
  | Gc_config.Non_generational -> ()
  | _ -> if full then fspan Flight_recorder.Phase ~a:0 clear_t0);
  post_handshake st Status.Sync1;
  wait_handshake st;
  (* mark phase *)
  post_handshake st Status.Sync2;
  let crew = Gc_par.active st.par in
  let cards_t0 = fnow () in
  (match mode with
  | Gc_config.Non_generational -> ()
  | Gc_config.Generational ->
      (* Figure 2 order: scan and clear cards (or drain the remembered
         set), then toggle — new objects become "yellow" only after the
         inter-generational records are settled. *)
      (match st.cfg.Gc_config.intergen with
      | Gc_config.Card_marking ->
          if crew then
            run_phase st cycle Gc_par.Cards_simple
              ~self:(fun w -> par_cards_simple st w)
          else clear_cards_simple st cycle
      | Gc_config.Remembered_set -> scan_remset_simple st cycle);
      emit st
        (Event_log.Intergen_scanned { seeds = cycle.Gc_stats.intergen_scanned });
      switch_allocation_clear_colors st
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      (* Figure 5 order: toggle first, then scan cards.  A full collection
         skips the card scan: InitFullCollection already prepared the heap
         and the dirty bits stay for the next partial (Section 6). *)
      switch_allocation_clear_colors st;
      if not full then begin
        if crew then
          run_phase st cycle Gc_par.Cards_aging
            ~self:(fun w -> par_cards_aging st w)
        else clear_cards_aging st cycle;
        emit st
          (Event_log.Intergen_scanned
             { seeds = cycle.Gc_stats.intergen_scanned })
      end);
  (match mode with
  | Gc_config.Non_generational -> ()
  | Gc_config.Generational -> fspan Flight_recorder.Phase ~a:1 cards_t0
  | Gc_config.Generational_aging _ | Gc_config.Generational_adaptive ->
      if not full then fspan Flight_recorder.Phase ~a:1 cards_t0);
  wait_handshake st;
  census st cycle;
  Observatory.phase_sample st;
  Atomic.set st.tracing true;
  let trace_t0 = fnow () in
  post_handshake st Status.Async;
  (* mark global roots (attributed to the trace: they seed it) *)
  Cost.set_phase st.cost Cost.Trace;
  List.iter
    (fun g ->
      charge_tick st Cost.c_root;
      charged_mark_gray st ~charge:(Cost.collector st.cost) ~tel:st.telemetry
        ~sync:false g)
    st.globals;
  wait_handshake st;
  (* trace *)
  if crew then begin
    cycle.Gc_stats.trace_workers <- st.par.Gc_par.n_workers;
    run_phase st cycle Gc_par.Trace ~self:(fun w -> par_trace st w)
  end
  else trace st cycle;
  fspan Flight_recorder.Phase ~a:2 trace_t0;
  Observatory.phase_sample st;
  Telemetry.note_trace_workers st.telemetry cycle.Gc_stats.trace_workers;
  emit st (Event_log.Trace_complete { traced = cycle.Gc_stats.objects_traced });
  (* [sweeping] is raised before [tracing] drops so the non-generational
     create color never observes a gap between the two phases (a clear
     object created in such a gap, held only in a register, would be
     reclaimed by this very sweep). *)
  Atomic.set st.sweeping true;
  Atomic.set st.tracing false;
  (* sweep *)
  let sweep_t0 = fnow () in
  if crew then begin
    compute_sweep_bounds st;
    run_phase st cycle Gc_par.Sweep ~self:(fun w -> par_sweep st w)
  end
  else sweep st cycle;
  fspan Flight_recorder.Phase ~a:3 sweep_t0;
  Observatory.phase_sample st;
  emit st
    (Event_log.Sweep_complete
       {
         freed = cycle.Gc_stats.objects_freed;
         bytes = cycle.Gc_stats.bytes_freed;
       });
  Telemetry.add_promotions st.telemetry cycle.Gc_stats.promotions;
  if cycle.Gc_stats.promotions > 0 then
    emit st (Event_log.Promoted { count = cycle.Gc_stats.promotions });
  (match mode with
  | Gc_config.Non_generational ->
      (* Remark 5.1: swap black and white instead of re-whitening.  An
         object created between the toggle and [sweeping] dropping gets
         the new mark color — it floats for one cycle, harmlessly. *)
      switch_allocation_clear_colors st
  | _ -> ());
  Atomic.set st.sweeping false;
  (* Dynamic tenuring (Section 6's future-work hook): promote sooner when
     virtually everything young dies (survivors are proven long-lived);
     let objects age longer when many survive their first collection (they
     may be about to die — premature promotion would park them in the old
     generation until a full collection). *)
  (match mode with
  | Gc_config.Generational_adaptive when kind = Gc_stats.Partial ->
      let young0 = cycle.Gc_stats.young_objects_at_start in
      if young0 > 0 then begin
        let survival =
          1.0
          -. (float_of_int cycle.Gc_stats.objects_freed /. float_of_int young0)
        in
        if survival < 0.03 && st.tenure_threshold > 1 then
          st.tenure_threshold <- st.tenure_threshold - 1
        else if survival > 0.15 && st.tenure_threshold < 7 then
          st.tenure_threshold <- st.tenure_threshold + 1
      end
  | _ -> ());
  (* Fold the helpers' private ledgers into the shared ones before the
     work accounting below reads them, so [cycle.work] counts every
     worker's share; steal counters become run-level telemetry here
     (worker partials were already drained into the cycle record). *)
  if crew then begin
    Gc_par.merge_ledgers st.par ~cost0:st.cost ~tel0:st.telemetry;
    Telemetry.add_steals st.telemetry cycle.Gc_stats.steals;
    Telemetry.add_steal_failures st.telemetry cycle.Gc_stats.steal_failures
  end;
  cycle.Gc_stats.work <- Cost.collector_work st.cost - work0;
  cycle.Gc_stats.active_span <- Cost.elapsed_multi st.cost - elapsed0;
  (* Union the helpers' private page sets into the shared one (worker 0
     already aliases it), restoring the exact serial count at any crew
     width: the touched-page union over a partition of the work equals
     the serial set. *)
  if crew then Gc_par.merge_pages st.par ~dst:st.pages;
  cycle.Gc_stats.pages_touched <- Page_set.count st.pages;
  State.lock_heap st;
  cycle.Gc_stats.live_objects_at_end <- Heap.object_count st.heap;
  cycle.Gc_stats.live_bytes_at_end <- Heap.allocated_bytes st.heap;
  State.unlock_heap st;
  (* Floating garbage the sweep left behind, measured out of band (the
     oracle charges no cost and never yields, so the schedule is
     untouched).  No scheduling point separates this from the sweep's
     last block, so the measure is exactly "what this cycle failed to
     reclaim", not garbage the mutators create later in the window.
     Simulator only: under real domains the mutators keep running, so
     there is no consistent snapshot to take — the cross-check instead
     runs the oracle at quiescence (see Driver). *)
  if not st.parallel then
    List.iter
      (fun x ->
        cycle.Gc_stats.floating_objects <- cycle.Gc_stats.floating_objects + 1;
        cycle.Gc_stats.floating_bytes <-
          cycle.Gc_stats.floating_bytes + Heap.size st.heap x)
      (Oracle.garbage st);
  (* Pause-free progress: mutator work performed while this cycle ran. *)
  Telemetry.record_progress st.telemetry
    (Cost.mutator_work st.cost - mutator_work0);
  Cost.set_phase st.cost Cost.Idle;
  Gc_stats.end_cycle st.stats cycle;
  st.cur_cycle <- None;
  Atomic.set st.collecting false;
  (* Post-cycle growth towards the maximum (the paper's 1 MB -> 32 MB):
     (a) keep a fraction of the capacity free — the baseline headroom
     heuristic, identical for every collector; (b) for the generational
     collectors only, grow when a full collection fired before even one
     young-generation window had elapsed since the previous collection —
     the heap is then too tight for generational operation (standard
     young-aware sizing).  The non-generational heap gets no such boost,
     which reproduces the paper's implicit asymmetry: the generational
     heap runs larger (it carries tenured garbage between full
     collections) while the non-generational one stays tight and collects
     more often. *)
  let cap = Heap.capacity st.heap in
  let need =
    int_of_float (st.cfg.Gc_config.grow_headroom_fraction *. float_of_int cap)
  in
  let young = st.cfg.Gc_config.young_bytes in
  let premature_full = kind = Gc_stats.Full && window_bytes < young in
  (* GC-overhead bound (any collector): collections firing more than twice
     per young-generation window mean the heap is thrashing — grow. *)
  let thrashing = window_bytes < young / 2 in
  (if Heap.free_bytes st.heap < need || premature_full || thrashing then begin
     (* grow by half steps: finer capacity granularity keeps trigger
        windows from jumping discontinuously *)
     State.lock_heap st;
     let grown = Heap.grow st.heap ~want_bytes:(Stdlib.max (cap / 2) 65536) in
     State.unlock_heap st;
     if grown then
       emit st (Event_log.Heap_grown { capacity = Heap.capacity st.heap })
   end);
  fspan Flight_recorder.Cycle ~a:(if full then 1 else 0) cycle_t0;
  emit st Event_log.Cycle_end;
  cycle

let collector_loop st =
  (* the orchestrating collector domain is trace worker 0 when a crew
     is armed (domains substrate only — the simulator never arms one) *)
  if Gc_par.active st.par then Gray_queue.set_worker_id st.gray 0;
  while not (Atomic.get st.shutdown) do
    Substrate.wait_until (fun () ->
        Atomic.get st.shutdown || Atomic.get st.gc_request <> No_request);
    if not (Atomic.get st.shutdown) then begin
      let full =
        match Atomic.get st.gc_request with Want_full -> true | _ -> false
      in
      ignore (run_cycle st ~full : Gc_stats.cycle)
    end
  done
