module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Page_set = Otfgc_heap.Page_set

type gc_request = No_request | Want_partial | Want_full

type t = {
  heap : Heap.t;
  cfg : Gc_config.t;
  mutable status_c : Status.t;
  mutable mutators : Mutator.t list;
  mutable globals : int list;
  mutable allocation_color : Color.t;
  mutable clear_color : Color.t;
  mutable tracing : bool;
  mutable sweeping : bool;
  mutable collecting : bool;
  mutable gc_request : gc_request;
  mutable bytes_since_gc : int;
  mutable shutdown : bool;
  gray : Gray_queue.t;
  stats : Gc_stats.t;
  events : Event_log.t;
  telemetry : Telemetry.t;
  mutable cur_cycle : Gc_stats.cycle option;
  pages : Page_set.t;
  cost : Cost.t;
  card_cache : Card_cache.t;
  remset_cache : Card_cache.t;
  mutable tenure_threshold : int;
  mutable fine_grained : bool;
  mutable collector_tick : int;
  mutable collector_speed : int;
  sampler : Sampler.t;
}

let create heap cfg =
  {
    heap;
    cfg;
    status_c = Status.Async;
    mutators = [];
    globals = [];
    allocation_color = Color.C0;
    clear_color = Color.C1;
    tracing = false;
    sweeping = false;
    collecting = false;
    gc_request = No_request;
    bytes_since_gc = 0;
    shutdown = false;
    gray = Gray_queue.create ();
    stats = Gc_stats.create ();
    events = Event_log.create ();
    telemetry = Telemetry.create ();
    cur_cycle = None;
    pages = Page_set.create (Heap.layout heap);
    cost = Cost.create ();
    card_cache = Card_cache.create ();
    remset_cache = Card_cache.create ();
    tenure_threshold = 1;
    fine_grained = true;
    collector_tick = 0;
    collector_speed = 8;
    sampler = Sampler.create ();
  }

let step t = if t.fine_grained then Otfgc_sched.Sched.yield ()

let active_mutators t = List.filter Mutator.active t.mutators

let young_color _t c = not (Color.equal c Color.Black)
