module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Page_set = Otfgc_heap.Page_set
module Substrate = Otfgc_sched.Substrate

type gc_request = No_request | Want_partial | Want_full

type t = {
  heap : Heap.t;
  cfg : Gc_config.t;
  status_c : Status.t Atomic.t;
  (* Mutator registry: a growable array published through [n_mutators].
     Writers (under [reg_lock]) place the new element — growing into a
     fresh array if needed — and only then release-store the count, so a
     reader that loads the count first sees a fully initialised prefix.
     Replaces the former O(n²) list append. *)
  mutable mutator_slots : Mutator.t array;
  n_mutators : int Atomic.t;
  mutable globals : int list;
  (* The two color names stay plain: only the collector writes them, and
     every mutator read is bounded-stale by construction — the paper's
     protocol tolerates a create/shade using the pre-toggle color until
     the mutator acks the next handshake, and that ack's status_c read is
     the acquire that makes the toggle visible (DESIGN §10). *)
  mutable allocation_color : Color.t;
  mutable clear_color : Color.t;
  tracing : bool Atomic.t;
  sweeping : bool Atomic.t;
  collecting : bool Atomic.t;
  gc_request : gc_request Atomic.t;
  bytes_since_gc : int Atomic.t;
  shutdown : bool Atomic.t;
  gray : Gray_queue.t;
  stats : Gc_stats.t;
  events : Event_log.t;
  telemetry : Telemetry.t;
  mutable cur_cycle : Gc_stats.cycle option;
  pages : Page_set.t;
  cost : Cost.t;
  card_cache : Card_cache.t;
  remset_cache : Card_cache.t;
  mutable tenure_threshold : int;
  mutable fine_grained : bool;
  mutable collector_tick : int;
  mutable collector_speed : int;
  sampler : Sampler.t;
  recorder : Flight_recorder.t;
  (* Real-domains substrate.  [parallel] is set once by the driver before
     any process starts; the locks are never touched in simulated mode. *)
  mutable parallel : bool;
  heap_lock : Mutex.t;
  reg_lock : Mutex.t;
  par : Gc_par.t;
  pool : Block_pool.t;
}

let create heap cfg =
  {
    heap;
    cfg;
    status_c = Atomic.make Status.Async;
    mutator_slots = [||];
    n_mutators = Atomic.make 0;
    globals = [];
    allocation_color = Color.C0;
    clear_color = Color.C1;
    tracing = Atomic.make false;
    sweeping = Atomic.make false;
    collecting = Atomic.make false;
    gc_request = Atomic.make No_request;
    bytes_since_gc = Atomic.make 0;
    shutdown = Atomic.make false;
    gray = Gray_queue.create ();
    stats = Gc_stats.create ();
    events = Event_log.create ();
    telemetry = Telemetry.create ();
    cur_cycle = None;
    pages = Page_set.create (Heap.layout heap);
    cost = Cost.create ();
    card_cache = Card_cache.create ();
    remset_cache = Card_cache.create ();
    tenure_threshold = 1;
    fine_grained = true;
    collector_tick = 0;
    collector_speed = 8;
    sampler = Sampler.create ();
    recorder = Flight_recorder.create ();
    parallel = false;
    heap_lock = Mutex.create ();
    reg_lock = Mutex.create ();
    par = Gc_par.create ();
    pool = Block_pool.create ();
  }

let step t = if t.fine_grained then Substrate.yield ()

(* {2 Mutator registry} *)

let register_mutator t m =
  let n = Atomic.get t.n_mutators in
  if n = Array.length t.mutator_slots then begin
    let bigger = Array.make (Stdlib.max 4 (2 * n)) m in
    Array.blit t.mutator_slots 0 bigger 0 n;
    t.mutator_slots <- bigger
  end;
  t.mutator_slots.(n) <- m;
  Atomic.set t.n_mutators (n + 1)

let iter_mutators t f =
  (* count first (acquire), then the array: the writer's release of the
     count publishes both the element and any grown array *)
  let n = Atomic.get t.n_mutators in
  let arr = t.mutator_slots in
  for i = 0 to n - 1 do
    f arr.(i)
  done

let mutators t =
  let acc = ref [] in
  iter_mutators t (fun m -> acc := m :: !acc);
  List.rev !acc

let active_mutators t = List.filter Mutator.active (mutators t)

let for_all_active_mutators t p =
  let n = Atomic.get t.n_mutators in
  let arr = t.mutator_slots in
  let ok = ref true in
  for i = 0 to n - 1 do
    let m = arr.(i) in
    if Mutator.active m && not (p m) then ok := false
  done;
  !ok

let count_active_mutators t =
  let n = Atomic.get t.n_mutators in
  let arr = t.mutator_slots in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if Mutator.active arr.(i) then incr c
  done;
  !c

(* {2 Parallel-mode helpers} *)

let lock_heap t = if t.parallel then Mutex.lock t.heap_lock
let unlock_heap t = if t.parallel then Mutex.unlock t.heap_lock

(* The ledger a mutator-context charge goes to: the mutator's own under
   real domains (merged at end of run), the shared one under the
   simulator — where this is exactly the old behavior. *)
let mcost t m =
  if t.parallel then
    match Mutator.own_cost m with Some c -> c | None -> t.cost
  else t.cost

let mtelemetry t m =
  if t.parallel then
    match Mutator.own_telemetry m with Some tel -> tel | None -> t.telemetry
  else t.telemetry

(* Timestamp for latency instruments: simulated cost units under the
   simulator, real microseconds under domains (Monotonic_clock). *)
let now_units t =
  if t.parallel then
    Otfgc_support.Monotonic_clock.ns_to_us
      (Otfgc_support.Monotonic_clock.now_ns ())
  else Cost.elapsed_multi t.cost

let young_color _t c = not (Color.equal c Color.Black)
