let granule = Otfgc_heap.Layout.granule
let n_classes = 64
let max_cached_bytes = n_classes * granule

let cacheable ~size = size > 0 && size < max_cached_bytes

type bin = { mutable buf : int array; mutable len : int }

type t = {
  bins : bin option array; (* indexed by size in granules *)
  mutable pending_bytes : int;
  mutable pending_objects : int;
}

let create () =
  { bins = Array.make n_classes None; pending_bytes = 0; pending_objects = 0 }

let class_of ~size = (size + granule - 1) / granule

let bin_of t ~size =
  let c = class_of ~size in
  match t.bins.(c) with
  | Some b -> b
  | None ->
      let b = { buf = Array.make 16 0; len = 0 } in
      t.bins.(c) <- Some b;
      b

let get t ~size =
  match t.bins.(class_of ~size) with
  | None -> None
  | Some b ->
      if b.len = 0 then None
      else begin
        b.len <- b.len - 1;
        Some b.buf.(b.len)
      end

let put t ~size addr =
  let b = bin_of t ~size in
  if b.len = Array.length b.buf then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- addr;
  b.len <- b.len + 1

let level t ~size =
  match t.bins.(class_of ~size) with None -> 0 | Some b -> b.len

let note_issued t ~bytes =
  t.pending_bytes <- t.pending_bytes + bytes;
  t.pending_objects <- t.pending_objects + 1

let take_pending t =
  let r = (t.pending_bytes, t.pending_objects) in
  t.pending_bytes <- 0;
  t.pending_objects <- 0;
  r

let drain t f =
  Array.iter
    (function
      | None -> ()
      | Some b ->
          for i = 0 to b.len - 1 do
            f b.buf.(i)
          done;
          b.len <- 0)
    t.bins
