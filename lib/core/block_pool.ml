(* Per-size-class pools of reserved blocks — the sharded middle tier of
   the domains-substrate allocation path.

   The hot path used to be: mutator cache empty -> take the single heap
   lock -> pop blocks from the shared free list.  Every refill in every
   size class contended on that one lock.  The pool splits the contention
   by class: each class holds a stack of blocks already reserved from the
   heap (kind Allocated, color Blue — invisible to the sweep and to
   every collector walk, exactly like blocks in a mutator's own cache)
   behind its own mutex.  A refill in class c takes only lock c; two
   mutators refilling different classes never touch the same lock.  Only
   when a class pool runs dry does the restocking mutator additionally
   take the heap lock to reserve a batch from the free list.

   Lock ordering: class lock -> heap lock, never the reverse.  The
   collector takes the heap lock alone; it never touches a class lock
   (pooled blocks are Blue, so its walks skip them), so there is no
   cycle.  Draining (stall entry, run finale) takes one class lock at a
   time and nests the heap lock inside it, the same order. *)

let n_classes = Alloc_cache.n_classes + 1 (* + overflow slot, see class_of *)

let class_of ~size = Alloc_cache.class_of ~size

type shard = {
  lock : Mutex.t;
  mutable buf : int array;
  mutable len : int;
}

type t = { shards : shard array }

let create () =
  {
    shards =
      Array.init n_classes (fun _ ->
          { lock = Mutex.create (); buf = Array.make 16 0; len = 0 });
  }

(* Take class [cls]'s lock; returns [true] iff the fast try_lock failed
   (the caller counts it as a lock wait for that class). *)
let lock t ~cls =
  let s = t.shards.(cls) in
  if Mutex.try_lock s.lock then false
  else begin
    Mutex.lock s.lock;
    true
  end

(* Timed variant for the flight recorder: returns the nanoseconds the
   caller spent blocked (0 on the uncontended fast path; clamped to at
   least 1 when the try_lock failed, so "waited" stays decidable even
   if the clock resolution swallows the wait). *)
let lock_ns t ~cls =
  let s = t.shards.(cls) in
  if Mutex.try_lock s.lock then 0
  else begin
    let t0 = Otfgc_support.Monotonic_clock.now_ns () in
    Mutex.lock s.lock;
    Stdlib.max 1 (Otfgc_support.Monotonic_clock.now_ns () - t0)
  end

let unlock t ~cls = Mutex.unlock t.shards.(cls).lock

(* Pop/push require the class lock to be held by the caller. *)
let pop t ~cls =
  let s = t.shards.(cls) in
  if s.len = 0 then None
  else begin
    s.len <- s.len - 1;
    Some s.buf.(s.len)
  end

let push t ~cls addr =
  let s = t.shards.(cls) in
  if s.len = Array.length s.buf then begin
    let bigger = Array.make (2 * s.len) 0 in
    Array.blit s.buf 0 bigger 0 s.len;
    s.buf <- bigger
  end;
  s.buf.(s.len) <- addr;
  s.len <- s.len + 1

let level t ~cls =
  let s = t.shards.(cls) in
  Mutex.lock s.lock;
  let n = s.len in
  Mutex.unlock s.lock;
  n

(* Empty every shard, handing each block to [f] (class lock held during
   the call: [f] may nest the heap lock — class -> heap is the legal
   order). *)
let drain t f =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      for i = 0 to s.len - 1 do
        f s.buf.(i)
      done;
      s.len <- 0;
      Mutex.unlock s.lock)
    t.shards
