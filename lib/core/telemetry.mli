(** Raw telemetry state threaded through the runtime — the recording half
    of the observability layer ([Otfgc_metrics.Telemetry] is the
    summarising/exporting half).

    Two tiers, chosen so the default configuration costs nothing the cost
    model could see:

    - {b Counters} (barrier executions, yellow-exception fires,
      promotions, dirty-card finds, handshake acks, stalls) are bare int
      increments and stay on unconditionally — like the CPU's own
      performance counters, they are free of allocation and of simulated
      cost.
    - {b Instruments} (handshake-latency, allocation-stall and per-cycle
      mutator-progress histograms) record only when {!set_enabled} has
      been called; the record path itself is allocation-free
      ({!Otfgc_support.Histogram}).

    Nothing here charges the {!Cost} ledger or yields to the scheduler, so
    enabling telemetry cannot change a run's schedule or its reported
    figures — the invariant the digest-identity tests pin down. *)

type t

val create : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Off by default; gates the histograms only (counters are always on). *)

val reset : t -> unit
(** Zero everything (end-of-warmup measurement reset). *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src] into [dst] ([src] unchanged): counters add, histograms
    merge sample streams.  The real-domains substrate records into
    per-mutator telemetry and folds it into the shared one at end of
    run. *)

(** {2 Counters} *)

val hit_barrier : t -> unit
(** one write-barrier execution *)

val hit_yellow : t -> unit
(** the Section 4 yellow-exception shaded an allocation-colored object *)

val add_promotions : t -> int -> unit
(** objects promoted by a cycle *)

val hit_dirty_card : t -> unit
(** ClearCards found a dirty card *)

val hit_ack : t -> unit
(** a mutator adopted a posted status *)

val hit_stall : t -> unit
(** a mutator entered the allocation slow path *)

val hit_card_mark : t -> unit
(** barrier dirtied (or re-dirtied) a card *)

val hit_remset_record : t -> unit
(** remembered-set append (deduplicated) *)

val add_steals : t -> int -> unit
(** successful work-steals from another worker's gray deque *)

val add_steal_failures : t -> int -> unit
(** steal attempts that found an empty deque or lost the top CAS *)

val hit_lock_wait : t -> cls:int -> unit
(** a mutator refill found size-class [cls]'s pool lock held (clamped
    to {!n_lock_classes} slots) *)

val note_trace_workers : t -> int -> unit
(** gauge: record the trace-phase worker count (keeps the maximum) *)

val n_lock_classes : int
(** length of the per-size-class lock-wait table *)

val barrier_updates : t -> int
val yellow_fires : t -> int
val promotions : t -> int
val dirty_card_finds : t -> int
val handshake_acks : t -> int
val stalls : t -> int
val card_marks : t -> int
val remset_records : t -> int
val steals : t -> int
val steal_failures : t -> int

val lock_waits : t -> int array
(** per-size-class lock-wait counts (fresh copy, length
    {!n_lock_classes}) *)

val lock_waits_total : t -> int
val trace_workers : t -> int

(** {2 Instruments} (no-ops while disabled) *)

val handshake_posted : t -> at:int -> unit
(** The collector posted a handshake at elapsed time [at]. *)

val handshake_completed : t -> Status.t -> at:int -> unit
(** The last mutator acked: records [at - posted_at] into the per-status
    latency histogram. *)

val record_stall : t -> int -> unit
(** Work-unit span a mutator spent in the allocation slow path. *)

val record_progress : t -> int -> unit
(** Mutator work performed while one collection cycle was active — the
    pause-free-progress measure. *)

val handshake_latency : t -> Status.t -> Otfgc_support.Histogram.t
val stall_latency : t -> Otfgc_support.Histogram.t
val cycle_progress : t -> Otfgc_support.Histogram.t
