(* Flight recorder for the domains substrate: per-domain bounded rings
   of monotonic-clock events, drained post-run into the Perfetto trace,
   the contention profile and the SLO latency report.

   The protocol is deliberately primitive so the record sites cost
   almost nothing:

   - every ring has exactly ONE writer (the domain it belongs to) and is
     only read after the run, so writes need no synchronisation at all —
     the ring is a plain int array and a plain sequence counter;
   - an event is a fixed-stride record of four ints (start ns, duration
     ns, kind tag, payload), written by four array stores;
   - a full ring overwrites its oldest entry and counts the loss
     ([dropped]), never blocking and never allocating;
   - when the recorder is disarmed (the default, and always under the
     simulator) every record site reduces to one option/bool check and
     no clock read, so the sim digest guard is untouched.

   Ring registration (not recording) takes a mutex: it happens a handful
   of times per run, from whichever domain creates the mutator/worker.
   Draining ([events]) must only run after the writers have quiesced —
   the driver reads it post-run. *)

module Clock = Otfgc_support.Monotonic_clock

type kind =
  | Phase  (** collector phase span; payload = [Cost.phase_index] *)
  | Cycle  (** whole collection cycle; payload = 0 partial / 1 full *)
  | Handshake  (** posted->complete span; payload = [Status.index] *)
  | Ack  (** mutator adopted a posted status; payload = [Status.index] *)
  | Poll  (** sampled safepoint poll; payload = polls so far *)
  | Stall  (** allocation stall span; payload = mutator id *)
  | Lock_wait  (** block-pool class lock wait; payload = size class *)
  | Steal  (** steal attempt span; payload = 1 hit / 0 miss *)
  | Idle  (** trace worker parked out of work; payload = 0 *)

let kind_tag = function
  | Phase -> 0
  | Cycle -> 1
  | Handshake -> 2
  | Ack -> 3
  | Poll -> 4
  | Stall -> 5
  | Lock_wait -> 6
  | Steal -> 7
  | Idle -> 8

let kind_of_tag = function
  | 0 -> Phase
  | 1 -> Cycle
  | 2 -> Handshake
  | 3 -> Ack
  | 4 -> Poll
  | 5 -> Stall
  | 6 -> Lock_wait
  | 7 -> Steal
  | _ -> Idle

let kind_name = function
  | Phase -> "phase"
  | Cycle -> "cycle"
  | Handshake -> "handshake"
  | Ack -> "ack"
  | Poll -> "poll"
  | Stall -> "stall"
  | Lock_wait -> "lock-wait"
  | Steal -> "steal"
  | Idle -> "idle"

let stride = 4

type ring = {
  track : string;
  tid : int;
  buf : int array;
  cap : int;  (* capacity in events *)
  mutable seq : int;  (* events ever written; single writer *)
  mutable polls : int;  (* safepoint polls counted (sampled emission) *)
}

type event = {
  track : string;
  tid : int;
  kind : kind;
  a : int;
  t0_ns : int;
  dur_ns : int;
}

type t = {
  mutable armed : bool;
  capacity : int;
  reg : Mutex.t;  (* guards ring registration, never recording *)
  mutable rings : ring list;
  mutable collector : ring option;
  mutable handshakes : ring option;
  mutable hs_t0 : int;  (* open handshake's posted timestamp (collector) *)
}

let default_capacity = 16384

let create ?(capacity = default_capacity) () =
  {
    armed = false;
    capacity = Stdlib.max 16 capacity;
    reg = Mutex.create ();
    rings = [];
    collector = None;
    handshakes = None;
    hs_t0 = 0;
  }

let armed t = t.armed
let now_ns () = Clock.now_ns ()

(* Perfetto track ids: the collector and mutators keep Trace_export's
   historical scheme; helper GC workers and the dedicated handshake
   track sit in a high band so they can never collide with mutators. *)
let collector_tid = 0
let mutator_tid mid = 1 + mid
let worker_tid wid = 900 + wid
let handshake_tid = 990

let make_ring t ~track ~tid =
  let r =
    {
      track;
      tid;
      buf = Array.make (t.capacity * stride) 0;
      cap = t.capacity;
      seq = 0;
      polls = 0;
    }
  in
  Mutex.lock t.reg;
  t.rings <- r :: t.rings;
  Mutex.unlock t.reg;
  r

let arm t =
  if not t.armed then begin
    t.collector <- Some (make_ring t ~track:"collector" ~tid:collector_tid);
    t.handshakes <- Some (make_ring t ~track:"handshakes" ~tid:handshake_tid);
    t.armed <- true
  end

let new_ring t ~track ~tid =
  if t.armed then Some (make_ring t ~track ~tid) else None

let collector_ring t = t.collector
let handshake_ring t = t.handshakes

let write r ~t0 ~dur ~tag ~a =
  let i = r.seq mod r.cap * stride in
  r.buf.(i) <- t0;
  r.buf.(i + 1) <- dur;
  r.buf.(i + 2) <- tag;
  r.buf.(i + 3) <- a;
  r.seq <- r.seq + 1

let span r kind ~a ~t0 ~t1 =
  write r ~t0 ~dur:(Stdlib.max 0 (t1 - t0)) ~tag:(kind_tag kind) ~a

let instant r kind ~a ~at = write r ~t0:at ~dur:0 ~tag:(kind_tag kind) ~a

(* Safepoint polls fire on every mutator operation; counting them is one
   increment, and only every [poll_sample_interval]-th poll reads the
   clock and lands in the ring. *)
let poll_sample_interval = 1024

let poll r =
  r.polls <- r.polls + 1;
  if r.polls mod poll_sample_interval = 0 then
    instant r Poll ~a:r.polls ~at:(now_ns ())

(* Handshake spans live on their own track: a posted->complete interval
   can straddle collector phase spans (sync2 is posted before the card
   scan and completes after it), so nesting them on the collector track
   would violate the trace validator's containment invariant.  Only the
   collector domain calls these, so the open-handshake cell is plain. *)
let note_handshake_posted t =
  match t.handshakes with Some _ -> t.hs_t0 <- now_ns () | None -> ()

let note_handshake_completed t ~status =
  match t.handshakes with
  | Some r when t.hs_t0 > 0 ->
      span r Handshake ~a:status ~t0:t.hs_t0 ~t1:(now_ns ());
      t.hs_t0 <- 0
  | _ -> ()

let ring_dropped r = Stdlib.max 0 (r.seq - r.cap)

let ring_events r acc =
  let n = Stdlib.min r.seq r.cap in
  let out = ref acc in
  for k = r.seq - n to r.seq - 1 do
    let i = k mod r.cap * stride in
    out :=
      {
        track = r.track;
        tid = r.tid;
        kind = kind_of_tag r.buf.(i + 2);
        a = r.buf.(i + 3);
        t0_ns = r.buf.(i);
        dur_ns = r.buf.(i + 1);
      }
      :: !out
  done;
  !out

let rings t =
  Mutex.lock t.reg;
  let rs = t.rings in
  Mutex.unlock t.reg;
  rs

let events t =
  let all = List.fold_left (fun acc r -> ring_events r acc) [] (rings t) in
  List.stable_sort (fun a b -> compare a.t0_ns b.t0_ns) all

let dropped t = List.fold_left (fun acc r -> acc + ring_dropped r) 0 (rings t)
let total_polls t = List.fold_left (fun acc r -> acc + r.polls) 0 (rings t)

let tracks t =
  List.sort
    (fun (_, a) (_, b) -> compare a b)
    (List.map (fun (r : ring) -> (r.track, r.tid)) (rings t))
