(** Per-mutator allocation cache for the real-domains substrate.

    The simulator's allocation path takes one free-list pop per object;
    under real domains that would serialise every mutator on the heap
    lock.  Instead each mutator keeps a small cache of {e reserved}
    blocks — popped from the shared free list in batches under the lock,
    held as kind-[Allocated]/color-[Blue] sentinels the sweep skips — and
    the hot path hands out cached blocks with no synchronisation at all
    (the cache is owned by exactly one domain).

    The cache also batches the heap's allocation counters: issued bytes
    and objects accumulate in [pending] and are flushed under the heap
    lock at each refill and at retirement, so the shared totals are exact
    at quiescence without a per-allocation atomic.

    Blocks are binned by size in granules; only small sizes (under
    {!max_cached_bytes}) are cached — larger requests fall through to the
    locked slow path, exactly like a TLAB overflow allocation. *)

type t

val create : unit -> t

val max_cached_bytes : int
(** Requests at or above this size bypass the cache. *)

val n_classes : int
(** Number of size-class bins (sizes are binned by granule). *)

val class_of : size:int -> int
(** The size class a request is binned into (granule-rounded). *)

val cacheable : size:int -> bool

val get : t -> size:int -> int option
(** Pop a reserved block of exactly [size] bytes, if one is cached. *)

val put : t -> size:int -> int -> unit
(** Add a reserved block (called during refill, under the heap lock). *)

val level : t -> size:int -> int
(** Cached blocks of the given size class. *)

val note_issued : t -> bytes:int -> unit
(** Record one object issued from the cache ([bytes] = its block size);
    accumulates into the pending counters. *)

val take_pending : t -> int * int
(** [(bytes, objects)] issued since the last call, and reset.  Flush the
    result into {!Otfgc_heap.Heap.add_alloc_stats} under the heap lock. *)

val drain : t -> (int -> unit) -> unit
(** Empty every bin, passing each still-reserved block to the callback
    (which returns it to the free list under the heap lock).  Called at
    mutator retirement. *)
