(** The mutator-facing runtime: what application (workload) code calls.

    A runtime owns a simulated heap and one collector configuration, and
    exposes the JVM-like primitive operations — allocate, load, store,
    pure work — each of which hides the right write-barrier path,
    handshake polling ([Cooperate] runs at the top of every operation,
    modelling the paper's "backward branches and invocations"), allocation
    triggering, heap growth and allocation stalls.

    Usage: create the runtime, register mutators, spawn the collector as a
    daemon process and the mutator bodies as ordinary processes on the same
    scheduler, then [Sched.run].  All operations taking a {!Mutator.t} must
    be called from that mutator's process. *)

exception Out_of_memory
(** Raised by {!alloc} when a full collection plus maximal heap growth
    still cannot satisfy a request. *)

type t

val create :
  ?heap_config:Otfgc_heap.Heap.config -> ?gc_config:Gc_config.t -> unit -> t

val state : t -> State.t
(** The shared state (read-mostly; for instrumentation and tests). *)

val heap : t -> Otfgc_heap.Heap.t
val stats : t -> Gc_stats.t
val cost : t -> Cost.t

val events : t -> Event_log.t
(** The phase/mutator event log (enable it to record). *)

val telemetry : t -> Telemetry.t
(** Counters and latency histograms (see {!Telemetry}). *)

val sampler : t -> Sampler.t
(** The census sampler ({!Sampler.configure} arms it; the series fills
    via the {!Observatory} hooks). *)

val set_fine_grained : t -> bool -> unit
(** Disable/enable micro-step yields (see {!State.t.fine_grained}).
    Benchmarks turn this off; correctness tests leave it on. *)

val set_parallel : t -> bool -> unit
(** Select the real-domains substrate: heap/registration locks engage, the
    gray queue locks, allocation goes through per-mutator caches, and
    mutator-context costs charge per-mutator ledgers.  Must be set before
    any process starts (the driver does this); the default [false] keeps
    the simulator's behavior bit-identical. *)

val set_gc_workers : t -> int -> unit
(** Arm an [n]-worker collection crew (domains substrate only; set
    before any process starts): the gray queue shards into per-worker
    work-stealing deques, and card scan, trace and sweep run across the
    collector domain plus [n-1] helper domains spawned by the driver
    ({!gc_worker_loop}).  [n <= 1] — the default — leaves the serial
    collector completely untouched. *)

val gc_workers : t -> int
(** Armed crew width ([1] when serial). *)

val recorder : t -> Flight_recorder.t
(** The flight recorder (disarmed unless {!arm_recorder} ran). *)

val arm_recorder : t -> unit
(** Arm the flight recorder (domains substrate only — a no-op unless
    {!set_parallel} came first; call before any process starts).  Every
    domain gets its own wall-clock event ring: the collector, each
    helper GC worker, each mutator registered afterwards, plus a
    dedicated handshake track.  Disarmed recording costs one option
    check per site, so the simulator's digests never move. *)

val gc_worker_loop : t -> int -> unit
(** Helper worker body for worker id [wid] in [1..n-1]; spawn one daemon
    domain per helper after {!set_gc_workers}. *)

val drain_pools : t -> unit
(** Return every block stocked in the per-size-class pools to the free
    list.  The driver calls this at quiescence before the finale's full
    collections (pooled blocks are reserved and would otherwise count
    as live); allocation stalls call it internally. *)

(** {2 Threads} *)

val new_mutator : t -> name:string -> ?n_regs:int -> unit -> Mutator.t
(** Register a mutator (default 16 registers).  If a collection is in
    progress this waits for it to finish, so it must then be called from
    inside a process.  Safe to call from a running domain under the
    domains substrate: registration takes the registration lock, so it
    cannot race a cycle start. *)

val retire_mutator : t -> Mutator.t -> unit
(** The thread exits: stop including it in handshakes, drop its roots.
    Under the domains substrate this also drains the mutator's allocation
    cache back to the shared free list and flushes its batched allocation
    counters. *)

val spawn_collector : t -> Otfgc_sched.Sched.t -> Otfgc_sched.Sched.pid
(** Spawn {!Collector.collector_loop} as a daemon process. *)

val collector_loop : t -> unit
(** The collector daemon body, for substrates that spawn it themselves
    (the driver's domains path passes this to {!Otfgc_sched.Parallel}). *)

val shutdown : t -> unit
(** Ask the collector loop to exit after the current cycle. *)

(** {2 Mutator operations} *)

val alloc : t -> Mutator.t -> size:int -> n_slots:int -> int
(** Allocate an object ([Create] of Figure 1): picks the current allocation
    color, accounts the young-generation trigger, and on exhaustion grows
    the heap, requests a collection and stalls until space appears.
    Raises {!Out_of_memory} if nothing helps.

    {b Rooting contract}: there is no scheduling point between the
    allocation succeeding and [alloc] returning, so the caller can safely
    move the result into a register or stack slot.  It must do so before
    its next runtime operation: OCaml locals are not GC roots — only
    {!Mutator.t} registers and stack slots are (they model the machine
    registers real compiled code keeps references in). *)

val load : t -> Mutator.t -> x:int -> i:int -> int
(** [heap\[x,i\]] — no read barrier, as in DLG. *)

val store : t -> Mutator.t -> x:int -> i:int -> y:int -> unit
(** [heap\[x,i\] <- y] through the write barrier ([Update]). *)

val work : t -> Mutator.t -> int -> unit
(** Pure application work: charges cost, polls the handshake. *)

val load_data : t -> Mutator.t -> x:int -> i:int -> int
(** Read scalar word [i] of object [x] — no barrier, like any non-pointer
    field access. *)

val store_data : t -> Mutator.t -> x:int -> i:int -> v:int -> unit
(** Write a scalar word — no write barrier (the paper's barrier covers
    reference stores only). *)

val cooperate : t -> Mutator.t -> unit
(** Explicit handshake poll (operations already do this). *)

val add_global : t -> int -> unit
(** Register a global root (e.g. a statics object). *)

(** {2 Direct collection control (tests, examples)} *)

val request_collection : t -> full:bool -> unit
(** Ask the collector daemon for a cycle if it is idle (no-op otherwise). *)

val collect_and_wait : t -> Mutator.t -> full:bool -> Gc_stats.cycle
(** The [System.gc()] analogue: request a collection of the given kind and
    block the calling mutator — cooperating with handshakes all the while —
    until that cycle completes.  Returns its statistics.  Requires a
    collector daemon on the current scheduler. *)
