type mode =
  | Non_generational
  | Generational
  | Generational_aging of { oldest_age : int }
  | Generational_adaptive

type intergen = Card_marking | Remembered_set

type t = {
  mode : mode;
  intergen : intergen;
  young_bytes : int;
  full_trigger_fraction : float;
  grow_headroom_fraction : float;
  naive_card_clear : bool;
}

let default =
  {
    mode = Generational;
    intergen = Card_marking;
    young_bytes = 512 * 1024;
    full_trigger_fraction = 0.75;
    grow_headroom_fraction = 0.25;
    naive_card_clear = false;
  }

let non_generational = { default with mode = Non_generational }

let generational ?(young_bytes = default.young_bytes)
    ?(intergen = Card_marking) () =
  { default with mode = Generational; young_bytes; intergen }

let adaptive ?(young_bytes = default.young_bytes) () =
  { default with mode = Generational_adaptive; young_bytes }

let aging ?(young_bytes = default.young_bytes) ~oldest_age () =
  if oldest_age < 1 || oldest_age > 64 then
    invalid_arg "Gc_config.aging: oldest_age must be in 1..64";
  { default with mode = Generational_aging { oldest_age }; young_bytes }

let mode_name = function
  | Non_generational -> "non-generational"
  | Generational -> "generational"
  | Generational_aging { oldest_age } ->
      Printf.sprintf "generational-aging(%d)" oldest_age
  | Generational_adaptive -> "generational-adaptive"

let intergen_name = function
  | Card_marking -> "cards"
  | Remembered_set -> "remset"

let validate t =
  match (t.mode, t.intergen) with
  | (Generational_aging _ | Generational_adaptive), Remembered_set ->
      invalid_arg
        "Gc_config: remembered sets are only implemented for the simple \
         promotion policy (aging retains inter-generational entries across \
         cycles, which needs the card protocol of Section 7.2)"
  | _ -> ()

let is_generational = function
  | Non_generational -> false
  | Generational | Generational_aging _ | Generational_adaptive -> true
