(* Coordination state for multi-worker collection on the domains
   substrate.

   Worker 0 is the orchestrating collector domain itself; workers
   1..n-1 are helper domains parked in Collector.gc_worker_loop.  The
   orchestrator opens a phase by publishing the phase name and then
   incrementing [epoch] (the release store the helpers' epoch poll
   acquires); helpers run their share and increment [done_count]; the
   orchestrator runs worker 0's share and waits for
   [done_count = n - 1] before folding every worker's partial counters
   into the cycle record.  Between phases helpers spin on [epoch], so
   all cycle-global decisions stay on the orchestrator exactly as in
   the serial collector.

   Trace termination (the only phase whose work set grows while it
   runs) uses the idle/activity protocol described in DESIGN.md §11:
   a worker that goes idle increments [idle]; before taking any work
   it increments [activity] and decrements [idle] — in that order, so
   the termination check below can never miss work created by a worker
   it already counted idle.  Termination is declared only by a worker
   that observes, in order: a stamp a1 of [activity]; [idle] = n;
   every queue empty; [activity] still a1.  If any worker took work
   after the stamp, the final read sees a changed stamp and the check
   retries.  Mutator barrier pushes racing the declaration are
   tolerated exactly as in the serial trace's final pop-None — the
   late-shaded object rides through the sweep as floating gray and is
   normalised there. *)

module Page_set = Otfgc_heap.Page_set

type phase = Idle | Cards_simple | Cards_aging | Trace | Sweep

type worker = {
  wid : int;
  cost : Cost.t;
  tel : Telemetry.t;
  pages : Page_set.t;
  (* worker 0 aliases the shared [State.pages]; helpers get private sets
     the orchestrator unions in at the cycle barrier (merge_pages), so
     [pages_touched] is exact at every crew width *)
  mutable ring : Flight_recorder.ring option;
  mutable tick : int;
  scratch : int array ref;
  (* per-phase partials, folded into the cycle record at the phase
     barrier and zeroed *)
  mutable dirty_cards : int;
  mutable intergen_scanned : int;
  mutable card_scan_bytes : int;
  mutable objects_traced : int;
  mutable promotions : int;
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable steals : int;
  mutable steal_failures : int;
}

type t = {
  mutable n_workers : int;
  mutable workers : worker array;
  epoch : int Atomic.t;
  mutable phase : phase;
  done_count : int Atomic.t;
  idle : int Atomic.t;
  activity : int Atomic.t;
  term : bool Atomic.t;
  mutable sweep_bounds : int array;
}

let make_worker ~wid ~cost ~tel ~pages =
  {
    wid;
    cost;
    tel;
    pages;
    ring = None;
    tick = 0;
    scratch = ref (Array.make 32 0);
    dirty_cards = 0;
    intergen_scanned = 0;
    card_scan_bytes = 0;
    objects_traced = 0;
    promotions = 0;
    objects_freed = 0;
    bytes_freed = 0;
    steals = 0;
    steal_failures = 0;
  }

let create () =
  {
    n_workers = 1;
    workers = [||];
    epoch = Atomic.make 0;
    phase = Idle;
    done_count = Atomic.make 0;
    idle = Atomic.make 0;
    activity = Atomic.make 0;
    term = Atomic.make false;
    sweep_bounds = [||];
  }

(* Arm the crew.  Worker 0 keeps charging the shared collector ledgers
   (phase attribution stays exact); helpers get private ledgers the
   orchestrator merges into the shared ones at each cycle's end. *)
let configure t ~n ~cost0 ~tel0 ~pages0 ~layout =
  t.n_workers <- n;
  t.workers <-
    Array.init n (fun wid ->
        if wid = 0 then make_worker ~wid ~cost:cost0 ~tel:tel0 ~pages:pages0
        else
          make_worker ~wid ~cost:(Cost.create ()) ~tel:(Telemetry.create ())
            ~pages:(Page_set.create layout))

let active t = t.n_workers > 1

let reset_partials w =
  w.dirty_cards <- 0;
  w.intergen_scanned <- 0;
  w.card_scan_bytes <- 0;
  w.objects_traced <- 0;
  w.promotions <- 0;
  w.objects_freed <- 0;
  w.bytes_freed <- 0;
  w.steals <- 0;
  w.steal_failures <- 0

(* Fold every worker's phase partials into the cycle record, then zero
   them for the next phase.  Orchestrator only, at a phase barrier. *)
let drain_partials t (cycle : Gc_stats.cycle) =
  Array.iter
    (fun w ->
      cycle.Gc_stats.dirty_cards <- cycle.Gc_stats.dirty_cards + w.dirty_cards;
      cycle.Gc_stats.intergen_scanned <-
        cycle.Gc_stats.intergen_scanned + w.intergen_scanned;
      cycle.Gc_stats.card_scan_bytes <-
        cycle.Gc_stats.card_scan_bytes + w.card_scan_bytes;
      cycle.Gc_stats.objects_traced <-
        cycle.Gc_stats.objects_traced + w.objects_traced;
      cycle.Gc_stats.promotions <- cycle.Gc_stats.promotions + w.promotions;
      cycle.Gc_stats.objects_freed <-
        cycle.Gc_stats.objects_freed + w.objects_freed;
      cycle.Gc_stats.bytes_freed <- cycle.Gc_stats.bytes_freed + w.bytes_freed;
      cycle.Gc_stats.steals <- cycle.Gc_stats.steals + w.steals;
      cycle.Gc_stats.steal_failures <-
        cycle.Gc_stats.steal_failures + w.steal_failures;
      reset_partials w)
    t.workers

(* Merge the helpers' private cost/telemetry ledgers into the shared
   ones and reset them.  Orchestrator only, before the cycle's work
   accounting reads the shared ledger (run_cycle's [work - work0]). *)
let merge_ledgers t ~cost0 ~tel0 =
  Array.iter
    (fun w ->
      if w.wid <> 0 then begin
        Cost.merge_into ~src:w.cost ~dst:cost0;
        Cost.reset w.cost;
        Telemetry.merge_into ~src:w.tel ~dst:tel0;
        Telemetry.reset w.tel
      end)
    t.workers

(* Union the helpers' private page sets into the shared one and clear
   them for the next cycle.  Orchestrator only, at the cycle barrier,
   before [Page_set.count] reads the shared set. *)
let merge_pages t ~dst =
  Array.iter
    (fun w ->
      if w.wid <> 0 then begin
        Page_set.merge_into ~src:w.pages ~dst;
        Page_set.reset w.pages
      end)
    t.workers

(* Hand every helper its flight-recorder track.  Worker 0 records on the
   collector's own ring: its phase shares run inline inside the
   orchestrator's phase spans. *)
let attach_rings t fr =
  Array.iter
    (fun w ->
      if w.wid = 0 then w.ring <- Flight_recorder.collector_ring fr
      else
        w.ring <-
          Flight_recorder.new_ring fr
            ~track:(Printf.sprintf "gc-worker-%d" w.wid)
            ~tid:(Flight_recorder.worker_tid w.wid))
    t.workers

(* {2 Phase protocol — orchestrator side} *)

let open_phase t p =
  t.phase <- p;
  Atomic.set t.done_count 0;
  if p = Trace then begin
    Atomic.set t.idle 0;
    Atomic.set t.activity 0;
    Atomic.set t.term false
  end;
  (* release store: helpers acquire it in their epoch poll *)
  Atomic.incr t.epoch

let helpers_done t = Atomic.get t.done_count >= t.n_workers - 1

(* {2 Trace termination — any worker} *)

(* Call while holding no work, after registering idle (incr t.idle).
   Returns true when termination has been (or is now) declared. *)
let try_terminate t ~queues_empty =
  Atomic.get t.term
  ||
  let a1 = Atomic.get t.activity in
  if Atomic.get t.idle = t.n_workers && queues_empty ()
     && Atomic.get t.activity = a1
  then begin
    Atomic.set t.term true;
    true
  end
  else Atomic.get t.term

(* A worker leaves the idle set to take (or look for) work: the order —
   activity stamp first, then idle decrement — is what makes the
   termination check sound (see module header). *)
let leave_idle t =
  Atomic.incr t.activity;
  Atomic.decr t.idle
