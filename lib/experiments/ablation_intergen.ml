(* Ablation A (beyond the paper's tables): card marking vs remembered
   sets.

   Section 3.1 weighs the two classical mechanisms for tracking
   inter-generational pointers and chooses card marking ("in Java we
   expect many pointer updates, and the cost of an update must be
   minimal. Also, we did not have an extra bit available in the object
   headers required for an efficient implementation of remembered sets").
   This simulator has the spare bit, so the comparison the authors could
   not run is reproduced here: % improvement over the non-generational
   baseline with object marking (16 B cards), block marking (4096 B
   cards) and exact remembered sets, plus the collector-side scan volume
   each mechanism causes. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let configs =
  List.concat_map
    (fun p ->
      [
        Lab.cfg ~card:16 p;
        Lab.cfg ~card:Sweeps.block_marking p;
        Lab.cfg ~mode:Lab.Gen_remset p;
        Lab.cfg ~mode:Lab.Non_gen p;
      ])
    Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Ablation A: inter-generational tracking — card marking vs \
         remembered sets (% improvement; scanned objects per partial)"
      [
        "Benchmark";
        "cards 16B %";
        "cards 4096B %";
        "remset %";
        "scan 16B";
        "scan 4096B";
        "scan remset";
      ]
  in
  List.iter
    (fun p ->
      let imp16 = Lab.improvement lab ~card:16 p in
      let imp4096 = Lab.improvement lab ~card:Sweeps.block_marking p in
      let imprs = Lab.improvement lab ~mode:Lab.Gen_remset p in
      let scan16 = (Lab.run lab ~card:16 p).R.avg_intergen_scanned in
      let scan4096 =
        (Lab.run lab ~card:Sweeps.block_marking p).R.avg_intergen_scanned
      in
      let scanrs = (Lab.run lab ~mode:Lab.Gen_remset p).R.avg_intergen_scanned in
      Textable.add_row t
        [
          p.Profile.name;
          Sweeps.fmt_signed imp16;
          Sweeps.fmt_signed imp4096;
          Sweeps.fmt_signed imprs;
          Textable.fmt_int scan16;
          Textable.fmt_int scan4096;
          Textable.fmt_int scanrs;
        ])
    Profile.all;
  t
