(* Figure 14: average gain from collections — objects and space freed per
   partial, full and non-generational cycle. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:"Figure 14: average gain from collections (objects / bytes freed)"
      [
        "Benchmark";
        "objs partial";
        "objs full";
        "objs w/o gen";
        "bytes partial";
        "bytes full";
        "bytes w/o gen";
      ]
  in
  List.iter
    (fun p ->
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      let fmt_full v = if gen.R.n_full = 0 then Textable.na else Textable.fmt_int v in
      Textable.add_row t
        [
          p.Profile.name;
          Textable.fmt_int gen.R.avg_objects_freed_partial;
          fmt_full gen.R.avg_objects_freed_full;
          Textable.fmt_int base.R.avg_objects_freed_non_gen;
          Textable.fmt_int gen.R.avg_bytes_freed_partial;
          fmt_full gen.R.avg_bytes_freed_full;
          Textable.fmt_int base.R.avg_bytes_freed_non_gen;
        ])
    Profile.all;
  t
