(* Figure 13: elapsed time of collection cycles — average collector work
   per partial, full and non-generational cycle.  Work units, not ms; the
   paper's ms values are given for shape comparison (partials cheaper than
   fulls "but not drastically less", Section 8.4). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let paper =
  [
    ("mtrt", "99", "N/A", "260");
    ("compress", "17", "35", "31");
    ("db", "80", "270", "215");
    ("jess", "61", "116", "87");
    ("javac", "145", "367", "249");
    ("jack", "60", "95", "71");
    ("anagram", "52", "429", "346");
  ]

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 13: average collection-cycle cost (work units; paper ms in \
         parentheses)"
      [ "Benchmark"; "partial"; "full"; "w/o gen"; "(paper ms)" ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pp, pf, pn = List.find (fun (n, _, _, _) -> n = name) paper in
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      let fmt_full v = if gen.R.n_full = 0 then Textable.na else Textable.fmt_int v in
      Textable.add_row t
        [
          name;
          Textable.fmt_int gen.R.avg_work_partial;
          fmt_full gen.R.avg_work_full;
          Textable.fmt_int base.R.avg_work_non_gen;
          Printf.sprintf "(%s %s %s)" pp pf pn;
        ])
    Profile.all;
  t
