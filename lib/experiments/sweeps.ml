(* Shared sweep axes, labelled with the paper's parameter names.

   Young-generation sizes are the paper's 1/2/4/8 MB scaled by 8 (the
   whole simulation runs at 1/8 linear scale: 4 MB max heap vs 32 MB);
   card sizes are NOT scaled — they are absolute object-granularity
   choices (16 bytes = "object marking", 4096 = "block marking"). *)

let kb = 1024

let young_sizes =
  [ ("1m", 128 * kb); ("2m", 256 * kb); ("4m", 512 * kb); ("8m", 1024 * kb) ]

let card_sizes = [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let block_marking = 4096
let object_marking = 16

let raytracer_threads = [ 2; 4; 6; 8; 10 ]

let fmt_signed v = Printf.sprintf "%.1f" v

(* Config-grid helpers: every figure enumerates its whole grid up front
   and submits it to [Lab.run_many] as one batch, so the individual runs
   can fan out across domains before any table rendering starts. *)

let gen_and_baseline ?card ?young p =
  [ Lab.cfg ?card ?young p; Lab.cfg ?card ?young ~mode:Lab.Non_gen p ]

let gen_and_baseline_all ?card ?young profiles =
  List.concat_map (fun p -> gen_and_baseline ?card ?young p) profiles
