(* Figure 8: percentage improvement for Anagram, multiprocessor and
   uniprocessor. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let paper_multi = 25.0
let paper_uni = 32.7

let configs = Sweeps.gen_and_baseline Profile.anagram

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create ~title:"Figure 8: % improvement for Anagram"
      [ "Benchmark"; "Multi %"; "Uni %"; "Paper multi"; "Paper uni" ]
  in
  let multi = Lab.improvement lab ~multiprocessor:true Profile.anagram in
  let uni = Lab.improvement lab ~multiprocessor:false Profile.anagram in
  Textable.add_row t
    [
      "Anagram";
      Sweeps.fmt_signed multi;
      Sweeps.fmt_signed uni;
      Sweeps.fmt_signed paper_multi;
      Sweeps.fmt_signed paper_uni;
    ];
  t
