(** Shared infrastructure for the reproduced experiments.

    A lab memoises workload runs by configuration so that figures sharing
    the same run (e.g. Figures 10–15 all read the default-configuration
    runs) execute it once.  All knobs default to the paper's chosen
    parameters: object marking (16-byte cards), 512 KB young generation
    (the paper's 4 MB scaled by 8), simple promotion. *)

type t

val create : ?scale:float -> ?seed:int -> unit -> t
(** [scale] multiplies every workload's allocation volume (default 1.0);
    benchmarks use it to trade fidelity for speed. *)

val scale : t -> float

type mode = Gen | Non_gen | Aging of int | Gen_remset | Adaptive
(** Collector selection; [Aging n] uses the paper's threshold convention
    (old at age [n]); [Gen_remset] is the simple collector with
    remembered-set inter-generational tracking (Section 3.1's road not
    taken); [Adaptive] is the dynamic tenuring policy of Section 6's
    future-work remark. *)

val run :
  t ->
  ?card:int ->
  ?young:int ->
  ?mode:mode ->
  Otfgc_workloads.Profile.t ->
  Otfgc_metrics.Run_result.t
(** Run (or recall) the profile under the given configuration.
    Defaults: 16-byte cards, 512 KB young generation, [Gen]. *)

val improvement :
  t ->
  ?card:int ->
  ?young:int ->
  ?mode:mode ->
  ?multiprocessor:bool ->
  Otfgc_workloads.Profile.t ->
  float
(** Percentage improvement of the selected generational configuration over
    the non-generational baseline (same card/young settings), positive =
    generations faster.  [multiprocessor] defaults to [true] (the paper's
    4-way measurements); [false] selects the uniprocessor elapsed proxy. *)
