(** Shared infrastructure for the reproduced experiments.

    A lab memoises workload runs by configuration so that figures sharing
    the same run (e.g. Figures 10–15 all read the default-configuration
    runs) execute it once — in memory for the life of the lab, and in a
    persistent on-disk cache (default [_cache/]) across processes, so a
    repeated figure regeneration performs zero simulation runs.

    Independent configurations can be fanned out across OCaml 5 domains
    with {!run_many}.  Every simulation is deterministic in its
    [(profile, mode, card, young, scale, seed)] configuration — it builds
    its own heap, scheduler and RNG — so parallel execution returns
    results identical to sequential execution; the tests assert this.

    All knobs default to the paper's chosen parameters: object marking
    (16-byte cards), 512 KB young generation (the paper's 4 MB scaled by
    8), simple promotion. *)

type t

val create :
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  ?cache_dir:string option ->
  unit ->
  t
(** [scale] multiplies every workload's allocation volume (default 1.0);
    benchmarks use it to trade fidelity for speed.  [jobs] is the default
    parallelism of {!run_many} (default {!Otfgc_support.Pool.default_jobs},
    i.e. the [OTFGC_JOBS] environment variable or the recommended domain
    count; [1] = sequential).  [cache_dir] locates the persistent cache;
    [None] disables it (default [Some "_cache"]). *)

val scale : t -> float

val jobs : t -> int

type mode = Gen | Non_gen | Aging of int | Gen_remset | Adaptive
(** Collector selection; [Aging n] uses the paper's threshold convention
    (old at age [n]); [Gen_remset] is the simple collector with
    remembered-set inter-generational tracking (Section 3.1's road not
    taken); [Adaptive] is the dynamic tenuring policy of Section 6's
    future-work remark. *)

type cfg = { profile : Otfgc_workloads.Profile.t; mode : mode; card : int; young : int }
(** One simulation configuration — the unit of batching and caching. *)

val cfg :
  ?card:int ->
  ?young:int ->
  ?mode:mode ->
  Otfgc_workloads.Profile.t ->
  cfg
(** Build a configuration with the paper's defaults: 16-byte cards,
    512 KB young generation, [Gen]. *)

val run_many :
  t -> ?jobs:int -> cfg list -> Otfgc_metrics.Run_result.t list
(** Resolve every configuration, in order.  Each unique configuration is
    looked up in the memo table, then in the disk cache; the remaining
    misses are simulated — across [jobs] domains (default: the lab's
    [jobs]) on a work-stealing pool when [jobs > 1], sequentially in the
    calling domain otherwise.  Results are independent of [jobs]. *)

val prefetch : t -> ?jobs:int -> cfg list -> unit
(** [run_many] for effect: figure modules submit their whole
    configuration grid up front, so the subsequent table-rendering loops
    are pure cache hits. *)

val run :
  t ->
  ?card:int ->
  ?young:int ->
  ?mode:mode ->
  Otfgc_workloads.Profile.t ->
  Otfgc_metrics.Run_result.t
(** Run (or recall) one configuration in the calling domain.
    Defaults: 16-byte cards, 512 KB young generation, [Gen]. *)

val improvement :
  t ->
  ?card:int ->
  ?young:int ->
  ?mode:mode ->
  ?multiprocessor:bool ->
  Otfgc_workloads.Profile.t ->
  float
(** Percentage improvement of the selected generational configuration over
    the non-generational baseline (same card/young settings), positive =
    generations faster.  [multiprocessor] defaults to [true] (the paper's
    4-way measurements); [false] selects the uniprocessor elapsed proxy. *)

(** {2 Cache observability} *)

type counters = { computed : int; mem_hits : int; disk_hits : int }
(** [computed] counts actual simulation runs; [mem_hits] resolutions from
    the in-memory memo table; [disk_hits] records reloaded from the
    persistent cache. *)

val counters : t -> counters

val cache_version : int
(** Schema version stamped into every cache record; bumping it
    invalidates all previously written records. *)

val cache_path : t -> cfg -> string option
(** The file a configuration's cached result lives in ([None] when the
    lab has no cache directory).  The key encodes profile, mode, card,
    young size, scale and seed. *)
