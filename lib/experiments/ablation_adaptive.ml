(* Ablation B (the paper's future-work remark in Section 6): dynamic
   tenuring.

   The fixed-threshold aging mechanism disappointed (Figures 18-20); the
   paper notes "dynamic policies could easily be implemented".  The
   [Generational_adaptive] collector adjusts the tenuring threshold from
   each partial collection's young survival rate: promote immediately when
   virtually everything dies young, age longer when many survive.  This
   table compares simple promotion, the best fixed aging threshold the
   paper tried (4), and the adaptive policy. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let configs =
  List.concat_map
    (fun p ->
      [
        Lab.cfg p;
        Lab.cfg ~mode:(Lab.Aging 4) p;
        Lab.cfg ~mode:Lab.Adaptive p;
        Lab.cfg ~mode:Lab.Non_gen p;
      ])
    Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Ablation B: promotion policies — simple vs fixed aging(4) vs \
         adaptive tenuring (% improvement over non-generational)"
      [ "Benchmark"; "simple %"; "aging(4) %"; "adaptive %" ]
  in
  List.iter
    (fun p ->
      Textable.add_row t
        [
          p.Profile.name;
          Sweeps.fmt_signed (Lab.improvement lab p);
          Sweeps.fmt_signed (Lab.improvement lab ~mode:(Lab.Aging 4) p);
          Sweeps.fmt_signed (Lab.improvement lab ~mode:Lab.Adaptive p);
        ])
    Profile.all;
  t
