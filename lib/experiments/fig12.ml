(* Figure 12: generational characterisation, part 2 — percentage of bytes
   and objects freed in partial collections (of the young generation), in
   full collections and without generations (of all allocated objects). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let paper =
  [
    ("mtrt", "99.89", "99.54", "N/A", "52.3");
    ("compress", "19.29", "40.43", "2.6", "2.3");
    ("db", "97.66", "99.77", "22.2", "43.1");
    ("jess", "98.02", "97.88", "87.2", "86.3");
    ("javac", "71.25", "68.67", "44.7", "26.8");
    ("jack", "91.63", "96.58", "90.8", "94.7");
    ("anagram", "86.22", "93.43", "14.2", "13.2");
  ]

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:"Figure 12: percentage of bytes/objects freed per collection kind"
      [
        "Benchmark";
        "bytes% partial";
        "objs% partial";
        "objs% full";
        "objs% w/o gen";
        "(paper)";
      ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pb, po, pf, pn = List.find (fun (n, _, _, _, _) -> n = name) paper in
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      let fmt_full v = if gen.R.n_full = 0 then Textable.na else Textable.fmt_f1 v in
      Textable.add_row t
        [
          name;
          Textable.fmt_f1 gen.R.pct_bytes_freed_partial;
          Textable.fmt_f1 gen.R.pct_objects_freed_partial;
          fmt_full gen.R.pct_objects_freed_full;
          Textable.fmt_f1 base.R.pct_objects_freed_non_gen;
          Printf.sprintf "(%s %s %s %s)" pb po pf pn;
        ])
    Profile.all;
  t
