(* Figure 11: generational characterisation, part 1 — average numbers of
   objects scanned: old objects scanned for inter-generational pointers,
   objects scanned in partial collections, in full collections, and
   without generations.  Paper values are /8 comparable only in shape
   (the simulation runs at 1/8 scale). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let paper =
  [
    ("mtrt", "280", "1023", "N/A", "238703");
    ("compress", "3", "168", "4789", "4778");
    ("db", "7", "399", "294534", "287522");
    ("jess", "1373", "3797", "25411", "25446");
    ("javac", "16184", "53833", "213735", "194267");
    ("jack", "151", "4890", "14972", "11241");
    ("anagram", "1", "863", "273248", "271453");
  ]

let fmt_opt v = if v = 0. then Textable.na else Textable.fmt_int v

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 11: objects scanned per collection (paper values at 8x scale \
         in parentheses)"
      [ "Benchmark"; "inter-gen"; "partial"; "full"; "w/o gen"; "(paper)" ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pi, pp, pf, pn = List.find (fun (n, _, _, _, _) -> n = name) paper in
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      Textable.add_row t
        [
          name;
          Textable.fmt_int gen.R.avg_intergen_scanned;
          Textable.fmt_int gen.R.avg_scanned_partial;
          fmt_opt gen.R.avg_scanned_full;
          Textable.fmt_int base.R.avg_scanned_non_gen;
          Printf.sprintf "(%s %s %s %s)" pi pp pf pn;
        ])
    Profile.all;
  t
