(* Figure 7: percentage improvement (elapsed time) for the multithreaded
   Ray Tracer on the 4-way multiprocessor, 2-10 application threads. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let paper = [ (2, 1.3); (4, 2.6); (6, 10.6); (8, 16.0); (10, 11.7) ]

let configs =
  List.concat_map
    (fun (n, _) -> Sweeps.gen_and_baseline (Profile.raytracer ~threads:n))
    paper

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 7: % improvement (elapsed) for multithreaded Ray Tracer on a \
         4-way multiprocessor"
      [ "No. of threads"; "Improvement %"; "Paper %" ]
  in
  List.iter
    (fun (n, paper_v) ->
      let imp = Lab.improvement lab (Profile.raytracer ~threads:n) in
      Textable.add_row t
        [ string_of_int n; Sweeps.fmt_signed imp; Sweeps.fmt_signed paper_v ])
    paper;
  t
