(* Figure 10: use of garbage collection in the applications — percent of
   time GC is active, number of partial and full collections, and the same
   without generations. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

(* name, %gc, #partial, #full, %gc w/o gen, #collections w/o gen *)
let paper =
  [
    ("mtrt", 21.5, 36, 0, 30.5, 26);
    ("compress", 1.7, 5, 15, 1.2, 17);
    ("db", 2.4, 15, 1, 3.4, 15);
    ("jess", 13.3, 70, 2, 14.8, 51);
    ("javac", 23.8, 36, 16, 43.3, 82);
    ("jack", 7.7, 45, 4, 6.3, 35);
    ("anagram", 62.8, 152, 8, 78.9, 56);
  ]

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create ~title:"Figure 10: use of garbage collection in application"
      [
        "Benchmark";
        "GC active %";
        "#partial";
        "#full";
        "GC% w/o gen";
        "#GC w/o gen";
        "(paper)";
      ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pg, pp, pf, png, pn = List.find (fun (n, _, _, _, _, _) -> n = name) paper in
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      Textable.add_row t
        [
          name;
          Textable.fmt_f1 gen.R.pct_time_gc;
          string_of_int gen.R.n_partial;
          string_of_int gen.R.n_full;
          Textable.fmt_f1 base.R.pct_time_gc;
          string_of_int base.R.n_non_gen;
          Printf.sprintf "%.1f%% %d/%d %.1f%% %d" pg pp pf png pn;
        ])
    Profile.all;
  t
