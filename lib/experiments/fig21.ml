(* Figure 21: % improvement of generational over non-generational
   collection for card sizes 16..4096 bytes (young generation fixed at the
   4m-equivalent). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let configs =
  List.concat_map
    (fun card -> Sweeps.gen_and_baseline_all ~card Profile.all)
    Sweeps.card_sizes

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 21: % improvement per card size (16 B = object marking, \
         4096 B = block marking)"
      ("Benchmark" :: List.map (fun c -> string_of_int c) Sweeps.card_sizes)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun card -> Sweeps.fmt_signed (Lab.improvement lab ~card p))
          Sweeps.card_sizes
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t
