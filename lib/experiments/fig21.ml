(* Figure 21: % improvement of generational over non-generational
   collection for card sizes 16..4096 bytes (young generation fixed at the
   4m-equivalent). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let run lab =
  let t =
    Textable.create
      ~title:
        "Figure 21: % improvement per card size (16 B = object marking, \
         4096 B = block marking)"
      ("Benchmark" :: List.map (fun c -> string_of_int c) Sweeps.card_sizes)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun card -> Sweeps.fmt_signed (Lab.improvement lab ~card p))
          Sweeps.card_sizes
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t
