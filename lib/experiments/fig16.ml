(* Figure 16: tuning the size of the young generation for the
   multithreaded Ray Tracer — % improvement with block marking (4096-byte
   cards) and object marking (16-byte cards) for young sizes 1m-8m
   (paper-equivalent labels; actual sizes are /8). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let configs =
  List.concat_map
    (fun n ->
      let p = Profile.raytracer ~threads:n in
      List.concat_map
        (fun card ->
          List.concat_map
            (fun (_, young) -> Sweeps.gen_and_baseline ~card ~young p)
            Sweeps.young_sizes)
        [ Sweeps.block_marking; Sweeps.object_marking ])
    Sweeps.raytracer_threads

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 16: young-generation size tuning, multithreaded Ray Tracer \
         (% improvement)"
      ("Configuration"
      :: List.map (fun n -> string_of_int n) Sweeps.raytracer_threads)
  in
  List.iter
    (fun (marking, card) ->
      List.iter
        (fun (label, young) ->
          let row =
            List.map
              (fun n ->
                Sweeps.fmt_signed
                  (Lab.improvement lab ~card ~young (Profile.raytracer ~threads:n)))
              Sweeps.raytracer_threads
          in
          Textable.add_row t
            (Printf.sprintf "%s marking, %s young" marking label :: row))
        Sweeps.young_sizes)
    [ ("block", Sweeps.block_marking); ("object", Sweeps.object_marking) ];
  t
