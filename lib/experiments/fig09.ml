(* Figure 9: percentage improvement for the SPECjvm benchmarks,
   multiprocessor and uniprocessor. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let paper =
  [
    ("mtrt", 7.0, 25.2);
    ("compress", 0.0, 2.0);
    ("db", -0.9, 0.7);
    ("jess", -3.7, -2.5);
    ("javac", 17.2, 15.3);
    ("jack", -2.12, -7.7);
  ]

let configs = Sweeps.gen_and_baseline_all Profile.spec_benchmarks

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:"Figure 9: % improvement for SPECjvm benchmarks"
      [ "Benchmark"; "Multi %"; "Uni %"; "Paper multi"; "Paper uni" ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pm, pu = List.find (fun (n, _, _) -> n = name) paper in
      let multi = Lab.improvement lab ~multiprocessor:true p in
      let uni = Lab.improvement lab ~multiprocessor:false p in
      Textable.add_row t
        [
          name;
          Sweeps.fmt_signed multi;
          Sweeps.fmt_signed uni;
          Sweeps.fmt_signed pm;
          Sweeps.fmt_signed pu;
        ])
    Profile.spec_benchmarks;
  t
