module Heap = Otfgc_heap.Heap
module Gc_config = Otfgc.Gc_config
module Profile = Otfgc_workloads.Profile
module Driver = Otfgc_workloads.Driver
module Run_result = Otfgc_metrics.Run_result
module Pool = Otfgc_support.Pool

type mode = Gen | Non_gen | Aging of int | Gen_remset | Adaptive

type cfg = { profile : Profile.t; mode : mode; card : int; young : int }

type counters = { computed : int; mem_hits : int; disk_hits : int }

type t = {
  scale : float;
  seed : int;
  jobs : int;
  cache_dir : string option;
  lock : Mutex.t;
  table : (string, Run_result.t) Hashtbl.t;
  mutable n_computed : int;
  mutable n_mem_hits : int;
  mutable n_disk_hits : int;
}

let default_cache_dir = "_cache"

(* Bump whenever the run semantics or Run_result layout change: every
   on-disk record carries this number and stale records are silently
   recomputed. *)
let cache_version = 2

let create ?(scale = 1.0) ?(seed = 42) ?jobs
    ?(cache_dir = Some default_cache_dir) () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if jobs < 1 then invalid_arg "Lab.create: jobs must be >= 1";
  {
    scale;
    seed;
    jobs;
    cache_dir;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    n_computed = 0;
    n_mem_hits = 0;
    n_disk_hits = 0;
  }

let scale t = t.scale
let jobs t = t.jobs

let counters t =
  Mutex.lock t.lock;
  let c =
    { computed = t.n_computed; mem_hits = t.n_mem_hits; disk_hits = t.n_disk_hits }
  in
  Mutex.unlock t.lock;
  c

let default_card = 16
let default_young = 512 * 1024

let mode_tag = function
  | Gen -> "gen"
  | Non_gen -> "nongen"
  | Aging n -> Printf.sprintf "aging%d" n
  | Gen_remset -> "remset"
  | Adaptive -> "adaptive"

let gc_of_mode mode young =
  match mode with
  | Gen -> Gc_config.generational ~young_bytes:young ()
  | Non_gen -> { Gc_config.non_generational with Gc_config.young_bytes = young }
  | Aging n -> Gc_config.aging ~young_bytes:young ~oldest_age:n ()
  | Gen_remset ->
      Gc_config.generational ~young_bytes:young
        ~intergen:Gc_config.Remembered_set ()
  | Adaptive -> Gc_config.adaptive ~young_bytes:young ()

let cfg ?(card = default_card) ?(young = default_young) ?(mode = Gen) profile =
  { profile; mode; card; young }

(* The non-generational baseline neither marks nor scans cards, so the
   card size cannot affect it: normalise it out of the cache key (one
   baseline run serves a whole card-size sweep). *)
let normalize c =
  match c.mode with Non_gen -> { c with card = default_card } | _ -> c

(* The key doubles as the cache file name, so it sticks to [-._a-z0-9]
   characters; scale is rendered as a hex float to keep it exact. *)
let key t c =
  Printf.sprintf "%s-%s-c%d-y%d-s%h-r%d" c.profile.Profile.name
    (mode_tag c.mode) c.card c.young t.scale t.seed

(* ------------------------------------------------------------------ *)
(* Persistent on-disk cache                                            *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let cache_file t k =
  Option.map (fun dir -> Filename.concat dir (k ^ ".run")) t.cache_dir

let cache_path t c = cache_file t (key t (normalize c))

(* A record is [(cache_version, key, result)]; anything unreadable, or
   readable but from another schema version or key, falls back to
   recomputation. *)
let disk_load t k =
  match cache_file t k with
  | None -> None
  | Some path -> (
      if not (Sys.file_exists path) then None
      else
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> (Marshal.from_channel ic : int * string * Run_result.t))
        with
        | v, k', r when v = cache_version && k' = k -> Some r
        | _ -> None
        | exception _ -> None)

let disk_store t k r =
  match cache_file t k with
  | None -> ()
  | Some path -> (
      try
        Option.iter mkdir_p t.cache_dir;
        (* Write-then-rename keeps concurrent writers (several domains,
           or several gcsim processes) from exposing torn records; the
           domain id in the temp name keeps sibling workers apart. *)
        let tmp =
          Printf.sprintf "%s.%d.tmp" path (Domain.self () :> int)
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Marshal.to_channel oc (cache_version, k, r) []);
        Sys.rename tmp path
      with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Memo table (shared across domains, hence the lock)                  *)
(* ------------------------------------------------------------------ *)

let mem_find t k =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.table k in
  Mutex.unlock t.lock;
  r

let mem_store t k r =
  Mutex.lock t.lock;
  Hashtbl.replace t.table k r;
  Mutex.unlock t.lock

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let compute t c =
  let heap = { Driver.default_heap with Heap.card_size = c.card } in
  Driver.run ~heap ~seed:t.seed ~scale:t.scale ~gc:(gc_of_mode c.mode c.young)
    c.profile

(* Executed on a pool worker: runs the simulation and publishes the
   result to the memo table and the disk cache. *)
let compute_and_store t k c =
  let r = compute t c in
  bump t (fun t -> t.n_computed <- t.n_computed + 1);
  mem_store t k r;
  disk_store t k r

(* ------------------------------------------------------------------ *)
(* Batch API                                                           *)
(* ------------------------------------------------------------------ *)

let run_many t ?jobs cfgs =
  let jobs = match jobs with Some j -> j | None -> t.jobs in
  let keyed = List.map (fun c -> key t (normalize c)) cfgs in
  let normalized = List.map normalize cfgs in
  (* Resolve every configuration against the memo table and then the
     disk cache; the leftovers are the unique simulations to run. *)
  let pending = Hashtbl.create 16 in
  let misses = ref [] in
  List.iter2
    (fun k c ->
      if not (Hashtbl.mem pending k) then
        match mem_find t k with
        | Some _ -> bump t (fun t -> t.n_mem_hits <- t.n_mem_hits + 1)
        | None -> (
            match disk_load t k with
            | Some r ->
                bump t (fun t -> t.n_disk_hits <- t.n_disk_hits + 1);
                mem_store t k r
            | None ->
                Hashtbl.add pending k ();
                misses := (k, c) :: !misses))
    keyed normalized;
  let misses = Array.of_list (List.rev !misses) in
  let thunks = Array.map (fun (k, c) () -> compute_and_store t k c) misses in
  if Array.length thunks > 0 then begin
    if jobs <= 1 || Array.length thunks = 1 then
      Array.iter (fun f -> f ()) thunks
    else
      Pool.with_pool ~jobs (fun p -> ignore (Pool.run p thunks : unit array))
  end;
  List.map
    (fun k ->
      match mem_find t k with Some r -> r | None -> assert false)
    keyed

let prefetch t ?jobs cfgs = ignore (run_many t ?jobs cfgs : Run_result.t list)

let run t ?card ?young ?mode profile =
  match run_many t ~jobs:1 [ cfg ?card ?young ?mode profile ] with
  | [ r ] -> r
  | _ -> assert false

let improvement t ?card ?young ?(mode = Gen) ?(multiprocessor = true) profile =
  let candidate = run t ?card ?young ~mode profile in
  let baseline = run t ?card ?young ~mode:Non_gen profile in
  Run_result.improvement_pct ~baseline candidate ~multiprocessor
