module Heap = Otfgc_heap.Heap
module Gc_config = Otfgc.Gc_config
module Profile = Otfgc_workloads.Profile
module Driver = Otfgc_workloads.Driver
module Run_result = Otfgc_metrics.Run_result

type mode = Gen | Non_gen | Aging of int | Gen_remset | Adaptive

type t = {
  scale : float;
  seed : int;
  cache : (string, Run_result.t) Hashtbl.t;
}

let create ?(scale = 1.0) ?(seed = 42) () =
  { scale; seed; cache = Hashtbl.create 64 }

let scale t = t.scale

let default_card = 16
let default_young = 512 * 1024

let mode_tag = function
  | Gen -> "gen"
  | Non_gen -> "nongen"
  | Aging n -> Printf.sprintf "aging%d" n
  | Gen_remset -> "remset"
  | Adaptive -> "adaptive"

let gc_of_mode mode young =
  match mode with
  | Gen -> Gc_config.generational ~young_bytes:young ()
  | Non_gen -> { Gc_config.non_generational with Gc_config.young_bytes = young }
  | Aging n -> Gc_config.aging ~young_bytes:young ~oldest_age:n ()
  | Gen_remset ->
      Gc_config.generational ~young_bytes:young
        ~intergen:Gc_config.Remembered_set ()
  | Adaptive -> Gc_config.adaptive ~young_bytes:young ()

let run t ?(card = default_card) ?(young = default_young) ?(mode = Gen) profile
    =
  (* The non-generational baseline neither marks nor scans cards, so the
     card size cannot affect it: normalise it out of the cache key (one
     baseline run serves a whole card-size sweep). *)
  let card = match mode with Non_gen -> default_card | _ -> card in
  let key =
    Printf.sprintf "%s/%s/c%d/y%d" profile.Profile.name (mode_tag mode) card
      young
  in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let heap = { Driver.default_heap with Heap.card_size = card } in
      let r =
        Driver.run ~heap ~seed:t.seed ~scale:t.scale ~gc:(gc_of_mode mode young)
          profile
      in
      Hashtbl.replace t.cache key r;
      r

let improvement t ?card ?young ?(mode = Gen) ?(multiprocessor = true) profile =
  let candidate = run t ?card ?young ~mode profile in
  let baseline = run t ?card ?young ~mode:Non_gen profile in
  Run_result.improvement_pct ~baseline candidate ~multiprocessor
