(* Figure 20: the cost of the aging mechanism itself — % improvement of
   aging with threshold 2 (equivalent tenuring policy to simple promotion)
   over the simple promotion collector, across young sizes.  Mostly
   negative: aging pays for the age table and the pointer-level card scans
   without changing what gets promoted. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let configs =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun (_, young) ->
          [ Lab.cfg ~young p; Lab.cfg ~young ~mode:(Lab.Aging 2) p ])
        Sweeps.young_sizes)
    Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 20: aging (threshold 2) vs simple promotion (% improvement \
         of aging; negative = aging overhead)"
      ("Benchmark" :: List.map fst Sweeps.young_sizes)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun (_, young) ->
            let simple = Lab.run lab ~young ~mode:Lab.Gen p in
            let aging = Lab.run lab ~young ~mode:(Lab.Aging 2) p in
            Sweeps.fmt_signed
              (R.improvement_pct ~baseline:simple aging ~multiprocessor:true))
          Sweeps.young_sizes
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t
