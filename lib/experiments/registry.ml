type entry = {
  id : string;
  title : string;
  heavy : bool;
  configs : Lab.cfg list;
  run : Lab.t -> Otfgc_support.Textable.t;
}

let all =
  [
    {
      id = "fig7";
      title = "Ray Tracer improvement vs thread count";
      heavy = false;
      configs = Fig07.configs;
      run = Fig07.run;
    };
    { id = "fig8"; title = "Anagram improvement"; heavy = false; configs = Fig08.configs;
      run = Fig08.run; };
    {
      id = "fig9";
      title = "SPECjvm improvements (multi & uni)";
      heavy = false;
      configs = Fig09.configs;
      run = Fig09.run;
    };
    { id = "fig10"; title = "GC activity and cycle counts"; heavy = false; configs = Fig10.configs;
      run = Fig10.run; };
    { id = "fig11"; title = "Objects scanned per collection"; heavy = false; configs = Fig11.configs;
      run = Fig11.run; };
    { id = "fig12"; title = "Percent freed per collection"; heavy = false; configs = Fig12.configs;
      run = Fig12.run; };
    { id = "fig13"; title = "Collection cycle cost"; heavy = false; configs = Fig13.configs;
      run = Fig13.run; };
    { id = "fig14"; title = "Average gain from collections"; heavy = false; configs = Fig14.configs;
      run = Fig14.run; };
    { id = "fig15"; title = "Pages touched per collection"; heavy = false; configs = Fig15.configs;
      run = Fig15.run; };
    {
      id = "fig16";
      title = "Young-size tuning, Ray Tracer";
      heavy = true;
      configs = Fig16.configs;
      run = Fig16.run;
    };
    { id = "fig17"; title = "Young-size tuning, benchmarks"; heavy = true; configs = Fig17.configs;
      run = Fig17.run; };
    { id = "fig18"; title = "Aging thresholds 4 & 6"; heavy = true; configs = Fig18.configs;
      run = Fig18.run; };
    { id = "fig19"; title = "Aging thresholds 8 & 10"; heavy = true; configs = Fig19.configs;
      run = Fig19.run; };
    { id = "fig20"; title = "Aging overhead vs simple promotion"; heavy = true; configs = Fig20.configs;
      run = Fig20.run; };
    { id = "fig21"; title = "Card-size improvement sweep"; heavy = true; configs = Fig21.configs;
      run = Fig21.run; };
    { id = "fig22"; title = "Dirty-card percentage per card size"; heavy = true; configs = Fig22.configs;
      run = Fig22.run; };
    { id = "fig23"; title = "Card scan area per card size"; heavy = true; configs = Fig23.configs;
      run = Fig23.run; };
    {
      id = "ablationA";
      title = "Cards vs remembered sets (Section 3.1's road not taken)";
      heavy = true;
      configs = Ablation_intergen.configs;
      run = Ablation_intergen.run;
    };
    {
      id = "ablationB";
      title = "Dynamic tenuring (Section 6's future-work remark)";
      heavy = true;
      configs = Ablation_adaptive.configs;
      run = Ablation_adaptive.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
