type entry = {
  id : string;
  title : string;
  heavy : bool;
  run : Lab.t -> Otfgc_support.Textable.t;
}

let all =
  [
    {
      id = "fig7";
      title = "Ray Tracer improvement vs thread count";
      heavy = false;
      run = Fig07.run;
    };
    { id = "fig8"; title = "Anagram improvement"; heavy = false; run = Fig08.run };
    {
      id = "fig9";
      title = "SPECjvm improvements (multi & uni)";
      heavy = false;
      run = Fig09.run;
    };
    { id = "fig10"; title = "GC activity and cycle counts"; heavy = false; run = Fig10.run };
    { id = "fig11"; title = "Objects scanned per collection"; heavy = false; run = Fig11.run };
    { id = "fig12"; title = "Percent freed per collection"; heavy = false; run = Fig12.run };
    { id = "fig13"; title = "Collection cycle cost"; heavy = false; run = Fig13.run };
    { id = "fig14"; title = "Average gain from collections"; heavy = false; run = Fig14.run };
    { id = "fig15"; title = "Pages touched per collection"; heavy = false; run = Fig15.run };
    {
      id = "fig16";
      title = "Young-size tuning, Ray Tracer";
      heavy = true;
      run = Fig16.run;
    };
    { id = "fig17"; title = "Young-size tuning, benchmarks"; heavy = true; run = Fig17.run };
    { id = "fig18"; title = "Aging thresholds 4 & 6"; heavy = true; run = Fig18.run };
    { id = "fig19"; title = "Aging thresholds 8 & 10"; heavy = true; run = Fig19.run };
    { id = "fig20"; title = "Aging overhead vs simple promotion"; heavy = true; run = Fig20.run };
    { id = "fig21"; title = "Card-size improvement sweep"; heavy = true; run = Fig21.run };
    { id = "fig22"; title = "Dirty-card percentage per card size"; heavy = true; run = Fig22.run };
    { id = "fig23"; title = "Card scan area per card size"; heavy = true; run = Fig23.run };
    {
      id = "ablationA";
      title = "Cards vs remembered sets (Section 3.1's road not taken)";
      heavy = true;
      run = Ablation_intergen.run;
    };
    {
      id = "ablationB";
      title = "Dynamic tenuring (Section 6's future-work remark)";
      heavy = true;
      run = Ablation_adaptive.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
