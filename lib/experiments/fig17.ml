(* Figure 17: tuning the size of the young generation for the SPECjvm
   benchmarks and Anagram — % improvement under block and object marking
   for young sizes 1m-8m (paper-equivalent labels). *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let configs =
  List.concat_map
    (fun card ->
      List.concat_map
        (fun (_, young) -> Sweeps.gen_and_baseline_all ~card ~young Profile.all)
        Sweeps.young_sizes)
    [ Sweeps.block_marking; Sweeps.object_marking ]

let run lab =
  Lab.prefetch lab configs;
  let headers =
    "Benchmark"
    :: List.concat_map
         (fun marking ->
           List.map (fun (label, _) -> marking ^ " " ^ label) Sweeps.young_sizes)
         [ "blk"; "obj" ]
  in
  let t =
    Textable.create
      ~title:
        "Figure 17: young-generation size tuning (% improvement; block vs \
         object marking)"
      headers
  in
  List.iter
    (fun p ->
      let cells =
        List.concat_map
          (fun card ->
            List.map
              (fun (_, young) ->
                Sweeps.fmt_signed (Lab.improvement lab ~card ~young p))
              Sweeps.young_sizes)
          [ Sweeps.block_marking; Sweeps.object_marking ]
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t
