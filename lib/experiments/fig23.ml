(* Figure 23: area scanned due to dirty cards (bytes of objects examined
   on dirty cards per partial collection), per card size. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let configs =
  List.concat_map
    (fun card -> List.map (fun p -> Lab.cfg ~card p) Profile.all)
    Sweeps.card_sizes

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 23: area scanned for dirty cards per partial collection \
         (bytes), per card size"
      ("Benchmark" :: List.map (fun c -> string_of_int c) Sweeps.card_sizes)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun card ->
            let r = Lab.run lab ~card p in
            Textable.fmt_int r.R.avg_card_scan_bytes)
          Sweeps.card_sizes
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t
