(** The catalogue of reproduced experiments: every table/figure of the
    paper's evaluation section, keyed by its figure number. *)

type entry = {
  id : string;  (** e.g. ["fig9"] *)
  title : string;
  heavy : bool;
      (** parameter sweeps (Figures 16–23) that run dozens of
          configurations; the bench harness runs them at reduced scale *)
  configs : Lab.cfg list;
      (** the figure's whole configuration grid, enumerated up front so
          harnesses can batch several figures into one
          {!Lab.run_many} submission *)
  run : Lab.t -> Otfgc_support.Textable.t;
}

val all : entry list
(** In figure order, 7 through 23, followed by the two ablations this
    reproduction adds (cards vs remembered sets; dynamic tenuring). *)

val find : string -> entry option
(** Look up by id ("fig7" .. "fig23", "ablationA", "ablationB"). *)
