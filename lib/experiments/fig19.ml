(* Figure 19: the aging mechanism, thresholds 8 and 10 (see Fig18). *)

let configs = Fig18.configs_thresholds [ 8; 10 ]

let run lab =
  Fig18.run_thresholds
    ~title:
      "Figure 19: aging vs non-generational (% improvement), thresholds 8 and \
       10, object marking"
    [ 8; 10 ] lab
