(* Figures 18: the aging mechanism vs the non-generational collector —
   % improvement with tenuring thresholds 4 and 6 across young sizes
   (object marking).  Figure 19 continues with thresholds 8 and 10. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile

let configs_thresholds thresholds =
  List.concat_map
    (fun age ->
      List.concat_map
        (fun (_, young) ->
          List.concat_map
            (fun p ->
              [
                Lab.cfg ~young ~mode:(Lab.Aging age) p;
                Lab.cfg ~young ~mode:Lab.Non_gen p;
              ])
            Profile.all)
        Sweeps.young_sizes)
    thresholds

let configs = configs_thresholds [ 4; 6 ]

let run_thresholds ~title thresholds lab =
  Lab.prefetch lab (configs_thresholds thresholds);
  let headers =
    "Benchmark"
    :: List.concat_map
         (fun age ->
           List.map
             (fun (label, _) -> Printf.sprintf "age%d %s" age label)
             Sweeps.young_sizes)
         thresholds
  in
  let t = Textable.create ~title headers in
  List.iter
    (fun p ->
      let cells =
        List.concat_map
          (fun age ->
            List.map
              (fun (_, young) ->
                Sweeps.fmt_signed
                  (Lab.improvement lab ~young ~mode:(Lab.Aging age) p))
              Sweeps.young_sizes)
          thresholds
      in
      Textable.add_row t (p.Profile.name :: cells))
    Profile.all;
  t

let run lab =
  run_thresholds
    ~title:
      "Figure 18: aging vs non-generational (% improvement), thresholds 4 and \
       6, object marking"
    [ 4; 6 ] lab
