(* Figure 15: average number of pages touched by a collection — partial,
   full, and without generations, including all collector tables. *)

module Textable = Otfgc_support.Textable
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let paper =
  [
    ("mtrt", "1489", "N/A", "3355");
    ("compress", "76", "124", "109");
    ("db", "944", "2794", "2827");
    ("jess", "1304", "2227", "2048");
    ("javac", "2607", "3709", "3080");
    ("jack", "1199", "2052", "1767");
    ("anagram", "1082", "4938", "5054");
  ]

let configs = Sweeps.gen_and_baseline_all Profile.all

let run lab =
  Lab.prefetch lab configs;
  let t =
    Textable.create
      ~title:
        "Figure 15: average pages touched per collection (paper values at 8x \
         heap scale in parentheses)"
      [ "Benchmark"; "partial"; "full"; "w/o gen"; "(paper)" ]
  in
  List.iter
    (fun p ->
      let name = p.Profile.name in
      let _, pp, pf, pn = List.find (fun (n, _, _, _) -> n = name) paper in
      let gen = Lab.run lab p in
      let base = Lab.run lab ~mode:Lab.Non_gen p in
      let fmt_full v = if gen.R.n_full = 0 then Textable.na else Textable.fmt_int v in
      Textable.add_row t
        [
          name;
          Textable.fmt_int gen.R.avg_pages_partial;
          fmt_full gen.R.avg_pages_full;
          Textable.fmt_int base.R.avg_pages_non_gen;
          Printf.sprintf "(%s %s %s)" pp pf pn;
        ])
    Profile.all;
  t
