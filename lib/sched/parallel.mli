(** The real-domains substrate: each registered process runs on its own
    {!Domain.t}.

    Mirrors the {!Sched} lifecycle the driver expects — register
    processes, then [run] — but the "scheduler" is the hardware, so it
    satisfies the same {!Substrate.S} contract as {!Substrate.Cooperative}.
    Daemons (the collector) are joined only after [on_quiesce] has run
    with all non-daemons finished; [on_quiesce] is where the driver
    performs the finale collections and requests collector shutdown, so a
    daemon must exit in response to it.

    Every spawned domain has its substrate set to {!Substrate.Domains}
    and inherits the spawner's jitter configuration (re-seeded per
    domain).  A process raising an exception does not tear down the
    others: all domains are still joined (after [on_quiesce], which runs
    regardless so daemons can exit), then the exception of the
    lowest-indexed failing process is re-raised — mirroring
    {!Otfgc_support.Pool}'s deterministic error choice. *)

type t

val create : ?on_quiesce:(unit -> unit) -> unit -> t
(** [on_quiesce] runs in the calling domain once every non-daemon process
    has been joined, before the daemons are joined. *)

include Substrate.S with type t := t
(** {!spawn} registers a process; unlike {!Sched.spawn}, registration is
    only allowed before {!run} — the domains substrate starts every
    process at once.  {!run} spawns one domain per registered process,
    joins the non-daemons, calls [on_quiesce], then joins the daemons. *)
