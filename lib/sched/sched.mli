(** Deterministic cooperative scheduler over OCaml effect handlers.

    The paper's collector runs concurrently with mutator threads and its
    correctness argument is about interleavings of individual loads and
    stores.  Instead of OS threads — which make those interleavings neither
    controllable nor reproducible — every simulated thread is a cooperative
    process that calls {!yield} at each shared-memory access.  A seeded
    scheduler then chooses which process advances at every step, so a whole
    multi-threaded GC run is a pure function of its seed, and property
    tests can drive adversarial schedules at will.

    Typical use:
    {[
      let s = Sched.create ~policy:(Sched.random_policy (Rng.make 42)) () in
      let _m = Sched.spawn s ~name:"mutator" (fun () -> ... Sched.yield () ...) in
      let _c = Sched.spawn s ~daemon:true ~name:"collector" collector_loop in
      Sched.run s
    ]} *)

type t
(** A scheduler instance. *)

type pid
(** Process identifier, unique within one scheduler. *)

type policy
(** Strategy for choosing the next runnable process. *)

val round_robin : policy
(** Cycle through runnable processes in spawn order.  Fastest and fully
    deterministic; the default for benchmark runs. *)

val random_policy : Otfgc_support.Rng.t -> policy
(** Pick uniformly among runnable processes using the given generator.
    Used by property tests to explore interleavings. *)

exception Stalled of string
(** Raised by {!run} when [max_steps] is exceeded — in this simulator that
    means a livelock (e.g. a handshake that never completes). *)

val create : ?policy:policy -> ?quantum:int -> unit -> t
(** [create ~policy ~quantum ()] makes an empty scheduler.  [quantum]
    (default 1) is how many consecutive yields a scheduled process may run
    before the policy picks again; larger quanta trade interleaving
    fineness for speed. *)

val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> pid
(** Register a process.  [daemon] processes (default [false]) do not keep
    {!run} alive: the run ends when every non-daemon process has finished.
    Processes may spawn further processes while running. *)

val yield : unit -> unit
(** Give the scheduler a chance to switch to another process.  Must be
    called from inside a spawned process; calling it elsewhere raises
    [Failure]. *)

val wait_until : (unit -> bool) -> unit
(** [wait_until p] yields repeatedly until [p ()] holds.  [p] is checked
    before the first yield. *)

val self_name : unit -> string
(** Name of the currently running process (for trace messages). *)

val run : ?max_steps:int -> t -> unit
(** Execute until all non-daemon processes finish.  A process raising an
    exception aborts the run and re-raises it.  Raises {!Stalled} after
    [max_steps] scheduling steps (default [max_int]). *)

val steps : t -> int
(** Number of scheduling steps performed so far. *)

val finished : t -> pid -> bool
(** Whether the given process has run to completion. *)

val set_on_switch : t -> (string -> unit) option -> unit
(** Debug hook invoked with the process name at every context switch. *)
