type proc = { name : string; daemon : bool; fn : unit -> unit }

type t = {
  on_quiesce : unit -> unit;
  mutable procs : proc list; (* reverse registration order *)
  mutable running : bool;
}

let create ?(on_quiesce = fun () -> ()) () =
  { on_quiesce; procs = []; running = false }

let spawn t ?(daemon = false) ~name fn =
  if t.running then invalid_arg "Parallel.spawn: already running";
  t.procs <- { name; daemon; fn } :: t.procs

let body jitter idx p errs () =
  Substrate.set_current Substrate.Domains;
  (match jitter with
  | Some (seed, prob, max_spin) ->
      Substrate.set_jitter ~seed:(seed + (1549 * (idx + 1))) ~prob ~max_spin
  | None -> ());
  try p.fn ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    errs.(idx) <- Some (e, bt)

let run t =
  if t.running then invalid_arg "Parallel.run: already running";
  t.running <- true;
  let procs = Array.of_list (List.rev t.procs) in
  let n = Array.length procs in
  let errs = Array.make n None in
  let jitter = Substrate.jitter_config () in
  let domains =
    Array.mapi (fun i p -> Domain.spawn (body jitter i p errs)) procs
  in
  Array.iteri (fun i p -> if not p.daemon then Domain.join domains.(i)) procs;
  (* Quiesce runs even when a mutator failed: the daemons only exit in
     response to it (collector shutdown), and we must join them before
     re-raising or the process would leak running domains. *)
  let quiesce_err = ref None in
  (try t.on_quiesce ()
   with e -> quiesce_err := Some (e, Printexc.get_raw_backtrace ()));
  Array.iteri (fun i p -> if p.daemon then Domain.join domains.(i)) procs;
  t.running <- false;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
    errs;
  match !quiesce_err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
