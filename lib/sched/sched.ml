open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Running
  | Finished

type proc = { id : int; name : string; daemon : bool; mutable state : state }

type pid = int

type policy = Round_robin | Random of Otfgc_support.Rng.t

let round_robin = Round_robin
let random_policy rng = Random rng

exception Stalled of string

type t = {
  policy : policy;
  quantum : int;
  mutable procs : proc array;
  mutable nprocs : int;
  mutable current : proc option;
  mutable rr_cursor : int;
  mutable step_count : int;
  mutable on_switch : (string -> unit) option;
}

(* The scheduler running a process is recorded here so that [yield] (which
   has no scheduler argument by design — barrier code deep inside the heap
   must not thread it through) can find the current process.  Schedulers
   never nest within a domain, but the experiment harness runs one
   simulation per domain in parallel, so the slot is domain-local. *)
let active : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Domain.DLS.get active

let create ?(policy = Round_robin) ?(quantum = 1) () =
  if quantum < 1 then invalid_arg "Sched.create: quantum must be >= 1";
  {
    policy;
    quantum;
    procs = Array.make 8 { id = -1; name = ""; daemon = true; state = Finished };
    nprocs = 0;
    current = None;
    rr_cursor = 0;
    step_count = 0;
    on_switch = None;
  }

let spawn t ?(daemon = false) ~name fn =
  let id = t.nprocs in
  let p = { id; name; daemon; state = Not_started fn } in
  if t.nprocs = Array.length t.procs then begin
    let bigger = Array.make (2 * t.nprocs) p in
    Array.blit t.procs 0 bigger 0 t.nprocs;
    t.procs <- bigger
  end;
  t.procs.(t.nprocs) <- p;
  t.nprocs <- t.nprocs + 1;
  id

let current_proc () =
  match !(active ()) with
  | Some t -> (
      match t.current with
      | Some p -> p
      | None -> failwith "Sched.yield: no process is running")
  | None -> failwith "Sched.yield: called outside of Sched.run"

let yield () =
  ignore (current_proc ());
  perform Yield

let wait_until p =
  while not (p ()) do
    yield ()
  done

let self_name () = (current_proc ()).name

let steps t = t.step_count

let finished t pid = match t.procs.(pid).state with Finished -> true | _ -> false

let set_on_switch t hook = t.on_switch <- hook

let runnable p = match p.state with Not_started _ | Suspended _ -> true | _ -> false

(* Number of runnable processes; also used to decide run termination. *)
let pending t =
  let n = ref 0 in
  for i = 0 to t.nprocs - 1 do
    let p = t.procs.(i) in
    if (not p.daemon) && p.state <> Finished then incr n
  done;
  !n

let pick t =
  match t.policy with
  | Round_robin ->
      let n = t.nprocs in
      let found = ref None in
      let i = ref 0 in
      while !found = None && !i < n do
        let idx = (t.rr_cursor + !i) mod n in
        if runnable t.procs.(idx) then begin
          found := Some t.procs.(idx);
          t.rr_cursor <- (idx + 1) mod n
        end;
        incr i
      done;
      !found
  | Random rng ->
      let candidates = ref [] in
      for i = t.nprocs - 1 downto 0 do
        if runnable t.procs.(i) then candidates := t.procs.(i) :: !candidates
      done;
      (match !candidates with
      | [] -> None
      | l ->
          let arr = Array.of_list l in
          Some (Otfgc_support.Rng.pick rng arr))

(* Resume [p] for one step: either start its body under a fresh deep
   handler, or continue its stored continuation.  Control comes back here
   when the process yields (handler stores the new continuation) or
   finishes. *)
let resume t p =
  t.current <- Some p;
  (match t.on_switch with Some f -> f p.name | None -> ());
  (match p.state with
  | Not_started fn ->
      p.state <- Running;
      match_with
        (fun () ->
          fn ();
          p.state <- Finished)
        ()
        {
          retc = (fun () -> ());
          exnc =
            (fun e ->
              Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ()));
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, _) continuation) -> p.state <- Suspended k)
              | _ -> None);
        }
  | Suspended k ->
      p.state <- Running;
      continue k ()
  | Running | Finished -> assert false);
  t.current <- None

let run ?(max_steps = max_int) t =
  let active = active () in
  (match !active with
  | Some _ -> failwith "Sched.run: schedulers cannot nest"
  | None -> active := Some t);
  Fun.protect
    ~finally:(fun () -> active := None)
    (fun () ->
      let continue_run = ref true in
      while !continue_run do
        if pending t = 0 then continue_run := false
        else begin
          if t.step_count >= max_steps then
            raise
              (Stalled
                 (Printf.sprintf "no termination after %d scheduling steps"
                    t.step_count));
          match pick t with
          | None ->
              (* Only daemons are runnable but a non-daemon hasn't finished:
                 that non-daemon must be Running, which is impossible here. *)
              failwith "Sched.run: non-daemon process neither runnable nor finished"
          | Some p ->
              t.step_count <- t.step_count + 1;
              let q = ref t.quantum in
              while !q > 0 && runnable p do
                resume t p;
                decr q
              done
        end
      done)
