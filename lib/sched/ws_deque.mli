(** Chase–Lev work-stealing deque of ints.

    One domain owns the deque and pushes/pops at the bottom without
    locks; any other domain may {!steal} from the top with a CAS.  Used
    as the per-worker gray set of the parallel tracer: the owner treats
    it as a LIFO stack (identical semantics to the shared gray stack
    when no thief interferes), thieves drain the oldest entries.

    All [Atomic] operations are sequentially consistent, which provides
    the publication and claim orderings the algorithm requires (see the
    implementation notes and DESIGN.md §11). *)

type t

val create : unit -> t

val push : t -> int -> unit
(** Owner only: push at the bottom.  Grows the buffer as needed; a
    concurrent thief keeps reading the old buffer safely. *)

val pop : t -> int option
(** Owner only: pop the most recently pushed entry (LIFO).  Races
    thieves for the last element via the top CAS. *)

val steal : t -> int option
(** Any domain: claim the oldest entry (FIFO end).  [None] means the
    deque looked empty {e or} the CAS lost a race — callers count it as
    a failed attempt and try another victim. *)

val size : t -> int
(** Approximate under concurrency (exact when quiescent). *)

val is_empty : t -> bool
(** Approximate under concurrency: a [true] result is a consistent
    observation of one moment (top read before bottom). *)

val max_size : t -> int
(** High-water mark of {!size} as seen by the owner's pushes. *)

val clear : t -> unit
(** Reset to empty.  Quiescent callers only. *)
