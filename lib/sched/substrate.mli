(** Which execution substrate the current domain is running under.

    The core collector and runtime are written against simulated yield
    points: every shared-memory access calls {!yield} or {!wait_until}.
    Under the cooperative substrate ([Sim]) these delegate to the effects
    scheduler ({!Sched}) and the whole run is a deterministic function of
    its seed.  Under the real-domains substrate ([Domains]) every process
    is an OCaml 5 domain: {!yield} becomes a no-op (the hardware
    interleaves for real) and {!wait_until} becomes a spin-then-sleep
    poll.  The substrate is domain-local state, set by {!Parallel} when
    it spawns its domains, so core code stays substrate-agnostic.

    DESIGN §10 documents the yield-point → atomic mapping and the
    memory-ordering argument for each barrier store. *)

type kind = Sim | Domains

val current : unit -> kind
(** Substrate of the calling domain.  Defaults to [Sim]; {!Parallel.run}
    sets [Domains] in each domain it spawns. *)

val set_current : kind -> unit
(** Set the calling domain's substrate.  Exposed for tests and for
    {!Parallel}; workload code never calls it directly. *)

val yield : unit -> unit
(** A simulated-yield point.  [Sim]: {!Sched.yield}.  [Domains]: no-op,
    unless jitter is armed (see {!set_jitter}), in which case it may burn
    a short random spin to widen race windows for stress tests. *)

val wait_until : (unit -> bool) -> unit
(** Block until the predicate holds.  [Sim]: {!Sched.wait_until}.
    [Domains]: poll with {!Domain.cpu_relax} for a bounded spin, then
    back off to short sleeps — the predicate must become true through
    another domain's writes to atomics. *)

val set_jitter : seed:int -> prob:float -> max_spin:int -> unit
(** Arm random spin delays at [Domains] yield points for the calling
    domain: with probability [prob] each {!yield} burns 1..[max_spin]
    {!Domain.cpu_relax} iterations.  Used by the parallel stress tests to
    widen the windows between barrier and handshake steps.  No effect
    under [Sim]. *)

val clear_jitter : unit -> unit
(** Disarm {!set_jitter} for the calling domain. *)

val jitter_config : unit -> (int * float * int) option
(** [(seed, prob, max_spin)] as armed on the calling domain, if any —
    {!Parallel.run} propagates the spawner's jitter into each child
    domain (re-seeded per domain so the delays differ). *)

(** The contract both substrates offer the driver: register named
    processes, then run them all to completion. *)
module type S = sig
  type t

  val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
  (** Daemons do not keep {!run} alive; the run ends (or quiesces) when
      every non-daemon has finished. *)

  val run : t -> unit
end

module Cooperative : S with type t = Sched.t
(** {!Sched} seen through the substrate contract. *)
