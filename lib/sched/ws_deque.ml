(* Chase–Lev work-stealing deque over immediate ints.

   The owner pushes and pops at the bottom; thieves take from the top
   with a CAS.  OCaml's [Atomic] operations are sequentially consistent,
   which subsumes every fence the original algorithm (Chase & Lev, SPAA
   2005) needs: the owner's element store is published by the subsequent
   atomic bottom store, the owner's pop orders its bottom store before
   the top load, and a thief's top CAS claims an index exactly once.

   Growth never invalidates a racing thief: the bigger buffer receives
   every live entry at the same logical index, the old buffer is never
   written again, and a thief that read the old buffer still CASes on
   [top] — if it wins, the value it read at its claimed index is the
   value that was there when the index was live in both buffers.

   Entries are plain ints (heap addresses), so there are no torn reads
   and no GC-visible sharing beyond the buffer itself. *)

type t = {
  mutable buf : int array; (* circular; length a power of two *)
  top : int Atomic.t; (* next index a thief claims *)
  bottom : int Atomic.t; (* next index the owner pushes at *)
  mutable max_size : int;
}

let create () =
  {
    buf = Array.make 64 0;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    max_size = 0;
  }

let grow t ~b ~tp =
  let old = t.buf in
  let n = Array.length old in
  let bigger = Array.make (2 * n) 0 in
  for i = tp to b - 1 do
    bigger.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
  done;
  t.buf <- bigger

(* Owner only. *)
let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length t.buf then grow t ~b ~tp;
  t.buf.(b land (Array.length t.buf - 1)) <- x;
  (* the SC store publishes the element write above to thieves *)
  Atomic.set t.bottom (b + 1);
  let sz = b + 1 - tp in
  if sz > t.max_size then t.max_size <- sz

(* Owner only. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  (* reserve the bottom slot before reading top: a thief that loads the
     old bottom afterwards sees the deque one shorter and keeps off the
     contested index unless it is the only one left *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b > tp then Some t.buf.(b land (Array.length t.buf - 1))
  else if b = tp then begin
    (* last element: race the thieves for it via the top CAS *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some t.buf.(b land (Array.length t.buf - 1)) else None
  end
  else begin
    (* already empty; restore the canonical empty shape *)
    Atomic.set t.bottom tp;
    None
  end

(* Any thief.  [None] means "observed empty or lost the race" — callers
   treat both as a failed steal attempt and retry elsewhere. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read before the CAS: winning the CAS certifies the value *)
    let x = t.buf.(tp land (Array.length t.buf - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some x else None
  end

let size t = Stdlib.max 0 (Atomic.get t.bottom - Atomic.get t.top)
let is_empty t = Atomic.get t.bottom - Atomic.get t.top <= 0
let max_size t = t.max_size

(* Quiescent callers only (between collection cycles). *)
let clear t =
  Atomic.set t.bottom 0;
  Atomic.set t.top 0
