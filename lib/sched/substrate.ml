type kind = Sim | Domains

let key = Domain.DLS.new_key (fun () -> Sim)
let current () = Domain.DLS.get key
let set_current k = Domain.DLS.set key k

(* Jitter state is domain-local: (lcg state ref, prob scaled to 2^20,
   max_spin).  A tiny LCG rather than Rng keeps this module free of spawn
   plumbing — stress tests only need "random-ish", not "reproducible
   across substrates". *)
let jitter_key :
    ((int ref * int * int) option * (int * float * int) option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (None, None))

let set_jitter ~seed ~prob ~max_spin =
  let p = int_of_float (prob *. 1048576.) in
  Domain.DLS.set jitter_key
    (Some (ref (seed lor 1), p, Stdlib.max 1 max_spin), Some (seed, prob, max_spin))

let clear_jitter () = Domain.DLS.set jitter_key (None, None)
let jitter_config () = snd (Domain.DLS.get jitter_key)

let lcg_next st =
  st := ((!st * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  (!st lsr 20) land 0xFFFFF

let maybe_jitter () =
  match fst (Domain.DLS.get jitter_key) with
  | None -> ()
  | Some (st, p, max_spin) ->
      if lcg_next st < p then begin
        let n = 1 + (lcg_next st mod max_spin) in
        for _ = 1 to n do
          Domain.cpu_relax ()
        done
      end

let yield () =
  match current () with Sim -> Sched.yield () | Domains -> maybe_jitter ()

(* Spin briefly, then back off to short sleeps.  The spin budget is small
   on purpose: CI runners and the dev container have few cores, so a
   waiting domain that hogs its core starves the very domain it is
   waiting on. *)
let spin_budget = 200

let wait_until p =
  match current () with
  | Sim -> Sched.wait_until p
  | Domains ->
      let spins = ref 0 in
      while not (p ()) do
        if !spins < spin_budget then begin
          incr spins;
          Domain.cpu_relax ()
        end
        else Unix.sleepf 1e-4
      done

module type S = sig
  type t

  val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
  val run : t -> unit
end

module Cooperative : S with type t = Sched.t = struct
  type t = Sched.t

  let spawn t ?daemon ~name fn = ignore (Sched.spawn t ?daemon ~name fn : Sched.pid)
  let run t = Sched.run t
end
