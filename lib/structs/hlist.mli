(** Heap-allocated singly-linked lists (cons cells).

    A cell has two pointer slots: slot 0 = head (the element), slot 1 =
    tail (next cell or nil).  All operations go through the runtime's
    barriered stores, so lists are safe to build and walk while the
    on-the-fly collector runs.

    Rooting: {!cons} roots its result internally while linking; the caller
    must root the returned cell before its next runtime operation.
    Traversals only follow reachable cells, which the collector keeps
    alive. *)

val cons : Otfgc.Runtime.t -> Otfgc.Mutator.t -> head:int -> tail:int -> int
(** New cell.  [head]/[tail] must be rooted by the caller (or nil). *)

val head : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int
val tail : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int

val length : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int
(** Cells until nil, following tails. *)

val iter :
  Otfgc.Runtime.t -> Otfgc.Mutator.t -> (int -> unit) -> int -> unit
(** Apply to each element (head pointer), front to back. *)
