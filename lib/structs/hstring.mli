(** Heap-allocated immutable strings.

    A string is a single heap object with no pointer slots: word 0 holds
    the length in characters, the remaining scalar words pack 8 characters
    each.  Strings are immutable after {!alloc}, so reading them needs no
    synchronisation with the collector, exactly like Java's [String].

    Rooting: {!alloc} returns an unrooted address — the caller must move
    it into a register or stack slot before its next runtime operation
    (see the {!Otfgc.Runtime.alloc} contract).  Read operations are safe
    on any reachable string. *)

val alloc : Otfgc.Runtime.t -> Otfgc.Mutator.t -> string -> int
(** Allocate a heap string with the given contents. *)

val length : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int
(** Character count of the heap string at the given address. *)

val to_string : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> string
(** Copy the heap string out (reads every word through the runtime). *)

val equal : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int -> bool
(** Content equality of two heap strings. *)

val hash : Otfgc.Runtime.t -> Otfgc.Mutator.t -> int -> int
(** FNV-style content hash, stable across heaps (used by {!Htable}). *)
