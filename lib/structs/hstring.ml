open Otfgc

let chars_per_word = 8

let words_for len = 1 + ((len + chars_per_word - 1) / chars_per_word)

let alloc rt m s =
  let len = String.length s in
  let size = 16 + (8 * words_for len) in
  let a = Runtime.alloc rt m ~size ~n_slots:0 in
  (* park it on the stack while the contents are written: every
     store_data below is a scheduling point *)
  Mutator.push m a;
  Runtime.store_data rt m ~x:a ~i:0 ~v:len;
  let word = ref 0 in
  let acc = ref 0 in
  String.iteri
    (fun i c ->
      acc := !acc lor (Char.code c lsl (8 * (i mod chars_per_word)));
      if i mod chars_per_word = chars_per_word - 1 || i = len - 1 then begin
        incr word;
        Runtime.store_data rt m ~x:a ~i:!word ~v:!acc;
        acc := 0
      end)
    s;
  ignore (Mutator.pop m : int);
  a

let length rt m a = Runtime.load_data rt m ~x:a ~i:0

let to_string rt m a =
  let len = length rt m a in
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    let w = Runtime.load_data rt m ~x:a ~i:(1 + (i / chars_per_word)) in
    Bytes.set b i (Char.chr ((w lsr (8 * (i mod chars_per_word))) land 0xff))
  done;
  Bytes.to_string b

let equal rt m a b =
  if a = b then true
  else begin
    let la = length rt m a and lb = length rt m b in
    la = lb
    &&
    let words = (la + chars_per_word - 1) / chars_per_word in
    let rec go i =
      i > words
      || Runtime.load_data rt m ~x:a ~i = Runtime.load_data rt m ~x:b ~i
         && go (i + 1)
    in
    go 1
  end

let hash rt m a =
  let len = length rt m a in
  let words = (len + chars_per_word - 1) / chars_per_word in
  let h = ref 0x3bf29ce484222325 in
  for i = 1 to words do
    let w = Runtime.load_data rt m ~x:a ~i in
    h := (!h lxor w) * 0x100000001b3
  done;
  !h land max_int
