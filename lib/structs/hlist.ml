open Otfgc
module Heap = Otfgc_heap.Heap

let cons rt m ~head ~tail =
  let cell = Runtime.alloc rt m ~size:32 ~n_slots:2 in
  Mutator.push m cell;
  if head <> Heap.nil then Runtime.store rt m ~x:cell ~i:0 ~y:head;
  if tail <> Heap.nil then Runtime.store rt m ~x:cell ~i:1 ~y:tail;
  ignore (Mutator.pop m : int);
  cell

let head rt m cell = Runtime.load rt m ~x:cell ~i:0
let tail rt m cell = Runtime.load rt m ~x:cell ~i:1

let length rt m cell =
  let rec go acc c = if c = Heap.nil then acc else go (acc + 1) (tail rt m c) in
  go 0 cell

let iter rt m f cell =
  let rec go c =
    if c <> Heap.nil then begin
      f (head rt m c);
      go (tail rt m c)
    end
  in
  go cell
