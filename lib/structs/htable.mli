(** Heap-allocated hash table with {!Hstring} keys.

    Layout: the table is one bucket object whose pointer slots are chains
    of entry objects; an entry has slots [0 = next entry; 1 = key (heap
    string); 2 = value (any object or nil)].  The bucket count is fixed at
    creation (no concurrent resize — the JDK 1.1 Hashtable the paper's
    benchmarks used also resized under a lock; a fixed table keeps the
    example honest without one).

    All pointer stores go through the write barrier, so insertions while
    the collector runs are exactly the inter-generational-pointer workload
    the paper studies: a long-lived table pointing at young entries.

    Rooting: operations use the mutator stack for temporaries; the caller
    roots the table itself and any value it passes or receives. *)

val create : Otfgc.Runtime.t -> Otfgc.Mutator.t -> buckets:int -> int
(** New empty table with the given bucket count (1..500). *)

val add :
  Otfgc.Runtime.t -> Otfgc.Mutator.t -> table:int -> key:int -> value:int -> unit
(** Prepend an entry mapping [key] (a rooted heap string) to [value].
    Does not replace existing bindings ({!find} returns the newest). *)

val find :
  Otfgc.Runtime.t -> Otfgc.Mutator.t -> table:int -> key:int -> int option
(** Value of the newest binding whose key equals [key] by content, if
    any. *)

val mem : Otfgc.Runtime.t -> Otfgc.Mutator.t -> table:int -> key:int -> bool

val count : Otfgc.Runtime.t -> Otfgc.Mutator.t -> table:int -> int
(** Total entries (walks every chain). *)
