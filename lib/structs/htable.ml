open Otfgc
module Heap = Otfgc_heap.Heap

let create rt m ~buckets =
  if buckets < 1 || buckets > 500 then
    invalid_arg "Htable.create: buckets must be in 1..500";
  Runtime.alloc rt m ~size:(16 + (8 * buckets)) ~n_slots:buckets

let bucket_of rt m ~table ~key =
  Hstring.hash rt m key mod Heap.n_slots (Runtime.heap rt) table

let add rt m ~table ~key ~value =
  let b = bucket_of rt m ~table ~key in
  let entry = Runtime.alloc rt m ~size:48 ~n_slots:3 in
  Mutator.push m entry;
  let first = Runtime.load rt m ~x:table ~i:b in
  if first <> Heap.nil then Runtime.store rt m ~x:entry ~i:0 ~y:first;
  Runtime.store rt m ~x:entry ~i:1 ~y:key;
  if value <> Heap.nil then Runtime.store rt m ~x:entry ~i:2 ~y:value;
  Runtime.store rt m ~x:table ~i:b ~y:entry;
  ignore (Mutator.pop m : int)

let find rt m ~table ~key =
  let b = bucket_of rt m ~table ~key in
  let rec go e =
    if e = Heap.nil then None
    else
      let k = Runtime.load rt m ~x:e ~i:1 in
      if Hstring.equal rt m k key then Some (Runtime.load rt m ~x:e ~i:2)
      else go (Runtime.load rt m ~x:e ~i:0)
  in
  go (Runtime.load rt m ~x:table ~i:b)

let mem rt m ~table ~key = find rt m ~table ~key <> None

let count rt m ~table =
  let n = Heap.n_slots (Runtime.heap rt) table in
  let total = ref 0 in
  for b = 0 to n - 1 do
    let rec go e =
      if e <> Heap.nil then begin
        incr total;
        go (Runtime.load rt m ~x:e ~i:0)
      end
    in
    go (Runtime.load rt m ~x:table ~i:b)
  done;
  !total
