type t = {
  names : string array;
  cols : int array array; (* one growable array per column *)
  scratch : int array; (* pending row, staged by [set] *)
  mutable len : int;
  mutable cap : int;
}

let initial_cap = 64

let create ~columns =
  let n = Array.length columns in
  if n = 0 then invalid_arg "Timeseries.create: no columns";
  let seen = Hashtbl.create n in
  Array.iter
    (fun name ->
      if Hashtbl.mem seen name then
        invalid_arg ("Timeseries.create: duplicate column " ^ name);
      Hashtbl.add seen name ())
    columns;
  {
    names = Array.copy columns;
    cols = Array.init n (fun _ -> [||]);
    scratch = Array.make n 0;
    len = 0;
    cap = 0;
  }

let n_columns t = Array.length t.names
let length t = t.len
let columns t = Array.copy t.names

let col_index t name =
  let rec find i =
    if i >= Array.length t.names then None
    else if String.equal t.names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let set t col v =
  if col < 0 || col >= Array.length t.scratch then
    invalid_arg "Timeseries.set: bad column";
  t.scratch.(col) <- v

let grow t =
  let cap' = if t.cap = 0 then initial_cap else t.cap * 2 in
  for c = 0 to Array.length t.cols - 1 do
    let col' = Array.make cap' 0 in
    Array.blit t.cols.(c) 0 col' 0 t.len;
    t.cols.(c) <- col'
  done;
  t.cap <- cap'

let commit t =
  if t.len = t.cap then grow t;
  for c = 0 to Array.length t.cols - 1 do
    t.cols.(c).(t.len) <- t.scratch.(c)
  done;
  t.len <- t.len + 1

let get t ~col ~row =
  if col < 0 || col >= Array.length t.cols then
    invalid_arg "Timeseries.get: bad column";
  if row < 0 || row >= t.len then invalid_arg "Timeseries.get: bad row";
  t.cols.(col).(row)

let clear t =
  t.len <- 0;
  Array.fill t.scratch 0 (Array.length t.scratch) 0

let to_csv t =
  let buf = Buffer.create (256 + (t.len * 8 * n_columns t)) in
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf name)
    t.names;
  Buffer.add_char buf '\n';
  for row = 0 to t.len - 1 do
    for c = 0 to Array.length t.cols - 1 do
      if c > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int t.cols.(c).(row))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_json t =
  let col_json c =
    Json.List (List.init t.len (fun row -> Json.Int t.cols.(c).(row)))
  in
  Json.Obj
    [
      ( "columns",
        Json.List
          (Array.to_list (Array.map (fun n -> Json.String n) t.names)) );
      ("length", Json.Int t.len);
      ( "series",
        Json.Obj
          (List.init (Array.length t.names) (fun c -> (t.names.(c), col_json c)))
      );
    ]
