type t = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { count = 0; sum = 0.; min_v = nan; max_v = nan }

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if t.count = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let add_int t x = add t (float_of_int x)

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min t = t.min_v
let max t = t.max_v

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }

let improvement_pct ~baseline ~candidate =
  if baseline = 0. then 0. else (baseline -. candidate) /. baseline *. 100.

let pct part whole = if whole = 0. then 0. else part /. whole *. 100.
