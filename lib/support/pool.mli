(** Work-stealing pool of OCaml 5 domains for coarse independent tasks.

    The experiment harness fans hundreds of independent, deterministic
    workload simulations out across domains.  Tasks must not share
    mutable state (each simulation builds its own heap, scheduler and
    RNG from its seed), so parallel and sequential execution produce
    identical results; [jobs = 1] is an exact sequential fallback that
    spawns no domains at all.

    Batches are submitted from one domain at a time; [run] from inside
    a task is not supported. *)

type t

val default_jobs : unit -> int
(** The [OTFGC_JOBS] environment variable when set to a positive
    integer, otherwise {!Domain.recommended_domain_count}. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs = 1] creates no domains.  Raises [Invalid_argument] when
    [jobs < 1]. *)

val jobs : t -> int

val run : t -> (unit -> 'a) array -> 'a array
(** Execute every task and return their results in submission order.
    Tasks are distributed round-robin over the workers' deques; idle
    workers steal the oldest task from the fullest deque.  If any task
    raises, the batch still runs to completion and the exception of
    the lowest-indexed failing task is re-raised. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [run] over [fun () -> f x]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must be idle. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], apply, then [shutdown] (also on exceptions). *)
