type align = Left | Right

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?title headers =
  let headers = Array.of_list headers in
  let aligns = Array.make (Array.length headers) Right in
  if Array.length aligns > 0 then aligns.(0) <- Left;
  { title; headers; aligns; rows = [] }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  let n = Array.length t.headers in
  let len = List.length cells in
  if len > n then invalid_arg "Textable.add_row: too many cells";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row)
    rows;
  let pad align width s =
    let fill = width - String.length s in
    if fill <= 0 then s
    else
      match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let line cells =
    let b = Buffer.create 128 in
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string b "  ";
      Buffer.add_string b (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.contents b
  in
  let b = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string b title;
      Buffer.add_char b '\n'
  | None -> ());
  Buffer.add_string b (line t.headers);
  Buffer.add_char b '\n';
  let total = Array.fold_left (fun acc w -> acc + w + 2) (-2) widths in
  Buffer.add_string b (String.make (Stdlib.max total 1) '-');
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (line row);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let print t =
  print_string (render t);
  print_newline ()

let to_json t =
  Json.Obj
    [
      ( "title",
        match t.title with Some s -> Json.String s | None -> Json.Null );
      ( "headers",
        Json.List (Array.to_list (Array.map (fun h -> Json.String h) t.headers))
      );
      ( "rows",
        Json.List
          (List.rev_map
             (fun row ->
               Json.List
                 (Array.to_list (Array.map (fun c -> Json.String c) row)))
             t.rows) );
    ]

let fmt_pct v = Printf.sprintf "%.1f" v
let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_int v = Printf.sprintf "%.0f" v
let na = "N/A"
