(** Deterministic splittable pseudo-random number generator.

    The whole simulator must be reproducible from a single seed: scheduler
    decisions, workload behaviour and experiment sweeps all draw from values
    of type {!t}.  The implementation is SplitMix64 (Steele, Lea & Flood,
    OOPSLA 2014), which is fast, has a 64-bit state, and supports
    {!split}ting into statistically independent streams so that concurrent
    processes do not share a mutable generator. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a generator from an integer seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    independent of the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first success
    of a Bernoulli([p]) trial; mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element.  Raises [Invalid_argument] on empty arrays. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t choices] picks proportionally to the (non-negative)
    weights.  Raises [Invalid_argument] if all weights are zero or the array
    is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
