(* Bucketing: values below 16 get exact unit buckets (indices 0..15); a
   value with highest set bit e >= 4 lands in major bucket e, which owns
   16 sub-buckets of width 2^(e-4) at indices (e-3)*16 .. (e-3)*16+15.
   With 63-bit ints the largest exponent is 62, so the table tops out at
   index (62-3)*16 + 15 = 959. *)

let n_slots = 960
let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 *)

type t = {
  counts : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make n_slots 0; count = 0; total = 0; min_v = 0; max_v = 0 }

let clear t =
  Array.fill t.counts 0 n_slots 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- 0;
  t.max_v <- 0

(* Highest set bit of a positive int, without allocation. *)
let log2_floor v =
  let r = if v lsr 32 <> 0 then 32 else 0 in
  let v = v lsr r in
  let r = r + if v lsr 16 <> 0 then 16 else 0 in
  let v = if v lsr 16 <> 0 then v lsr 16 else v in
  let r = r + if v lsr 8 <> 0 then 8 else 0 in
  let v = if v lsr 8 <> 0 then v lsr 8 else v in
  let r = r + if v lsr 4 <> 0 then 4 else 0 in
  let v = if v lsr 4 <> 0 then v lsr 4 else v in
  let r = r + if v lsr 2 <> 0 then 2 else 0 in
  let v = if v lsr 2 <> 0 then v lsr 2 else v in
  r + if v lsr 1 <> 0 then 1 else 0

let slot_of v =
  if v < sub then v
  else
    let e = log2_floor v in
    ((e - sub_bits + 1) * sub) + ((v lsr (e - sub_bits)) land (sub - 1))

(* Inclusive value range of a slot (inverse of [slot_of]). *)
let bounds slot =
  if slot < sub then (slot, slot)
  else
    let e = (slot / sub) + sub_bits - 1 in
    let u = slot land (sub - 1) in
    let width = 1 lsl (e - sub_bits) in
    let lo = (sub + u) * width in
    (lo, lo + width - 1)

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(slot_of v) <- t.counts.(slot_of v) + 1;
  t.total <- t.total + v;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1

let count t = t.count
let total t = t.total
let min_value t = t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.total /. float_of_int t.count

(* Shared percentile walk: find the slot holding the p-th sample, then
   let [pick] choose which edge of the slot's value range to report. *)
let percentile_with t p pick =
  if t.count = 0 then 0
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100. *. float_of_int t.count)))
    in
    let acc = ref 0 and slot = ref 0 and result = ref (pick t.max_v t.max_v) in
    (try
       while !slot < n_slots do
         acc := !acc + t.counts.(!slot);
         if !acc >= target then begin
           let lo, hi = bounds !slot in
           result := pick lo hi;
           raise Exit
         end;
         incr slot
       done
     with Exit -> ());
    !result
  end

let percentile t p =
  percentile_with t p (fun _lo hi -> Stdlib.min hi t.max_v)

let percentile_lower t p =
  percentile_with t p (fun lo _hi -> Stdlib.max lo t.min_v)

(* The merged histogram is equivalent to recording both sample streams
   into a fresh table: counts add slot-wise and the summary fields
   combine, so no precision is lost beyond the shared bucketing. *)
let merge a b =
  let t = create () in
  for slot = 0 to n_slots - 1 do
    t.counts.(slot) <- a.counts.(slot) + b.counts.(slot)
  done;
  t.count <- a.count + b.count;
  t.total <- a.total + b.total;
  (if t.count > 0 then
     match (a.count, b.count) with
     | 0, _ ->
         t.min_v <- b.min_v;
         t.max_v <- b.max_v
     | _, 0 ->
         t.min_v <- a.min_v;
         t.max_v <- a.max_v
     | _ ->
         t.min_v <- Stdlib.min a.min_v b.min_v;
         t.max_v <- Stdlib.max a.max_v b.max_v);
  t

(* In-place [merge]: fold [src]'s samples into [dst].  Used to combine
   per-mutator histograms into the shared ledger at end of run without
   replacing the destination value (telemetry holds it by field). *)
let add_into ~src ~dst =
  if src.count > 0 then begin
    for slot = 0 to n_slots - 1 do
      dst.counts.(slot) <- dst.counts.(slot) + src.counts.(slot)
    done;
    if dst.count = 0 then begin
      dst.min_v <- src.min_v;
      dst.max_v <- src.max_v
    end
    else begin
      dst.min_v <- Stdlib.min dst.min_v src.min_v;
      dst.max_v <- Stdlib.max dst.max_v src.max_v
    end;
    dst.count <- dst.count + src.count;
    dst.total <- dst.total + src.total
  end

let iter t f =
  for slot = 0 to n_slots - 1 do
    if t.counts.(slot) <> 0 then begin
      let lo, hi = bounds slot in
      f ~lo ~hi ~count:t.counts.(slot)
    end
  done

let pp ppf t =
  if t.count = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "n=%d min=%d mean=%.1f p50=%d p90=%d p99=%d max=%d"
      t.count t.min_v (mean t) (percentile t 50.) (percentile t 90.)
      (percentile t 99.) t.max_v
