type t = Element of string * (string * string) list * t list | Text of string

let el name ?(attrs = []) children = Element (name, attrs, children)
let text_node s = Text s

(* Two decimals is below half a pixel at report scale; strip trailing
   zeros so "12.00" and "12" (which compare equal) also print equal. *)
let fmt_coord v =
  if not (Float.is_finite v) then invalid_arg "Svg.fmt_coord: non-finite";
  let s = Printf.sprintf "%.2f" v in
  let n = String.length s in
  let stop = ref n in
  while !stop > 0 && s.[!stop - 1] = '0' do
    decr stop
  done;
  if !stop > 0 && s.[!stop - 1] = '.' then decr stop;
  if !stop = 0 then "0" else String.sub s 0 !stop

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf node =
  match node with
  | Text s -> escape buf s
  | Element (name, attrs, children) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf v;
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (to_buffer buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end

let to_string node =
  let buf = Buffer.create 1024 in
  to_buffer buf node;
  Buffer.contents buf

let cls_attr cls attrs =
  match cls with None -> attrs | Some c -> ("class", c) :: attrs

let svg ~w ~h ?(attrs = []) children =
  el "svg"
    ~attrs:
      ([
         ("xmlns", "http://www.w3.org/2000/svg");
         ("width", string_of_int w);
         ("height", string_of_int h);
         ("viewBox", Printf.sprintf "0 0 %d %d" w h);
       ]
      @ attrs)
    children

let group ?cls ?(attrs = []) children = el "g" ~attrs:(cls_attr cls attrs) children

let rect ~x ~y ~w ~h ?cls ?(attrs = []) () =
  el "rect"
    ~attrs:
      (cls_attr cls
         ([
            ("x", fmt_coord x);
            ("y", fmt_coord y);
            ("width", fmt_coord w);
            ("height", fmt_coord h);
          ]
         @ attrs))
    []

let line ~x1 ~y1 ~x2 ~y2 ?cls ?(attrs = []) () =
  el "line"
    ~attrs:
      (cls_attr cls
         ([
            ("x1", fmt_coord x1);
            ("y1", fmt_coord y1);
            ("x2", fmt_coord x2);
            ("y2", fmt_coord y2);
          ]
         @ attrs))
    []

let points_attr points =
  let buf = Buffer.create (List.length points * 12) in
  List.iteri
    (fun i (x, y) ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (fmt_coord x);
      Buffer.add_char buf ',';
      Buffer.add_string buf (fmt_coord y))
    points;
  Buffer.contents buf

let polyline ~points ?cls ?(attrs = []) () =
  el "polyline" ~attrs:(cls_attr cls (("points", points_attr points) :: attrs)) []

let polygon ~points ?cls ?(attrs = []) () =
  el "polygon" ~attrs:(cls_attr cls (("points", points_attr points) :: attrs)) []

let text ~x ~y ?cls ?(attrs = []) s =
  el "text"
    ~attrs:(cls_attr cls ([ ("x", fmt_coord x); ("y", fmt_coord y) ] @ attrs))
    [ Text s ]
