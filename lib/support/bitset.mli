(** Dense mutable bitsets over [0 .. capacity-1].

    Used for page-touch tracking and sweep bookkeeping, where the universe
    is small, dense and known up front. *)

type t

val create : int -> t
(** [create n] is an empty set over the universe [0 .. n-1]. *)

val capacity : t -> int
(** Size of the universe. *)

val mem : t -> int -> bool
val add : t -> int -> unit

val add_range : t -> int -> int -> unit
(** [add_range t lo len] adds every element of [lo .. lo+len-1] in
    O(len/8): interior bytes are filled eight elements at a time, only
    the edge bytes are masked.  Raises [Invalid_argument] if the range
    leaves the universe or [len] is negative. *)

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element. *)

val cardinal : t -> int
(** Number of elements currently in the set; O(capacity/64). *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst].  The two
    sets must have the same capacity. *)

val copy : t -> t

val to_list : t -> int list
(** Elements in increasing order. *)
