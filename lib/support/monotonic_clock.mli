(** Wall-clock time for the real-domains substrate.

    The simulator measures everything in abstract cost units
    ({!Otfgc.Cost.elapsed_multi}); the domains substrate needs real
    elapsed time for handshake and stall latency histograms.  Values are
    nanoseconds from an arbitrary epoch fixed at module initialisation,
    so differences are meaningful and fit comfortably in an [int]. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary process-local epoch.  Monotone
    non-decreasing for the purposes of latency deltas. *)

val ns_to_us : int -> int
(** Round a nanosecond delta to microseconds (histogram bucketing). *)
