(** Log-scaled streaming histogram of non-negative integer samples
    (HdrHistogram-style), for latency-class telemetry.

    The value range is covered by power-of-two major buckets, each divided
    into 16 linear sub-buckets, so relative precision is better than 1/16
    (~6%) everywhere while the whole table is one fixed [int array] of 960
    slots.  {!record} is allocation-free and branch-cheap — it may sit on
    the simulator's instrumented paths without perturbing the cost model —
    and querying walks the table only when asked.

    Samples are work units (or any non-negative int); negative samples are
    clamped to 0 rather than rejected, because instrumented clocks can
    legitimately read 0-length gaps. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Add one sample.  No allocation. *)

val count : t -> int
(** Total samples recorded. *)

val total : t -> int
(** Sum of all samples. *)

val min_value : t -> int
(** Smallest sample; [0] when empty. *)

val max_value : t -> int
(** Largest sample; [0] when empty. *)

val mean : t -> float
(** [0.] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: an upper bound of the bucket
    holding the p-th percentile sample, clamped to [max_value] (the
    HdrHistogram "highest equivalent value" convention).  [0] when empty. *)

val percentile_lower : t -> float -> int
(** Lower-bound companion to {!percentile}: the low edge of the bucket
    holding the p-th percentile sample, clamped to [min_value].  Together
    the pair brackets the true percentile to within one sub-bucket
    (~6% relative width).  [0] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram equivalent to recording both inputs'
    sample streams into one table (counts add slot-wise; count/total/
    min/max combine); neither argument is modified.  Used to fold
    per-mutator latency histograms into whole-run percentiles. *)

val add_into : src:t -> dst:t -> unit
(** In-place {!merge}: fold [src]'s samples into [dst] ([src] is not
    modified).  The real-domains substrate records latencies into
    per-mutator histograms and folds them into the shared telemetry with
    this at end of run. *)

val iter : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Visit every non-empty bucket in increasing value order; [lo..hi] is the
    inclusive sample range the bucket covers. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line summary: count, min/mean/p50/p90/p99/max. *)
