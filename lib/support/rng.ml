type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the advanced state through two
   xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* A distinct mixing constant decorrelates the child stream from the
     parent's continuation. *)
  let s = bits64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled into [0,1). *)
  r /. 9007199254740992.0 *. bound

let chance t p = if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1. then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    int_of_float (Float.floor (Float.log u /. Float.log (1. -. p)))

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. Float.log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t choices =
  if Array.length choices = 0 then invalid_arg "Rng.pick_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.) 0. choices in
  if total <= 0. then invalid_arg "Rng.pick_weighted: zero total weight";
  let x = float t total in
  let acc = ref 0. in
  let result = ref None in
  Array.iter
    (fun (v, w) ->
      if !result = None then begin
        acc := !acc +. Float.max w 0.;
        if x < !acc then result := Some v
      end)
    choices;
  match !result with Some v -> v | None -> fst choices.(Array.length choices - 1)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
