(** Minimal JSON tree, writer and parser — no external dependencies.

    Just enough JSON for the simulator's export surface: {!Run_result}
    round-trips, figure tables, telemetry summaries and Chrome/Perfetto
    trace files.  Integers and floats are kept distinct so that a
    round-trip restores the exact OCaml value: floats are printed with 17
    significant digits (enough to reconstruct any double) and always carry
    a ['.'] or exponent so the parser can tell them from ints. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string carries a character offset. *)

(** {2 Accessors} (shallow, [None] on shape mismatch) *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val as_list : t -> t list option
val as_int : t -> int option
val as_float : t -> float option
(** [as_float] accepts both [Int] and [Float]. *)

val as_string : t -> string option
