(** Allocation-lean columnar time series of integer samples.

    A series is created once with a fixed set of named columns; each
    sample (row) is staged into a preallocated scratch row with {!set}
    and appended with {!commit}.  Storage is one growable [int array]
    per column — committing a row allocates nothing except when a
    column array doubles, so the structure may be fed from the
    simulator's instrumented paths without perturbing its allocation
    profile.

    Rows are immutable once committed; readers address cells by
    [(column index, row index)].  Export to CSV or {!Json.t} walks the
    arrays only when asked. *)

type t

val create : columns:string array -> t
(** [create ~columns] makes an empty series with the given column
    names (copied).  Raises [Invalid_argument] if [columns] is empty
    or contains a duplicate name. *)

val n_columns : t -> int

val length : t -> int
(** Committed rows. *)

val columns : t -> string array
(** Copy of the column names, in column-index order. *)

val col_index : t -> string -> int option
(** Index of a named column. *)

val set : t -> int -> int -> unit
(** [set t col v] stages value [v] for column [col] of the pending
    row.  Columns not set since the last {!commit} keep their previous
    staged value (initially 0).  Raises [Invalid_argument] on a bad
    column index. *)

val commit : t -> unit
(** Append the staged row.  Amortised O(columns), allocation-free
    except when capacity doubles. *)

val get : t -> col:int -> row:int -> int
(** Cell of a committed row.  Raises [Invalid_argument] out of
    bounds. *)

val clear : t -> unit
(** Drop all committed rows and zero the staged row.  Capacity is
    retained. *)

val to_csv : t -> string
(** Header line of column names, then one comma-separated line per
    row. *)

val to_json : t -> Json.t
(** [{ "columns": [names...], "length": n,
       "series": { name: [v0; v1; ...], ... } }] — columnar layout, one
    integer array per column. *)
