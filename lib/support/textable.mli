(** Plain-text table rendering for reproduced paper figures.

    Every experiment prints its result as a table shaped like the paper's;
    this module centralises alignment and number formatting so all figures
    look uniform in [bench] output and in EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers.
    Columns are right-aligned except the first, which is left-aligned. *)

val set_align : t -> int -> align -> unit
(** Override the alignment of column [i]. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** The table as a string, with a separator under the header and the title
    (if any) above. *)

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

val to_json : t -> Json.t
(** Machine-readable form of the table: an object with [title] (string or
    null), [headers] (string list) and [rows] (list of string lists, in
    display order) — what [gcsim fig --json] emits. *)

(** {2 Cell formatting helpers} *)

val fmt_pct : float -> string
(** Signed percentage with one decimal, e.g. ["-3.7"] or ["17.2"]. *)

val fmt_f1 : float -> string
(** One decimal place. *)

val fmt_f2 : float -> string
(** Two decimal places. *)

val fmt_int : float -> string
(** Rounded to the nearest integer. *)

val na : string
(** The ["N/A"] cell used when a benchmark performs no full collection. *)
