(** Small integer bit utilities shared by the table layouts.

    Every table in the simulator (cards, pages, granules, cache lines)
    derives an index by shifting an address right by the log of a
    power-of-two size; this module is the single home for that
    derivation. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val log2_exact : int -> int
(** [log2_exact n] is [k] such that [1 lsl k = n].  Raises
    [Invalid_argument] unless [n] is a positive power of two. *)

val popcount : int -> int
(** Number of set bits (defined on all non-negative ints).  The card
    table counts dirty cards 32 at a time with this. *)

val ctz : int -> int
(** [ctz n] is the number of trailing zero bits of [n] — equivalently, the
    index of the lowest set bit.  Raises [Invalid_argument] on [0].  The
    free-list occupancy probe uses this to find the smallest non-empty
    size class in one step. *)
