(* A small work-stealing pool of OCaml 5 domains.

   Tasks here are coarse (whole workload simulations, milliseconds to
   seconds each), so the stealing protocol favours simplicity over
   lock-freedom: each worker owns a deque of thunks, all deques are
   guarded by the single pool mutex, and an idle worker steals the
   oldest task from the victim with the most work left.  Submission
   distributes a batch round-robin and waits on a condition variable
   for the completion count. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  deques : task Queue.t array; (* deques.(w) owned by worker w *)
  mutable outstanding : int; (* unfinished tasks of the current batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "OTFGC_JOBS" with
  | Some s when (match int_of_string_opt (String.trim s) with
                | Some n -> n >= 1
                | None -> false) ->
      int_of_string (String.trim s)
  | _ -> Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Pop from our own deque, else steal the oldest task from the fullest
   victim.  Caller holds [t.mutex]. *)
let take t w =
  if not (Queue.is_empty t.deques.(w)) then Some (Queue.pop t.deques.(w))
  else begin
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun i q ->
        let len = Queue.length q in
        if i <> w && len > !best then begin
          victim := i;
          best := len
        end)
      t.deques;
    if !victim < 0 then None else Some (Queue.pop t.deques.(!victim))
  end

let worker t w () =
  Mutex.lock t.mutex;
  let rec loop () =
    match take t w with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then Condition.signal t.batch_done;
        loop ()
    | None ->
        if t.stopping then Mutex.unlock t.mutex
        else begin
          Condition.wait t.work_ready t.mutex;
          loop ()
        end
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      deques = Array.init jobs (fun _ -> Queue.create ());
      outstanding = 0;
      stopping = false;
      domains = [];
    }
  in
  (* jobs = 1 is the deterministic sequential fallback: no domains at
     all, [run] executes in the calling domain. *)
  if jobs > 1 then
    t.domains <- List.init jobs (fun w -> Domain.spawn (worker t w));
  t

let shutdown t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let run (type a) t (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results : a option array = Array.make n None in
    (* first error by task index, so a failing batch raises the same
       exception regardless of execution order *)
    let err : (int * exn * Printexc.raw_backtrace) option ref = ref None in
    let wrap i () =
      match tasks.(i) () with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.mutex;
          (match !err with
          | Some (j, _, _) when j < i -> ()
          | _ -> err := Some (i, e, bt));
          Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    if t.outstanding > 0 then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is already running a batch"
    end;
    for i = 0 to n - 1 do
      Queue.push (wrap i) t.deques.(i mod t.jobs)
    done;
    t.outstanding <- n;
    Condition.broadcast t.work_ready;
    while t.outstanding > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (match !err with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f xs = run t (Array.map (fun x () -> f x) xs)

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
