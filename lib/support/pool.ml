(* A small work-stealing pool of OCaml 5 domains.

   Tasks are coarse (whole workload simulations, milliseconds to seconds
   each), so the stealing protocol favours simplicity over lock-freedom —
   but the deques are no longer serialised behind one pool-wide mutex:
   each worker's deque has its own lock, so concurrent owner pops and
   steals of different deques never contend.  The pool mutex now guards
   only the batch bookkeeping (outstanding count, stop flag) and backs
   the two condition variables; the sleep/wake protocol rechecks the
   deques while holding it, and [run] pushes while holding it, so a
   worker can never miss a wakeup (lock order: pool mutex, then a deque
   mutex — never the reverse). *)

type task = unit -> unit

type deque = { lock : Mutex.t; q : task Queue.t }

type t = {
  jobs : int;
  mutex : Mutex.t; (* batch bookkeeping + condition variables only *)
  work_ready : Condition.t;
  batch_done : Condition.t;
  deques : deque array; (* deques.(w) owned by worker w *)
  mutable outstanding : int; (* unfinished tasks of the current batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  let parsed =
    Option.bind (Sys.getenv_opt "OTFGC_JOBS") (fun s ->
        int_of_string_opt (String.trim s))
  in
  match parsed with
  | Some n when n >= 1 -> n
  | _ -> Domain.recommended_domain_count ()

let jobs t = t.jobs

let pop_deque d =
  Mutex.lock d.lock;
  let r = if Queue.is_empty d.q then None else Some (Queue.pop d.q) in
  Mutex.unlock d.lock;
  r

(* Pop from our own deque, else steal the oldest task from the victim
   with the most work left.  Queue lengths are read without the deque
   locks — a racy but memory-safe heuristic; the actual pop revalidates
   under the victim's lock and falls through to the next victim when it
   lost the race. *)
let take t w =
  match pop_deque t.deques.(w) with
  | Some _ as r -> r
  | None ->
      let order = Array.init t.jobs (fun i -> (i, Queue.length t.deques.(i).q)) in
      Array.sort (fun (_, a) (_, b) -> compare b a) order;
      let r = ref None in
      Array.iter
        (fun (i, _) ->
          if !r = None && i <> w then
            match pop_deque t.deques.(i) with
            | Some _ as got -> r := got
            | None -> ())
        order;
      !r

let worker t w () =
  let rec loop () =
    match take t w with
    | Some task ->
        task ();
        Mutex.lock t.mutex;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then Condition.signal t.batch_done;
        Mutex.unlock t.mutex;
        loop ()
    | None ->
        Mutex.lock t.mutex;
        if t.stopping then Mutex.unlock t.mutex
        else begin
          (* Recheck with the pool mutex held: [run] pushes while holding
             it, so either the recheck sees the new tasks or we are inside
             [Condition.wait] when the broadcast fires. *)
          match take t w with
          | Some task ->
              Mutex.unlock t.mutex;
              task ();
              Mutex.lock t.mutex;
              t.outstanding <- t.outstanding - 1;
              if t.outstanding = 0 then Condition.signal t.batch_done;
              Mutex.unlock t.mutex;
              loop ()
          | None ->
              Condition.wait t.work_ready t.mutex;
              Mutex.unlock t.mutex;
              loop ()
        end
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      deques =
        Array.init jobs (fun _ -> { lock = Mutex.create (); q = Queue.create () });
      outstanding = 0;
      stopping = false;
      domains = [];
    }
  in
  (* jobs = 1 is the deterministic sequential fallback: no domains at
     all, [run] executes in the calling domain. *)
  if jobs > 1 then
    t.domains <- List.init jobs (fun w -> Domain.spawn (worker t w));
  t

let shutdown t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let run (type a) t (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results : a option array = Array.make n None in
    (* first error by task index, so a failing batch raises the same
       exception regardless of execution order *)
    let err_lock = Mutex.create () in
    let err : (int * exn * Printexc.raw_backtrace) option ref = ref None in
    let wrap i () =
      match tasks.(i) () with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock err_lock;
          (match !err with
          | Some (j, _, _) when j < i -> ()
          | _ -> err := Some (i, e, bt));
          Mutex.unlock err_lock
    in
    Mutex.lock t.mutex;
    if t.outstanding > 0 then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is already running a batch"
    end;
    for i = 0 to n - 1 do
      let d = t.deques.(i mod t.jobs) in
      Mutex.lock d.lock;
      Queue.push (wrap i) d.q;
      Mutex.unlock d.lock
    done;
    t.outstanding <- n;
    Condition.broadcast t.work_ready;
    while t.outstanding > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (match !err with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f xs = run t (Array.map (fun x () -> f x) xs)

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
