(** Tiny hand-rolled SVG/XML emitter — just enough vocabulary for the
    metrics reports (rects, lines, polylines/polygons, text, groups),
    no external dependencies.

    Documents are built as a node tree and serialised with
    {!to_string}; all text content and attribute values are escaped, so
    arbitrary workload names are safe.  Coordinates are printed with at
    most two decimals and no trailing zeros, keeping the output both
    compact and deterministic across platforms. *)

type t

val el : string -> ?attrs:(string * string) list -> t list -> t
(** Generic element; empty child lists render self-closing. *)

val text_node : string -> t
(** Escaped character data. *)

val fmt_coord : float -> string
(** Canonical coordinate rendering ("12", "12.5", "12.25"); non-finite
    inputs raise [Invalid_argument] so malformed geometry fails at
    build time, not in the viewer. *)

(** {2 Shape helpers} — [cls] becomes a [class] attribute when given. *)

val svg : w:int -> h:int -> ?attrs:(string * string) list -> t list -> t
(** Root element with [xmlns], [width]/[height] and a matching
    [viewBox]. *)

val group : ?cls:string -> ?attrs:(string * string) list -> t list -> t

val rect :
  x:float -> y:float -> w:float -> h:float -> ?cls:string ->
  ?attrs:(string * string) list -> unit -> t

val line :
  x1:float -> y1:float -> x2:float -> y2:float -> ?cls:string ->
  ?attrs:(string * string) list -> unit -> t

val polyline :
  points:(float * float) list -> ?cls:string ->
  ?attrs:(string * string) list -> unit -> t

val polygon :
  points:(float * float) list -> ?cls:string ->
  ?attrs:(string * string) list -> unit -> t

val text :
  x:float -> y:float -> ?cls:string -> ?attrs:(string * string) list ->
  string -> t

val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit
