(* OCaml's stdlib exposes no monotonic clock without external packages,
   so this is gettimeofday re-based to a process-local epoch.  NTP steps
   are the only non-monotonicity source; latency deltas clamp at zero so
   a step can at worst flatten one histogram sample, never corrupt the
   store. *)

let epoch = Unix.gettimeofday ()

let now_ns () =
  let dt = Unix.gettimeofday () -. epoch in
  let ns = int_of_float (dt *. 1e9) in
  if ns < 0 then 0 else ns

let ns_to_us ns = if ns <= 0 then 0 else (ns + 500) / 1000
