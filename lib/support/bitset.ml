type t = { words : Bytes.t; capacity : int }

(* One byte per 8 elements; Bytes gives us cheap blit/fill. *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let add_range t lo len =
  if len < 0 then invalid_arg "Bitset.add_range: negative length";
  if len > 0 then begin
    check t lo;
    check t (lo + len - 1);
    let hi = lo + len - 1 in
    let first_byte = lo lsr 3 and last_byte = hi lsr 3 in
    if first_byte = last_byte then begin
      (* Bits [lo land 7 .. hi land 7] of a single byte. *)
      let mask = ((1 lsl len) - 1) lsl (lo land 7) in
      let b = Char.code (Bytes.get t.words first_byte) in
      Bytes.set t.words first_byte (Char.chr (b lor mask))
    end
    else begin
      let head = 0xff lsl (lo land 7) land 0xff in
      let b = Char.code (Bytes.get t.words first_byte) in
      Bytes.set t.words first_byte (Char.chr (b lor head));
      (* Whole bytes in between are blitted eight elements at a time. *)
      if last_byte > first_byte + 1 then
        Bytes.fill t.words (first_byte + 1) (last_byte - first_byte - 1) '\255';
      let tail = (1 lsl ((hi land 7) + 1)) - 1 in
      let b = Char.code (Bytes.get t.words last_byte) in
      Bytes.set t.words last_byte (Char.chr (b lor tail))
    end
  end

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let iter f t =
  for byte = 0 to Bytes.length t.words - 1 do
    let b = Char.code (Bytes.get t.words byte) in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let union_into ~dst src =
  if dst.capacity <> src.capacity then
    invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Bytes.length dst.words - 1 do
    let b = Char.code (Bytes.get dst.words i) lor Char.code (Bytes.get src.words i) in
    Bytes.set dst.words i (Char.chr b)
  done

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])
