let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_pow2 n) then
    invalid_arg "Bits.log2_exact: argument must be a positive power of two";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* Branchy binary reduction rather than a de Bruijn multiply: OCaml's
   native int is 63 bits, so the classic 64-bit multiplicative hashes
   don't apply directly, and six compares are plenty fast for a
   once-per-allocation probe. *)
(* Parallel bit-count (Hamming weight).  32-bit masks, applied twice to
   cover OCaml's 63-bit int: callers pass card-table words (32 bits) or
   occupancy bitmaps, and the halved reduction keeps every constant
   inside the 63-bit literal range. *)
let popcount n =
  let pop32 v =
    let v = v - ((v lsr 1) land 0x55555555) in
    let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
    let v = (v + (v lsr 4)) land 0x0F0F0F0F in
    (* parenthesised: lsr binds tighter than * in OCaml *)
    (v * 0x01010101) lsr 24 land 0x3F
  in
  pop32 (n land 0xFFFFFFFF) + pop32 ((n lsr 32) land 0x7FFFFFFF)

let ctz n =
  if n = 0 then invalid_arg "Bits.ctz: zero has no trailing-zero count";
  let n = n land -n in
  let c = ref 0 in
  let n = if n land 0xFFFFFFFF = 0 then (c := 32; n lsr 32) else n in
  let n = if n land 0xFFFF = 0 then (c := !c + 16; n lsr 16) else n in
  let n = if n land 0xFF = 0 then (c := !c + 8; n lsr 8) else n in
  let n = if n land 0xF = 0 then (c := !c + 4; n lsr 4) else n in
  let n = if n land 0x3 = 0 then (c := !c + 2; n lsr 2) else n in
  if n land 0x1 = 0 then incr c;
  !c
