let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_pow2 n) then
    invalid_arg "Bits.log2_exact: argument must be a positive power of two";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0
