(** Streaming statistics accumulators.

    The experiment harness reports averages over collections and over
    repeated runs; these accumulators avoid retaining samples. *)

type t
(** Accumulates count, sum, min, max and mean of a stream of floats. *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** Mean of the samples so far; [0.] if empty. *)

val min : t -> float
(** Smallest sample; [nan] if empty. *)

val max : t -> float
(** Largest sample; [nan] if empty. *)

val merge : t -> t -> t
(** Combined accumulator, as if all samples of both streams were added. *)

val improvement_pct : baseline:float -> candidate:float -> float
(** [improvement_pct ~baseline ~candidate] is the percentage by which
    [candidate] improves on [baseline] for a lower-is-better metric:
    [(baseline - candidate) / baseline * 100.].  [0.] when the baseline is
    zero. *)

val pct : float -> float -> float
(** [pct part whole] is [part/whole*100.], or [0.] when [whole = 0.]. *)
