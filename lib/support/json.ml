type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* 17 significant digits reconstruct any finite double exactly; force a
     '.' so the parser keeps the value a float. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | String s -> escape_into b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* Encode the code point as UTF-8 (BMP only). *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 5
               | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let as_list = function List items -> Some items | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_string = function String s -> Some s | _ -> None
