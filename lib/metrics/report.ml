module Svg = Otfgc_support.Svg
module Timeseries = Otfgc_support.Timeseries
module Runtime = Otfgc.Runtime
module Sampler = Otfgc.Sampler
module Event_log = Otfgc.Event_log
module Status = Otfgc.Status

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let width = 960.
let margin_l = 72.
let margin_r = 16.
let margin_t = 12.
let margin_b = 30.
let plot_w = width -. margin_l -. margin_r

let style =
  (* No '<' or '>' anywhere in the CSS: the validator's tag scanner
     reads the whole document. *)
  "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:1020px;\
   color:#1f2430;background:#fff}\
   h1{font-size:20px}h2{font-size:15px;margin:18px 0 4px}\
   p.meta{color:#5b6472;margin:2px 0 12px}\
   .chart{margin-bottom:8px}\
   svg{background:#fafbfc;border:1px solid #e3e6ea}\
   .axis{font:11px system-ui,sans-serif;fill:#5b6472}\
   .gridline{stroke:#e3e6ea;stroke-width:1}\
   .capacity{fill:none;stroke:#1f2430;stroke-width:1.2;stroke-dasharray:4 3}\
   .ribbon-blue{fill:#c7dcf2}\
   .ribbon-c0{fill:#e8b04b}\
   .ribbon-c1{fill:#4ba3a3}\
   .ribbon-gray{fill:#9aa3ad}\
   .ribbon-black{fill:#3a3f47}\
   .strip-cycle{fill:#b9a7e0}\
   .strip-handshake{fill:#e08a3c}\
   .strip-stall{fill:#d05252}\
   .promotion{fill:none;stroke:#7a4fc0;stroke-width:1.5}\
   .legend{font:11px system-ui,sans-serif;fill:#1f2430}"

(* ------------------------------------------------------------------ *)
(* Series access                                                       *)
(* ------------------------------------------------------------------ *)

type series = { ts : Timeseries.t; n : int; t_max : int }

let cell s col row = Timeseries.get s.ts ~col ~row

let x_of s at =
  if s.t_max = 0 then margin_l
  else margin_l +. (plot_w *. float_of_int at /. float_of_int s.t_max)

let x_of_row s row = x_of s (cell s Sampler.i_at row)

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let fmt_count v =
  if v >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int v /. 1.e6)
  else if v >= 10_000 then Printf.sprintf "%dk" (v / 1000)
  else string_of_int v

let x_axis s ~h =
  let ticks = 6 in
  List.concat
    (List.init (ticks + 1) (fun i ->
         let at = s.t_max * i / ticks in
         let x = x_of s at in
         [
           Svg.line ~x1:x ~y1:margin_t ~x2:x ~y2:(h -. margin_b)
             ~cls:"gridline" ();
           Svg.text ~x ~y:(h -. margin_b +. 16.) ~cls:"axis"
             ~attrs:[ ("text-anchor", "middle") ]
             (fmt_count at);
         ]))

let y_axis ~h ~y_max ~label fmt =
  let ticks = 4 in
  let plot_h = h -. margin_t -. margin_b in
  List.concat
    (List.init (ticks + 1) (fun i ->
         let v = y_max * i / ticks in
         let y =
           h -. margin_b
           -.
           if y_max = 0 then 0.
           else plot_h *. float_of_int v /. float_of_int y_max
         in
         [
           Svg.text ~x:(margin_l -. 6.) ~y:(y +. 4.) ~cls:"axis"
             ~attrs:[ ("text-anchor", "end") ]
             (fmt v);
         ]))
  @ [
      Svg.text ~x:2. ~y:(margin_t +. 10.) ~cls:"axis" label;
      Svg.text
        ~x:(width -. margin_r)
        ~y:(h -. 4.) ~cls:"axis"
        ~attrs:[ ("text-anchor", "end") ]
        "elapsed work units";
    ]

(* ------------------------------------------------------------------ *)
(* Panel 1: occupancy ribbons                                          *)
(* ------------------------------------------------------------------ *)

(* Stacked bottom-up: old/dark layers first so the free space floats on
   top — the silhouette of the stack is the capacity staircase. *)
let ribbon_layers =
  [
    ("ribbon-black", Sampler.i_black_bytes);
    ("ribbon-gray", Sampler.i_gray_bytes);
    ("ribbon-c1", Sampler.i_c1_bytes);
    ("ribbon-c0", Sampler.i_c0_bytes);
    ("ribbon-blue", Sampler.i_blue_bytes);
  ]

let occupancy_svg s =
  let h = 320. in
  let plot_h = h -. margin_t -. margin_b in
  let cap_max =
    let m = ref 1 in
    for row = 0 to s.n - 1 do
      m := Stdlib.max !m (cell s Sampler.i_capacity row)
    done;
    !m
  in
  let y_of v =
    h -. margin_b -. (plot_h *. float_of_int v /. float_of_int cap_max)
  in
  (* cumulative stack bottom, updated layer by layer *)
  let base = Array.make s.n 0 in
  let ribbons =
    List.map
      (fun (cls, col) ->
        let upper =
          List.init s.n (fun row ->
              (x_of_row s row, y_of (base.(row) + cell s col row)))
        in
        let lower =
          List.init s.n (fun row -> (x_of_row s row, y_of base.(row)))
        in
        for row = 0 to s.n - 1 do
          base.(row) <- base.(row) + cell s col row
        done;
        Svg.polygon ~points:(upper @ List.rev lower) ~cls:("ribbon " ^ cls) ())
      ribbon_layers
  in
  let capacity =
    Svg.polyline
      ~points:
        (List.init s.n (fun row ->
             (x_of_row s row, y_of (cell s Sampler.i_capacity row))))
      ~cls:"capacity" ()
  in
  let legend =
    let entries =
      [
        ("ribbon-black", "old / black");
        ("ribbon-gray", "gray");
        ("ribbon-c1", "C1");
        ("ribbon-c0", "C0");
        ("ribbon-blue", "free (blue)");
      ]
    in
    List.concat
      (List.mapi
         (fun i (cls, label) ->
           let x = margin_l +. 8. +. (110. *. float_of_int i) in
           [
             Svg.rect ~x ~y:(margin_t +. 4.) ~w:10. ~h:10. ~cls ();
             Svg.text ~x:(x +. 14.) ~y:(margin_t +. 13.) ~cls:"legend" label;
           ])
         entries)
  in
  Svg.svg ~w:(int_of_float width) ~h:(int_of_float h)
    ~attrs:[ ("data-samples", string_of_int s.n) ]
    (x_axis s ~h
    @ y_axis ~h ~y_max:cap_max ~label:"bytes" fmt_count
    @ ribbons @ [ capacity ] @ legend)

(* ------------------------------------------------------------------ *)
(* Panel 2: collector-activity strips from the event log               *)
(* ------------------------------------------------------------------ *)

type span = { from_at : int; to_at : int }

let spans_of_events events =
  let cycles = ref []
  and handshakes = ref []
  and stalls = ref [] in
  let cycle_open = ref None in
  let hs_open = ref [] (* (status, at) assoc *)
  and stall_open = ref [] (* (mid, at) assoc *) in
  List.iter
    (fun { Event_log.at; phase } ->
      match phase with
      | Event_log.Cycle_start _ -> cycle_open := Some at
      | Event_log.Cycle_end ->
          Option.iter
            (fun t0 -> cycles := { from_at = t0; to_at = at } :: !cycles)
            !cycle_open;
          cycle_open := None
      | Event_log.Handshake_posted st -> hs_open := (st, at) :: !hs_open
      | Event_log.Handshake_complete st -> (
          match List.assoc_opt st !hs_open with
          | Some t0 ->
              handshakes := { from_at = t0; to_at = at } :: !handshakes;
              hs_open := List.remove_assoc st !hs_open
          | None -> ())
      | Event_log.Stall_begin { mid } -> stall_open := (mid, at) :: !stall_open
      | Event_log.Stall_end { mid } -> (
          match List.assoc_opt mid !stall_open with
          | Some t0 ->
              stalls := { from_at = t0; to_at = at } :: !stalls;
              stall_open := List.remove_assoc mid !stall_open
          | None -> ())
      | _ -> ())
    events;
  (List.rev !cycles, List.rev !handshakes, List.rev !stalls)

let strips_svg s events =
  let rows =
    let cycles, handshakes, stalls = spans_of_events events in
    [
      ("cycles", "strip strip-cycle", cycles);
      ("handshakes", "strip strip-handshake", handshakes);
      ("stalls", "strip strip-stall", stalls);
    ]
  in
  let row_h = 26. in
  let h = margin_t +. margin_b +. (row_h *. float_of_int (List.length rows)) in
  let strip_rects =
    List.concat
      (List.mapi
         (fun i (label, cls, spans) ->
           let y = margin_t +. (row_h *. float_of_int i) +. 4. in
           Svg.text ~x:(margin_l -. 6.) ~y:(y +. 12.) ~cls:"axis"
             ~attrs:[ ("text-anchor", "end") ]
             label
           :: List.map
                (fun { from_at; to_at } ->
                  let x0 = x_of s from_at and x1 = x_of s to_at in
                  Svg.rect ~x:x0 ~y
                    ~w:(Stdlib.max 1. (x1 -. x0))
                    ~h:(row_h -. 8.) ~cls ())
                spans)
         rows)
  in
  Svg.svg ~w:(int_of_float width) ~h:(int_of_float h)
    ~attrs:[ ("data-samples", string_of_int s.n) ]
    (x_axis s ~h @ strip_rects)

(* ------------------------------------------------------------------ *)
(* Panel 3: promotion rate                                             *)
(* ------------------------------------------------------------------ *)

(* The census records cumulative promotions; the rate is the discrete
   derivative per 1000 work units, plotted at each interval's right
   edge.  A run with no promotions draws a flat zero line. *)
let promotion_rate s =
  List.init (Stdlib.max 1 (s.n - 1)) (fun i ->
      let row0 = i and row1 = Stdlib.min (s.n - 1) (i + 1) in
      let dp =
        cell s Sampler.i_promotions row1 - cell s Sampler.i_promotions row0
      in
      let dt =
        Stdlib.max 1 (cell s Sampler.i_at row1 - cell s Sampler.i_at row0)
      in
      (cell s Sampler.i_at row1, 1000. *. float_of_int dp /. float_of_int dt))

let promotion_svg s =
  let h = 180. in
  let plot_h = h -. margin_t -. margin_b in
  let rates = promotion_rate s in
  let r_max = List.fold_left (fun m (_, r) -> Float.max m r) 1e-9 rates in
  let y_of r = h -. margin_b -. (plot_h *. r /. r_max) in
  let points =
    match rates with
    | [ (at, r) ] -> [ (x_of s 0, y_of r); (x_of s at, y_of r) ]
    | _ -> List.map (fun (at, r) -> (x_of s at, y_of r)) rates
  in
  let y_labels =
    List.init 3 (fun i ->
        let r = r_max *. float_of_int i /. 2. in
        Svg.text ~x:(margin_l -. 6.)
          ~y:(y_of r +. 4.)
          ~cls:"axis"
          ~attrs:[ ("text-anchor", "end") ]
          (Printf.sprintf "%.2f" r))
  in
  Svg.svg ~w:(int_of_float width) ~h:(int_of_float h)
    ~attrs:[ ("data-samples", string_of_int s.n) ]
    (x_axis s ~h @ y_labels
    @ [
        Svg.text ~x:2. ~y:(margin_t +. 10.) ~cls:"axis" "promotions / 1k units";
        Svg.polyline ~points ~cls:"promotion" ();
      ])

(* ------------------------------------------------------------------ *)
(* Document assembly                                                   *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_runtime ?(workload = "run") rt =
  let ts = Sampler.series (Runtime.sampler rt) in
  let n = Timeseries.length ts in
  if n < 2 then
    Error
      (Printf.sprintf
         "report needs at least 2 census samples, have %d (arm sampling with \
          --sample-every)"
         n)
  else begin
    let t_max =
      Stdlib.max 1 (Timeseries.get ts ~col:Sampler.i_at ~row:(n - 1))
    in
    let s = { ts; n; t_max } in
    let st = Runtime.state rt in
    let mode = Otfgc.Gc_config.mode_name st.Otfgc.State.cfg.Otfgc.Gc_config.mode in
    let events = Event_log.events (Runtime.events rt) in
    let dropped = Event_log.dropped (Runtime.events rt) in
    let buf = Buffer.create 65536 in
    let add = Buffer.add_string buf in
    add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>";
    add (html_escape ("gcsim report — " ^ workload));
    add "</title><style>";
    add style;
    add "</style></head><body>\n<h1>";
    add (html_escape (Printf.sprintf "Heap observatory — %s (%s)" workload mode));
    add "</h1>\n<p class=\"meta\">";
    add
      (html_escape
         (Printf.sprintf
            "%d census samples over %d work units; %d events logged%s" n
            s.t_max (List.length events)
            (if dropped > 0 then
               Printf.sprintf " (WARNING: %d oldest events overwritten)" dropped
             else "")));
    add "</p>\n<div class=\"chart\"><h2>Heap occupancy by color</h2>\n";
    Svg.to_buffer buf (occupancy_svg s);
    add "</div>\n<div class=\"chart\"><h2>Collector activity</h2>\n";
    Svg.to_buffer buf (strips_svg s events);
    add "</div>\n<div class=\"chart\"><h2>Promotion rate</h2>\n";
    Svg.to_buffer buf (promotion_svg s);
    add "</div>\n</body></html>\n";
    Ok (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* Structural validator                                                *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Tag scanner: yields (name, attrs_raw, self_closing) for every tag,
   checking attribute quoting on the way.  The emitters never produce
   '<' in text or attribute values (both escape), so a raw '<' reliably
   opens a tag. *)
let scan_tags doc f =
  let n = String.length doc in
  let i = ref 0 in
  let err = ref None in
  while !err = None && !i < n do
    if doc.[!i] <> '<' then incr i
    else begin
      let start = !i in
      (* find the matching '>' outside quotes *)
      let j = ref (start + 1) in
      let in_quote = ref false in
      while
        !j < n && (!in_quote || doc.[!j] <> '>')
      do
        if doc.[!j] = '"' then in_quote := not !in_quote;
        incr j
      done;
      if !j >= n then err := Some "unterminated tag"
      else begin
        let body = String.sub doc (start + 1) (!j - start - 1) in
        (if String.length body = 0 then err := Some "empty tag"
         else if body.[0] = '!' then () (* doctype/comment *)
         else begin
           let closing = body.[0] = '/' in
           let body' =
             if closing then String.sub body 1 (String.length body - 1)
             else body
           in
           let self_closing =
             (not closing)
             && String.length body' > 0
             && body'.[String.length body' - 1] = '/'
           in
           let body' =
             if self_closing then String.sub body' 0 (String.length body' - 1)
             else body'
           in
           let name, attrs =
             match String.index_opt body' ' ' with
             | None -> (body', "")
             | Some k ->
                 ( String.sub body' 0 k,
                   String.sub body' (k + 1) (String.length body' - k - 1) )
           in
           if name = "" then err := Some "nameless tag"
           else
             match f ~name ~attrs ~closing ~self_closing with
             | Ok () -> ()
             | Error e -> err := Some e
         end);
        i := !j + 1
      end
    end
  done;
  match !err with Some e -> Error e | None -> Ok ()

(* Pull every value of the given attribute out of a raw attribute
   string (values are always double-quoted by our emitters). *)
let attr_values ~attr attrs acc =
  let needle = attr ^ "=\"" in
  let rec go from acc =
    match
      if from > String.length attrs - String.length needle then None
      else
        let rec find i =
          if i + String.length needle > String.length attrs then None
          else if String.sub attrs i (String.length needle) = needle then
            Some i
          else find (i + 1)
        in
        find from
    with
    | None -> acc
    | Some i ->
        let v_start = i + String.length needle in
        let v_end = try String.index_from attrs v_start '"' with Not_found ->
          String.length attrs
        in
        go (v_end + 1) (String.sub attrs v_start (v_end - v_start) :: acc)
  in
  go 0 acc

let is_finite_float str =
  match float_of_string_opt str with
  | Some f -> Float.is_finite f
  | None -> false

let check_points pts =
  let pairs = String.split_on_char ' ' pts in
  let pairs = List.filter (fun p -> p <> "") pairs in
  if List.length pairs < 2 then
    Error (Printf.sprintf "points %S: fewer than 2 pairs" pts)
  else
    List.fold_left
      (fun acc pair ->
        let* () = acc in
        match String.split_on_char ',' pair with
        | [ x; y ] when is_finite_float x && is_finite_float y -> Ok ()
        | _ -> Error (Printf.sprintf "points pair %S not finite x,y" pair))
      (Ok ()) pairs

let validate_structure ~required_classes ?(min_samples = 2) doc =
  let* () =
    if String.length doc >= 15 && String.sub doc 0 15 = "<!DOCTYPE html>" then
      Ok ()
    else Error "missing <!DOCTYPE html> prologue"
  in
  let stack = ref [] in
  let classes = ref [] in
  let samples = ref None in
  let points = ref [] in
  let* () =
    scan_tags doc (fun ~name ~attrs ~closing ~self_closing ->
        (match name with
        | "script" | "link" | "img" | "iframe" ->
            Error ("external-resource tag <" ^ name ^ "> in report")
        | _ -> Ok ())
        |> fun ok ->
        let* () = ok in
        if closing then
          match !stack with
          | top :: rest when top = name ->
              stack := rest;
              Ok ()
          | top :: _ ->
              Error (Printf.sprintf "mismatched </%s> (open: <%s>)" name top)
          | [] -> Error (Printf.sprintf "stray </%s>" name)
        else begin
          classes := attr_values ~attr:"class" attrs !classes;
          points := attr_values ~attr:"points" attrs !points;
          if name = "svg" && !samples = None then
            samples :=
              Some (attr_values ~attr:"data-samples" attrs [] |> function
                    | v :: _ -> int_of_string_opt v
                    | [] -> None);
          if not self_closing then stack := name :: !stack;
          Ok ()
        end)
  in
  let* () =
    match !stack with
    | [] -> Ok ()
    | top :: _ -> Error (Printf.sprintf "unclosed <%s>" top)
  in
  let class_tokens =
    List.concat_map (fun c -> String.split_on_char ' ' c) !classes
  in
  let* () =
    List.fold_left
      (fun acc need ->
        let* () = acc in
        if List.mem need class_tokens then Ok ()
        else Error (Printf.sprintf "missing element class %S" need))
      (Ok ()) required_classes
  in
  let* () =
    match !samples with
    | Some (Some k) when k >= min_samples -> Ok ()
    | Some (Some k) ->
        Error (Printf.sprintf "data-samples=%d (need >= %d)" k min_samples)
    | Some None -> Error "svg data-samples attribute unreadable"
    | None -> Error "no svg with data-samples found"
  in
  List.fold_left
    (fun acc pts ->
      let* () = acc in
      check_points pts)
    (Ok ()) !points

let validate doc =
  validate_structure ~required_classes:[ "ribbon"; "axis"; "promotion" ] doc
