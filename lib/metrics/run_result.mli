(** Summary of one complete workload run — every quantity the paper's
    evaluation (Figures 7–23) reports, derived from the runtime's cost
    ledger and per-cycle statistics at the end of the run. *)

type t = {
  workload : string;
  mode : string;
  (* cost ledger *)
  elapsed_multi : int;  (** saturated-SMP elapsed proxy (Section 8.1) *)
  elapsed_uni : int;    (** uniprocessor elapsed proxy *)
  mutator_work : int;
  collector_work : int;
  stall_work : int;
  (* volume *)
  total_alloc_bytes : int;
  total_alloc_objects : int;
  final_capacity : int;
  (* cycle counts (Figure 10) *)
  n_partial : int;
  n_full : int;
  n_non_gen : int;
  pct_time_gc : float;  (** collector work / elapsed_multi * 100 *)
  (* scanning (Figure 11) *)
  avg_intergen_scanned : float;   (** per partial collection *)
  avg_scanned_partial : float;
  avg_scanned_full : float;
  avg_scanned_non_gen : float;
  (* reclamation percentages (Figure 12) *)
  pct_bytes_freed_partial : float;   (** of young bytes at cycle start *)
  pct_objects_freed_partial : float; (** of young objects at cycle start *)
  pct_objects_freed_full : float;    (** of allocated objects in the heap *)
  pct_objects_freed_non_gen : float;
  (* cycle cost (Figure 13) *)
  avg_work_partial : float;
  avg_work_full : float;
  avg_work_non_gen : float;
  (* gain per cycle (Figure 14) *)
  avg_objects_freed_partial : float;
  avg_objects_freed_full : float;
  avg_objects_freed_non_gen : float;
  avg_bytes_freed_partial : float;
  avg_bytes_freed_full : float;
  avg_bytes_freed_non_gen : float;
  (* locality (Figure 15) *)
  avg_pages_partial : float;
  avg_pages_full : float;
  avg_pages_non_gen : float;
  (* card behaviour (Figures 22 and 23) *)
  pct_dirty_cards : float;      (** dirty / covering cards, mean per partial *)
  avg_card_scan_bytes : float;  (** area scanned on dirty cards per partial *)
  (* floating garbage (oracle-measured at each sweep's end) *)
  avg_floating_objects : float; (** mean per cycle, all kinds *)
  avg_floating_bytes : float;
  max_floating_bytes : int;     (** worst cycle *)
}

val of_runtime : workload:string -> Otfgc.Runtime.t -> t
(** Summarise a finished run. *)

val to_json : t -> Otfgc_support.Json.t
(** Flat object, one member per field.  Floats are printed with enough
    digits that {!of_json} restores the exact value ([of_json (to_json t)
    = Ok t]). *)

val of_json : Otfgc_support.Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the first missing or mistyped
    field. *)

val elapsed : t -> multiprocessor:bool -> float
(** The elapsed-time proxy selected by the experiment. *)

val improvement_pct : baseline:t -> t -> multiprocessor:bool -> float
(** Percentage improvement of this run over a (non-generational) baseline
    run, positive = faster, as reported throughout Section 8. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump (used by the CLI). *)
