(** Lock-free point-in-time snapshot of the runtime's always-on
    observability state: telemetry counters, the work ledger, cycle
    aggregates and cheap heap gauges.

    {!take} performs only O(1) reads — atomics ([Gc_stats] live
    aggregates, [bytes_since_gc]), plain [int] fields (which cannot
    tear in OCaml), the card table's word scan and the freelist's
    occupancy counters.  It never walks heap blocks (racy block walks
    are unsafe under domains — see [Observatory]) and never takes a
    lock, so a dedicated observer domain can call it at any wall-clock
    cadence without perturbing mutators or the collector.

    Under the domains substrate each racy read is bounded-stale and
    per-location coherent, so counters are monotone across snapshots
    up to the staleness bound; at quiescence — after every mutator has
    retired, before [Driver] folds the per-mutator ledgers into the
    shared ones — a snapshot is exact and equals the post-run
    [Gc_stats]/[Telemetry] totals.  {!take} sums the shared ledgers
    plus every registered mutator's own ledger, so it must not be
    called after that fold (it would double-count). *)

type t = {
  seq : int;  (** snapshot index within the observed run, 0-based *)
  at_ms : float;  (** wall-clock ms since the observer started *)
  (* telemetry counters: shared ledger + every mutator's own ledger *)
  barrier_updates : int;
  yellow_fires : int;
  promotions : int;
  dirty_card_finds : int;
  handshake_acks : int;
  stalls : int;
  card_marks : int;
  remset_records : int;
  steals : int;
  steal_failures : int;
  lock_waits : int;
  (* work ledger (same summation) *)
  mutator_work : int;
  collector_work : int;
  stall_work : int;
  phase_work : (string * int) list;  (** per collector phase, fixed order *)
  (* cycle aggregates (Gc_stats live atomics) *)
  cycles_partial : int;
  cycles_full : int;
  cycles_non_gen : int;
  gc_bytes_freed : int;
  gc_objects_freed : int;
  gc_promotions : int;
  (* gauges: current values, not monotone *)
  phase : string;  (** collector's current [Cost] phase *)
  heap_capacity : int;
  heap_allocated_bytes : int;
  total_alloc_bytes : int;  (** cumulative allocation — monotone *)
  total_alloc_objects : int;
  young_bytes : int;
      (** [bytes_since_gc]: allocation since the last cycle — the young
          generation of this logical-generation collector, and the gauge
          its trigger watches *)
  dirty_cards : int;
  gray_depth : int;
  freelist_entries : int;
  freelist_stale : int;
  flight_drops : int;
  active_mutators : int;
  p99_handshake : int;
      (** p99 of the merged handshake-latency histograms (us under
          domains, simulated units otherwise); 0 while the latency
          instruments are disabled *)
}

val metric_name_of_phase : Otfgc.Cost.phase -> string
(** The phase's {!Otfgc.Cost.phase_name} with dashes mapped to
    underscores — a valid metric-name fragment ([card-scan] →
    [card_scan]), shared with {!Trajectory}'s [phase_*] metrics. *)

val take : ?seq:int -> ?at_ms:float -> Otfgc.State.t -> t
(** One racy snapshot of the state (see the module comment for the
    safety argument and the quiescence contract). *)

val counters : t -> (string * int) list
(** Every cumulative (monotone) field, including the per-phase work
    cells, as [(name, value)] in a fixed, deterministic order — the
    basis of the OpenMetrics counter families and the delta
    arithmetic. *)

val gauges : t -> (string * int) list
(** Every point-in-time field, fixed order — the OpenMetrics gauge
    families. *)

val delta : earlier:t -> later:t -> t
(** Counter fields subtract ([later - earlier]); gauge fields, [seq],
    [at_ms] and [phase] are taken from [later].  With snapshots from
    one run in [seq] order every counter of the delta is
    non-negative. *)

val to_json : t -> Otfgc_support.Json.t
val of_json : Otfgc_support.Json.t -> (t, string) result
(** Inverse of {!to_json} (JSONL parse-back). *)
