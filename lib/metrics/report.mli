(** Self-contained HTML/SVG report of a sampled run — the observatory's
    visual export (occupancy ribbons per color, collector-activity
    strips, promotion-rate line).

    The document is one HTML string with inline CSS and inline SVG
    (hand-rolled via {!Otfgc_support.Svg}): no scripts, no external
    references, so the file opens anywhere and can be archived as a CI
    artifact.  The x axis of every panel is simulated elapsed time
    (work units), mirroring the paper's Figures 7–9 occupancy-over-time
    presentation. *)

val of_runtime :
  ?workload:string -> Otfgc.Runtime.t -> (string, string) result
(** Render the runtime's census series (and, when the event log was
    enabled, its handshake/cycle/stall strips) to a complete HTML
    document.  [Error] when the series holds fewer than two samples —
    run with sampling armed ([--sample-every]) first. *)

val validate : string -> (unit, string) result
(** Structural acceptance check used by tests and
    [gcsim validate-report]: the document is a [<!DOCTYPE html>] file
    whose tags balance; it embeds at least one SVG carrying a
    [data-samples] count >= 2; the occupancy ribbons, axis labels and
    promotion line are present (by class); every [points] attribute
    parses as two or more finite coordinate pairs; and nothing
    references external resources (no script/link/img). *)

val validate_structure :
  required_classes:string list ->
  ?min_samples:int ->
  string ->
  (unit, string) result
(** The generic core of {!validate}, shared with the trajectory
    dashboard: same doctype/tag-balance/points/no-external-resource
    checks, but the caller names the element classes that must appear
    and the minimum [data-samples] count (default 2). *)
