module Json = Otfgc_support.Json
open Otfgc

let pid = 1
let collector_tid = 0
let mutator_tid mid = 1 + mid

let kind_label = function
  | Gc_stats.Partial -> "partial"
  | Gc_stats.Full -> "full"
  | Gc_stats.Non_gen -> "non-gen"

let span ~name ~ts ~dur ~tid args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "X");
       ("ts", Json.Int ts);
       ("dur", Json.Int dur);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let instant ~name ~ts ~tid args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "i");
       ("ts", Json.Int ts);
       ("s", Json.String "t");
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let metadata ~name ~tid value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let of_runtime ?(workload = "") rt =
  let st = Runtime.state rt in
  let mode = Gc_config.mode_name st.State.cfg.Gc_config.mode in
  let acc = ref [] in
  let push e = acc := e :: !acc in
  let label = if workload = "" then mode else workload ^ " (" ^ mode ^ ")" in
  push (metadata ~name:"process_name" ~tid:collector_tid ("gcsim " ^ label));
  push (metadata ~name:"thread_name" ~tid:collector_tid "collector");
  List.iter
    (fun m ->
      push
        (metadata ~name:"thread_name" ~tid:(mutator_tid (Mutator.id m))
           (Mutator.name m)))
    (State.mutators st);
  (* Slice reconstruction: cycles and handshakes are delimited by explicit
     begin/end events; the trace and sweep spans are recovered from the
     cycle's internal sequence (last handshake completion -> Trace_complete
     -> Sweep_complete); stalls are per-mutator begin/end pairs. *)
  let cycle_open = ref None in
  let hs_open = ref None in
  let seg_start = ref None in
  let stall_open = Hashtbl.create 8 in
  Event_log.iter (Runtime.events rt) (fun { Event_log.at; phase } ->
      match phase with
      | Event_log.Cycle_start { kind; full } ->
          cycle_open := Some (at, kind_label kind, full)
      | Event_log.Init_full_done -> (
          match !cycle_open with
          | Some (t0, _, _) ->
              push (span ~name:"init-full" ~ts:t0 ~dur:(at - t0)
                      ~tid:collector_tid [])
          | None -> ())
      | Event_log.Handshake_posted s -> hs_open := Some (at, s)
      | Event_log.Handshake_complete s ->
          (match !hs_open with
          | Some (t0, s0) when Status.equal s s0 ->
              push
                (span ~name:("handshake " ^ Status.to_string s) ~ts:t0
                   ~dur:(at - t0) ~tid:collector_tid [])
          | _ -> ());
          hs_open := None;
          seg_start := Some at
      | Event_log.Intergen_scanned { seeds } ->
          push (instant ~name:"card-scan" ~ts:at ~tid:collector_tid
                  [ ("seeds", Json.Int seeds) ])
      | Event_log.Colors_toggled ->
          push (instant ~name:"colors-toggled" ~ts:at ~tid:collector_tid [])
      | Event_log.Trace_complete { traced } ->
          (match !seg_start with
          | Some t0 ->
              push (span ~name:"trace" ~ts:t0 ~dur:(at - t0) ~tid:collector_tid
                      [ ("traced", Json.Int traced) ])
          | None -> ());
          seg_start := Some at
      | Event_log.Sweep_complete { freed; bytes } ->
          (match !seg_start with
          | Some t0 ->
              push (span ~name:"sweep" ~ts:t0 ~dur:(at - t0) ~tid:collector_tid
                      [ ("freed", Json.Int freed); ("bytes", Json.Int bytes) ])
          | None -> ());
          seg_start := None
      | Event_log.Promoted { count } ->
          push (instant ~name:"promoted" ~ts:at ~tid:collector_tid
                  [ ("count", Json.Int count) ])
      | Event_log.Heap_grown { capacity } ->
          push (instant ~name:"heap-grown" ~ts:at ~tid:collector_tid
                  [ ("capacity", Json.Int capacity) ])
      | Event_log.Cycle_end ->
          (match !cycle_open with
          | Some (t0, kind, full) ->
              push (span ~name:("cycle " ^ kind) ~ts:t0 ~dur:(at - t0)
                      ~tid:collector_tid [ ("full", Json.Bool full) ])
          | None -> ());
          cycle_open := None;
          seg_start := None
      | Event_log.Mutator_ack { mid; status } ->
          push (instant ~name:("ack " ^ Status.to_string status) ~ts:at
                  ~tid:(mutator_tid mid) [])
      | Event_log.Stall_begin { mid } -> Hashtbl.replace stall_open mid at
      | Event_log.Stall_end { mid } -> (
          match Hashtbl.find_opt stall_open mid with
          | Some t0 ->
              Hashtbl.remove stall_open mid;
              push (span ~name:"alloc stall" ~ts:t0 ~dur:(at - t0)
                      ~tid:(mutator_tid mid) [])
          | None -> ()));
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !acc));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Flight-recorder export (domains substrate)                          *)
(* ------------------------------------------------------------------ *)

let status_name i =
  if i >= 0 && i <= 2 then Status.to_string (Status.of_index i)
  else "status-" ^ string_of_int i

let seg_name = function
  | 0 -> "clear"
  | 1 -> "cards"
  | 2 -> "trace"
  | _ -> "sweep"

(* Real-nanosecond events from the per-domain rings: one track per ring
   (collector, each GC worker, each mutator, the handshake track),
   timestamps rebased to the first event and floored to microseconds.
   Span ends are converted as endpoints — [us t0 + us dur] would round
   each side down independently and could push a child slice one
   microsecond past its parent, which [validate] rejects; flooring both
   endpoints keeps ns-containment implying us-containment. *)
let of_flight ?(workload = "") fr =
  let module Fr = Otfgc.Flight_recorder in
  let events = Fr.events fr in
  let base = match events with [] -> 0 | e :: _ -> e.Fr.t0_ns in
  let us ns = Otfgc_support.Monotonic_clock.ns_to_us (ns - base) in
  let acc = ref [] in
  let push e = acc := e :: !acc in
  let label = if workload = "" then "domains" else workload ^ " (domains)" in
  push (metadata ~name:"process_name" ~tid:Fr.collector_tid ("gcsim " ^ label));
  List.iter
    (fun (track, tid) -> push (metadata ~name:"thread_name" ~tid track))
    (Fr.tracks fr);
  List.iter
    (fun (e : Fr.event) ->
      let ts = us e.Fr.t0_ns in
      let dur = us (e.Fr.t0_ns + e.Fr.dur_ns) - ts in
      let tid = e.Fr.tid in
      match e.Fr.kind with
      | Fr.Phase -> push (span ~name:(seg_name e.Fr.a) ~ts ~dur ~tid [])
      | Fr.Cycle ->
          push
            (span
               ~name:(if e.Fr.a = 1 then "cycle full" else "cycle partial")
               ~ts ~dur ~tid [])
      | Fr.Handshake ->
          push (span ~name:("handshake " ^ status_name e.Fr.a) ~ts ~dur ~tid [])
      | Fr.Ack -> push (instant ~name:("ack " ^ status_name e.Fr.a) ~ts ~tid [])
      | Fr.Poll ->
          push (instant ~name:"poll" ~ts ~tid [ ("polls", Json.Int e.Fr.a) ])
      | Fr.Stall -> push (span ~name:"alloc stall" ~ts ~dur ~tid [])
      | Fr.Lock_wait ->
          push
            (span ~name:"lock-wait" ~ts ~dur ~tid
               [ ("class", Json.Int e.Fr.a) ])
      | Fr.Steal ->
          push
            (span
               ~name:(if e.Fr.a = 1 then "steal hit" else "steal miss")
               ~ts ~dur ~tid [])
      | Fr.Idle -> push (span ~name:"idle" ~ts ~dur ~tid []))
    events;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !acc));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let field name j = Json.member name j

let validate doc =
  let ( let* ) = Result.bind in
  let* events =
    match Option.bind (field "traceEvents" doc) Json.as_list with
    | Some l -> Ok l
    | None -> Error "no traceEvents array"
  in
  let err i msg = Error (Printf.sprintf "event %d: %s" i msg) in
  let check_event i e =
    let str k = Option.bind (field k e) Json.as_string in
    let int k = Option.bind (field k e) Json.as_int in
    let* () = if str "name" = None then err i "missing name" else Ok () in
    let* () = if int "pid" = None then err i "missing pid" else Ok () in
    let* () = if int "tid" = None then err i "missing tid" else Ok () in
    match str "ph" with
    | Some "X" -> (
        match (int "ts", int "dur") with
        | Some _, Some d when d >= 0 -> Ok ()
        | Some _, Some _ -> err i "negative dur"
        | _ -> err i "duration event lacks integer ts/dur")
    | Some "i" -> if int "ts" = None then err i "instant lacks ts" else Ok ()
    | Some "M" -> Ok ()
    | Some ph -> err i ("unsupported phase " ^ ph)
    | None -> err i "missing ph"
  in
  let rec check_all i = function
    | [] -> Ok ()
    | e :: rest ->
        let* () = check_event i e in
        check_all (i + 1) rest
  in
  let* () = check_all 0 events in
  (* Slices on one track must nest: sort by (ts, wider-first) and run a
     stack of open intervals; a slice poking out past its enclosing slice
     means the exporter produced partial overlap. *)
  let slices = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Option.bind (field "ph" e) Json.as_string with
      | Some "X" ->
          let get k =
            Option.value ~default:0 (Option.bind (field k e) Json.as_int)
          in
          let tid = get "tid" in
          let prev = Option.value ~default:[] (Hashtbl.find_opt slices tid) in
          Hashtbl.replace slices tid ((get "ts", get "dur") :: prev)
      | _ -> ())
    events;
  let nested = ref (Ok ()) in
  Hashtbl.iter
    (fun tid spans ->
      if Result.is_ok !nested then begin
        let spans =
          List.sort
            (fun (t0, d0) (t1, d1) ->
              if t0 <> t1 then compare t0 t1 else compare d1 d0)
            spans
        in
        let stack = ref [] in
        List.iter
          (fun (ts, dur) ->
            if Result.is_ok !nested then begin
              while
                match !stack with
                | fin :: rest when ts >= fin ->
                    stack := rest;
                    true
                | _ -> false
              do
                ()
              done;
              (match !stack with
              | fin :: _ when ts + dur > fin ->
                  nested :=
                    Error
                      (Printf.sprintf
                         "track %d: slice at ts=%d dur=%d overlaps its \
                          enclosing slice"
                         tid ts dur)
              | _ -> ());
              stack := (ts + dur) :: !stack
            end)
          spans
      end)
    slices;
  let* () = !nested in
  let has_collector_thread =
    List.exists
      (fun e ->
        Option.bind (field "ph" e) Json.as_string = Some "M"
        && Option.bind (field "name" e) Json.as_string = Some "thread_name"
        && Option.bind (field "args" e) (field "name")
           |> Fun.flip Option.bind Json.as_string
           = Some "collector")
      events
  in
  if has_collector_thread then Ok ()
  else Error "no collector thread_name metadata"
