(* The observer domain: wakes at a wall-clock cadence, takes lock-free
   snapshots and pushes them to the JSONL / OpenMetrics / terminal
   sinks.  All sink I/O happens on the observer domain while it runs;
   [stop] joins it first, so the final-snapshot write from the caller's
   domain never races. *)

module Clock = Otfgc_support.Monotonic_clock
module Json = Otfgc_support.Json

type config = {
  every_ms : float;
  om_path : string option;
  jsonl_path : string option;
  live : bool;
  labels : (string * string) list;
}

type t = {
  config : config;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable st : Otfgc.State.t option;
  mutable start_ns : int;
  mutable snaps : Metrics_snapshot.t list; (* newest first *)
  mutable jsonl : out_channel option;
  mutable live_primed : bool; (* the two live lines are on screen *)
  mutable stopped : bool;
}

let create config =
  if not (config.every_ms > 0.) then
    invalid_arg "Observer.create: every_ms must be positive";
  {
    config;
    stop_flag = Atomic.make false;
    domain = None;
    st = None;
    start_ns = 0;
    snaps = [];
    jsonl = None;
    live_primed = false;
    stopped = false;
  }

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let write_whole path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let ribbon ~width ~num ~den =
  let filled =
    if den <= 0 then 0
    else
      let f = num * width / den in
      if f > width then width else if f < 0 then 0 else f
  in
  String.concat ""
    [ "["; String.make filled '#'; String.make (width - filled) '.'; "]" ]

let render_live t (s : Metrics_snapshot.t) prev =
  let pct =
    if s.heap_capacity <= 0 then 0.
    else 100. *. float_of_int s.heap_allocated_bytes
         /. float_of_int s.heap_capacity
  in
  let rate_mib_s =
    match prev with
    | Some (p : Metrics_snapshot.t) when s.at_ms > p.at_ms ->
        float_of_int (s.total_alloc_bytes - p.total_alloc_bytes)
        /. ((s.at_ms -. p.at_ms) /. 1000.)
        /. (1024. *. 1024.)
    | _ -> 0.
  in
  let cycles = s.cycles_partial + s.cycles_full + s.cycles_non_gen in
  (* repaint in place: move up over the previous two lines *)
  if t.live_primed then print_string "\x1b[2A";
  Printf.printf "\r\x1b[K[live] heap %s %5.1f%%  phase %-10s alloc %7.2f MiB/s\n"
    (ribbon ~width:20 ~num:s.heap_allocated_bytes ~den:s.heap_capacity)
    pct s.phase rate_mib_s;
  Printf.printf
    "\r\x1b[K[live] young %d KiB  dirty %d  gray %d  cycles %d  p99 hs %d us  \
     snap #%d\n"
    (s.young_bytes / 1024) s.dirty_cards s.gray_depth cycles s.p99_handshake
    s.seq;
  t.live_primed <- true;
  flush stdout

let emit t snap =
  let prev = match t.snaps with [] -> None | p :: _ -> Some p in
  t.snaps <- snap :: t.snaps;
  (match t.jsonl with
  | Some oc ->
      output_string oc (Json.to_string (Metrics_snapshot.to_json snap));
      output_char oc '\n';
      flush oc
  | None -> ());
  (match t.config.om_path with
  | Some path ->
      write_whole path (Openmetrics.render ~labels:t.config.labels snap)
  | None -> ());
  if t.config.live then render_live t snap prev

let take t st =
  let seq = List.length t.snaps in
  let at_ms = float_of_int (Clock.now_ns () - t.start_ns) /. 1e6 in
  Metrics_snapshot.take ~seq ~at_ms st

(* ------------------------------------------------------------------ *)
(* Observer loop                                                       *)
(* ------------------------------------------------------------------ *)

(* sleep in small slices so [stop] is honoured promptly even at a slow
   cadence *)
let rec sleep_until t deadline =
  if not (Atomic.get t.stop_flag) then begin
    let now = Clock.now_ns () in
    if now < deadline then begin
      let remain_s = float_of_int (deadline - now) /. 1e9 in
      Unix.sleepf (Float.min remain_s 0.01);
      sleep_until t deadline
    end
  end

let loop t st =
  let period_ns =
    int_of_float (t.config.every_ms *. 1e6) |> max 1
  in
  let rec tick deadline =
    sleep_until t deadline;
    if not (Atomic.get t.stop_flag) then begin
      emit t (take t st);
      tick (deadline + period_ns)
    end
  in
  tick (t.start_ns + period_ns)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let launch t rt =
  if t.domain <> None || t.stopped then
    invalid_arg "Observer.launch: already launched";
  let st = Otfgc.Runtime.state rt in
  t.st <- Some st;
  t.start_ns <- Clock.now_ns ();
  (match t.config.jsonl_path with
  | Some path -> t.jsonl <- Some (open_out path)
  | None -> ());
  t.domain <- Some (Domain.spawn (fun () -> loop t st))

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    (match t.domain with Some d -> Domain.join d | None -> ());
    (* the final snapshot: taken at quiescence, before the driver folds
       the per-mutator ledgers, so its counters are the run's exact
       totals.  Zero-cadence-tick runs still get this one record. *)
    (match t.st with Some st -> emit t (take t st) | None -> ());
    (match t.jsonl with
    | Some oc ->
        close_out oc;
        t.jsonl <- None
    | None -> ())
  end

let snapshots t = List.rev t.snaps
