(** Hand-rolled OpenMetrics/Prometheus text exposition of a metrics
    snapshot, plus a structural validator in the style of
    [Trace_export]'s — no external dependencies, deterministic output.

    Every snapshot counter becomes a [counter] family
    [otfgc_<name>_total], every gauge a [gauge] family [otfgc_<name>],
    in the fixed order of {!Metrics_snapshot.counters} /
    {!Metrics_snapshot.gauges}; run identity (workload, mode, ...) and
    the collector's current phase travel as [info] families with
    escaped label values.  The document ends with [# EOF] as the
    OpenMetrics framing requires.  A scrape-style consumer can read the
    file in place; the observer rewrites it whole at each snapshot, so
    the last write holds the run's cumulative totals. *)

val render :
  ?labels:(string * string) list -> Metrics_snapshot.t -> string
(** The full exposition for one snapshot.  [labels] become the
    [otfgc_run_info] label set (order preserved, values escaped);
    label names must match [[a-zA-Z_][a-zA-Z0-9_]*] — others raise
    [Invalid_argument]. *)

val escape_label_value : string -> string
(** OpenMetrics label-value escaping: backslash, double-quote and
    newline. *)

val validate : string -> (unit, string) result
(** Structural acceptance check (used by tests and
    [gcsim validate-metrics]): the document is non-empty; every line is
    a [# HELP]/[# TYPE] comment or a sample; the final line is [# EOF]
    and nothing follows it; every family is declared by [# TYPE] with a
    known type (counter, gauge, info) exactly once and before its
    samples; sample names extend their family name correctly ([_total]
    for counters, [_info] for info); metric names are well-formed;
    label blocks balance with quoted, correctly escaped values; and
    every sample value parses as a finite number. *)
