module Histogram = Otfgc_support.Histogram
module Textable = Otfgc_support.Textable
module Json = Otfgc_support.Json
module Cost = Otfgc.Cost
module Status = Otfgc.Status

type hist = {
  count : int;
  total : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

type summary = {
  workload : string;
  mode : string;
  collector_work : int;
  phase_work : (string * int) list;
  mutator_work : int;
  category_work : (string * int) list;
  stall_work : int;
  barrier_updates : int;
  yellow_fires : int;
  promotions : int;
  dirty_card_finds : int;
  handshake_acks : int;
  stalls : int;
  card_marks : int;
  remset_records : int;
  steals : int;
  steal_failures : int;
  lock_waits : int;
  lock_waits_by_class : (int * int) list;
  trace_workers : int;
  events_logged : int;
  events_dropped : int;
  handshake_latency : (string * hist) list;
  stall_latency : hist;
  cycle_progress : hist;
  time_unit : string;
      (** unit of every latency histogram: ["units"] (simulated cost
          units) on the simulator, ["us"] (wall-clock microseconds) on
          the domains substrate *)
  slo_handshake : hist;
      (** all statuses' handshake latencies merged into one
          distribution — the SLO view (p50/p99/p99.9) *)
}

let snapshot_hist h =
  {
    count = Histogram.count h;
    total = Histogram.total h;
    min = Histogram.min_value h;
    max = Histogram.max_value h;
    mean = Histogram.mean h;
    p50 = Histogram.percentile h 50.;
    p90 = Histogram.percentile h 90.;
    p99 = Histogram.percentile h 99.;
    p999 = Histogram.percentile h 99.9;
  }

let of_runtime ?(workload = "") rt =
  let open Otfgc in
  let cost = Runtime.cost rt in
  let tel = Runtime.telemetry rt in
  let events = Runtime.events rt in
  let st = Runtime.state rt in
  {
    workload;
    mode = Gc_config.mode_name st.State.cfg.Gc_config.mode;
    collector_work = Cost.collector_work cost;
    phase_work =
      List.map (fun p -> (Cost.phase_name p, Cost.phase_work cost p)) Cost.phases;
    mutator_work = Cost.mutator_work cost;
    category_work =
      List.map
        (fun c -> (Cost.category_name c, Cost.category_work cost c))
        Cost.categories;
    stall_work = Cost.stall_work cost;
    barrier_updates = Telemetry.barrier_updates tel;
    yellow_fires = Telemetry.yellow_fires tel;
    promotions = Telemetry.promotions tel;
    dirty_card_finds = Telemetry.dirty_card_finds tel;
    handshake_acks = Telemetry.handshake_acks tel;
    stalls = Telemetry.stalls tel;
    card_marks = Telemetry.card_marks tel;
    remset_records = Telemetry.remset_records tel;
    steals = Telemetry.steals tel;
    steal_failures = Telemetry.steal_failures tel;
    lock_waits = Telemetry.lock_waits_total tel;
    lock_waits_by_class =
      (let w = Telemetry.lock_waits tel in
       let acc = ref [] in
       for cls = Array.length w - 1 downto 0 do
         if w.(cls) > 0 then acc := (cls, w.(cls)) :: !acc
       done;
       !acc);
    trace_workers = Telemetry.trace_workers tel;
    events_logged = Event_log.length events;
    events_dropped = Event_log.dropped events;
    handshake_latency =
      List.map
        (fun s ->
          ( Status.to_string s,
            snapshot_hist (Telemetry.handshake_latency tel s) ))
        [ Status.Sync1; Status.Sync2; Status.Async ];
    stall_latency = snapshot_hist (Telemetry.stall_latency tel);
    cycle_progress = snapshot_hist (Telemetry.cycle_progress tel);
    time_unit = (if st.State.parallel then "us" else "units");
    slo_handshake =
      snapshot_hist
        (List.fold_left
           (fun acc s -> Histogram.merge acc (Telemetry.handshake_latency tel s))
           (Histogram.create ())
           [ Status.Sync1; Status.Sync2; Status.Async ]);
  }

let pct part whole =
  if whole = 0 then "0.0"
  else Textable.fmt_f1 (float_of_int part /. float_of_int whole *. 100.)

let work_table s =
  let tbl =
    Textable.create ~title:"work attribution (units)"
      [ "ledger"; "class"; "units"; "% of ledger" ]
  in
  List.iter
    (fun (name, units) ->
      Textable.add_row tbl
        [ "collector"; name; string_of_int units; pct units s.collector_work ])
    s.phase_work;
  Textable.add_row tbl
    [ "collector"; "total"; string_of_int s.collector_work; "100.0" ];
  List.iter
    (fun (name, units) ->
      Textable.add_row tbl
        [ "mutator"; name; string_of_int units; pct units s.mutator_work ])
    s.category_work;
  Textable.add_row tbl
    [ "mutator"; "total"; string_of_int s.mutator_work; "100.0" ];
  Textable.add_row tbl [ "stall"; "total"; string_of_int s.stall_work; "" ];
  tbl

let counter_table s =
  let tbl = Textable.create ~title:"event counters" [ "counter"; "count" ] in
  let row name v = Textable.add_row tbl [ name; string_of_int v ] in
  row "barrier updates" s.barrier_updates;
  row "yellow-exception fires" s.yellow_fires;
  row "promotions" s.promotions;
  row "dirty cards found" s.dirty_card_finds;
  row "handshake acks" s.handshake_acks;
  row "allocation stalls" s.stalls;
  row "card marks" s.card_marks;
  row "remset records" s.remset_records;
  row "gray steals" s.steals;
  row "gray steal failures" s.steal_failures;
  row "alloc lock waits" s.lock_waits;
  row "trace workers (max)" s.trace_workers;
  row "events logged" s.events_logged;
  row "events dropped" s.events_dropped;
  tbl

let latency_table s =
  let tbl =
    Textable.create
      ~title:(Printf.sprintf "latency histograms (%s)" s.time_unit)
      [
        "instrument"; "count"; "min"; "mean"; "p50"; "p90"; "p99"; "p99.9";
        "max";
      ]
  in
  let row name h =
    Textable.add_row tbl
      [
        name;
        string_of_int h.count;
        string_of_int h.min;
        Textable.fmt_f1 h.mean;
        string_of_int h.p50;
        string_of_int h.p90;
        string_of_int h.p99;
        string_of_int h.p999;
        string_of_int h.max;
      ]
  in
  List.iter
    (fun (status, h) -> row ("handshake " ^ status) h)
    s.handshake_latency;
  row "alloc stall" s.stall_latency;
  row "cycle progress" s.cycle_progress;
  tbl

(* The SLO view: one merged handshake distribution plus the stall
   distribution, tail percentiles first — wall-clock microseconds under
   the domains substrate, simulated units otherwise. *)
let slo_table s =
  let tbl =
    Textable.create
      ~title:(Printf.sprintf "SLO latency (%s)" s.time_unit)
      [ "slo"; "count"; "p50"; "p90"; "p99"; "p99.9"; "max" ]
  in
  let row name h =
    Textable.add_row tbl
      [
        name;
        string_of_int h.count;
        string_of_int h.p50;
        string_of_int h.p90;
        string_of_int h.p99;
        string_of_int h.p999;
        string_of_int h.max;
      ]
  in
  row "handshake (all)" s.slo_handshake;
  row "alloc stall" s.stall_latency;
  tbl

let hist_to_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("total", Json.Int h.total);
      ("min", Json.Int h.min);
      ("max", Json.Int h.max);
      ("mean", Json.Float h.mean);
      ("p50", Json.Int h.p50);
      ("p90", Json.Int h.p90);
      ("p99", Json.Int h.p99);
      ("p999", Json.Int h.p999);
    ]

let to_json s =
  Json.Obj
    [
      ("workload", Json.String s.workload);
      ("mode", Json.String s.mode);
      ("collector_work", Json.Int s.collector_work);
      ( "phase_work",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.phase_work) );
      ("mutator_work", Json.Int s.mutator_work);
      ( "category_work",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.category_work) );
      ("stall_work", Json.Int s.stall_work);
      ("barrier_updates", Json.Int s.barrier_updates);
      ("yellow_fires", Json.Int s.yellow_fires);
      ("promotions", Json.Int s.promotions);
      ("dirty_card_finds", Json.Int s.dirty_card_finds);
      ("handshake_acks", Json.Int s.handshake_acks);
      ("stalls", Json.Int s.stalls);
      ("card_marks", Json.Int s.card_marks);
      ("remset_records", Json.Int s.remset_records);
      ("steals", Json.Int s.steals);
      ("steal_failures", Json.Int s.steal_failures);
      ("lock_waits", Json.Int s.lock_waits);
      ( "lock_waits_by_class",
        Json.Obj
          (List.map
             (fun (cls, n) -> (string_of_int cls, Json.Int n))
             s.lock_waits_by_class) );
      ("trace_workers", Json.Int s.trace_workers);
      ("events_logged", Json.Int s.events_logged);
      ("events_dropped", Json.Int s.events_dropped);
      ( "handshake_latency",
        Json.Obj
          (List.map (fun (k, h) -> (k, hist_to_json h)) s.handshake_latency) );
      ("stall_latency", hist_to_json s.stall_latency);
      ("cycle_progress", hist_to_json s.cycle_progress);
      ("time_unit", Json.String s.time_unit);
      ("slo_handshake", hist_to_json s.slo_handshake);
    ]

let to_csv s =
  let b = Buffer.create 1024 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s,%s\n" k v) in
  line "metric" "value";
  line "workload" s.workload;
  line "mode" s.mode;
  line "collector_work" (string_of_int s.collector_work);
  List.iter
    (fun (k, v) -> line ("phase." ^ k) (string_of_int v))
    s.phase_work;
  line "mutator_work" (string_of_int s.mutator_work);
  List.iter
    (fun (k, v) -> line ("category." ^ k) (string_of_int v))
    s.category_work;
  line "stall_work" (string_of_int s.stall_work);
  line "barrier_updates" (string_of_int s.barrier_updates);
  line "yellow_fires" (string_of_int s.yellow_fires);
  line "promotions" (string_of_int s.promotions);
  line "dirty_card_finds" (string_of_int s.dirty_card_finds);
  line "handshake_acks" (string_of_int s.handshake_acks);
  line "stalls" (string_of_int s.stalls);
  line "card_marks" (string_of_int s.card_marks);
  line "remset_records" (string_of_int s.remset_records);
  line "steals" (string_of_int s.steals);
  line "steal_failures" (string_of_int s.steal_failures);
  line "lock_waits" (string_of_int s.lock_waits);
  List.iter
    (fun (cls, n) ->
      line (Printf.sprintf "lock_waits.class%d" cls) (string_of_int n))
    s.lock_waits_by_class;
  line "trace_workers" (string_of_int s.trace_workers);
  line "events_logged" (string_of_int s.events_logged);
  line "events_dropped" (string_of_int s.events_dropped);
  line "time_unit" s.time_unit;
  let hist name h =
    line (name ^ ".count") (string_of_int h.count);
    line (name ^ ".total") (string_of_int h.total);
    line (name ^ ".min") (string_of_int h.min);
    line (name ^ ".mean") (Printf.sprintf "%.3f" h.mean);
    line (name ^ ".p50") (string_of_int h.p50);
    line (name ^ ".p90") (string_of_int h.p90);
    line (name ^ ".p99") (string_of_int h.p99);
    line (name ^ ".p999") (string_of_int h.p999);
    line (name ^ ".max") (string_of_int h.max)
  in
  List.iter
    (fun (status, h) -> hist ("handshake_latency." ^ status) h)
    s.handshake_latency;
  hist "stall_latency" s.stall_latency;
  hist "cycle_progress" s.cycle_progress;
  hist "slo_handshake" s.slo_handshake;
  Buffer.contents b

(* --- parsing (the inverse of [to_json], used by the round-trip tests
   and by tooling that re-reads CI artifacts) --- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "telemetry summary: missing field %S" name)

let int_field name j =
  let* v = field name j in
  match Json.as_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "telemetry summary: %S must be an int" name)

let float_field name j =
  let* v = field name j in
  match Json.as_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "telemetry summary: %S must be a number" name)

let string_field name j =
  let* v = field name j in
  match Json.as_string v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "telemetry summary: %S must be a string" name)

let obj_field name j =
  let* v = field name j in
  match v with
  | Json.Obj kvs -> Ok kvs
  | _ -> Error (Printf.sprintf "telemetry summary: %S must be an object" name)

let int_pairs name j =
  let* kvs = obj_field name j in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (k, v) :: rest -> (
        match Json.as_int v with
        | Some i -> go ((k, i) :: acc) rest
        | None ->
            Error
              (Printf.sprintf "telemetry summary: %S.%s must be an int" name k))
  in
  go [] kvs

let hist_of_json name j =
  let* count = int_field "count" j in
  let* total = int_field "total" j in
  let* min = int_field "min" j in
  let* max = int_field "max" j in
  let* mean = float_field "mean" j in
  let* p50 = int_field "p50" j in
  let* p90 = int_field "p90" j in
  let* p99 = int_field "p99" j in
  let* p999 = int_field "p999" j in
  ignore name;
  Ok { count; total; min; max; mean; p50; p90; p99; p999 }

let hist_field name j =
  let* v = field name j in
  hist_of_json name v

let of_json j =
  let* workload = string_field "workload" j in
  let* mode = string_field "mode" j in
  let* collector_work = int_field "collector_work" j in
  let* phase_work = int_pairs "phase_work" j in
  let* mutator_work = int_field "mutator_work" j in
  let* category_work = int_pairs "category_work" j in
  let* stall_work = int_field "stall_work" j in
  let* barrier_updates = int_field "barrier_updates" j in
  let* yellow_fires = int_field "yellow_fires" j in
  let* promotions = int_field "promotions" j in
  let* dirty_card_finds = int_field "dirty_card_finds" j in
  let* handshake_acks = int_field "handshake_acks" j in
  let* stalls = int_field "stalls" j in
  let* card_marks = int_field "card_marks" j in
  let* remset_records = int_field "remset_records" j in
  let* steals = int_field "steals" j in
  let* steal_failures = int_field "steal_failures" j in
  let* lock_waits = int_field "lock_waits" j in
  let* by_class = int_pairs "lock_waits_by_class" j in
  let* lock_waits_by_class =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, n) :: rest -> (
          match int_of_string_opt k with
          | Some cls -> go ((cls, n) :: acc) rest
          | None ->
              Error
                (Printf.sprintf
                   "telemetry summary: lock_waits_by_class key %S is not a \
                    class index"
                   k))
    in
    go [] by_class
  in
  let* trace_workers = int_field "trace_workers" j in
  let* events_logged = int_field "events_logged" j in
  let* events_dropped = int_field "events_dropped" j in
  let* hs = obj_field "handshake_latency" j in
  let* handshake_latency =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: rest ->
          let* h = hist_of_json k v in
          go ((k, h) :: acc) rest
    in
    go [] hs
  in
  let* stall_latency = hist_field "stall_latency" j in
  let* cycle_progress = hist_field "cycle_progress" j in
  let* time_unit = string_field "time_unit" j in
  let* slo_handshake = hist_field "slo_handshake" j in
  Ok
    {
      workload;
      mode;
      collector_work;
      phase_work;
      mutator_work;
      category_work;
      stall_work;
      barrier_updates;
      yellow_fires;
      promotions;
      dirty_card_finds;
      handshake_acks;
      stalls;
      card_marks;
      remset_records;
      steals;
      steal_failures;
      lock_waits;
      lock_waits_by_class;
      trace_workers;
      events_logged;
      events_dropped;
      handshake_latency;
      stall_latency;
      cycle_progress;
      time_unit;
      slo_handshake;
    }

let print s =
  Textable.print (work_table s);
  Textable.print (counter_table s);
  Textable.print (latency_table s);
  Textable.print (slo_table s)
