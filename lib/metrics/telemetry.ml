module Histogram = Otfgc_support.Histogram
module Textable = Otfgc_support.Textable
module Json = Otfgc_support.Json
module Cost = Otfgc.Cost
module Status = Otfgc.Status

type hist = {
  count : int;
  total : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

type summary = {
  workload : string;
  mode : string;
  collector_work : int;
  phase_work : (string * int) list;
  mutator_work : int;
  category_work : (string * int) list;
  stall_work : int;
  barrier_updates : int;
  yellow_fires : int;
  promotions : int;
  dirty_card_finds : int;
  handshake_acks : int;
  stalls : int;
  card_marks : int;
  remset_records : int;
  events_logged : int;
  events_dropped : int;
  handshake_latency : (string * hist) list;
  stall_latency : hist;
  cycle_progress : hist;
}

let snapshot_hist h =
  {
    count = Histogram.count h;
    total = Histogram.total h;
    min = Histogram.min_value h;
    max = Histogram.max_value h;
    mean = Histogram.mean h;
    p50 = Histogram.percentile h 50.;
    p90 = Histogram.percentile h 90.;
    p99 = Histogram.percentile h 99.;
  }

let of_runtime ?(workload = "") rt =
  let open Otfgc in
  let cost = Runtime.cost rt in
  let tel = Runtime.telemetry rt in
  let events = Runtime.events rt in
  let st = Runtime.state rt in
  {
    workload;
    mode = Gc_config.mode_name st.State.cfg.Gc_config.mode;
    collector_work = Cost.collector_work cost;
    phase_work =
      List.map (fun p -> (Cost.phase_name p, Cost.phase_work cost p)) Cost.phases;
    mutator_work = Cost.mutator_work cost;
    category_work =
      List.map
        (fun c -> (Cost.category_name c, Cost.category_work cost c))
        Cost.categories;
    stall_work = Cost.stall_work cost;
    barrier_updates = Telemetry.barrier_updates tel;
    yellow_fires = Telemetry.yellow_fires tel;
    promotions = Telemetry.promotions tel;
    dirty_card_finds = Telemetry.dirty_card_finds tel;
    handshake_acks = Telemetry.handshake_acks tel;
    stalls = Telemetry.stalls tel;
    card_marks = Telemetry.card_marks tel;
    remset_records = Telemetry.remset_records tel;
    events_logged = Event_log.length events;
    events_dropped = Event_log.dropped events;
    handshake_latency =
      List.map
        (fun s ->
          ( Status.to_string s,
            snapshot_hist (Telemetry.handshake_latency tel s) ))
        [ Status.Sync1; Status.Sync2; Status.Async ];
    stall_latency = snapshot_hist (Telemetry.stall_latency tel);
    cycle_progress = snapshot_hist (Telemetry.cycle_progress tel);
  }

let pct part whole =
  if whole = 0 then "0.0"
  else Textable.fmt_f1 (float_of_int part /. float_of_int whole *. 100.)

let work_table s =
  let tbl =
    Textable.create ~title:"work attribution (units)"
      [ "ledger"; "class"; "units"; "% of ledger" ]
  in
  List.iter
    (fun (name, units) ->
      Textable.add_row tbl
        [ "collector"; name; string_of_int units; pct units s.collector_work ])
    s.phase_work;
  Textable.add_row tbl
    [ "collector"; "total"; string_of_int s.collector_work; "100.0" ];
  List.iter
    (fun (name, units) ->
      Textable.add_row tbl
        [ "mutator"; name; string_of_int units; pct units s.mutator_work ])
    s.category_work;
  Textable.add_row tbl
    [ "mutator"; "total"; string_of_int s.mutator_work; "100.0" ];
  Textable.add_row tbl [ "stall"; "total"; string_of_int s.stall_work; "" ];
  tbl

let counter_table s =
  let tbl = Textable.create ~title:"event counters" [ "counter"; "count" ] in
  let row name v = Textable.add_row tbl [ name; string_of_int v ] in
  row "barrier updates" s.barrier_updates;
  row "yellow-exception fires" s.yellow_fires;
  row "promotions" s.promotions;
  row "dirty cards found" s.dirty_card_finds;
  row "handshake acks" s.handshake_acks;
  row "allocation stalls" s.stalls;
  row "card marks" s.card_marks;
  row "remset records" s.remset_records;
  row "events logged" s.events_logged;
  row "events dropped" s.events_dropped;
  tbl

let latency_table s =
  let tbl =
    Textable.create ~title:"latency histograms (work units)"
      [ "instrument"; "count"; "min"; "mean"; "p50"; "p90"; "p99"; "max" ]
  in
  let row name h =
    Textable.add_row tbl
      [
        name;
        string_of_int h.count;
        string_of_int h.min;
        Textable.fmt_f1 h.mean;
        string_of_int h.p50;
        string_of_int h.p90;
        string_of_int h.p99;
        string_of_int h.max;
      ]
  in
  List.iter
    (fun (status, h) -> row ("handshake " ^ status) h)
    s.handshake_latency;
  row "alloc stall" s.stall_latency;
  row "cycle progress" s.cycle_progress;
  tbl

let hist_to_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("total", Json.Int h.total);
      ("min", Json.Int h.min);
      ("max", Json.Int h.max);
      ("mean", Json.Float h.mean);
      ("p50", Json.Int h.p50);
      ("p90", Json.Int h.p90);
      ("p99", Json.Int h.p99);
    ]

let to_json s =
  Json.Obj
    [
      ("workload", Json.String s.workload);
      ("mode", Json.String s.mode);
      ("collector_work", Json.Int s.collector_work);
      ( "phase_work",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.phase_work) );
      ("mutator_work", Json.Int s.mutator_work);
      ( "category_work",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.category_work) );
      ("stall_work", Json.Int s.stall_work);
      ("barrier_updates", Json.Int s.barrier_updates);
      ("yellow_fires", Json.Int s.yellow_fires);
      ("promotions", Json.Int s.promotions);
      ("dirty_card_finds", Json.Int s.dirty_card_finds);
      ("handshake_acks", Json.Int s.handshake_acks);
      ("stalls", Json.Int s.stalls);
      ("card_marks", Json.Int s.card_marks);
      ("remset_records", Json.Int s.remset_records);
      ("events_logged", Json.Int s.events_logged);
      ("events_dropped", Json.Int s.events_dropped);
      ( "handshake_latency",
        Json.Obj
          (List.map (fun (k, h) -> (k, hist_to_json h)) s.handshake_latency) );
      ("stall_latency", hist_to_json s.stall_latency);
      ("cycle_progress", hist_to_json s.cycle_progress);
    ]

let to_csv s =
  let b = Buffer.create 1024 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s,%s\n" k v) in
  line "metric" "value";
  line "workload" s.workload;
  line "mode" s.mode;
  line "collector_work" (string_of_int s.collector_work);
  List.iter
    (fun (k, v) -> line ("phase." ^ k) (string_of_int v))
    s.phase_work;
  line "mutator_work" (string_of_int s.mutator_work);
  List.iter
    (fun (k, v) -> line ("category." ^ k) (string_of_int v))
    s.category_work;
  line "stall_work" (string_of_int s.stall_work);
  line "barrier_updates" (string_of_int s.barrier_updates);
  line "yellow_fires" (string_of_int s.yellow_fires);
  line "promotions" (string_of_int s.promotions);
  line "dirty_card_finds" (string_of_int s.dirty_card_finds);
  line "handshake_acks" (string_of_int s.handshake_acks);
  line "stalls" (string_of_int s.stalls);
  line "card_marks" (string_of_int s.card_marks);
  line "remset_records" (string_of_int s.remset_records);
  line "events_logged" (string_of_int s.events_logged);
  line "events_dropped" (string_of_int s.events_dropped);
  let hist name h =
    line (name ^ ".count") (string_of_int h.count);
    line (name ^ ".total") (string_of_int h.total);
    line (name ^ ".min") (string_of_int h.min);
    line (name ^ ".mean") (Printf.sprintf "%.3f" h.mean);
    line (name ^ ".p50") (string_of_int h.p50);
    line (name ^ ".p90") (string_of_int h.p90);
    line (name ^ ".p99") (string_of_int h.p99);
    line (name ^ ".max") (string_of_int h.max)
  in
  List.iter
    (fun (status, h) -> hist ("handshake_latency." ^ status) h)
    s.handshake_latency;
  hist "stall_latency" s.stall_latency;
  hist "cycle_progress" s.cycle_progress;
  Buffer.contents b

let print s =
  Textable.print (work_table s);
  Textable.print (counter_table s);
  Textable.print (latency_table s)
