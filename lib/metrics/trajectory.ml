module Json = Otfgc_support.Json
module Textable = Otfgc_support.Textable

type scenario = {
  name : string;
  wall_ms : float;
  metrics : (string * float) list;
}

type t = {
  schema_version : int;
  scale : float;
  seed : int;
  quick : bool;
  scenarios : scenario list;
}

let schema_version = 2

(* v1 records (gated metrics + headline counts only) remain readable so
   the dashboard can plot the whole committed history; the gate itself
   stays strict — see [diff]. *)
let readable_versions = [ 1; 2 ]

let make ~scale ~seed ~quick scenarios =
  { schema_version; scale; seed; quick; scenarios }

(* All lower-is-better, all bit-deterministic given (code, scale, seed):
   total elapsed under both CPU models, the split of the work ledger,
   how big the heap ended up, and how much garbage floated per cycle.
   Cycle counts are recorded but not gated (a collector tuning change
   may trade more, cheaper cycles — elapsed catches real losses). *)
let gated_metrics =
  [
    "elapsed_multi";
    "elapsed_uni";
    "mutator_work";
    "collector_work";
    "stall_work";
    "final_capacity";
    "avg_floating_bytes";
  ]

let scenario_of_result ~name ~wall_ms (r : Run_result.t) =
  {
    name;
    wall_ms;
    metrics =
      [
        ("elapsed_multi", float_of_int r.Run_result.elapsed_multi);
        ("elapsed_uni", float_of_int r.Run_result.elapsed_uni);
        ("mutator_work", float_of_int r.Run_result.mutator_work);
        ("collector_work", float_of_int r.Run_result.collector_work);
        ("stall_work", float_of_int r.Run_result.stall_work);
        ("final_capacity", float_of_int r.Run_result.final_capacity);
        ("avg_floating_bytes", r.Run_result.avg_floating_bytes);
        ("n_cycles",
         float_of_int
           (r.Run_result.n_partial + r.Run_result.n_full
          + r.Run_result.n_non_gen));
        ("pct_time_gc", r.Run_result.pct_time_gc);
      ];
  }

(* Schema v2: the gated set plus ungated attribution metrics — the
   collector's per-phase work split from the [Cost] ledger ([phase_*])
   and the headline telemetry counters ([ctr_*]).  All deterministic
   under the simulator; none gated (a tuning change may legitimately
   move work between phases) — they exist so a gate failure can be
   attributed to the phase or counter that moved. *)
let scenario_of_runtime ~name ~wall_ms (r : Run_result.t) rt =
  let s = scenario_of_result ~name ~wall_ms r in
  let cost = Otfgc.Runtime.cost rt in
  let tel = Otfgc.Runtime.telemetry rt in
  let phase_metrics =
    List.map
      (fun p ->
        ( "phase_" ^ Metrics_snapshot.metric_name_of_phase p,
          float_of_int (Otfgc.Cost.phase_work cost p) ))
      Otfgc.Cost.phases
  in
  let ctr m f = ("ctr_" ^ m, float_of_int (f tel)) in
  let ctr_metrics =
    [
      ctr "barrier_updates" Otfgc.Telemetry.barrier_updates;
      ctr "yellow_fires" Otfgc.Telemetry.yellow_fires;
      ctr "promotions" Otfgc.Telemetry.promotions;
      ctr "dirty_card_finds" Otfgc.Telemetry.dirty_card_finds;
      ctr "handshake_acks" Otfgc.Telemetry.handshake_acks;
      ctr "stalls" Otfgc.Telemetry.stalls;
      ctr "card_marks" Otfgc.Telemetry.card_marks;
      ctr "remset_records" Otfgc.Telemetry.remset_records;
      ctr "lock_waits" Otfgc.Telemetry.lock_waits_total;
    ]
  in
  { s with metrics = s.metrics @ phase_metrics @ ctr_metrics }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let scenario_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("wall_ms", Json.Float s.wall_ms);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.metrics));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "otfgc-bench-trajectory");
      ("schema_version", Json.Int t.schema_version);
      ("scale", Json.Float t.scale);
      ("seed", Json.Int t.seed);
      ("quick", Json.Bool t.quick);
      ("scenarios", Json.List (List.map scenario_to_json t.scenarios));
    ]

let ( let* ) = Result.bind

let need what = function Some v -> Ok v | None -> Error ("missing or mistyped " ^ what)

let scenario_of_json j =
  let* name = need "scenario name" (Option.bind (Json.member "name" j) Json.as_string) in
  let* wall_ms =
    need (name ^ ".wall_ms") (Option.bind (Json.member "wall_ms" j) Json.as_float)
  in
  let* metrics =
    match Json.member "metrics" j with
    | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Json.as_float v with
            | Some f -> Ok ((k, f) :: acc)
            | None -> Error (Printf.sprintf "metric %s.%s not a number" name k))
          (Ok []) kvs
        |> Result.map List.rev
    | _ -> Error ("missing metrics object in scenario " ^ name)
  in
  Ok { name; wall_ms; metrics }

let of_json j =
  let* tag = need "schema tag" (Option.bind (Json.member "schema" j) Json.as_string) in
  let* () =
    if tag = "otfgc-bench-trajectory" then Ok ()
    else Error (Printf.sprintf "unexpected schema tag %S" tag)
  in
  let* v =
    need "schema_version" (Option.bind (Json.member "schema_version" j) Json.as_int)
  in
  let* () =
    if List.mem v readable_versions then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d (this build reads %s)" v
           (String.concat ", " (List.map string_of_int readable_versions)))
  in
  let* scale = need "scale" (Option.bind (Json.member "scale" j) Json.as_float) in
  let* seed = need "seed" (Option.bind (Json.member "seed" j) Json.as_int) in
  let* quick =
    match Json.member "quick" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing or mistyped quick"
  in
  let* scenarios =
    match Option.bind (Json.member "scenarios" j) Json.as_list with
    | None -> Error "missing scenarios array"
    | Some js ->
        List.fold_left
          (fun acc sj ->
            let* acc = acc in
            let* s = scenario_of_json sj in
            Ok (s :: acc))
          (Ok []) js
        |> Result.map List.rev
  in
  let* () = if scenarios = [] then Error "empty scenarios array" else Ok () in
  Ok { schema_version = v; scale; seed; quick; scenarios }

let validate j = Result.map (fun (_ : t) -> ()) (of_json j)

(* ------------------------------------------------------------------ *)
(* Regression diff                                                     *)
(* ------------------------------------------------------------------ *)

type regression = {
  r_scenario : string;
  r_metric : string;
  r_baseline : float;
  r_current : float;
  r_delta_pct : float;
}

let diff ?(threshold_pct = 5.) ~baseline ~current () =
  let* () =
    if baseline.schema_version <> current.schema_version then
      Error "baseline has a different schema version"
    else if baseline.scale <> current.scale then
      Error
        (Printf.sprintf "baseline ran at scale %g, current at %g" baseline.scale
           current.scale)
    else if baseline.seed <> current.seed then
      Error "baseline ran with a different seed"
    else if baseline.quick <> current.quick then
      Error "baseline quick flag differs"
    else Ok ()
  in
  let regs = ref [] in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> b.name = cur.name) baseline.scenarios with
      | None -> () (* new scenario: nothing to gate against *)
      | Some base ->
          List.iter
            (fun metric ->
              match
                ( List.assoc_opt metric base.metrics,
                  List.assoc_opt metric cur.metrics )
              with
              | Some b, Some c ->
                  let delta_pct = (c -. b) /. Float.max (Float.abs b) 1. *. 100. in
                  if delta_pct > threshold_pct then
                    regs :=
                      {
                        r_scenario = cur.name;
                        r_metric = metric;
                        r_baseline = b;
                        r_current = c;
                        r_delta_pct = delta_pct;
                      }
                      :: !regs
              | _ -> ())
            gated_metrics)
    current.scenarios;
  Ok (List.rev !regs)

let render_diff ~baseline ~current regressions =
  match regressions with
  | [] ->
      Printf.sprintf
        "trajectory gate: OK — %d scenarios, no gated metric above baseline\n"
        (List.length current.scenarios)
  | regs ->
      let tbl =
        Textable.create
          ~title:
            (Printf.sprintf
               "trajectory gate: %d REGRESSION%s vs baseline (%d scenarios)"
               (List.length regs)
               (if List.length regs = 1 then "" else "S")
               (List.length baseline.scenarios))
          [ "scenario"; "metric"; "baseline"; "current"; "delta %" ]
      in
      List.iter
        (fun r ->
          Textable.add_row tbl
            [
              r.r_scenario;
              r.r_metric;
              Textable.fmt_int r.r_baseline;
              Textable.fmt_int r.r_current;
              Textable.fmt_pct r.r_delta_pct;
            ])
        regs;
      let worst =
        List.fold_left
          (fun acc r ->
            match acc with
            | Some w when w.r_delta_pct >= r.r_delta_pct -> acc
            | _ -> Some r)
          None regs
      in
      Textable.render tbl
      ^
      (match worst with
      | Some w ->
          Printf.sprintf
            "worst offender: scenario %s, metric %s (%.0f -> %.0f, +%.1f%% \
             over baseline)\n"
            w.r_scenario w.r_metric w.r_baseline w.r_current w.r_delta_pct
      | None -> "")

(* ------------------------------------------------------------------ *)
(* Regression attribution                                              *)
(* ------------------------------------------------------------------ *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Rank the ungated attribution metrics ([phase_*], [ctr_*]) by how much
   they moved between baseline and current — when the gate fails on an
   aggregate like [collector_work], this table names the phase or event
   counter behind the movement. *)
let attribution ~baseline ~current =
  let rows = ref [] in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> b.name = cur.name) baseline.scenarios with
      | None -> ()
      | Some base ->
          List.iter
            (fun (metric, c) ->
              if has_prefix "phase_" metric || has_prefix "ctr_" metric then
                match List.assoc_opt metric base.metrics with
                | Some b when b <> c ->
                    let delta_pct =
                      (c -. b) /. Float.max (Float.abs b) 1. *. 100.
                    in
                    rows :=
                      {
                        r_scenario = cur.name;
                        r_metric = metric;
                        r_baseline = b;
                        r_current = c;
                        r_delta_pct = delta_pct;
                      }
                      :: !rows
                | _ -> ())
            cur.metrics)
    current.scenarios;
  List.sort
    (fun a b -> compare (Float.abs b.r_delta_pct) (Float.abs a.r_delta_pct))
    !rows

let render_attribution ?(limit = 12) rows =
  match rows with
  | [] ->
      "attribution: no phase/counter movement recorded (baseline predates \
       schema v2?)\n"
  | rows ->
      let shown = List.filteri (fun i _ -> i < limit) rows in
      let tbl =
        Textable.create
          ~title:
            (Printf.sprintf
               "regression attribution: top %d phase/counter movements"
               (List.length shown))
          [ "scenario"; "metric"; "baseline"; "current"; "delta %" ]
      in
      List.iter
        (fun r ->
          Textable.add_row tbl
            [
              r.r_scenario;
              r.r_metric;
              Textable.fmt_int r.r_baseline;
              Textable.fmt_int r.r_current;
              Textable.fmt_pct r.r_delta_pct;
            ])
        shown;
      Textable.render tbl
