open Otfgc
module Heap = Otfgc_heap.Heap

type t = {
  workload : string;
  mode : string;
  elapsed_multi : int;
  elapsed_uni : int;
  mutator_work : int;
  collector_work : int;
  stall_work : int;
  total_alloc_bytes : int;
  total_alloc_objects : int;
  final_capacity : int;
  n_partial : int;
  n_full : int;
  n_non_gen : int;
  pct_time_gc : float;
  avg_intergen_scanned : float;
  avg_scanned_partial : float;
  avg_scanned_full : float;
  avg_scanned_non_gen : float;
  pct_bytes_freed_partial : float;
  pct_objects_freed_partial : float;
  pct_objects_freed_full : float;
  pct_objects_freed_non_gen : float;
  avg_work_partial : float;
  avg_work_full : float;
  avg_work_non_gen : float;
  avg_objects_freed_partial : float;
  avg_objects_freed_full : float;
  avg_objects_freed_non_gen : float;
  avg_bytes_freed_partial : float;
  avg_bytes_freed_full : float;
  avg_bytes_freed_non_gen : float;
  avg_pages_partial : float;
  avg_pages_full : float;
  avg_pages_non_gen : float;
  pct_dirty_cards : float;
  avg_card_scan_bytes : float;
  avg_floating_objects : float;
  avg_floating_bytes : float;
  max_floating_bytes : int;
}

let fi = float_of_int

(* Percentage of objects/bytes freed relative to what was collectible:
   for partial collections the young census at cycle start, for full and
   non-generational collections everything allocated (freed + survivors). *)
let pct_freed_partial cycles ~bytes =
  let num = ref 0. and den = ref 0. and n = ref 0 in
  List.iter
    (fun c ->
      if c.Gc_stats.kind = Gc_stats.Partial then begin
        incr n;
        if bytes then begin
          num := !num +. fi c.Gc_stats.bytes_freed;
          den := !den +. fi c.Gc_stats.young_bytes_at_start
        end
        else begin
          num := !num +. fi c.Gc_stats.objects_freed;
          den := !den +. fi c.Gc_stats.young_objects_at_start
        end
      end)
    cycles;
  if !den = 0. then 0. else Float.min 100. (!num /. !den *. 100.)

let pct_freed_whole cycles kind =
  let num = ref 0. and den = ref 0. in
  List.iter
    (fun c ->
      if c.Gc_stats.kind = kind then begin
        num := !num +. fi c.Gc_stats.objects_freed;
        den :=
          !den +. fi (c.Gc_stats.objects_freed + c.Gc_stats.live_objects_at_end)
      end)
    cycles;
  if !den = 0. then 0. else !num /. !den *. 100.

let of_runtime ~workload rt =
  let st = Runtime.state rt in
  let stats = Runtime.stats rt in
  let cost = Runtime.cost rt in
  let cycles = Gc_stats.cycles stats in
  let mean kind f = Gc_stats.mean stats kind f in
  let heap = Runtime.heap rt in
  let elapsed_multi = Cost.elapsed_multi cost in
  {
    workload;
    mode = Gc_config.mode_name st.State.cfg.Gc_config.mode;
    elapsed_multi;
    elapsed_uni = Cost.elapsed_uni cost;
    mutator_work = Cost.mutator_work cost;
    collector_work = Cost.collector_work cost;
    stall_work = Cost.stall_work cost;
    total_alloc_bytes = Heap.total_allocated_bytes heap;
    total_alloc_objects = Heap.total_allocated_objects heap;
    final_capacity = Heap.capacity heap;
    n_partial = Gc_stats.count stats Gc_stats.Partial;
    n_full = Gc_stats.count stats Gc_stats.Full;
    n_non_gen = Gc_stats.count stats Gc_stats.Non_gen;
    pct_time_gc =
      (if elapsed_multi = 0 then 0.
       else
         List.fold_left (fun acc c -> acc +. fi c.Gc_stats.active_span) 0. cycles
         /. fi elapsed_multi *. 100.);
    avg_intergen_scanned =
      mean Gc_stats.Partial (fun c -> fi c.Gc_stats.intergen_scanned);
    avg_scanned_partial =
      mean Gc_stats.Partial (fun c -> fi c.Gc_stats.objects_traced);
    avg_scanned_full = mean Gc_stats.Full (fun c -> fi c.Gc_stats.objects_traced);
    avg_scanned_non_gen =
      mean Gc_stats.Non_gen (fun c -> fi c.Gc_stats.objects_traced);
    pct_bytes_freed_partial = pct_freed_partial cycles ~bytes:true;
    pct_objects_freed_partial = pct_freed_partial cycles ~bytes:false;
    pct_objects_freed_full = pct_freed_whole cycles Gc_stats.Full;
    pct_objects_freed_non_gen = pct_freed_whole cycles Gc_stats.Non_gen;
    avg_work_partial = mean Gc_stats.Partial (fun c -> fi c.Gc_stats.work);
    avg_work_full = mean Gc_stats.Full (fun c -> fi c.Gc_stats.work);
    avg_work_non_gen = mean Gc_stats.Non_gen (fun c -> fi c.Gc_stats.work);
    avg_objects_freed_partial =
      mean Gc_stats.Partial (fun c -> fi c.Gc_stats.objects_freed);
    avg_objects_freed_full =
      mean Gc_stats.Full (fun c -> fi c.Gc_stats.objects_freed);
    avg_objects_freed_non_gen =
      mean Gc_stats.Non_gen (fun c -> fi c.Gc_stats.objects_freed);
    avg_bytes_freed_partial =
      mean Gc_stats.Partial (fun c -> fi c.Gc_stats.bytes_freed);
    avg_bytes_freed_full = mean Gc_stats.Full (fun c -> fi c.Gc_stats.bytes_freed);
    avg_bytes_freed_non_gen =
      mean Gc_stats.Non_gen (fun c -> fi c.Gc_stats.bytes_freed);
    avg_pages_partial = mean Gc_stats.Partial (fun c -> fi c.Gc_stats.pages_touched);
    avg_pages_full = mean Gc_stats.Full (fun c -> fi c.Gc_stats.pages_touched);
    avg_pages_non_gen =
      mean Gc_stats.Non_gen (fun c -> fi c.Gc_stats.pages_touched);
    pct_dirty_cards =
      (* dirty marks can sit outside the allocation window (old-region
         stores), so clamp the ratio the way the paper's counters would *)
      mean Gc_stats.Partial (fun c ->
          if c.Gc_stats.total_cards = 0 then 0.
          else
            Float.min 100.
              (fi c.Gc_stats.dirty_cards /. fi c.Gc_stats.total_cards *. 100.));
    avg_card_scan_bytes =
      mean Gc_stats.Partial (fun c -> fi c.Gc_stats.card_scan_bytes);
    avg_floating_objects =
      (if cycles = [] then 0.
       else
         List.fold_left
           (fun acc c -> acc +. fi c.Gc_stats.floating_objects)
           0. cycles
         /. fi (List.length cycles));
    avg_floating_bytes =
      (if cycles = [] then 0.
       else
         List.fold_left
           (fun acc c -> acc +. fi c.Gc_stats.floating_bytes)
           0. cycles
         /. fi (List.length cycles));
    max_floating_bytes =
      List.fold_left
        (fun acc c -> Stdlib.max acc c.Gc_stats.floating_bytes)
        0 cycles;
  }

(* JSON round-trip.  One (name, inject, project) row per field keeps the
   writer and the reader in lockstep: a field added to the record without a
   row here is a compile error in [to_json]/[of_json] construction below. *)
module Json = Otfgc_support.Json

let to_json t =
  Json.Obj
    [
      ("workload", Json.String t.workload);
      ("mode", Json.String t.mode);
      ("elapsed_multi", Json.Int t.elapsed_multi);
      ("elapsed_uni", Json.Int t.elapsed_uni);
      ("mutator_work", Json.Int t.mutator_work);
      ("collector_work", Json.Int t.collector_work);
      ("stall_work", Json.Int t.stall_work);
      ("total_alloc_bytes", Json.Int t.total_alloc_bytes);
      ("total_alloc_objects", Json.Int t.total_alloc_objects);
      ("final_capacity", Json.Int t.final_capacity);
      ("n_partial", Json.Int t.n_partial);
      ("n_full", Json.Int t.n_full);
      ("n_non_gen", Json.Int t.n_non_gen);
      ("pct_time_gc", Json.Float t.pct_time_gc);
      ("avg_intergen_scanned", Json.Float t.avg_intergen_scanned);
      ("avg_scanned_partial", Json.Float t.avg_scanned_partial);
      ("avg_scanned_full", Json.Float t.avg_scanned_full);
      ("avg_scanned_non_gen", Json.Float t.avg_scanned_non_gen);
      ("pct_bytes_freed_partial", Json.Float t.pct_bytes_freed_partial);
      ("pct_objects_freed_partial", Json.Float t.pct_objects_freed_partial);
      ("pct_objects_freed_full", Json.Float t.pct_objects_freed_full);
      ("pct_objects_freed_non_gen", Json.Float t.pct_objects_freed_non_gen);
      ("avg_work_partial", Json.Float t.avg_work_partial);
      ("avg_work_full", Json.Float t.avg_work_full);
      ("avg_work_non_gen", Json.Float t.avg_work_non_gen);
      ("avg_objects_freed_partial", Json.Float t.avg_objects_freed_partial);
      ("avg_objects_freed_full", Json.Float t.avg_objects_freed_full);
      ("avg_objects_freed_non_gen", Json.Float t.avg_objects_freed_non_gen);
      ("avg_bytes_freed_partial", Json.Float t.avg_bytes_freed_partial);
      ("avg_bytes_freed_full", Json.Float t.avg_bytes_freed_full);
      ("avg_bytes_freed_non_gen", Json.Float t.avg_bytes_freed_non_gen);
      ("avg_pages_partial", Json.Float t.avg_pages_partial);
      ("avg_pages_full", Json.Float t.avg_pages_full);
      ("avg_pages_non_gen", Json.Float t.avg_pages_non_gen);
      ("pct_dirty_cards", Json.Float t.pct_dirty_cards);
      ("avg_card_scan_bytes", Json.Float t.avg_card_scan_bytes);
      ("avg_floating_objects", Json.Float t.avg_floating_objects);
      ("avg_floating_bytes", Json.Float t.avg_floating_bytes);
      ("max_floating_bytes", Json.Int t.max_floating_bytes);
    ]

exception Bad_field of string

let of_json j =
  let str k =
    match Option.bind (Json.member k j) Json.as_string with
    | Some s -> s
    | None -> raise (Bad_field k)
  in
  let int k =
    match Option.bind (Json.member k j) Json.as_int with
    | Some i -> i
    | None -> raise (Bad_field k)
  in
  let flt k =
    match Option.bind (Json.member k j) Json.as_float with
    | Some f -> f
    | None -> raise (Bad_field k)
  in
  try
    Ok
      {
        workload = str "workload";
        mode = str "mode";
        elapsed_multi = int "elapsed_multi";
        elapsed_uni = int "elapsed_uni";
        mutator_work = int "mutator_work";
        collector_work = int "collector_work";
        stall_work = int "stall_work";
        total_alloc_bytes = int "total_alloc_bytes";
        total_alloc_objects = int "total_alloc_objects";
        final_capacity = int "final_capacity";
        n_partial = int "n_partial";
        n_full = int "n_full";
        n_non_gen = int "n_non_gen";
        pct_time_gc = flt "pct_time_gc";
        avg_intergen_scanned = flt "avg_intergen_scanned";
        avg_scanned_partial = flt "avg_scanned_partial";
        avg_scanned_full = flt "avg_scanned_full";
        avg_scanned_non_gen = flt "avg_scanned_non_gen";
        pct_bytes_freed_partial = flt "pct_bytes_freed_partial";
        pct_objects_freed_partial = flt "pct_objects_freed_partial";
        pct_objects_freed_full = flt "pct_objects_freed_full";
        pct_objects_freed_non_gen = flt "pct_objects_freed_non_gen";
        avg_work_partial = flt "avg_work_partial";
        avg_work_full = flt "avg_work_full";
        avg_work_non_gen = flt "avg_work_non_gen";
        avg_objects_freed_partial = flt "avg_objects_freed_partial";
        avg_objects_freed_full = flt "avg_objects_freed_full";
        avg_objects_freed_non_gen = flt "avg_objects_freed_non_gen";
        avg_bytes_freed_partial = flt "avg_bytes_freed_partial";
        avg_bytes_freed_full = flt "avg_bytes_freed_full";
        avg_bytes_freed_non_gen = flt "avg_bytes_freed_non_gen";
        avg_pages_partial = flt "avg_pages_partial";
        avg_pages_full = flt "avg_pages_full";
        avg_pages_non_gen = flt "avg_pages_non_gen";
        pct_dirty_cards = flt "pct_dirty_cards";
        avg_card_scan_bytes = flt "avg_card_scan_bytes";
        avg_floating_objects = flt "avg_floating_objects";
        avg_floating_bytes = flt "avg_floating_bytes";
        max_floating_bytes = int "max_floating_bytes";
      }
  with Bad_field k -> Error (Printf.sprintf "missing or mistyped field %S" k)

let elapsed t ~multiprocessor =
  fi (if multiprocessor then t.elapsed_multi else t.elapsed_uni)

let improvement_pct ~baseline t ~multiprocessor =
  Otfgc_support.Stats.improvement_pct
    ~baseline:(elapsed baseline ~multiprocessor)
    ~candidate:(elapsed t ~multiprocessor)

let pp ppf t =
  let f = Format.fprintf in
  f ppf "@[<v>workload: %s (%s)@," t.workload t.mode;
  f ppf "elapsed: multi=%d uni=%d (mutator=%d collector=%d stall=%d)@,"
    t.elapsed_multi t.elapsed_uni t.mutator_work t.collector_work t.stall_work;
  f ppf "allocated: %d bytes, %d objects; final capacity %d@,"
    t.total_alloc_bytes t.total_alloc_objects t.final_capacity;
  f ppf "collections: %d partial, %d full, %d non-gen; GC active %.1f%%@,"
    t.n_partial t.n_full t.n_non_gen t.pct_time_gc;
  f ppf "scanned/cycle: intergen=%.0f partial=%.0f full=%.0f nongen=%.0f@,"
    t.avg_intergen_scanned t.avg_scanned_partial t.avg_scanned_full
    t.avg_scanned_non_gen;
  f ppf "freed: partial %.1f%% objects (%.1f%% bytes), full %.1f%%, nongen %.1f%%@,"
    t.pct_objects_freed_partial t.pct_bytes_freed_partial
    t.pct_objects_freed_full t.pct_objects_freed_non_gen;
  f ppf "cycle work: partial=%.0f full=%.0f nongen=%.0f@," t.avg_work_partial
    t.avg_work_full t.avg_work_non_gen;
  f ppf "pages/cycle: partial=%.0f full=%.0f nongen=%.0f@," t.avg_pages_partial
    t.avg_pages_full t.avg_pages_non_gen;
  f ppf "cards: %.2f%% dirty, %.0f bytes scanned/partial@," t.pct_dirty_cards
    t.avg_card_scan_bytes;
  f ppf "floating garbage: %.0f objects (%.0f bytes)/cycle, worst %d bytes@]"
    t.avg_floating_objects t.avg_floating_bytes t.max_floating_bytes
