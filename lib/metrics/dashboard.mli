(** Cross-run trajectory dashboard: every committed [BENCH_NNNN.json]
    rendered as one self-contained HTML/SVG page.

    One panel per scenario; within a panel, one polyline per gated
    metric, each normalised to its value in the earliest run that
    records it (100 = no change), so a 4-decade spread of raw
    magnitudes shares one axis and a regression reads as a line
    climbing away from 100.  Runs are evenly spaced on the x axis and
    labelled with their file names; v1 records plot alongside v2 ones
    (they simply lack the attribution metrics, which are not drawn
    here).

    Same construction discipline as {!Report}: inline CSS, inline SVG
    via {!Otfgc_support.Svg}, no scripts or external references, so the
    file opens anywhere and archives as a CI artifact. *)

val render : runs:(string * Trajectory.t) list -> (string, string) result
(** [(label, record)] pairs in trajectory order (oldest first; the last
    is usually the uncommitted current run).  [Error] when [runs] is
    empty. *)

val validate : string -> (unit, string) result
(** Structural acceptance check, built on
    {!Report.validate_structure}: doctype, balanced tags, finite
    [points], no external resources, the axis and trajectory classes
    present, and at least one run plotted. *)
