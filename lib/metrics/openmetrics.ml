(* OpenMetrics text exposition: emitter + structural validator.  The
   emitter is the single writer (no external metrics library), so the
   validator doubles as the regression net for its framing rules. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let valid_name s =
  String.length s > 0
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all is_name_char s

(* label names are names without ':' *)
let valid_label_name s = valid_name s && not (String.contains s ':')

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let family buf ~name ~typ ~help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let label_block labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               if not (valid_label_name k) then
                 invalid_arg ("Openmetrics.render: bad label name " ^ k);
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let render ?(labels = []) (s : Metrics_snapshot.t) =
  let buf = Buffer.create 4096 in
  family buf ~name:"otfgc_run" ~typ:"info" ~help:"run identity labels";
  Buffer.add_string buf
    (Printf.sprintf "otfgc_run_info%s 1\n" (label_block labels));
  family buf ~name:"otfgc_phase" ~typ:"info"
    ~help:"collector phase at snapshot time";
  Buffer.add_string buf
    (Printf.sprintf "otfgc_phase_info%s 1\n"
       (label_block [ ("phase", s.Metrics_snapshot.phase) ]));
  family buf ~name:"otfgc_snapshot_seq" ~typ:"gauge"
    ~help:"snapshot index within the run";
  Buffer.add_string buf
    (Printf.sprintf "otfgc_snapshot_seq %d\n" s.Metrics_snapshot.seq);
  List.iter
    (fun (name, v) ->
      let fam = "otfgc_" ^ name in
      family buf ~name:fam ~typ:"counter" ~help:("cumulative " ^ name);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" fam v))
    (Metrics_snapshot.counters s);
  List.iter
    (fun (name, v) ->
      let fam = "otfgc_" ^ name in
      family buf ~name:fam ~typ:"gauge" ~help:("current " ^ name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" fam v))
    (Metrics_snapshot.gauges s);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

type fam = { typ : string; mutable samples : int }

(* ["name{...} v"] -> (name, labels option, value).  Labels are checked
   in place: balanced block, comma-separated name="value" pairs, only
   valid escapes inside values. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then Error (Printf.sprintf "bad metric name in %S" line)
  else begin
    let* () =
      if !i < n && line.[!i] = '{' then begin
        (* walk the label block *)
        incr i;
        let err = ref None in
        let expect_pair = ref (!i < n && line.[!i] <> '}') in
        while !err = None && !expect_pair do
          (* label name *)
          let s0 = !i in
          while !i < n && is_name_char line.[!i] do
            incr i
          done;
          if not (valid_label_name (String.sub line s0 (!i - s0))) then
            err := Some "bad label name"
          else if !i >= n || line.[!i] <> '=' then err := Some "missing '='"
          else begin
            incr i;
            if !i >= n || line.[!i] <> '"' then err := Some "unquoted label value"
            else begin
              incr i;
              let closed = ref false in
              while (not !closed) && !err = None && !i < n do
                (match line.[!i] with
                | '\\' ->
                    if
                      !i + 1 < n
                      && (line.[!i + 1] = '\\' || line.[!i + 1] = '"'
                        || line.[!i + 1] = 'n')
                    then incr i
                    else err := Some "bad escape in label value"
                | '"' -> closed := true
                | _ -> ());
                incr i
              done;
              if not !closed then err := Some "unterminated label value"
              else if !i < n && line.[!i] = ',' then incr i
              else expect_pair := false
            end
          end
        done;
        match !err with
        | Some e -> Error (Printf.sprintf "%s in %S" e line)
        | None ->
            if !i < n && line.[!i] = '}' then begin
              incr i;
              Ok ()
            end
            else Error (Printf.sprintf "unterminated label block in %S" line)
      end
      else Ok ()
    in
    if !i >= n || line.[!i] <> ' ' then
      Error (Printf.sprintf "missing value in %S" line)
    else begin
      let value = String.sub line (!i + 1) (n - !i - 1) in
      match float_of_string_opt value with
      | Some f when Float.is_finite f -> Ok name
      | _ -> Error (Printf.sprintf "non-finite value %S in %S" value line)
    end
  end

(* family a sample name belongs to, given its declared type *)
let family_of_sample ~typ name =
  let strip suffix =
    if Filename.check_suffix name suffix then
      Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  match typ with
  | "counter" -> strip "_total"
  | "info" -> strip "_info"
  | _ -> Some name

let validate doc =
  let lines = String.split_on_char '\n' doc in
  (* a trailing newline yields one final "" element; anything else after
     the EOF line is a framing error *)
  let* lines =
    match List.rev lines with
    | "" :: rev -> Ok (List.rev rev)
    | _ -> Error "missing trailing newline"
  in
  let* () =
    match List.rev lines with
    | "# EOF" :: _ -> Ok ()
    | _ -> Error "last line is not # EOF"
  in
  let fams : (string, fam) Hashtbl.t = Hashtbl.create 64 in
  let current = ref None in
  let eof_seen = ref false in
  let check_line line =
    if !eof_seen then Error "content after # EOF"
    else if line = "# EOF" then begin
      eof_seen := true;
      Ok ()
    end
    else if line = "" then Error "blank line"
    else if String.length line > 1 && line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | "#" :: kind :: name :: rest -> (
          match kind with
          | "HELP" ->
              if rest = [] then Error ("HELP without text: " ^ line)
              else if not (valid_name name) then
                Error ("bad family name in " ^ line)
              else Ok ()
          | "TYPE" -> (
              match rest with
              | [ typ ] when List.mem typ [ "counter"; "gauge"; "info" ] ->
                  if Hashtbl.mem fams name then
                    Error (Printf.sprintf "family %s declared twice" name)
                  else if not (valid_name name) then
                    Error ("bad family name in " ^ line)
                  else begin
                    Hashtbl.add fams name { typ; samples = 0 };
                    current := Some name;
                    Ok ()
                  end
              | [ typ ] -> Error (Printf.sprintf "unknown type %S" typ)
              | _ -> Error ("malformed TYPE line: " ^ line))
          | _ -> Error ("unknown comment kind: " ^ line))
      | _ -> Error ("malformed comment line: " ^ line)
    end
    else
      let* sample_name = parse_sample line in
      match !current with
      | None -> Error ("sample before any # TYPE: " ^ line)
      | Some fam_name -> (
          let fam = Hashtbl.find fams fam_name in
          match family_of_sample ~typ:fam.typ sample_name with
          | Some f when f = fam_name ->
              fam.samples <- fam.samples + 1;
              Ok ()
          | _ ->
              Error
                (Printf.sprintf
                   "sample %s does not belong to %s family %s (samples must \
                    follow their family's # TYPE)"
                   sample_name fam.typ fam_name))
  in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        check_line line)
      (Ok ()) lines
  in
  Hashtbl.fold
    (fun name fam acc ->
      let* () = acc in
      if fam.samples = 0 then
        Error (Printf.sprintf "family %s has no samples" name)
      else Ok ())
    fams (Ok ())
