(** Contention profile of a domains run, distilled from the flight
    recorder's per-domain rings ({!Otfgc.Flight_recorder}): per-size-class
    block-pool lock-wait time, steal-attempt latency distributions, and
    each trace worker's idle-versus-active wall-clock split.  Build it
    post-run — the rings are single-writer and only safe to drain after
    the domains have quiesced. *)

type worker_row = {
  track : string;
  trace_ns : int;  (** wall-clock inside this track's trace-phase spans *)
  idle_ns : int;  (** parked out of work inside those spans *)
  steal_hits : int;
  steal_misses : int;
}

type t = {
  lock_wait_by_class : (int * int * int) list;
      (** (size class, contended acquisitions, total wait ns), ascending *)
  steal_hit_ns : Otfgc_support.Histogram.t;
  steal_miss_ns : Otfgc_support.Histogram.t;
  workers : worker_row list;
  polls : int;  (** safepoint polls counted across every mutator ring *)
  dropped : int;  (** events lost to ring overwrite, all rings *)
}

val of_flight : Otfgc.Flight_recorder.t -> t

val lock_table : t -> Otfgc_support.Textable.t
val steal_table : t -> Otfgc_support.Textable.t
val worker_table : t -> Otfgc_support.Textable.t

val print : t -> unit
(** All three tables plus the poll/drop counters to stdout. *)

val to_json : t -> Otfgc_support.Json.t
