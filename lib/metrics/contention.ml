(* Contention profile distilled from the flight recorder's per-domain
   rings: where the domains substrate spends wall-clock time waiting
   rather than working.  Everything here is post-run aggregation over
   [Flight_recorder.events] — the recording side stays four int stores
   per event. *)

module Histogram = Otfgc_support.Histogram
module Textable = Otfgc_support.Textable
module Json = Otfgc_support.Json
module Fr = Otfgc.Flight_recorder

type worker_row = {
  track : string;
  trace_ns : int;  (* wall-clock inside trace-phase spans *)
  idle_ns : int;  (* parked out of work inside those spans *)
  steal_hits : int;
  steal_misses : int;
}

type t = {
  lock_wait_by_class : (int * int * int) list;
      (* size class, contended acquisitions, total wait ns *)
  steal_hit_ns : Histogram.t;
  steal_miss_ns : Histogram.t;
  workers : worker_row list;
  polls : int;
  dropped : int;
}

let of_flight fr =
  let locks = Hashtbl.create 8 in
  let wtbl = Hashtbl.create 8 in
  let worker track =
    match Hashtbl.find_opt wtbl track with
    | Some r -> r
    | None ->
        let r = ref { track; trace_ns = 0; idle_ns = 0; steal_hits = 0;
                      steal_misses = 0 } in
        Hashtbl.add wtbl track r;
        r
  in
  let hit = Histogram.create () and miss = Histogram.create () in
  List.iter
    (fun (e : Fr.event) ->
      match e.Fr.kind with
      | Fr.Lock_wait ->
          let c, n = Option.value ~default:(0, 0)
              (Hashtbl.find_opt locks e.Fr.a) in
          Hashtbl.replace locks e.Fr.a (c + 1, n + e.Fr.dur_ns)
      | Fr.Steal ->
          let r = worker e.Fr.track in
          if e.Fr.a = 1 then begin
            Histogram.record hit e.Fr.dur_ns;
            r := { !r with steal_hits = !r.steal_hits + 1 }
          end
          else begin
            Histogram.record miss e.Fr.dur_ns;
            r := { !r with steal_misses = !r.steal_misses + 1 }
          end
      | Fr.Idle ->
          let r = worker e.Fr.track in
          r := { !r with idle_ns = !r.idle_ns + e.Fr.dur_ns }
      | Fr.Phase when e.Fr.a = 2 ->
          (* a trace-phase span on this track *)
          let r = worker e.Fr.track in
          r := { !r with trace_ns = !r.trace_ns + e.Fr.dur_ns }
      | _ -> ())
    (Fr.events fr);
  let lock_wait_by_class =
    List.sort compare
      (Hashtbl.fold (fun cls (c, n) acc -> (cls, c, n) :: acc) locks [])
  in
  let workers =
    List.sort
      (fun a b -> compare a.track b.track)
      (Hashtbl.fold (fun _ r acc -> !r :: acc) wtbl [])
  in
  {
    lock_wait_by_class;
    steal_hit_ns = hit;
    steal_miss_ns = miss;
    workers;
    polls = Fr.total_polls fr;
    dropped = Fr.dropped fr;
  }

let us ns = Otfgc_support.Monotonic_clock.ns_to_us ns

let lock_table t =
  let tbl =
    Textable.create ~title:"block-pool lock contention"
      [ "size class"; "waits"; "total us"; "mean us" ]
  in
  List.iter
    (fun (cls, c, ns) ->
      Textable.add_row tbl
        [
          string_of_int cls;
          string_of_int c;
          string_of_int (us ns);
          Textable.fmt_f1 (float_of_int (us ns) /. float_of_int (Stdlib.max 1 c));
        ])
    t.lock_wait_by_class;
  tbl

let steal_table t =
  let tbl =
    Textable.create ~title:"steal latency (ns)"
      [ "outcome"; "count"; "p50"; "p90"; "p99"; "p99.9"; "max" ]
  in
  let row name h =
    Textable.add_row tbl
      [
        name;
        string_of_int (Histogram.count h);
        string_of_int (Histogram.percentile h 50.);
        string_of_int (Histogram.percentile h 90.);
        string_of_int (Histogram.percentile h 99.);
        string_of_int (Histogram.percentile h 99.9);
        string_of_int (Histogram.max_value h);
      ]
  in
  row "hit" t.steal_hit_ns;
  row "miss" t.steal_miss_ns;
  tbl

let worker_table t =
  let tbl =
    Textable.create ~title:"trace workers (wall-clock)"
      [ "track"; "trace us"; "idle us"; "idle %"; "steals"; "misses" ]
  in
  List.iter
    (fun w ->
      let idle_pct =
        if w.trace_ns = 0 then "0.0"
        else
          Textable.fmt_f1
            (float_of_int w.idle_ns /. float_of_int w.trace_ns *. 100.)
      in
      Textable.add_row tbl
        [
          w.track;
          string_of_int (us w.trace_ns);
          string_of_int (us w.idle_ns);
          idle_pct;
          string_of_int w.steal_hits;
          string_of_int w.steal_misses;
        ])
    t.workers;
  tbl

let print t =
  Textable.print (lock_table t);
  Textable.print (steal_table t);
  Textable.print (worker_table t);
  Printf.printf "safepoint polls: %d (sampled 1/%d)   recorder drops: %d\n"
    t.polls Fr.poll_sample_interval t.dropped

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Int (Histogram.percentile h 50.));
      ("p90", Json.Int (Histogram.percentile h 90.));
      ("p99", Json.Int (Histogram.percentile h 99.));
      ("p999", Json.Int (Histogram.percentile h 99.9));
      ("max", Json.Int (Histogram.max_value h));
    ]

let to_json t =
  Json.Obj
    [
      ( "lock_wait_by_class",
        Json.List
          (List.map
             (fun (cls, c, ns) ->
               Json.Obj
                 [
                   ("class", Json.Int cls);
                   ("waits", Json.Int c);
                   ("total_ns", Json.Int ns);
                 ])
             t.lock_wait_by_class) );
      ("steal_hit_ns", hist_json t.steal_hit_ns);
      ("steal_miss_ns", hist_json t.steal_miss_ns);
      ( "workers",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("track", Json.String w.track);
                   ("trace_ns", Json.Int w.trace_ns);
                   ("idle_ns", Json.Int w.idle_ns);
                   ("steal_hits", Json.Int w.steal_hits);
                   ("steal_misses", Json.Int w.steal_misses);
                 ])
             t.workers) );
      ("polls", Json.Int t.polls);
      ("dropped", Json.Int t.dropped);
    ]
