(** The observer domain: live export of {!Metrics_snapshot}s at a
    wall-clock cadence.

    On the domains substrate the observer is one extra domain that
    wakes every [every_ms] milliseconds, takes a lock-free snapshot
    (see {!Metrics_snapshot.take} for the safety argument) and pushes
    it to up to three sinks:

    - a JSONL file ([jsonl_path]), one snapshot object appended per
      tick — the trajectory of the run;
    - an OpenMetrics text file ([om_path]), rewritten whole at each
      tick in the node-exporter textfile-collector style, so a scraper
      always reads one complete, valid exposition whose counters are
      the run's cumulative totals so far;
    - an ANSI two-line terminal view ([live]): heap-occupancy ribbon,
      current collector phase, allocation rate, young-generation size,
      dirty cards, gray depth, completed cycles and the p99 handshake
      latency, refreshed in place per snapshot.

    {!stop} always takes one final snapshot after the observer domain
    has joined, so even a run shorter than one cadence period emits a
    single exact record.  The caller must invoke {!stop} while the
    per-mutator ledgers are still registered in the state — i.e. after
    the parallel run reaches quiescence but before [Driver] folds the
    own-ledgers into the shared ones — so the final snapshot equals
    the post-run [Gc_stats]/[Telemetry] totals without
    double-counting. *)

type config = {
  every_ms : float;  (** snapshot cadence; must be positive *)
  om_path : string option;  (** OpenMetrics sink, rewritten per tick *)
  jsonl_path : string option;  (** JSONL sink, appended per tick *)
  live : bool;  (** ANSI terminal view on stdout *)
  labels : (string * string) list;
      (** run-identity labels for [otfgc_run_info] *)
}

type t

val create : config -> t
(** A fresh, unlaunched observer.  Raises [Invalid_argument] when
    [every_ms] is not positive. *)

val launch : t -> Otfgc.Runtime.t -> unit
(** Open the sinks (truncating any previous contents) and spawn the
    observer domain against the runtime's state.  Raises
    [Invalid_argument] if the observer was already launched. *)

val stop : t -> unit
(** Signal the observer domain, join it, take the final snapshot,
    write it to every sink and close them.  Idempotent; a [stop]
    without a prior {!launch} is a no-op. *)

val snapshots : t -> Metrics_snapshot.t list
(** Every snapshot taken, in [seq] order (the final one included).
    Meaningful after {!stop}. *)
