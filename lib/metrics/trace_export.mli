(** Chrome/Perfetto trace-event export of a run's event log.

    Converts {!Otfgc.Event_log} into the JSON trace-event format that
    [chrome://tracing] and [ui.perfetto.dev] load directly: one timeline
    track for the collector (cycle, handshake, trace and sweep slices,
    plus instants for the card scan, color toggle, promotions and heap
    growth) and one per mutator (handshake-ack instants, allocation-stall
    slices).  Timestamps are the simulator's elapsed work units, presented
    as microseconds.

    The writer emits slices when they close, so the event array is not
    globally sorted by timestamp — the viewers do not require it, and
    {!validate} checks the structural invariants instead (well-formed
    records, non-negative durations, properly nested slices per track). *)

val collector_tid : int
(** Thread id of the collector track (0; mutator [m] gets [1 + m]). *)

val of_runtime : ?workload:string -> Otfgc.Runtime.t -> Otfgc_support.Json.t
(** Build the trace document ([{"traceEvents": [...]}]) from the runtime's
    event log.  Meaningful only if the log was enabled for the run. *)

val of_flight :
  ?workload:string -> Otfgc.Flight_recorder.t -> Otfgc_support.Json.t
(** Build the trace document from the flight recorder's per-domain
    rings (domains substrate; see {!Otfgc.Runtime.arm_recorder}): one
    track per domain — collector, GC workers, mutators, plus the
    dedicated handshake track — with real wall-clock timestamps,
    rebased to the first recorded event and floored to microseconds.
    Drain only after the run has quiesced. *)

val validate : Otfgc_support.Json.t -> (unit, string) result
(** Structural check used by tests and [gcsim validate-trace]: the
    document has a [traceEvents] array; every event carries [name], [ph],
    [pid] and [tid]; duration events ([ph = "X"]) carry integer [ts] and
    [dur >= 0]; instants carry [ts]; slices on one track nest without
    partial overlap; and metadata names a ["collector"] thread. *)
