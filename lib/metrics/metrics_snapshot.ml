module Json = Otfgc_support.Json
module Histogram = Otfgc_support.Histogram
open Otfgc

type t = {
  seq : int;
  at_ms : float;
  barrier_updates : int;
  yellow_fires : int;
  promotions : int;
  dirty_card_finds : int;
  handshake_acks : int;
  stalls : int;
  card_marks : int;
  remset_records : int;
  steals : int;
  steal_failures : int;
  lock_waits : int;
  mutator_work : int;
  collector_work : int;
  stall_work : int;
  phase_work : (string * int) list;
  cycles_partial : int;
  cycles_full : int;
  cycles_non_gen : int;
  gc_bytes_freed : int;
  gc_objects_freed : int;
  gc_promotions : int;
  phase : string;
  heap_capacity : int;
  heap_allocated_bytes : int;
  total_alloc_bytes : int;
  total_alloc_objects : int;
  young_bytes : int;
  dirty_cards : int;
  gray_depth : int;
  freelist_entries : int;
  freelist_stale : int;
  flight_drops : int;
  active_mutators : int;
  p99_handshake : int;
}

(* Sum a counter over the shared ledger plus every registered mutator's
   own ledger (domains substrate; [own_*] is [None] under the
   simulator).  Retired mutators keep their slots and ledgers, so the
   sum never loses a retiree's contribution. *)
let tel_sum (st : State.t) f =
  let acc = ref (f st.State.telemetry) in
  State.iter_mutators st (fun m ->
      match Mutator.own_telemetry m with
      | Some tl -> acc := !acc + f tl
      | None -> ());
  !acc

let cost_sum (st : State.t) f =
  let acc = ref (f st.State.cost) in
  State.iter_mutators st (fun m ->
      match Mutator.own_cost m with
      | Some c -> acc := !acc + f c
      | None -> ());
  !acc

let metric_name_of_phase p =
  String.map (fun c -> if c = '-' then '_' else c) (Cost.phase_name p)

let take ?(seq = 0) ?(at_ms = 0.) (st : State.t) =
  let heap = st.State.heap in
  let stats = st.State.stats in
  let p99_handshake =
    if Telemetry.enabled st.State.telemetry then begin
      (* racy bucket reads: bounded-stale, never out of bounds *)
      let h = Histogram.create () in
      List.iter
        (fun s ->
          Histogram.add_into
            ~src:(Telemetry.handshake_latency st.State.telemetry s)
            ~dst:h)
        [ Status.Sync1; Status.Sync2; Status.Async ];
      Histogram.percentile h 99.
    end
    else 0
  in
  {
    seq;
    at_ms;
    barrier_updates = tel_sum st Telemetry.barrier_updates;
    yellow_fires = tel_sum st Telemetry.yellow_fires;
    promotions = tel_sum st Telemetry.promotions;
    dirty_card_finds = tel_sum st Telemetry.dirty_card_finds;
    handshake_acks = tel_sum st Telemetry.handshake_acks;
    stalls = tel_sum st Telemetry.stalls;
    card_marks = tel_sum st Telemetry.card_marks;
    remset_records = tel_sum st Telemetry.remset_records;
    steals = tel_sum st Telemetry.steals;
    steal_failures = tel_sum st Telemetry.steal_failures;
    lock_waits = tel_sum st Telemetry.lock_waits_total;
    mutator_work = cost_sum st Cost.mutator_work;
    collector_work = cost_sum st Cost.collector_work;
    stall_work = cost_sum st Cost.stall_work;
    phase_work =
      List.map
        (fun p -> (metric_name_of_phase p, cost_sum st (fun c -> Cost.phase_work c p)))
        Cost.phases;
    cycles_partial = Gc_stats.n_completed_of stats Gc_stats.Partial;
    cycles_full = Gc_stats.n_completed_of stats Gc_stats.Full;
    cycles_non_gen = Gc_stats.n_completed_of stats Gc_stats.Non_gen;
    gc_bytes_freed = Gc_stats.live_bytes_freed stats;
    gc_objects_freed = Gc_stats.live_objects_freed stats;
    gc_promotions = Gc_stats.live_promotions stats;
    phase = Cost.phase_name (Cost.current_phase st.State.cost);
    heap_capacity = Otfgc_heap.Heap.capacity heap;
    heap_allocated_bytes = Otfgc_heap.Heap.allocated_bytes heap;
    total_alloc_bytes = Otfgc_heap.Heap.total_allocated_bytes heap;
    total_alloc_objects = Otfgc_heap.Heap.total_allocated_objects heap;
    young_bytes = Atomic.get st.State.bytes_since_gc;
    dirty_cards = Otfgc_heap.Card_table.dirty_count (Otfgc_heap.Heap.cards heap);
    gray_depth = Gray_queue.size st.State.gray;
    freelist_entries =
      Otfgc_heap.Freelist.entry_count (Otfgc_heap.Heap.freelist heap);
    freelist_stale =
      Otfgc_heap.Freelist.stale_entries (Otfgc_heap.Heap.freelist heap);
    flight_drops =
      (if Flight_recorder.armed st.State.recorder then
         Flight_recorder.dropped st.State.recorder
       else 0);
    active_mutators = State.count_active_mutators st;
    p99_handshake;
  }

(* The single source of truth for field order: the OpenMetrics emitter,
   the delta arithmetic and the JSON round-trip all walk these lists,
   so output ordering is deterministic by construction. *)
let counters t =
  [
    ("barrier_updates", t.barrier_updates);
    ("yellow_fires", t.yellow_fires);
    ("promotions", t.promotions);
    ("dirty_card_finds", t.dirty_card_finds);
    ("handshake_acks", t.handshake_acks);
    ("stalls", t.stalls);
    ("card_marks", t.card_marks);
    ("remset_records", t.remset_records);
    ("steals", t.steals);
    ("steal_failures", t.steal_failures);
    ("lock_waits", t.lock_waits);
    ("mutator_work", t.mutator_work);
    ("collector_work", t.collector_work);
    ("stall_work", t.stall_work);
  ]
  @ List.map (fun (p, w) -> ("work_" ^ p, w)) t.phase_work
  @ [
      ("cycles_partial", t.cycles_partial);
      ("cycles_full", t.cycles_full);
      ("cycles_non_gen", t.cycles_non_gen);
      ("gc_bytes_freed", t.gc_bytes_freed);
      ("gc_objects_freed", t.gc_objects_freed);
      ("gc_promotions", t.gc_promotions);
      ("total_alloc_bytes", t.total_alloc_bytes);
      ("total_alloc_objects", t.total_alloc_objects);
    ]

let gauges t =
  [
    ("heap_capacity_bytes", t.heap_capacity);
    ("heap_allocated_bytes", t.heap_allocated_bytes);
    ("young_bytes", t.young_bytes);
    ("dirty_cards", t.dirty_cards);
    ("gray_depth", t.gray_depth);
    ("freelist_entries", t.freelist_entries);
    ("freelist_stale", t.freelist_stale);
    ("flight_drops", t.flight_drops);
    ("active_mutators", t.active_mutators);
    ("p99_handshake", t.p99_handshake);
  ]

let delta ~earlier ~later =
  {
    later with
    barrier_updates = later.barrier_updates - earlier.barrier_updates;
    yellow_fires = later.yellow_fires - earlier.yellow_fires;
    promotions = later.promotions - earlier.promotions;
    dirty_card_finds = later.dirty_card_finds - earlier.dirty_card_finds;
    handshake_acks = later.handshake_acks - earlier.handshake_acks;
    stalls = later.stalls - earlier.stalls;
    card_marks = later.card_marks - earlier.card_marks;
    remset_records = later.remset_records - earlier.remset_records;
    steals = later.steals - earlier.steals;
    steal_failures = later.steal_failures - earlier.steal_failures;
    lock_waits = later.lock_waits - earlier.lock_waits;
    mutator_work = later.mutator_work - earlier.mutator_work;
    collector_work = later.collector_work - earlier.collector_work;
    stall_work = later.stall_work - earlier.stall_work;
    phase_work =
      List.map
        (fun (p, w) ->
          (p, w - Option.value ~default:0 (List.assoc_opt p earlier.phase_work)))
        later.phase_work;
    cycles_partial = later.cycles_partial - earlier.cycles_partial;
    cycles_full = later.cycles_full - earlier.cycles_full;
    cycles_non_gen = later.cycles_non_gen - earlier.cycles_non_gen;
    gc_bytes_freed = later.gc_bytes_freed - earlier.gc_bytes_freed;
    gc_objects_freed = later.gc_objects_freed - earlier.gc_objects_freed;
    gc_promotions = later.gc_promotions - earlier.gc_promotions;
    total_alloc_bytes = later.total_alloc_bytes - earlier.total_alloc_bytes;
    total_alloc_objects =
      later.total_alloc_objects - earlier.total_alloc_objects;
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip (one object per JSONL line)                         *)
(* ------------------------------------------------------------------ *)

let to_json t =
  Json.Obj
    ([
       ("seq", Json.Int t.seq);
       ("at_ms", Json.Float t.at_ms);
       ("phase", Json.String t.phase);
     ]
    @ List.map (fun (k, v) -> (k, Json.Int v)) (counters t)
    @ List.map (fun (k, v) -> (k, Json.Int v)) (gauges t))

let ( let* ) = Result.bind

let int_field name j =
  match Option.bind (Json.member name j) Json.as_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing or mistyped %S" name)

let of_json j =
  let* seq = int_field "seq" j in
  let* at_ms =
    match Option.bind (Json.member "at_ms" j) Json.as_float with
    | Some v -> Ok v
    | None -> Error "snapshot: missing or mistyped \"at_ms\""
  in
  let* phase =
    match Option.bind (Json.member "phase" j) Json.as_string with
    | Some v -> Ok v
    | None -> Error "snapshot: missing or mistyped \"phase\""
  in
  let* barrier_updates = int_field "barrier_updates" j in
  let* yellow_fires = int_field "yellow_fires" j in
  let* promotions = int_field "promotions" j in
  let* dirty_card_finds = int_field "dirty_card_finds" j in
  let* handshake_acks = int_field "handshake_acks" j in
  let* stalls = int_field "stalls" j in
  let* card_marks = int_field "card_marks" j in
  let* remset_records = int_field "remset_records" j in
  let* steals = int_field "steals" j in
  let* steal_failures = int_field "steal_failures" j in
  let* lock_waits = int_field "lock_waits" j in
  let* mutator_work = int_field "mutator_work" j in
  let* collector_work = int_field "collector_work" j in
  let* stall_work = int_field "stall_work" j in
  let* phase_work =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let name = metric_name_of_phase p in
        let* w = int_field ("work_" ^ name) j in
        Ok ((name, w) :: acc))
      (Ok []) Cost.phases
    |> Result.map List.rev
  in
  let* cycles_partial = int_field "cycles_partial" j in
  let* cycles_full = int_field "cycles_full" j in
  let* cycles_non_gen = int_field "cycles_non_gen" j in
  let* gc_bytes_freed = int_field "gc_bytes_freed" j in
  let* gc_objects_freed = int_field "gc_objects_freed" j in
  let* gc_promotions = int_field "gc_promotions" j in
  let* heap_capacity = int_field "heap_capacity_bytes" j in
  let* heap_allocated_bytes = int_field "heap_allocated_bytes" j in
  let* total_alloc_bytes = int_field "total_alloc_bytes" j in
  let* total_alloc_objects = int_field "total_alloc_objects" j in
  let* young_bytes = int_field "young_bytes" j in
  let* dirty_cards = int_field "dirty_cards" j in
  let* gray_depth = int_field "gray_depth" j in
  let* freelist_entries = int_field "freelist_entries" j in
  let* freelist_stale = int_field "freelist_stale" j in
  let* flight_drops = int_field "flight_drops" j in
  let* active_mutators = int_field "active_mutators" j in
  let* p99_handshake = int_field "p99_handshake" j in
  Ok
    {
      seq;
      at_ms;
      barrier_updates;
      yellow_fires;
      promotions;
      dirty_card_finds;
      handshake_acks;
      stalls;
      card_marks;
      remset_records;
      steals;
      steal_failures;
      lock_waits;
      mutator_work;
      collector_work;
      stall_work;
      phase_work;
      cycles_partial;
      cycles_full;
      cycles_non_gen;
      gc_bytes_freed;
      gc_objects_freed;
      gc_promotions;
      phase;
      heap_capacity;
      heap_allocated_bytes;
      total_alloc_bytes;
      total_alloc_objects;
      young_bytes;
      dirty_cards;
      gray_depth;
      freelist_entries;
      freelist_stale;
      flight_drops;
      active_mutators;
      p99_handshake;
    }
