(* Cross-run trajectory dashboard: committed BENCH_NNNN.json records
   (plus the current run) as one panel per scenario, one normalised
   polyline per gated metric.  Construction mirrors Report: inline CSS,
   inline SVG, nothing external. *)

module Svg = Otfgc_support.Svg

let style =
  "body{font-family:system-ui,sans-serif;margin:24px auto;max-width:980px;\
   color:#222}h1{font-size:20px}h2{font-size:15px;margin:18px 0 4px}\
   .meta{color:#666;font-size:12px}.chart{margin-bottom:10px}\
   svg{background:#fafafa;border:1px solid #ddd}\
   .axis line{stroke:#ccc;stroke-width:1}\
   .axis text{fill:#666;font-size:9px}\
   .ref line{stroke:#999;stroke-dasharray:3 3}\
   .traj{fill:none;stroke-width:1.5}\
   .traj.m0{stroke:#1f77b4}.traj.m1{stroke:#ff7f0e}.traj.m2{stroke:#2ca02c}\
   .traj.m3{stroke:#d62728}.traj.m4{stroke:#9467bd}.traj.m5{stroke:#8c564b}\
   .traj.m6{stroke:#e377c2}\
   .legend text{font-size:9px}"

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let w = 760
let h = 220
let margin_l = 40.
let margin_r = 170. (* legend gutter *)
let margin_t = 12.
let margin_b = 28.

(* value of [metric] in [scenario] of run [t], when both exist *)
let lookup t ~scenario ~metric =
  match
    List.find_opt (fun s -> s.Trajectory.name = scenario) t.Trajectory.scenarios
  with
  | None -> None
  | Some s -> List.assoc_opt metric s.Trajectory.metrics

(* normalised series for one metric across the runs: (run_index, 100 *
   v / v_first); None when no run records it *)
let series runs ~scenario ~metric =
  let pts =
    List.concat
      (List.mapi
         (fun i (_, t) ->
           match lookup t ~scenario ~metric with
           | Some v -> [ (i, v) ]
           | None -> [])
         runs)
  in
  match pts with
  | [] -> None
  | (_, v0) :: _ ->
      let base = Float.max (Float.abs v0) 1. in
      Some (List.map (fun (i, v) -> (i, 100. *. v /. base)) pts)

let scenario_panel runs scenario =
  let metric_series =
    List.concat
      (List.mapi
         (fun mi metric ->
           match series runs ~scenario ~metric with
           | Some pts -> [ (mi, metric, pts) ]
           | None -> [])
         Trajectory.gated_metrics)
  in
  let n_runs = List.length runs in
  let all_ys =
    List.concat_map (fun (_, _, pts) -> List.map snd pts) metric_series
  in
  let lo = List.fold_left Float.min 95. all_ys in
  let hi = List.fold_left Float.max 105. all_ys in
  let x i =
    if n_runs <= 1 then margin_l
    else
      margin_l
      +. float_of_int i
         *. (float_of_int w -. margin_l -. margin_r)
         /. float_of_int (n_runs - 1)
  in
  let y v =
    let span = Float.max (hi -. lo) 1e-9 in
    float_of_int h -. margin_b
    -. ((v -. lo) /. span *. (float_of_int h -. margin_t -. margin_b))
  in
  let axis =
    Svg.group ~cls:"axis"
      (Svg.line ~x1:margin_l ~y1:(y lo)
         ~x2:(float_of_int w -. margin_r)
         ~y2:(y lo) ()
      :: Svg.line ~x1:margin_l ~y1:margin_t ~x2:margin_l ~y2:(y lo) ()
      :: List.concat
           (List.mapi
              (fun i (label, _) ->
                [
                  Svg.line ~x1:(x i) ~y1:(y lo) ~x2:(x i) ~y2:(y lo +. 4.) ();
                  Svg.text ~x:(x i)
                    ~y:(float_of_int h -. 8.)
                    ~attrs:[ ("text-anchor", "middle") ]
                    label;
                ])
              runs)
      @ [
          Svg.text ~x:4. ~y:(y hi +. 8.) (Printf.sprintf "%.0f" hi);
          Svg.text ~x:4. ~y:(y lo) (Printf.sprintf "%.0f" lo);
        ])
  in
  (* the 100 = baseline reference line *)
  let reference =
    if lo <= 100. && 100. <= hi then
      [
        Svg.group ~cls:"ref"
          [
            Svg.line ~x1:margin_l ~y1:(y 100.)
              ~x2:(float_of_int w -. margin_r)
              ~y2:(y 100.) ();
          ];
      ]
    else []
  in
  let lines =
    List.map
      (fun (mi, _, pts) ->
        let coords = List.map (fun (i, v) -> (x i, y v)) pts in
        (* a single surviving point still needs two pairs to be a line *)
        let coords =
          match coords with [ (px, py) ] -> [ (px, py); (px +. 1., py) ] | c -> c
        in
        Svg.polyline ~points:coords ~cls:(Printf.sprintf "traj m%d" mi) ())
      metric_series
  in
  let legend =
    Svg.group ~cls:"legend"
      (List.concat
         (List.mapi
            (fun row (mi, metric, pts) ->
              let ly = margin_t +. 10. +. (float_of_int row *. 12.) in
              let lx = float_of_int w -. margin_r +. 10. in
              let last = List.fold_left (fun _ (_, v) -> v) 100. pts in
              [
                Svg.line ~x1:lx ~y1:(ly -. 3.) ~x2:(lx +. 12.) ~y2:(ly -. 3.)
                  ~cls:(Printf.sprintf "traj m%d" mi) ();
                Svg.text ~x:(lx +. 16.) ~y:ly
                  (Printf.sprintf "%s (%.0f)" metric last);
              ])
            metric_series))
  in
  Svg.svg ~w ~h
    ~attrs:[ ("data-samples", string_of_int n_runs) ]
    ((axis :: reference) @ lines @ [ legend ])

let render ~runs =
  match runs with
  | [] -> Error "dashboard needs at least one trajectory record"
  | (_, first) :: _ ->
      (* panel per scenario, in order of first appearance across runs *)
      let scenarios =
        List.fold_left
          (fun acc (_, t) ->
            List.fold_left
              (fun acc s ->
                if List.mem s.Trajectory.name acc then acc
                else acc @ [ s.Trajectory.name ])
              acc t.Trajectory.scenarios)
          [] runs
      in
      let buf = Buffer.create 65536 in
      let add = Buffer.add_string buf in
      add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>";
      add (html_escape "gcsim bench trajectory");
      add "</title><style>";
      add style;
      add "</style></head><body>\n<h1>";
      add (html_escape "Benchmark trajectory across runs");
      add "</h1>\n<p class=\"meta\">";
      add
        (html_escape
           (Printf.sprintf
              "%d runs, %d scenarios; each line is one gated metric \
               normalised to its earliest recorded value (100 = no change, \
               lower is better); legend shows the latest value.  Grid: scale \
               %g, seed %d%s."
              (List.length runs) (List.length scenarios) first.Trajectory.scale
              first.Trajectory.seed
              (if first.Trajectory.quick then ", quick" else "")));
      add "</p>\n";
      List.iter
        (fun scenario ->
          add "<div class=\"chart\"><h2>";
          add (html_escape scenario);
          add "</h2>\n";
          Svg.to_buffer buf (scenario_panel runs scenario);
          add "</div>\n")
        scenarios;
      add "</body></html>\n";
      Ok (Buffer.contents buf)

let validate doc =
  Report.validate_structure ~required_classes:[ "axis"; "traj" ] ~min_samples:1
    doc
