(** Telemetry summarisation and export — the reporting half of the
    observability layer ({!Otfgc.Telemetry} is the recording half).

    Reads a finished runtime's attribution ledgers, counters and
    histograms into a plain [summary] value, and renders it as tables
    ([gcsim stats]), JSON and CSV.  The per-phase and per-category
    breakdowns sum exactly to the headline [collector_work] and
    [mutator_work] ledgers — the invariant the property tests check. *)

type hist = {
  count : int;
  total : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}
(** Snapshot of one {!Otfgc_support.Histogram}. *)

type summary = {
  workload : string;
  mode : string;
  (* work attribution *)
  collector_work : int;
  phase_work : (string * int) list;  (** by phase, {!Otfgc.Cost.phases} order *)
  mutator_work : int;
  category_work : (string * int) list;  (** by mutator work class *)
  stall_work : int;
  (* event counters *)
  barrier_updates : int;
  yellow_fires : int;
  promotions : int;
  dirty_card_finds : int;
  handshake_acks : int;
  stalls : int;
  card_marks : int;
  remset_records : int;
  steals : int;  (** successful gray-deque steals (parallel trace) *)
  steal_failures : int;  (** CAS-lost / empty-victim steal attempts *)
  lock_waits : int;  (** contended size-class allocation lock acquisitions *)
  lock_waits_by_class : (int * int) list;
      (** nonzero per-size-class breakdown of [lock_waits], ascending class *)
  trace_workers : int;  (** widest collection crew observed (1 = serial) *)
  events_logged : int;
  events_dropped : int;
  (* latency instruments (all-zero unless telemetry was enabled) *)
  handshake_latency : (string * hist) list;  (** per posted status *)
  stall_latency : hist;
  cycle_progress : hist;
  time_unit : string;
      (** unit of every latency histogram: ["units"] (simulated cost
          units) on the simulator, ["us"] (wall-clock microseconds) on
          the domains substrate *)
  slo_handshake : hist;
      (** all statuses' handshake latencies merged — the SLO view *)
}

val of_runtime : ?workload:string -> Otfgc.Runtime.t -> summary
(** Snapshot a finished run's telemetry ([workload] defaults to [""]). *)

val work_table : summary -> Otfgc_support.Textable.t
(** Phase and category breakdown with percent-of-ledger columns. *)

val counter_table : summary -> Otfgc_support.Textable.t

val latency_table : summary -> Otfgc_support.Textable.t
(** One row per histogram: count, min, mean, p50/p90/p99/p99.9, max. *)

val slo_table : summary -> Otfgc_support.Textable.t
(** The SLO view: merged handshake latency and stall duration with
    p50/p99/p99.9 — wall-clock microseconds on the domains substrate. *)

val to_json : summary -> Otfgc_support.Json.t

val of_json : Otfgc_support.Json.t -> (summary, string) result
(** Inverse of {!to_json}: [of_json (to_json s) = Ok s] for every summary
    (ints and floats round-trip exactly).  Used by the round-trip tests
    and by tooling that re-reads exported stats. *)

val to_csv : summary -> string
(** Flat [metric,value] lines (histograms flattened to
    [name.count], [name.mean], ...) — trivially greppable/joinable. *)

val print : summary -> unit
(** All four tables to stdout — the body of [gcsim stats]. *)
