(** Cross-run performance-trajectory store and regression gate.

    [bench trajectory] runs a pinned scenario grid and serialises one
    record per scenario — wall-clock time plus the deterministic
    simulated-cost metrics from {!Run_result} — into a schema-versioned
    [BENCH_NNNN.json].  Committing that file pins the trajectory; the
    next run diffs itself against the last committed baseline and fails
    with a readable table when a simulated metric regresses beyond the
    noise threshold.

    Only simulated metrics are gated: they are bit-deterministic (equal
    code must produce equal numbers), so any drift is a real behaviour
    change, and the threshold only exists to ignore deliberate small
    trade-offs.  Wall-clock times are recorded for trend-reading but
    never gated — CI machines are shared and noisy. *)

type scenario = {
  name : string;  (** e.g. ["jack-gen"] *)
  wall_ms : float;  (** wall-clock of the simulation run (informational) *)
  metrics : (string * float) list;  (** deterministic simulated metrics *)
}

type t = {
  schema_version : int;
  scale : float;  (** workload scale the grid ran at *)
  seed : int;
  quick : bool;
  scenarios : scenario list;
}

val schema_version : int
(** Current schema ([2]); {!of_json} also reads v1 records (which lack
    the attribution metrics) so the dashboard can plot the whole
    committed history. *)

val make : scale:float -> seed:int -> quick:bool -> scenario list -> t

val scenario_of_result :
  name:string -> wall_ms:float -> Run_result.t -> scenario
(** Extract the gated metric set (plus the run's headline counts) from
    a finished run. *)

val scenario_of_runtime :
  name:string -> wall_ms:float -> Run_result.t -> Otfgc.Runtime.t -> scenario
(** {!scenario_of_result} plus the schema-v2 attribution metrics read
    from the runtime's ledgers: [phase_<name>] (collector work per
    {!Otfgc.Cost} phase) and [ctr_<name>] (headline telemetry
    counters).  All ungated — they exist so a gate failure can be
    attributed (see {!attribution}). *)

val gated_metrics : string list
(** Metric names the regression gate compares, all lower-is-better
    simulated quantities.  Metrics outside this list (and [wall_ms])
    are informational. *)

type regression = {
  r_scenario : string;
  r_metric : string;
  r_baseline : float;
  r_current : float;
  r_delta_pct : float;
}

val diff :
  ?threshold_pct:float -> baseline:t -> current:t -> unit ->
  (regression list, string) result
(** Compare gated metrics scenario by scenario; a metric that grew more
    than [threshold_pct] (default [5.]) over the baseline is a
    regression.  [Error] when the records are incomparable (different
    schema version, scale, seed or quick flag) — the caller should then
    re-seed the baseline rather than gate.  Scenarios present on only
    one side are skipped. *)

val render_diff : baseline:t -> current:t -> regression list -> string
(** Human-readable verdict: a table of regressed metrics (baseline,
    current, delta) closed by a one-line worst-offender callout naming
    the scenario and metric that moved most, or a short all-clear
    line. *)

val attribution : baseline:t -> current:t -> regression list
(** Every [phase_*] / [ctr_*] metric that moved between the records,
    ranked by absolute percentage movement — when the gate fails on an
    aggregate like [collector_work], this names the collector phase or
    event counter behind it.  Empty when the baseline predates schema
    v2. *)

val render_attribution : ?limit:int -> regression list -> string
(** Table of the top [limit] (default 12) attribution rows, or an
    explanatory line when there are none. *)

val to_json : t -> Otfgc_support.Json.t
val of_json : Otfgc_support.Json.t -> (t, string) result
val validate : Otfgc_support.Json.t -> (unit, string) result
(** Schema check ({!of_json} discarding the value). *)
