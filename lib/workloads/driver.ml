open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Substrate = Otfgc_sched.Substrate
module Parallel = Otfgc_sched.Parallel
module Rng = Otfgc_support.Rng
module Run_result = Otfgc_metrics.Run_result
module Observer = Otfgc_metrics.Observer

let default_heap =
  { Heap.initial_bytes = 1 lsl 20; max_bytes = 4 lsl 20; card_size = 16 }

(* Warmup barrier, shared by both substrates: every thread builds its
   long-lived data, then thread 0 runs a full collection (promoting the
   prebuilt data to the old generation) and resets the measurement
   ledgers — the standard warmup lap, so build-phase promotion does not
   pollute the reported partial collection statistics.  The barrier
   cells are atomics; under the simulator that is step-for-step what the
   historical plain refs were (no scheduling point moves), and under
   domains it is the required cross-domain publication. *)
let sync_point_for rt ~n ~prebuilt ~warm i m () =
  let st = Runtime.state rt in
  Atomic.incr prebuilt;
  if i = 0 then begin
    Substrate.wait_until (fun () ->
        Runtime.cooperate rt m;
        Atomic.get prebuilt = n);
    ignore (Runtime.collect_and_wait rt m ~full:true : Gc_stats.cycle);
    Gc_stats.reset (Runtime.stats rt);
    Cost.reset (Runtime.cost rt);
    Event_log.clear (Runtime.events rt);
    Telemetry.reset (Runtime.telemetry rt);
    Sampler.reset (Runtime.sampler rt);
    Heap.reset_allocation_stats (Runtime.heap rt);
    if st.State.parallel then begin
      (* The other threads are parked at this barrier (cooperating, not
         allocating), so their ledgers and cache counters are quiescent
         enough to reset: warmup-lap work must not leak into the measured
         lap.  The cooperate polls they keep issuing while parked can
         lose a count or two into the freshly reset ledgers — measurement
         noise, bounded by the barrier window. *)
      State.iter_mutators st (fun m' ->
          (match Mutator.own_cost m' with
          | Some c -> Cost.reset c
          | None -> ());
          match Mutator.own_telemetry m' with
          | Some tl -> Telemetry.reset tl
          | None -> ());
      State.lock_heap st;
      State.iter_mutators st (fun m' ->
          ignore (Alloc_cache.take_pending (Mutator.cache m') : int * int));
      State.unlock_heap st
    end;
    Atomic.set st.State.bytes_since_gc 0;
    Atomic.set warm true
  end
  else
    Substrate.wait_until (fun () ->
        Runtime.cooperate rt m;
        Atomic.get warm)

let run_sim ~heap ~seed ~scale ~instrument ~gc profile =
  Profile.validate profile;
  let rt = Runtime.create ~heap_config:heap ~gc_config:gc () in
  Runtime.set_fine_grained rt false;
  instrument rt;
  let master = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
  ignore (Runtime.spawn_collector rt sched);
  (* Model the paper's 4-way SMP when oversubscribed: the collector keeps
     a CPU to itself while N > 3 mutators share the remaining three, so it
     runs ~N/3 times faster than any single mutator. *)
  let n = profile.Profile.threads in
  if n > 3 then (Runtime.state rt).Otfgc.State.collector_speed <- 8 * n / 3;
  let quota =
    Stdlib.max 1
      (int_of_float (float_of_int profile.Profile.total_alloc *. scale))
  in
  let prebuilt = Atomic.make 0 in
  let warm = Atomic.make false in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "%s-t%d" profile.Profile.name i in
    let m = Runtime.new_mutator rt ~name () in
    let rng = Rng.split master in
    ignore
      (Sched.spawn sched ~name (fun () ->
           Engine.run_thread rt m rng ~profile ~quota
             ~sync_point:(sync_point_for rt ~n ~prebuilt ~warm i m)
             ();
           Runtime.retire_mutator rt m))
  done;
  Sched.run sched;
  (Run_result.of_runtime ~workload:profile.Profile.name rt, rt)

(* End-of-run finale for the domains substrate, run on the driving domain
   after every mutator domain has joined and before the collector daemon
   is: two back-to-back full collections at quiescence.  Two, not one —
   the first collection's toggle turns what was the clear color into the
   new allocation color, so garbage that was floating in the old clear
   color needs the second sweep to be reclaimed.  After this the heap
   holds exactly the reachable set (nothing is, all mutators retired), so
   the reachability oracle and Heap.check give the cross-substrate
   invariants something quiescent to verify. *)
let finale rt =
  Substrate.set_current Substrate.Domains;
  let st = Runtime.state rt in
  let stats = Runtime.stats rt in
  Substrate.wait_until (fun () ->
      (not (Atomic.get st.State.collecting))
      && Atomic.get st.State.gc_request = State.No_request);
  (* Pool-stocked blocks are reserved (kind Allocated): return them to
     the free list so the quiescent heap holds exactly the reachable
     set the oracle and Heap.check expect. *)
  Runtime.drain_pools rt;
  for _ = 1 to 2 do
    let n0 = Gc_stats.n_completed stats in
    Atomic.set st.State.gc_request State.Want_full;
    Substrate.wait_until (fun () ->
        Gc_stats.n_completed stats > n0
        && not (Atomic.get st.State.collecting))
  done;
  Runtime.shutdown rt

let run_domains ~heap ~seed ~scale ~instrument ~observer ~gc ~gc_workers
    profile =
  Profile.validate profile;
  let rt = Runtime.create ~heap_config:heap ~gc_config:gc () in
  Runtime.set_fine_grained rt false;
  Runtime.set_parallel rt true;
  Runtime.set_gc_workers rt gc_workers;
  instrument rt;
  (match observer with Some o -> Observer.launch o rt | None -> ());
  let master = Rng.make seed in
  (* The simulator's first split feeds its scheduling policy; consume the
     same split here so thread [i] draws the identical rng stream on both
     substrates.  Each thread's operation sequence is a pure function of
     its rng and the profile, which is what makes the end-of-run
     allocation totals exactly comparable across substrates. *)
  ignore (Rng.split master : Rng.t);
  let n = profile.Profile.threads in
  let quota =
    Stdlib.max 1
      (int_of_float (float_of_int profile.Profile.total_alloc *. scale))
  in
  let prebuilt = Atomic.make 0 in
  let warm = Atomic.make false in
  let par = Parallel.create ~on_quiesce:(fun () -> finale rt) () in
  Parallel.spawn par ~daemon:true ~name:"collector" (fun () ->
      Runtime.collector_loop rt);
  (* Helper collector workers (trace/card/sweep crew), daemons like the
     collector itself: they park between cycles and exit at shutdown. *)
  for wid = 1 to Runtime.gc_workers rt - 1 do
    Parallel.spawn par ~daemon:true ~name:(Printf.sprintf "gc-worker-%d" wid)
      (fun () -> Runtime.gc_worker_loop rt wid)
  done;
  let muts = ref [] in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "%s-t%d" profile.Profile.name i in
    let m = Runtime.new_mutator rt ~name () in
    muts := m :: !muts;
    let rng = Rng.split master in
    Parallel.spawn par ~name (fun () ->
        Engine.run_thread rt m rng ~profile ~quota
          ~sync_point:(sync_point_for rt ~n ~prebuilt ~warm i m)
          ();
        Runtime.retire_mutator rt m)
  done;
  Parallel.run par;
  Substrate.set_current Substrate.Sim;
  (* Stop the observer at quiescence, BEFORE folding the per-mutator
     ledgers below: its snapshots sum shared + own ledgers, so a final
     snapshot after the fold would double-count every mutator's work. *)
  (match observer with Some o -> Observer.stop o | None -> ());
  (* Fold the per-mutator ledgers into the shared ones so Run_result sees
     whole-program work, as it does under the simulator. *)
  List.iter
    (fun m ->
      (match Mutator.own_cost m with
      | Some c -> Cost.merge_into ~src:c ~dst:(Runtime.cost rt)
      | None -> ());
      match Mutator.own_telemetry m with
      | Some tl -> Telemetry.merge_into ~src:tl ~dst:(Runtime.telemetry rt)
      | None -> ())
    !muts;
  (Run_result.of_runtime ~workload:profile.Profile.name rt, rt)

let run_rt ?(heap = default_heap) ?(seed = 42) ?(scale = 1.0)
    ?(substrate = Substrate.Sim) ?threads ?(gc_workers = 1)
    ?(instrument = fun (_ : Runtime.t) -> ()) ?observer ~gc profile =
  let profile =
    match threads with
    | None -> profile
    | Some n -> { profile with Profile.threads = n }
  in
  match substrate with
  | Substrate.Sim ->
      if gc_workers > 1 then
        invalid_arg "Driver.run_rt: gc_workers > 1 requires substrate=domains";
      if observer <> None then
        invalid_arg "Driver.run_rt: observer requires substrate=domains";
      run_sim ~heap ~seed ~scale ~instrument ~gc profile
  | Substrate.Domains ->
      run_domains ~heap ~seed ~scale ~instrument ~observer ~gc ~gc_workers
        profile

let run ?heap ?seed ?scale ?substrate ?threads ?gc_workers ~gc profile =
  fst (run_rt ?heap ?seed ?scale ?substrate ?threads ?gc_workers ~gc profile)

let run_pair ?heap ?seed ?scale ~gc profile =
  let candidate = run ?heap ?seed ?scale ~gc profile in
  let baseline_gc = { gc with Gc_config.mode = Gc_config.Non_generational } in
  let baseline = run ?heap ?seed ?scale ~gc:baseline_gc profile in
  (candidate, baseline)
