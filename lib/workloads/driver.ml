open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng
module Run_result = Otfgc_metrics.Run_result

let default_heap =
  { Heap.initial_bytes = 1 lsl 20; max_bytes = 4 lsl 20; card_size = 16 }

let run_rt ?(heap = default_heap) ?(seed = 42) ?(scale = 1.0)
    ?(instrument = fun (_ : Runtime.t) -> ()) ~gc profile =
  Profile.validate profile;
  let rt = Runtime.create ~heap_config:heap ~gc_config:gc () in
  Runtime.set_fine_grained rt false;
  instrument rt;
  let master = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
  ignore (Runtime.spawn_collector rt sched);
  (* Model the paper's 4-way SMP when oversubscribed: the collector keeps
     a CPU to itself while N > 3 mutators share the remaining three, so it
     runs ~N/3 times faster than any single mutator. *)
  let n_threads = profile.Profile.threads in
  if n_threads > 3 then
    (Runtime.state rt).Otfgc.State.collector_speed <-
      8 * n_threads / 3;
  let quota =
    Stdlib.max 1 (int_of_float (float_of_int profile.Profile.total_alloc *. scale))
  in
  (* Warmup barrier: every thread builds its long-lived data, then one
     thread runs a full collection (promoting the prebuilt data to the old
     generation) and resets the measurement ledgers — the standard warmup
     lap, so build-phase promotion does not pollute the reported partial
     collection statistics. *)
  let n = profile.Profile.threads in
  let prebuilt = ref 0 in
  let warm = ref false in
  let sync_point_for i m () =
    incr prebuilt;
    if i = 0 then begin
      Sched.wait_until (fun () ->
          Runtime.cooperate rt m;
          !prebuilt = n);
      ignore (Runtime.collect_and_wait rt m ~full:true : Otfgc.Gc_stats.cycle);
      Otfgc.Gc_stats.reset (Runtime.stats rt);
      Otfgc.Cost.reset (Runtime.cost rt);
      Otfgc.Event_log.clear (Runtime.events rt);
      Otfgc.Telemetry.reset (Runtime.telemetry rt);
      Otfgc.Sampler.reset (Runtime.sampler rt);
      Heap.reset_allocation_stats (Runtime.heap rt);
      (Runtime.state rt).Otfgc.State.bytes_since_gc <- 0;
      warm := true
    end
    else
      Sched.wait_until (fun () ->
          Runtime.cooperate rt m;
          !warm)
  in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "%s-t%d" profile.Profile.name i in
    let m = Runtime.new_mutator rt ~name () in
    let rng = Rng.split master in
    ignore
      (Sched.spawn sched ~name (fun () ->
           Engine.run_thread rt m rng ~profile ~quota
             ~sync_point:(sync_point_for i m) ();
           Runtime.retire_mutator rt m))
  done;
  Sched.run sched;
  (Run_result.of_runtime ~workload:profile.Profile.name rt, rt)

let run ?heap ?seed ?scale ~gc profile =
  fst (run_rt ?heap ?seed ?scale ~gc profile)

let run_pair ?heap ?seed ?scale ~gc profile =
  let candidate = run ?heap ?seed ?scale ~gc profile in
  let baseline_gc = { gc with Gc_config.mode = Gc_config.Non_generational } in
  let baseline = run ?heap ?seed ?scale ~gc:baseline_gc profile in
  (candidate, baseline)
