type size_class = { size : int; slots : int; weight : float }

type t = {
  name : string;
  description : string;
  total_alloc : int;
  sizes : size_class array;
  p_immediate : float;
  p_ring : float;
  p_long : float;
  ring_entries : int;
  long_target : int;
  prebuild_long : bool;
  old_mutation : float;
  concentrated_mutation : bool;
  p_init_store : float;
  work : int;
  threads : int;
}

let _kb = 1024
let mb = 1024 * 1024

let validate t =
  let sum = t.p_immediate +. t.p_ring +. t.p_long in
  if abs_float (sum -. 1.0) > 1e-6 then
    invalid_arg (Printf.sprintf "Profile %s: lifetime mix sums to %f" t.name sum);
  if t.total_alloc <= 0 then invalid_arg "Profile: total_alloc must be positive";
  if t.threads < 1 then invalid_arg "Profile: threads must be >= 1";
  if Array.length t.sizes = 0 then invalid_arg "Profile: no size classes";
  Array.iter
    (fun c ->
      if c.size < 16 + (8 * c.slots) then
        invalid_arg (Printf.sprintf "Profile %s: size class too small" t.name))
    t.sizes;
  if t.ring_entries < 1 then invalid_arg "Profile: ring_entries must be >= 1";
  if t.p_init_store < 0. || t.p_init_store > 1. then
    invalid_arg "Profile: p_init_store must be in [0,1]";
  if t.long_target < 1 then invalid_arg "Profile: long_target must be >= 1"

(* All volumes are scaled ~1/8 from the paper's runs (32 MB max heap / 4 MB
   young generation there; 8 MB / 512 KB young here).  Ring sizes are set
   against the 512 KB young-generation default: a ring whose contents
   outlive one allocation window emulates "dies soon after promotion". *)

let mtrt =
  {
    name = "mtrt";
    description =
      "_227_mtrt: two render threads over a prebuilt scene (~30k live \
       objects); nearly all allocation dies young, few inter-generational \
       pointers";
    total_alloc = 9 * mb;
    sizes =
      [|
        { size = 32; slots = 2; weight = 0.65 };
        { size = 48; slots = 3; weight = 0.30 };
        { size = 112; slots = 4; weight = 0.05 };
      |];
    p_immediate = 0.918;
    p_ring = 0.08;
    p_long = 0.002;
    ring_entries = 200;
    long_target = 15_000;
    prebuild_long = true;
    old_mutation = 0.0003;
    concentrated_mutation = false;
    p_init_store = 0.02;
    work = 380;
    threads = 2;
  }

let compress =
  {
    name = "compress";
    description =
      "_201_compress: a handful of huge, long-lived compression buffers \
       (~8 KB scaled); compute-bound, objects do not die young and fulls \
       reclaim them in bulk";
    total_alloc = 10 * mb;
    sizes =
      [|
        { size = 7936; slots = 2; weight = 0.30 };
        { size = 40; slots = 2; weight = 0.70 };
      |];
    p_immediate = 0.30;
    p_ring = 0.55;
    p_long = 0.15;
    ring_entries = 250;
    long_target = 250;
    prebuild_long = false;
    old_mutation = 0.0001;
    concentrated_mutation = true;
    p_init_store = 0.005;
    work = 6000;
    threads = 1;
  }

let db =
  {
    name = "db";
    description =
      "_209_db: large resident database (~37k objects) built up front, \
       then queries whose objects die young; dirty objects concentrated";
    total_alloc = 5 * mb;
    sizes =
      [|
        { size = 40; slots = 2; weight = 0.8 }; { size = 64; slots = 4; weight = 0.2 };
      |];
    p_immediate = 0.96;
    p_ring = 0.03;
    p_long = 0.01;
    ring_entries = 60;
    long_target = 30_000;
    prebuild_long = true;
    old_mutation = 0.004;
    concentrated_mutation = true;
    p_init_store = 0.25;
    work = 3800;
    threads = 1;
  }

let jess =
  {
    name = "jess";
    description =
      "_202_jess: a slice of facts survives one collection, gets promoted \
       and dies; old-generation pointers modified constantly";
    total_alloc = 20 * mb;
    sizes =
      [|
        { size = 40; slots = 3; weight = 0.8 }; { size = 72; slots = 5; weight = 0.2 };
      |];
    p_immediate = 0.955;
    p_ring = 0.04;
    p_long = 0.005;
    ring_entries = 550;
    long_target = 3200;
    prebuild_long = true;
    old_mutation = 0.2;
    concentrated_mutation = false;
    p_init_store = 0.15;
    work = 150;
    threads = 1;
  }

let javac =
  {
    name = "javac";
    description =
      "_213_javac: large mixed working set; a third of young objects \
       survive their first collection, busy old generation";
    total_alloc = 18 * mb;
    sizes =
      [|
        { size = 48; slots = 3; weight = 0.7 };
        { size = 96; slots = 6; weight = 0.2 };
        { size = 256; slots = 8; weight = 0.1 };
      |];
    p_immediate = 0.67;
    p_ring = 0.30;
    p_long = 0.03;
    ring_entries = 1800;
    long_target = 11_000;
    prebuild_long = true;
    old_mutation = 0.008;
    concentrated_mutation = false;
    p_init_store = 0.12;
    work = 300;
    threads = 1;
  }

let jack =
  {
    name = "jack";
    description =
      "_228_jack: parser generator; mostly young deaths but tenured \
       objects die shortly after promotion";
    total_alloc = 20 * mb;
    sizes =
      [|
        { size = 40; slots = 2; weight = 0.85 }; { size = 80; slots = 4; weight = 0.15 };
      |];
    p_immediate = 0.962;
    p_ring = 0.03;
    p_long = 0.008;
    ring_entries = 450;
    long_target = 1400;
    prebuild_long = true;
    old_mutation = 0.05;
    concentrated_mutation = false;
    p_init_store = 0.20;
    work = 420;
    threads = 1;
  }

let anagram =
  {
    name = "anagram";
    description =
      "Anagram: recursive permutation generator over a prebuilt dictionary \
       (~34k live objects); string churn, no compute between allocations, \
       collection-intensive";
    total_alloc = 28 * mb;
    sizes =
      [|
        { size = 24; slots = 1; weight = 0.7 }; { size = 40; slots = 2; weight = 0.3 };
      |];
    p_immediate = 0.9397;
    p_ring = 0.06;
    p_long = 0.0003;
    ring_entries = 150;
    long_target = 34_000;
    prebuild_long = true;
    old_mutation = 0.00005;
    concentrated_mutation = true;
    p_init_store = 0.01;
    work = 50;
    threads = 1;
  }

let raytracer ~threads =
  if threads < 1 then invalid_arg "Profile.raytracer: threads must be >= 1";
  {
    name = Printf.sprintf "raytracer-%d" threads;
    description =
      "multithreaded Ray Tracer (Section 8.2): parameterised render \
       threads over a 300x300 scene; per-thread scene fragments and caches \
       make the live set grow with the thread count";
    total_alloc = 3 * mb;
    sizes =
      [|
        { size = 32; slots = 2; weight = 0.65 };
        { size = 48; slots = 3; weight = 0.30 };
        { size = 112; slots = 4; weight = 0.05 };
      |];
    p_immediate = 0.918;
    p_ring = 0.08;
    p_long = 0.002;
    ring_entries = 200;
    long_target = 3000;
    prebuild_long = true;
    old_mutation = 0.0004;
    concentrated_mutation = false;
    p_init_store = 0.02;
    work = 300;
    threads;
  }

let spec_benchmarks = [ mtrt; compress; db; jess; javac; jack ]
let all = spec_benchmarks @ [ anagram ]

let find name = List.find_opt (fun p -> p.name = name) all

let () = List.iter validate (raytracer ~threads:2 :: all)
