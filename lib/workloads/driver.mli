(** Run a workload profile against a collector configuration and summarise
    the outcome.

    One call = one "benchmark run" of the paper: a fresh simulated heap, a
    collector daemon, [profile.threads] mutator threads running the
    {!Engine}.  Two execution substrates are available:

    - [Sim] (default): every thread is an effects-based cooperative
      process, deterministically scheduled from [seed].  The whole run is
      a pure function of its parameters — this is the substrate all the
      paper-reproduction figures and the digest guard run on.
    - [Domains]: every mutator and the collector daemon runs on its own
      OCaml domain; handshakes, card marks and gray publishes are real
      atomic operations, and allocation goes through per-mutator caches.
      Wall-clock time is real, schedules are not reproducible.  At
      quiescence the driver runs two full collections, so the reachability
      oracle and the heap checker can cross-validate the end state against
      a [Sim] run of the same parameters (see test_parallel.ml): each
      thread draws the identical rng stream on both substrates, so the
      end-of-run allocation totals match exactly and the live census
      agrees within promotion tolerance.

    Benchmark runs use coarse-grained mode (no micro-step yields) — races
    are the test suite's job; the simulator runs only need the
    work/page/card accounting. *)

val default_heap : Otfgc_heap.Heap.config
(** 1 MB initial, 4 MB maximum — the paper's 1→32 MB scaled by 8, matching
    the 512 KB default young generation (the paper's 4 MB / 8). *)

val run_rt :
  ?heap:Otfgc_heap.Heap.config ->
  ?seed:int ->
  ?scale:float ->
  ?substrate:Otfgc_sched.Substrate.kind ->
  ?threads:int ->
  ?gc_workers:int ->
  ?instrument:(Otfgc.Runtime.t -> unit) ->
  ?observer:Otfgc_metrics.Observer.t ->
  gc:Otfgc.Gc_config.t ->
  Profile.t ->
  Otfgc_metrics.Run_result.t * Otfgc.Runtime.t
(** Like {!run}, but also hands back the runtime so callers can read the
    event log, telemetry and histograms after the fact.  [instrument] runs
    right after the runtime is created — the place to enable the event log
    or telemetry instruments (both off by default).  The warmup reset
    clears the event log and telemetry along with the ledgers, so what
    remains covers exactly the measured lap.  [threads] overrides the
    profile's thread count (the speedup sweeps vary it); [substrate]
    selects the execution substrate (default [Sim]); [gc_workers]
    (default 1) arms a multi-worker collection crew — domains substrate
    only ([Invalid_argument] on [Sim] when > 1).  [observer], domains
    only, is launched right after [instrument] and stopped at quiescence
    — after the parallel run, before the per-mutator ledgers are folded
    into the shared ones — so its final snapshot equals the post-run
    totals exactly (see {!Otfgc_metrics.Observer}).  Note the warmup
    reset happens mid-run: observer counters are monotone only from the
    first post-warmup snapshot on. *)

val run :
  ?heap:Otfgc_heap.Heap.config ->
  ?seed:int ->
  ?scale:float ->
  ?substrate:Otfgc_sched.Substrate.kind ->
  ?threads:int ->
  ?gc_workers:int ->
  gc:Otfgc.Gc_config.t ->
  Profile.t ->
  Otfgc_metrics.Run_result.t
(** [run ~gc profile] executes the workload to completion and returns its
    summary.  [scale] (default 1.0) multiplies the allocation volume —
    experiments use it to shorten sweeps.  [seed] (default 42) fixes the
    scheduler and workload randomness; [heap] overrides the heap geometry
    (e.g. the card-size sweeps of Figures 21–23). *)

val run_pair :
  ?heap:Otfgc_heap.Heap.config ->
  ?seed:int ->
  ?scale:float ->
  gc:Otfgc.Gc_config.t ->
  Profile.t ->
  Otfgc_metrics.Run_result.t * Otfgc_metrics.Run_result.t
(** [(generational_or_other, non_generational_baseline)] under identical
    parameters — the comparison every figure reports.  The baseline uses
    {!Otfgc.Gc_config.non_generational} with the same trigger settings.
    Simulator substrate only (it feeds the pinned figures). *)
