open Otfgc
module Heap = Otfgc_heap.Heap
module Rng = Otfgc_support.Rng

(* Register conventions (the mutator's "machine registers"): *)
let reg_long = 0 (* head of the long-table spine *)
let reg_ring = 1 (* head of the ring spine *)
let reg_new = 2 (* object allocated this iteration *)
let reg_tmp = 3 (* spine nodes under construction, loaded values *)
let reg_prev = 4 (* previous iteration's object, for initialising stores *)

let slots_per_node = 7
let node_slots = slots_per_node + 1 (* slot 0 is the next pointer *)
let node_size = 16 + (8 * node_slots)

(* A spine of fixed-arity nodes addressed as a flat array of entries.
   [nodes] mirrors the spine for O(1) entry lookup; every node stays
   reachable from [head_reg], so the mirror never dangles. *)
type table = {
  head_reg : int;
  capacity : int;
  mutable nodes : int array;
  mutable n_nodes : int;
  mutable count : int; (* total puts (ring) / filled entries (long) *)
}

let mk_table ~head_reg ~capacity =
  { head_reg; capacity; nodes = Array.make 8 Heap.nil; n_nodes = 0; count = 0 }

type ctx = {
  rt : Runtime.t;
  m : Mutator.t;
  rng : Rng.t;
  profile : Profile.t;
  mutable allocated : int;
}

let alloc_raw ctx ~size ~n_slots =
  let a = Runtime.alloc ctx.rt ctx.m ~size ~n_slots in
  ctx.allocated <- ctx.allocated + Heap.size (Runtime.heap ctx.rt) a;
  a

let add_node ctx tbl =
  let node = alloc_raw ctx ~size:node_size ~n_slots:node_slots in
  Mutator.set_reg ctx.m reg_tmp node;
  let head = Mutator.get_reg ctx.m tbl.head_reg in
  if head <> Heap.nil then Runtime.store ctx.rt ctx.m ~x:node ~i:0 ~y:head;
  Mutator.set_reg ctx.m tbl.head_reg node;
  Mutator.clear_reg ctx.m reg_tmp;
  if tbl.n_nodes = Array.length tbl.nodes then begin
    let bigger = Array.make (2 * tbl.n_nodes) Heap.nil in
    Array.blit tbl.nodes 0 bigger 0 tbl.n_nodes;
    tbl.nodes <- bigger
  end;
  tbl.nodes.(tbl.n_nodes) <- node;
  tbl.n_nodes <- tbl.n_nodes + 1

let entry_location tbl idx = (tbl.nodes.(idx / slots_per_node), 1 + (idx mod slots_per_node))

let store_entry ctx tbl idx y =
  let node, slot = entry_location tbl idx in
  Runtime.store ctx.rt ctx.m ~x:node ~i:slot ~y

let load_entry ctx tbl idx =
  let node, slot = entry_location tbl idx in
  Runtime.load ctx.rt ctx.m ~x:node ~i:slot

(* Long table: fill to capacity, then overwrite (evict) a random entry —
   the evicted object has been promoted by then and dies in the old
   generation. *)
let long_put ctx tbl y =
  let idx =
    if tbl.count < tbl.capacity then begin
      let i = tbl.count in
      if i / slots_per_node >= tbl.n_nodes then add_node ctx tbl;
      tbl.count <- i + 1;
      i
    end
    else Rng.int ctx.rng tbl.capacity
  in
  store_entry ctx tbl idx y

(* Ring: FIFO overwrite — an entry dies after exactly [capacity] further
   ring insertions, which calibrates "age at death" against the
   young-generation trigger. *)
let ring_put ctx tbl y =
  let i = tbl.count in
  let idx = i mod tbl.capacity in
  if i < tbl.capacity && idx / slots_per_node >= tbl.n_nodes then add_node ctx tbl;
  tbl.count <- i + 1;
  store_entry ctx tbl idx y

(* Old-to-old pointer traffic: copy one long entry over another.  This
   dirties cards in the old generation without creating young references —
   the cost the paper blames for _202_jess's slowdown. *)
let old_mutate ctx tbl =
  let filled = Stdlib.min tbl.count tbl.capacity in
  if filled >= 2 then begin
    let src = Rng.int ctx.rng filled in
    let dst =
      if ctx.profile.Profile.concentrated_mutation then
        Rng.int ctx.rng (Stdlib.max 1 (filled / 10))
      else Rng.int ctx.rng filled
    in
    let v = load_entry ctx tbl src in
    Mutator.set_reg ctx.m reg_tmp v;
    store_entry ctx tbl dst v;
    Mutator.clear_reg ctx.m reg_tmp
  end

(* Initialising stores: fill up to two slots of the fresh object with
   pointers to recent objects, dirtying young cards the way real
   constructors do. *)
let init_stores ctx a n_slots =
  let n = Stdlib.min n_slots 2 in
  for i = 0 to n - 1 do
    if Rng.chance ctx.rng ctx.profile.Profile.p_init_store then begin
      let y =
        match Rng.int ctx.rng 3 with
        | 0 -> Mutator.get_reg ctx.m reg_prev
        | 1 -> Mutator.get_reg ctx.m reg_ring
        | _ -> Mutator.get_reg ctx.m reg_long
      in
      if y <> Heap.nil then Runtime.store ctx.rt ctx.m ~x:a ~i ~y
    end
  done

let run_thread rt m rng ~profile ~quota ?(sync_point = fun () -> ()) () =
  let open Profile in
  let ctx = { rt; m; rng; profile; allocated = 0 } in
  let long = mk_table ~head_reg:reg_long ~capacity:profile.long_target in
  let ring = mk_table ~head_reg:reg_ring ~capacity:profile.ring_entries in
  let classes = Array.map (fun c -> (c, c.weight)) profile.sizes in
  let alloc_class () =
    let c = Rng.pick_weighted rng classes in
    let a = alloc_raw ctx ~size:c.size ~n_slots:c.slots in
    Mutator.set_reg m reg_new a;
    (a, c.slots)
  in
  if profile.prebuild_long then
    while long.count < long.capacity do
      let a, _ = alloc_class () in
      long_put ctx long a;
      Mutator.clear_reg m reg_new
    done;
  sync_point ();
  ctx.allocated <- 0;
  while ctx.allocated < quota do
    if profile.work > 0 then Runtime.work rt m profile.work;
    let a, n_slots = alloc_class () in
    init_stores ctx a n_slots;
    let r = Rng.float rng 1.0 in
    if r < profile.p_immediate then ()
    else if r < profile.p_immediate +. profile.p_ring then ring_put ctx ring a
    else long_put ctx long a;
    (* keep it briefly as "prev" for the next iteration's initialising
       stores, then it is on its own *)
    Mutator.set_reg m reg_prev a;
    Mutator.clear_reg m reg_new;
    if profile.old_mutation > 0. && Rng.chance rng profile.old_mutation then
      old_mutate ctx long
  done
