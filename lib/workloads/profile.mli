(** Synthetic workload profiles emulating the paper's benchmarks.

    The SPECjvm98 suite, the IBM Anagram program and the multithreaded Ray
    Tracer cannot be run here, but the paper characterises each benchmark's
    {e generational signature} precisely (Figures 10–12 and 22): how much
    is allocated, what fraction dies before its first collection, whether
    objects die soon after being promoted, how large the long-lived set
    is, how often pointers in the old generation are modified, and whether
    dirty objects are concentrated or scattered.  A profile encodes that
    signature; the {!Engine} turns it into allocation and pointer-store
    behaviour.  EXPERIMENTS.md records how well the reproduced shapes
    match.

    Object lifetimes come from a three-way mixture:
    - {e immediate}: dropped as soon as created (dies before any
      collection);
    - {e ring}: enters a FIFO overwrite ring of [ring_entries] slots and
      dies after one lap — sizing the ring against the young-generation
      trigger decides whether these die young or "soon after promotion"
      (the _202_jess/_228_jack pathology);
    - {e long}: enters the long-lived table; once the table is full each
      insertion evicts a random entry (tenured death). *)

type size_class = { size : int; slots : int; weight : float }
(** An allocation site: object size in bytes, pointer slots, mix weight. *)

type t = {
  name : string;
  description : string;
  total_alloc : int;
      (** bytes each thread allocates before finishing (whole-run volume
          is [threads * total_alloc], scaled ~1/8 from the paper's runs) *)
  sizes : size_class array;
  p_immediate : float;
  p_ring : float;
  p_long : float;  (** the three probabilities sum to 1 *)
  ring_entries : int;
  long_target : int;
      (** entries in the long-lived table before eviction starts *)
  prebuild_long : bool;
      (** build the long table eagerly at startup (the _209_db pattern:
          load the database, then run queries) *)
  old_mutation : float;
      (** per-iteration probability of overwriting a pointer inside the
          long (old) table with another old pointer — the source of dirty
          cards without inter-generational pointers *)
  concentrated_mutation : bool;
      (** mutate a small cluster of old objects (dirty objects concentrated
          in the heap) rather than uniformly scattered ones *)
  p_init_store : float;
      (** probability that a slot of a fresh object receives an
          initialising pointer store — the source of dirty cards in the
          young region; calibrated per benchmark against Figure 22's
          dirty-card percentages *)
  work : int;  (** pure-compute units per iteration *)
  threads : int;
}

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent profiles (used by tests). *)

(** {2 The paper's benchmarks} *)

(* _227_mtrt: two render threads, almost all young *)
val mtrt : t

(* _201_compress: few huge buffers, compute-bound *)
val compress : t

(* _209_db: big resident database + young queries *)
val db : t

(* _202_jess: dies right after promotion + hot old pointers *)
val jess : t

(* _213_javac: large mixed working set *)
val javac : t

(* _228_jack: mostly young, tenured objects die in fulls *)
val jack : t

(* Anagram: collection-intensive string churn *)
val anagram : t

val raytracer : threads:int -> t
(** The multithreaded Ray Tracer of Section 8.2: [threads] render threads
    over a larger scene. *)

val spec_benchmarks : t list
(** The six SPECjvm profiles, in the paper's reporting order. *)

val all : t list
(** Every fixed profile (SPECjvm + anagram + mtrt). *)

val find : string -> t option
(** Look up a fixed profile by name. *)
