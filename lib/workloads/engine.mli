(** The synthetic mutator: turns a {!Profile.t} into allocation and
    pointer-store behaviour for one thread.

    Heap shape per thread (everything reachable from two registers, per
    the runtime's rooting contract):

    - a {e long table}: a linked spine of 80-byte nodes, seven entry slots
      each, holding the long-lived objects; once [long_target] entries
      exist, each insertion overwrites a random entry (tenured death);
    - a {e ring}: the same structure used as a FIFO — the cursor overwrites
      the oldest entry, so ring objects die after exactly [ring_entries]
      further ring insertions;
    - new objects are partially initialised with pointers to recent
      objects, so young cards get dirtied the way real initialising stores
      dirty them;
    - with probability [old_mutation] an iteration overwrites a pointer
      inside the long table with another long entry (old-to-old traffic:
      dirty cards that carry no inter-generational pointer), targeting a
      small cluster of nodes when [concentrated_mutation] is set. *)

val run_thread :
  Otfgc.Runtime.t ->
  Otfgc.Mutator.t ->
  Otfgc_support.Rng.t ->
  profile:Profile.t ->
  quota:int ->
  ?sync_point:(unit -> unit) ->
  unit ->
  unit
(** Run the workload until this thread has allocated [quota] bytes (not
    counting the prebuild phase).  [sync_point] is invoked once, between
    the prebuild phase and the measured main loop — the driver uses it as
    a warmup barrier (wait for all threads, run a full collection, reset
    the measurement ledgers, exactly like a benchmark harness's warmup
    lap).  Must be called from the mutator's process.  Does not retire the
    mutator. *)
