(* Classes 0..62 hold blocks of exactly (class+1) granules (16 B .. 1008 B);
   class 63 holds everything larger, searched first-fit. *)
let n_exact = 63
let n_classes = n_exact + 1

let class_of_granules gr = if gr <= n_exact then gr - 1 else n_exact
let class_of_bytes b = class_of_granules (Layout.granules_of_bytes b)

type t = { space : Space.t; lists : int list array }

let push_raw t addr =
  let cls = class_of_granules (Space.block_size t.space addr / Layout.granule) in
  t.lists.(cls) <- addr :: t.lists.(cls)

let create space =
  let t = { space; lists = Array.make n_classes [] } in
  Space.iter_blocks space (fun addr kind _size ->
      if kind = Space.Free then push_raw t addr);
  t

let push t addr =
  if Space.kind_of t.space addr <> Space.Free then
    invalid_arg "Freelist.push: block is not free";
  push_raw t addr

(* An entry is stale when coalescing absorbed its block (no longer a free
   block start) or changed its size class. *)
let valid t cls addr =
  Space.is_block_start t.space addr
  && Space.kind_of t.space addr = Space.Free
  && class_of_granules (Space.block_size t.space addr / Layout.granule) = cls

let rec pop_class t cls =
  match t.lists.(cls) with
  | [] -> None
  | addr :: rest ->
      t.lists.(cls) <- rest;
      if valid t cls addr then Some addr else pop_class t cls

(* First-fit inside the large class: scan for the first valid entry big
   enough, compacting stale entries away as we go. *)
let pop_large t ~granules =
  let rec scan acc = function
    | [] ->
        t.lists.(n_exact) <- List.rev acc;
        None
    | addr :: rest ->
        if not (valid t n_exact addr) then scan acc rest
        else if Space.block_size t.space addr / Layout.granule >= granules then begin
          t.lists.(n_exact) <- List.rev_append acc rest;
          Some addr
        end
        else scan (addr :: acc) rest
  in
  scan [] t.lists.(n_exact)

let pop t ~bytes_wanted =
  let want_g = Layout.granules_of_bytes (Stdlib.max 1 bytes_wanted) in
  let want_b = Layout.bytes_of_granules want_g in
  let exact = if want_g <= n_exact then pop_class t (want_g - 1) else None in
  match exact with
  | Some addr -> Some addr
  | None ->
      (* Find a strictly larger block to split (or an exact large block). *)
      let found = ref None in
      let cls = ref (if want_g <= n_exact then want_g else n_exact) in
      (* Classes want_g .. n_exact-1 hold blocks of (cls+1) granules. *)
      while !found = None && !cls < n_exact do
        (match pop_class t !cls with
        | Some addr -> found := Some addr
        | None -> ());
        incr cls
      done;
      let found =
        match !found with Some a -> Some a | None -> pop_large t ~granules:want_g
      in
      (match found with
      | None -> None
      | Some addr ->
          let have = Space.block_size t.space addr in
          if have > want_b then begin
            let rest = Space.split t.space addr ~first_bytes:want_b in
            push_raw t rest
          end;
          Some addr)

let rebuild t =
  Array.fill t.lists 0 n_classes [];
  Space.iter_blocks t.space (fun addr kind _size ->
      if kind = Space.Free then push_raw t addr)

let entry_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.lists
