(* Classes 0..62 hold blocks of exactly (class+1) granules (16 B .. 1008 B);
   class 63 holds everything larger, searched first-fit.

   Each class is a growable int-array stack (top = most recent push), and
   a one-word occupancy bitmap has bit [c] set iff exact class [c] is
   non-empty — the 63 exact classes fit exactly in OCaml's 63-bit native
   int; the large class is tracked by its length alone.  [pop] finds the
   smallest non-empty class at or above the request with one ctz probe
   instead of a per-class loop.  Candidate order is identical to the old
   list representation (LIFO within a class, ascending classes, first-fit
   from the most recent push in the large class), so allocation decisions
   — and every simulated figure — are unchanged. *)

let n_exact = 63
let n_classes = n_exact + 1

let class_of_granules gr = if gr <= n_exact then gr - 1 else n_exact
let class_of_bytes b = class_of_granules (Layout.granules_of_bytes b)

type t = {
  space : Space.t;
  stacks : int array array;
  lens : int array;
  mutable occupancy : int; (* bit c <=> lens.(c) > 0, exact classes only *)
  mutable n_entries : int; (* entries currently queued, stale included *)
  mutable stale_drops : int; (* cumulative stale entries discarded *)
}

(* [cls] is always in [0, n_classes): unsafe indexing below is sound. *)
let push_class t cls addr =
  let st = Array.unsafe_get t.stacks cls in
  let n = Array.unsafe_get t.lens cls in
  let st =
    if n < Array.length st then st
    else begin
      let bigger = Array.make (2 * n) 0 in
      Array.blit st 0 bigger 0 n;
      Array.unsafe_set t.stacks cls bigger;
      bigger
    end
  in
  Array.unsafe_set st n addr;
  Array.unsafe_set t.lens cls (n + 1);
  t.n_entries <- t.n_entries + 1;
  if cls < n_exact then t.occupancy <- t.occupancy lor (1 lsl cls)

let push_raw t addr =
  let cls = class_of_granules (Space.block_size t.space addr / Layout.granule) in
  push_class t cls addr

let create space =
  let t =
    {
      space;
      stacks = Array.init n_classes (fun _ -> Array.make 8 0);
      lens = Array.make n_classes 0;
      occupancy = 0;
      n_entries = 0;
      stale_drops = 0;
    }
  in
  Space.iter_blocks space (fun addr kind _size ->
      if kind = Space.Free then push_raw t addr);
  t

let push t addr =
  if Space.kind_of t.space addr <> Space.Free then
    invalid_arg "Freelist.push: block is not free";
  push_raw t addr

(* An entry is stale when coalescing absorbed its block (no longer a free
   block start) or changed its size class. *)
let valid t cls addr =
  Space.is_block_start t.space addr
  && Space.kind_of t.space addr = Space.Free
  && class_of_granules (Space.block_size t.space addr / Layout.granule) = cls

let rec pop_class t cls =
  let n = Array.unsafe_get t.lens cls in
  if n = 0 then begin
    if cls < n_exact then t.occupancy <- t.occupancy land lnot (1 lsl cls);
    None
  end
  else begin
    let n = n - 1 in
    let addr = Array.unsafe_get (Array.unsafe_get t.stacks cls) n in
    Array.unsafe_set t.lens cls n;
    t.n_entries <- t.n_entries - 1;
    if n = 0 && cls < n_exact then
      t.occupancy <- t.occupancy land lnot (1 lsl cls);
    if valid t cls addr then Some addr
    else begin
      t.stale_drops <- t.stale_drops + 1;
      pop_class t cls
    end
  end

(* First-fit inside the large class: scan from the top of the stack (the
   most recent push — the old list's head) for the first valid entry big
   enough.  Stale entries met on the way are blanked and compacted away in
   place; valid-but-small entries keep their relative order.  No list is
   ever rebuilt, unlike the old rev/rev_append version. *)
let pop_large t ~granules =
  let st = t.stacks.(n_exact) in
  let n = t.lens.(n_exact) in
  let j = ref (n - 1) in
  let result = ref (-1) in
  let stale = ref 0 in
  while !result < 0 && !j >= 0 do
    let addr = Array.unsafe_get st !j in
    if not (valid t n_exact addr) then begin
      Array.unsafe_set st !j (-1);
      incr stale;
      decr j
    end
    else if Space.block_size t.space addr / Layout.granule >= granules then
      result := addr
    else decr j
  done;
  t.stale_drops <- t.stale_drops + !stale;
  if !result >= 0 then begin
    (* drop the match at [!j] and the blanked entries above it *)
    let w = ref !j in
    for i = !j + 1 to n - 1 do
      let a = Array.unsafe_get st i in
      if a >= 0 then begin
        Array.unsafe_set st !w a;
        incr w
      end
    done;
    t.n_entries <- t.n_entries - (n - !w);
    t.lens.(n_exact) <- !w;
    Some !result
  end
  else begin
    if !stale > 0 then begin
      let w = ref 0 in
      for i = 0 to n - 1 do
        let a = Array.unsafe_get st i in
        if a >= 0 then begin
          Array.unsafe_set st !w a;
          incr w
        end
      done;
      t.n_entries <- t.n_entries - !stale;
      t.lens.(n_exact) <- !w
    end;
    None
  end

let pop t ~bytes_wanted =
  let want_g = Layout.granules_of_bytes (Stdlib.max 1 bytes_wanted) in
  let want_b = Layout.bytes_of_granules want_g in
  let exact = if want_g <= n_exact then pop_class t (want_g - 1) else None in
  match exact with
  | Some addr -> Some addr
  | None ->
      (* Find a strictly larger block to split (or an exact large block):
         the smallest occupied class at or above the request, in one
         bitmap probe per (rare) all-stale class. *)
      let found = ref None in
      if want_g < n_exact then begin
        let continue = ref true in
        while !found = None && !continue do
          let m = t.occupancy land ((-1) lsl want_g) in
          if m = 0 then continue := false
          else
            match pop_class t (Otfgc_support.Bits.ctz m) with
            | Some addr -> found := Some addr
            | None -> () (* class was all stale; its bit is now clear *)
        done
      end;
      let found =
        match !found with Some a -> Some a | None -> pop_large t ~granules:want_g
      in
      (match found with
      | None -> None
      | Some addr ->
          let have = Space.block_size t.space addr in
          if have > want_b then begin
            let rest = Space.split t.space addr ~first_bytes:want_b in
            push_raw t rest
          end;
          Some addr)

let rebuild t =
  Array.fill t.lens 0 n_classes 0;
  t.occupancy <- 0;
  t.n_entries <- 0;
  Space.iter_blocks t.space (fun addr kind _size ->
      if kind = Space.Free then push_raw t addr)

let entry_count t = t.n_entries
let stale_entries t = t.stale_drops
