type kind = Free | Allocated

type t = {
  max_granules : int;
  mutable cur_granules : int;
  (* Per-granule kind: 0 interior, 1 free block start, 2 allocated start. *)
  kinds : Bytes.t;
  (* Block size in granules, valid at the first granule (header tag) and at
     the last granule (footer tag) of every block. *)
  sizes : int array;
  mutable allocated_g : int;
  (* Object-start crossing map: [card_first.(c)] is the granule index of
     the first block start on card [c], or -1 when no block starts there.
     Cards here are [card_size]-byte windows matching the heap's card
     table, so the collector's card scan can jump straight to the first
     object of a dirty card instead of probing granule by granule. *)
  card_shift : int; (* granule index -> card index shift *)
  card_first : int array;
}

let g = Layout.granule
let g_shift = Otfgc_support.Bits.log2_exact Layout.granule

let interior = '\000'
let free_start = '\001'
let alloc_start = '\002'

let set_tags t start size_g kind_byte =
  Bytes.set t.kinds start kind_byte;
  t.sizes.(start) <- size_g;
  t.sizes.(start + size_g - 1) <- size_g;
  (* The footer granule must read as interior unless the block is a single
     granule (header and footer coincide). *)
  if size_g > 1 then Bytes.set t.kinds (start + size_g - 1) interior

(* A granule became a block start: it may now be the first on its card. *)
let note_new_start t i =
  let c = i lsr t.card_shift in
  let cur = Array.unsafe_get t.card_first c in
  if cur < 0 || cur > i then Array.unsafe_set t.card_first c i

let create ?(card_size = Layout.granule) ~initial_bytes ~max_bytes () =
  if initial_bytes <= 0 || initial_bytes > max_bytes then
    invalid_arg "Space.create: need 0 < initial_bytes <= max_bytes";
  if card_size < g || not (Otfgc_support.Bits.is_pow2 card_size) then
    invalid_arg "Space.create: card size must be a power of two >= granule";
  let max_granules = Layout.granules_of_bytes max_bytes in
  let cur_granules = Layout.granules_of_bytes initial_bytes in
  let card_shift = Otfgc_support.Bits.log2_exact card_size - g_shift in
  let n_cards = ((max_granules - 1) lsr card_shift) + 1 in
  let t =
    {
      max_granules;
      cur_granules;
      kinds = Bytes.make max_granules interior;
      sizes = Array.make max_granules 0;
      allocated_g = 0;
      card_shift;
      card_first = Array.make n_cards (-1);
    }
  in
  set_tags t 0 cur_granules free_start;
  t.card_first.(0) <- 0;
  t

let capacity t = Layout.bytes_of_granules t.cur_granules
let max_capacity t = Layout.bytes_of_granules t.max_granules
let allocated_bytes t = Layout.bytes_of_granules t.allocated_g
let free_bytes t = capacity t - allocated_bytes t

let gi addr =
  if addr land (g - 1) <> 0 then
    invalid_arg (Printf.sprintf "Space: unaligned address %d" addr);
  addr / g

let is_block_start t addr =
  let i = gi addr in
  i < t.cur_granules && Bytes.get t.kinds i <> interior

let kind_of t addr =
  let i = gi addr in
  match Bytes.get t.kinds i with
  | c when c = free_start -> Free
  | c when c = alloc_start -> Allocated
  | _ -> invalid_arg (Printf.sprintf "Space.kind_of: %d is not a block start" addr)

let block_size t addr =
  let i = gi addr in
  if Bytes.get t.kinds i = interior then
    invalid_arg (Printf.sprintf "Space.block_size: %d is not a block start" addr);
  Layout.bytes_of_granules t.sizes.(i)

(* Bounds-check-free variants for the sweep and iteration hot loops; the
   address must be a granule-aligned block start below the current
   capacity (the checked API above enforces exactly that). *)
let unsafe_kind t addr =
  if Bytes.unsafe_get t.kinds (addr lsr g_shift) = free_start then Free
  else Allocated

let unsafe_size t addr =
  Array.unsafe_get t.sizes (addr lsr g_shift) lsl g_shift

let find_block_start t a =
  let i = ref (a / g) in
  if !i >= t.cur_granules then
    invalid_arg (Printf.sprintf "Space.find_block_start: %d out of range" a);
  while Bytes.get t.kinds !i = interior do
    decr i
  done;
  !i * g

let set_kind t addr kind =
  let i = gi addr in
  let size_g = t.sizes.(i) in
  (match (Bytes.get t.kinds i, kind) with
  | c, Allocated when c = free_start -> t.allocated_g <- t.allocated_g + size_g
  | c, Free when c = alloc_start -> t.allocated_g <- t.allocated_g - size_g
  | c, _ when c = interior ->
      invalid_arg (Printf.sprintf "Space.set_kind: %d is not a block start" addr)
  | _ -> ());
  Bytes.set t.kinds i (match kind with Free -> free_start | Allocated -> alloc_start)

let split t addr ~first_bytes =
  let i = gi addr in
  if Bytes.get t.kinds i <> free_start then
    invalid_arg "Space.split: not a free block";
  let total_g = t.sizes.(i) in
  let first_g = Layout.granules_of_bytes first_bytes in
  if first_g <= 0 || first_g >= total_g then
    invalid_arg "Space.split: size must leave a non-empty remainder";
  let rest_g = total_g - first_g in
  set_tags t i first_g free_start;
  set_tags t (i + first_g) rest_g free_start;
  note_new_start t (i + first_g);
  (i + first_g) * g

let next_block t addr =
  let i = gi addr in
  if Bytes.get t.kinds i = interior then
    invalid_arg "Space.next_block: not a block start";
  let j = i + t.sizes.(i) in
  if j >= t.cur_granules then None else Some (j * g)

let prev_block t addr =
  let i = gi addr in
  if Bytes.get t.kinds i = interior then
    invalid_arg "Space.prev_block: not a block start";
  if i = 0 then None
  else
    let footer = t.sizes.(i - 1) in
    Some ((i - footer) * g)

let coalesce_with_next t addr =
  let i = gi addr in
  if Bytes.get t.kinds i <> free_start then
    invalid_arg "Space.coalesce_with_next: not a free block";
  match next_block t addr with
  | Some nxt when Bytes.get t.kinds (gi nxt) = free_start ->
      let nj = gi nxt in
      let merged = t.sizes.(i) + t.sizes.(nj) in
      (* Erase the old header of the absorbed block before rewriting tags. *)
      Bytes.set t.kinds nj interior;
      set_tags t i merged free_start;
      (* The absorbed header may have been the first start of its card; the
         next start in that card — if any — can only be the block following
         the merged one, since everything in between is now interior. *)
      let c = nj lsr t.card_shift in
      if t.card_first.(c) = nj then begin
        let following = i + merged in
        t.card_first.(c) <-
          (if following < t.cur_granules && following lsr t.card_shift = c then
             following
           else -1)
      end;
      true
  | _ -> false

let grow t ~want_bytes =
  if t.cur_granules >= t.max_granules then None
  else begin
    let want_g = Stdlib.max 1 (Layout.granules_of_bytes want_bytes) in
    let add_g = Stdlib.min want_g (t.max_granules - t.cur_granules) in
    let start = t.cur_granules in
    t.cur_granules <- t.cur_granules + add_g;
    set_tags t start add_g free_start;
    note_new_start t start;
    (* Deliberately no merging with a trailing free block: growth can race
       with a concurrent sweep whose cursor relies on existing block
       boundaries never disappearing ahead of it.  The next sweep merges
       the seam. *)
    Some (start * g, Layout.bytes_of_granules add_g)
  end

let iter_blocks t f =
  let i = ref 0 in
  while !i < t.cur_granules do
    let size_g = Array.unsafe_get t.sizes !i in
    let kind =
      if Bytes.unsafe_get t.kinds !i = free_start then Free else Allocated
    in
    f (!i * g) kind (Layout.bytes_of_granules size_g);
    i := !i + size_g
  done

let iter_block_starts_on_card t card f =
  if card >= 0 && card < Array.length t.card_first then begin
    let j = Array.unsafe_get t.card_first card in
    if j >= 0 then begin
      let limit =
        Stdlib.min t.cur_granules ((card + 1) lsl t.card_shift)
      in
      let i = ref j in
      while !i < limit do
        let size_g = Array.unsafe_get t.sizes !i in
        let kind =
          if Bytes.unsafe_get t.kinds !i = free_start then Free else Allocated
        in
        f (!i * g) kind (Layout.bytes_of_granules size_g);
        i := !i + size_g
      done
    end
  end

let check t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec walk i acc_alloc =
    if i = t.cur_granules then
      if acc_alloc <> t.allocated_g then
        err "allocated accounting: counted %d, recorded %d" acc_alloc t.allocated_g
      else Ok ()
    else if i > t.cur_granules then err "block overruns capacity at granule %d" i
    else
      let k = Bytes.get t.kinds i in
      if k = interior then err "granule %d: expected block start" i
      else
        let size_g = t.sizes.(i) in
        let* () =
          if size_g <= 0 then err "granule %d: non-positive size" i
          else if t.sizes.(i + size_g - 1) <> size_g then
            err "granule %d: footer tag mismatch" i
          else Ok ()
        in
        let* () =
          let ok = ref (Ok ()) in
          for j = i + 1 to i + size_g - 2 do
            if Bytes.get t.kinds j <> interior && !ok = Ok () then
              ok := err "granule %d: interior granule marked as block start" j
          done;
          !ok
        in
        walk (i + size_g) (acc_alloc + if k = alloc_start then size_g else 0)
  in
  let* () = walk 0 0 in
  (* The crossing map must agree with a from-scratch recomputation. *)
  let expect = Array.make (Array.length t.card_first) (-1) in
  let i = ref 0 in
  while !i < t.cur_granules do
    let c = !i lsr t.card_shift in
    if expect.(c) < 0 then expect.(c) <- !i;
    i := !i + t.sizes.(!i)
  done;
  let bad = ref (Ok ()) in
  Array.iteri
    (fun c e ->
      if !bad = Ok () && t.card_first.(c) <> e then
        bad := err "crossing map: card %d records granule %d, expected %d" c
                 t.card_first.(c) e)
    expect;
  !bad
