(** ASCII visualisation of the heap's block and color structure.

    One character per bucket of granules (the bucket size is derived from
    the requested width), chosen from the states present in the bucket:

    - ['.'] free space
    - ['o'] young objects (the toggling colors)
    - ['B'] old (black) objects
    - ['g'] gray objects (trace in progress)
    - ['#'] mixed: the bucket contains both young and old objects

    The legend row and a capacity header are included.  Used by the
    heapscope example and handy in a debugger. *)

val ascii : ?width:int -> ?rows:int -> Heap.t -> string
(** [ascii ~width ~rows heap] renders the current capacity as at most
    [rows] lines of [width] characters (defaults 64×16).  Pure read;
    safe to call at any instant of a simulation. *)
