(* Per-granule states are folded into buckets; each bucket renders as one
   character summarising what it holds. *)

type gstate = Free | Young | Old | Gray

let state_of_color = function
  | Color.Blue -> Free
  | Color.C0 | Color.C1 -> Young
  | Color.Black -> Old
  | Color.Gray -> Gray

let ascii ?(width = 64) ?(rows = 16) heap =
  if width < 8 then invalid_arg "Heap_render.ascii: width too small";
  let space = Heap.space heap in
  let capacity = Heap.capacity heap in
  let n_granules = capacity / Layout.granule in
  let states = Array.make (Stdlib.max n_granules 1) Free in
  Space.iter_blocks space (fun addr kind size ->
      let st =
        match kind with
        | Space.Free -> Free
        | Space.Allocated -> state_of_color (Heap.color heap addr)
      in
      let first = addr / Layout.granule in
      let last = (addr + size - 1) / Layout.granule in
      for g = first to Stdlib.min last (n_granules - 1) do
        states.(g) <- st
      done);
  let total_cells = Stdlib.min (width * rows) n_granules in
  let per_bucket = Stdlib.max 1 ((n_granules + total_cells - 1) / total_cells) in
  let n_buckets = (n_granules + per_bucket - 1) / per_bucket in
  let bucket_char b =
    let lo = b * per_bucket and hi = Stdlib.min ((b + 1) * per_bucket) n_granules in
    let free = ref 0 and young = ref 0 and old = ref 0 and gray = ref 0 in
    for g = lo to hi - 1 do
      match states.(g) with
      | Free -> incr free
      | Young -> incr young
      | Old -> incr old
      | Gray -> incr gray
    done;
    if !gray > 0 then 'g'
    else if !young > 0 && !old > 0 then '#'
    else if !old > 0 then 'B'
    else if !young > 0 then 'o'
    else '.'
  in
  let b = Buffer.create (n_buckets + 256) in
  Buffer.add_string b
    (Printf.sprintf
       "heap %d KB (%d B/char)   . free  o young  B old  g gray  # mixed\n"
       (capacity / 1024)
       (per_bucket * Layout.granule));
  for i = 0 to n_buckets - 1 do
    Buffer.add_char b (bucket_char i);
    if (i + 1) mod width = 0 then Buffer.add_char b '\n'
  done;
  if n_buckets mod width <> 0 then Buffer.add_char b '\n';
  Buffer.contents b
