(** Card-marking table (Section 3.1).

    The heap is partitioned into fixed-size cards; the write barrier marks
    a card dirty when a pointer slot on it is modified, and the collector
    scans dirty cards for inter-generational pointers.  One mark byte per
    card — the paper stresses that the byte must not share its cell with
    any other datum, or every pointer store would need a compare-and-swap.

    Card sizes are powers of two between 16 bytes ("object marking") and
    4096 bytes ("block marking"), the range swept in Figures 21–23. *)

type t

val create : card_size:int -> max_heap_bytes:int -> t
(** All cards initially clean.  [card_size] must be a power of two in
    [16, 4096]. *)

val card_size : t -> int

val n_cards : t -> int
(** Number of cards covering the maximum heap. *)

val card_of_addr : t -> int -> int
(** Index of the card containing a heap byte address. *)

val mark : t -> int -> unit
(** [mark t addr] dirties the card containing heap address [addr] (the
    mutator's [MarkCard]). *)

val clear_card : t -> int -> unit
(** [clear_card t card] cleans card [card] (the collector's
    [ClearCardMark]). *)

val mark_card : t -> int -> unit
(** Dirty a card by index (collector re-marking in the aging protocol's
    step 3). *)

val is_dirty : t -> int -> bool

val clear_all : t -> unit
(** Clean every card (full-collection initialisation of the simple
    algorithm). *)

val dirty_count : t -> int
(** Number of dirty cards.  Scans the mark bytes a 64-bit word at a
    time, skipping eight clean cards per probe. *)

val card_bounds : t -> int -> int * int
(** [card_bounds t card] is the [(first, last)] heap byte addresses covered
    by the card (last is exclusive). *)

val iter_dirty : t -> (int -> unit) -> unit
(** Iterate indices of dirty cards in increasing order.  Callback may clear
    or set marks; dirty cards are re-read individually in order, while runs
    of eight clean cards ahead of the cursor are skipped with a single
    word-sized probe. *)
