(** Address arithmetic shared by the heap, its side tables and the page
    accounting.

    The simulated heap is byte addressed.  Objects are allocated on
    {!granule}-byte boundaries (16 bytes — the paper's minimum object size
    and smallest card size), and page accounting uses {!page_size}-byte
    pages (4 KB, as on the paper's AIX machines).

    The collector's side tables (color table, age table, card table) are
    given disjoint virtual address ranges above the heap so that "pages
    touched by the collector, including all the tables it uses" (Figure 15)
    can be measured with a single page set. *)

val granule : int
(** Allocation granularity in bytes: 16. *)

val page_size : int
(** 4096 bytes. *)

val granules_of_bytes : int -> int
(** Bytes rounded up to whole granules. *)

val bytes_of_granules : int -> int

val granule_index : int -> int
(** [granule_index addr] is [addr / granule].  [addr] must be
    granule-aligned for block starts but any byte address is accepted. *)

val page_of_addr : int -> int
(** Page number containing the given virtual byte address. *)

type tables = {
  heap_base : int;       (** always 0 *)
  color_table_base : int;
  age_table_base : int;
  card_table_base : int;
  remset_table_base : int;
  virtual_span : int;    (** total bytes of virtual layout, for sizing page sets *)
}

val make_tables : max_heap_bytes:int -> card_size:int -> tables
(** Compute the virtual layout for a heap of at most [max_heap_bytes]
    bytes with the given card size: one color byte and one age byte per
    granule, one card-mark byte per card. *)

val color_entry_addr : tables -> int -> int
(** Virtual address of the color-table byte covering heap address [a]. *)

val age_entry_addr : tables -> int -> int
(** Virtual address of the age-table byte covering heap address [a]. *)

val card_entry_addr : tables -> card_size:int -> int -> int
(** Virtual address of the card-mark byte covering heap address [a]. *)

val remset_entry_addr : tables -> int -> int
(** Virtual address of the remembered-set flag covering heap address [a]. *)
