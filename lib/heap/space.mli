(** Block-structured address space.

    The heap is a contiguous run of granule-aligned blocks, each either
    allocated or free, described by side tables (a kind byte per granule
    plus block sizes recorded at both the first and last granule of each
    block — boundary tags — so that both address-order iteration and
    backward coalescing are O(1)).

    This module only manages the block structure; object contents, colors
    and the free lists live elsewhere.  The space can grow (the paper's
    JVM grows the heap from 1 MB towards a 32 MB maximum).

    The space also maintains an object-start {e crossing map}: for every
    [card_size]-byte window it records the first block start inside the
    window (or that there is none), updated in O(1) on split, coalesce and
    grow.  The collector's card scan uses it through
    {!iter_block_starts_on_card} to enumerate the objects of a dirty card
    without probing granule by granule. *)

type t

type kind = Free | Allocated

val create : ?card_size:int -> initial_bytes:int -> max_bytes:int -> unit -> t
(** A space with one free block of [initial_bytes].  Both sizes are rounded
    up to whole granules; [initial_bytes <= max_bytes] required.
    [card_size] fixes the window granularity of the crossing map (a power
    of two >= the granule, default one granule); the heap passes its card
    table's card size so the two agree on card indices. *)

val capacity : t -> int
(** Current size in bytes (growable up to [max_capacity]). *)

val max_capacity : t -> int

val grow : t -> want_bytes:int -> (int * int) option
(** [grow t ~want_bytes] extends the space by [want_bytes] (or as much as
    remains, if less but non-zero), returning the address and size of the
    new trailing free block.  The new block is {e not} merged with a
    preceding free block — block boundaries ahead of a concurrently
    sweeping cursor must never disappear; the next sweep merges the seam.
    [None] if the space is already at maximum capacity. *)

val is_block_start : t -> int -> bool
val kind_of : t -> int -> kind
(** Kind of the block starting at the given address.  Raises
    [Invalid_argument] if the address is not a block start. *)

val block_size : t -> int -> int
(** Size in bytes of the block starting at the given address. *)

val unsafe_kind : t -> int -> kind
(** Like {!kind_of} with no alignment or block-start validation; the
    address {e must} be a granule-aligned block start below the current
    capacity.  For iteration hot loops that walk header to header and so
    establish the precondition structurally (sweep, {!iter_blocks}). *)

val unsafe_size : t -> int -> int
(** Like {!block_size}, same precondition as {!unsafe_kind}. *)

val find_block_start : t -> int -> int
(** [find_block_start t a] is the start address of the block containing
    byte address [a] (walks backward over interior granules; O(block
    size)). *)

val set_kind : t -> int -> kind -> unit
(** Flip a block between allocated and free without changing its extent. *)

val split : t -> int -> first_bytes:int -> int
(** [split t addr ~first_bytes] splits the free block at [addr] so that the
    first part has exactly [first_bytes] (granule-rounded) bytes; returns
    the address of the second part, which remains free.  Raises
    [Invalid_argument] if the block is allocated or too small to split. *)

val coalesce_with_next : t -> int -> bool
(** [coalesce_with_next t addr] merges the free block at [addr] with its
    successor if that successor exists and is free.  Returns whether a
    merge happened.  The successor's block identity disappears; callers
    maintaining free lists must tolerate stale entries. *)

val next_block : t -> int -> int option
(** Start of the block following the one at the given address, or [None]
    at the end of the current capacity. *)

val prev_block : t -> int -> int option
(** Start of the preceding block, or [None] at address 0. *)

val iter_blocks : t -> (int -> kind -> int -> unit) -> unit
(** [iter_blocks t f] calls [f addr kind size_bytes] for every block in
    address order.  [f] must not change the block structure at or after
    the current address. *)

val iter_block_starts_on_card : t -> int -> (int -> kind -> int -> unit) -> unit
(** [iter_block_starts_on_card t card f] calls [f addr kind size_bytes]
    for every block whose start address lies in card [card] (a
    [card_size]-byte window, per {!create}), in address order: one O(1)
    crossing-map lookup, then header-to-header hops.  [f] must not change
    the block structure.  Out-of-range card indices iterate nothing. *)

val allocated_bytes : t -> int
(** Total bytes currently in allocated blocks. *)

val free_bytes : t -> int
(** Total bytes currently in free blocks (= capacity - allocated). *)

val check : t -> (unit, string) result
(** Verify structural invariants (contiguity, boundary-tag agreement,
    accounting, crossing-map consistency); used by tests. *)
