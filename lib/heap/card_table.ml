type t = { card_size : int; shift : int; marks : Bytes.t }

let create ~card_size ~max_heap_bytes =
  if card_size < 16 || card_size > 4096 || not (Otfgc_support.Bits.is_pow2 card_size)
  then invalid_arg "Card_table.create: card size must be a power of two in [16,4096]";
  let n = (max_heap_bytes + card_size - 1) / card_size in
  { card_size; shift = Otfgc_support.Bits.log2_exact card_size; marks = Bytes.make n '\000' }

let card_size t = t.card_size
let n_cards t = Bytes.length t.marks
let card_of_addr t addr = addr lsr t.shift

let mark t addr = Bytes.set t.marks (addr lsr t.shift) '\001'
let clear_card t card = Bytes.set t.marks card '\000'
let mark_card t card = Bytes.set t.marks card '\001'
let is_dirty t card = Bytes.get t.marks card <> '\000'
let clear_all t = Bytes.fill t.marks 0 (Bytes.length t.marks) '\000'

(* At small card sizes clean cards vastly outnumber dirty ones
   (Section 8.5.3: scanning the card table itself dominates partial
   collections at 16-byte cards), so both scans below probe eight mark
   bytes at a time with one 64-bit load and fall into the byte loop
   only for a non-zero word. *)

let dirty_count t =
  let marks = t.marks in
  let n = Bytes.length marks in
  let n_words = n lsr 3 in
  let count = ref 0 in
  for w = 0 to n_words - 1 do
    if Bytes.get_int64_ne marks (w lsl 3) <> 0L then
      for i = w lsl 3 to (w lsl 3) + 7 do
        if Bytes.unsafe_get marks i <> '\000' then incr count
      done
  done;
  for i = n_words lsl 3 to n - 1 do
    if Bytes.get marks i <> '\000' then incr count
  done;
  !count

let card_bounds t card = (card * t.card_size, (card + 1) * t.card_size)

let iter_dirty t f =
  let marks = t.marks in
  let n = Bytes.length marks in
  let n_words = n lsr 3 in
  for w = 0 to n_words - 1 do
    (* The callback may clear or set marks, so once a word tests
       non-zero every one of its cards is re-read individually — the
       word probe only licenses skipping wholly-clean words, which the
       callback cannot have touched (it only runs for cards at or
       before the probe position). *)
    if Bytes.get_int64_ne marks (w lsl 3) <> 0L then
      for card = w lsl 3 to (w lsl 3) + 7 do
        if Bytes.get marks card <> '\000' then f card
      done
  done;
  for card = n_words lsl 3 to n - 1 do
    if Bytes.get marks card <> '\000' then f card
  done
