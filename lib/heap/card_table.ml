type t = { card_size : int; shift : int; marks : Bytes.t }

let create ~card_size ~max_heap_bytes =
  if card_size < 16 || card_size > 4096 || card_size land (card_size - 1) <> 0
  then invalid_arg "Card_table.create: card size must be a power of two in [16,4096]";
  let n = (max_heap_bytes + card_size - 1) / card_size in
  let shift =
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 card_size 0
  in
  { card_size; shift; marks = Bytes.make n '\000' }

let card_size t = t.card_size
let n_cards t = Bytes.length t.marks
let card_of_addr t addr = addr lsr t.shift

let mark t addr = Bytes.set t.marks (addr lsr t.shift) '\001'
let clear_card t card = Bytes.set t.marks card '\000'
let mark_card t card = Bytes.set t.marks card '\001'
let is_dirty t card = Bytes.get t.marks card <> '\000'
let clear_all t = Bytes.fill t.marks 0 (Bytes.length t.marks) '\000'

let dirty_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.marks;
  !n

let card_bounds t card = (card * t.card_size, (card + 1) * t.card_size)

let iter_dirty t f =
  for card = 0 to Bytes.length t.marks - 1 do
    if is_dirty t card then f card
  done
