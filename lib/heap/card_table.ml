(* Marks live in an array of atomic words, 32 cards per word (bit i of
   word w covers card w*32 + i).  The paper stresses that a card's mark
   must not share its cell with unrelated data or every pointer store
   would need a compare-and-swap; packing marks into shared words does
   reintroduce the CAS, but only against OTHER CARDS' MARKS — a
   contended retry costs one loop iteration, never a lost mark, and the
   real-domains substrate needs the mark itself to be an atomic
   (sequentially consistent) store so the collector's 3-step
   clear-scan-remark protocol observes marks and slot values in an order
   the Section 7.2 race argument covers.  The cooperative substrate
   performs the same get/CAS without contention, so simulated schedules
   are unchanged. *)

let word_shift = 5
let word_bits = 1 lsl word_shift (* 32 cards per word *)

type t = {
  card_size : int;
  shift : int;
  n_cards : int;
  words : int Atomic.t array;
}

let create ~card_size ~max_heap_bytes =
  if card_size < 16 || card_size > 4096 || not (Otfgc_support.Bits.is_pow2 card_size)
  then invalid_arg "Card_table.create: card size must be a power of two in [16,4096]";
  let n = (max_heap_bytes + card_size - 1) / card_size in
  let n_words = (n + word_bits - 1) lsr word_shift in
  {
    card_size;
    shift = Otfgc_support.Bits.log2_exact card_size;
    n_cards = n;
    words = Array.init n_words (fun _ -> Atomic.make 0);
  }

let card_size t = t.card_size
let n_cards t = t.n_cards
let card_of_addr t addr = addr lsr t.shift

let rec fetch_or a bit =
  let old = Atomic.get a in
  if old land bit <> bit then
    if not (Atomic.compare_and_set a old (old lor bit)) then fetch_or a bit

let rec fetch_andnot a bit =
  let old = Atomic.get a in
  if old land bit <> 0 then
    if not (Atomic.compare_and_set a old (old land lnot bit)) then
      fetch_andnot a bit

let mark_card t card =
  fetch_or t.words.(card lsr word_shift) (1 lsl (card land (word_bits - 1)))

let mark t addr = mark_card t (addr lsr t.shift)

let clear_card t card =
  fetch_andnot t.words.(card lsr word_shift) (1 lsl (card land (word_bits - 1)))

let is_dirty t card =
  Atomic.get t.words.(card lsr word_shift) land (1 lsl (card land (word_bits - 1)))
  <> 0

let clear_all t = Array.iter (fun a -> Atomic.set a 0) t.words

(* At small card sizes clean cards vastly outnumber dirty ones
   (Section 8.5.3: scanning the card table itself dominates partial
   collections at 16-byte cards), so both scans below probe a whole
   32-card word at a time and fall into the bit loop only for a non-zero
   word. *)

let dirty_count t =
  let count = ref 0 in
  Array.iter
    (fun a ->
      let v = Atomic.get a in
      if v <> 0 then count := !count + Otfgc_support.Bits.popcount v)
    t.words;
  !count

let card_bounds t card = (card * t.card_size, (card + 1) * t.card_size)

let iter_dirty t f =
  let n_words = Array.length t.words in
  for w = 0 to n_words - 1 do
    (* The callback may clear or set marks, so once a word tests
       non-zero every one of its cards is re-read individually — the
       word probe only licenses skipping wholly-clean words, which the
       callback cannot have touched (it only runs for cards at or
       before the probe position). *)
    if Atomic.get t.words.(w) <> 0 then
      let base = w lsl word_shift in
      let last = Stdlib.min (base + word_bits - 1) (t.n_cards - 1) in
      for card = base to last do
        if is_dirty t card then f card
      done
  done
