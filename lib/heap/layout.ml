let granule = 16
let page_size = 4096

(* Both sizes are powers of two; derive the shifts once and index by
   shifting, as every table lookup sits on the simulator's hot path. *)
let granule_shift = Otfgc_support.Bits.log2_exact granule
let page_shift = Otfgc_support.Bits.log2_exact page_size

let granules_of_bytes b = (b + granule - 1) lsr granule_shift
let bytes_of_granules g = g lsl granule_shift
let granule_index addr = addr lsr granule_shift
let page_of_addr addr = addr lsr page_shift

type tables = {
  heap_base : int;
  color_table_base : int;
  age_table_base : int;
  card_table_base : int;
  remset_table_base : int;
  virtual_span : int;
}

let make_tables ~max_heap_bytes ~card_size =
  if max_heap_bytes <= 0 then invalid_arg "Layout.make_tables: empty heap";
  if card_size < granule || not (Otfgc_support.Bits.is_pow2 card_size) then
    invalid_arg "Layout.make_tables: card size must be a power of two >= 16";
  let n_granules = granules_of_bytes max_heap_bytes in
  let n_cards = (max_heap_bytes + card_size - 1) / card_size in
  let color_table_base = max_heap_bytes in
  let age_table_base = color_table_base + n_granules in
  let card_table_base = age_table_base + n_granules in
  let remset_table_base = card_table_base + n_cards in
  let virtual_span = remset_table_base + n_granules in
  {
    heap_base = 0;
    color_table_base;
    age_table_base;
    card_table_base;
    remset_table_base;
    virtual_span;
  }

let color_entry_addr t a = t.color_table_base + granule_index a
let age_entry_addr t a = t.age_table_base + granule_index a
let card_entry_addr t ~card_size a = t.card_table_base + (a / card_size)
let remset_entry_addr t a = t.remset_table_base + granule_index a
