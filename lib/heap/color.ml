type t = Blue | C0 | C1 | Gray | Black

let equal a b =
  match (a, b) with
  | Blue, Blue | C0, C0 | C1, C1 | Gray, Gray | Black, Black -> true
  | _ -> false

let to_string = function
  | Blue -> "blue"
  | C0 -> "c0"
  | C1 -> "c1"
  | Gray -> "gray"
  | Black -> "black"

let pp ppf c = Format.pp_print_string ppf (to_string c)

let to_byte = function
  | Blue -> '\000'
  | C0 -> '\001'
  | C1 -> '\002'
  | Gray -> '\003'
  | Black -> '\004'

let of_byte = function
  | '\000' -> Blue
  | '\001' -> C0
  | '\002' -> C1
  | '\003' -> Gray
  | '\004' -> Black
  | c -> invalid_arg (Printf.sprintf "Color.of_byte: %d" (Char.code c))

let other = function
  | C0 -> C1
  | C1 -> C0
  | c -> invalid_arg ("Color.other: not a toggling color: " ^ to_string c)
