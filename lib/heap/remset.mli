(** Remembered set — the alternative to card marking the paper weighs in
    Section 3.1.

    A remembered set records the exact objects into which the mutator has
    stored pointers, instead of dirtying fixed-size cards.  The paper
    rejected it for two reasons: pointer stores must stay minimal (the
    deduplication test adds work to every store), and their JVM had no
    spare header bit for the "already remembered" flag.  This simulator's
    side tables have room, so the variant exists as an ablation: one
    "remembered" bit per granule plus an append-only buffer of object
    addresses.

    The mutator-side operation is {!record}: test the bit, set it, append
    the address — constant time, no scanning.  The collector drains the
    buffer at the start of a partial collection and clears the bits; the
    recorded addresses are exact, so there is no analogue of scanning a
    card for the objects on it. *)

type t

val create : max_heap_bytes:int -> t
(** Empty set covering a heap of at most [max_heap_bytes] bytes. *)

val record : t -> int -> bool
(** [record t addr] remembers the object starting at [addr].  Returns
    [true] if it was newly added, [false] if it was already present
    (deduplicated by the granule bit). *)

val mem : t -> int -> bool
(** Whether the object is currently remembered. *)

val size : t -> int
(** Number of distinct remembered objects. *)

val drain : t -> int list
(** All remembered object addresses in recording order; empties the set
    and clears every bit. *)

val clear : t -> unit
(** Forget everything (full-collection initialisation). *)

val forget : t -> int -> unit
(** Drop the dedup flag for one address (called when the object is freed,
    so a later object reusing the granule can be recorded afresh; any
    stale buffer entry is skipped by the collector's liveness guard). *)

val max_size : t -> int
(** High-water mark of {!size} since creation (space-cost reporting). *)
