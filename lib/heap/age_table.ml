type t = Bytes.t

let create ~max_heap_bytes = Bytes.make (Layout.granules_of_bytes max_heap_bytes) '\000'

let idx addr = Layout.granule_index addr

let get t addr = Char.code (Bytes.get t (idx addr))

let set t addr v =
  let v = if v < 0 then 0 else if v > 255 then 255 else v in
  Bytes.set t (idx addr) (Char.chr v)

let incr t addr =
  let v = get t addr in
  if v < 255 then Bytes.set t (idx addr) (Char.chr (v + 1))
