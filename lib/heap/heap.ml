type config = { initial_bytes : int; max_bytes : int; card_size : int }

let default_config =
  { initial_bytes = 1 lsl 20; max_bytes = 8 lsl 20; card_size = 16 }

type t = {
  config : config;
  space : Space.t;
  freelist : Freelist.t;
  cards : Card_table.t;
  ages : Age_table.t;
  remset : Remset.t;
  layout : Layout.tables;
  colors : Bytes.t; (* one byte per granule, Color.to_byte encoding *)
  slots : int array array; (* per start granule; [||] when not an object *)
  datas : int array array; (* scalar (non-pointer) words, same indexing *)
  mutable total_alloc_bytes : int;
  mutable total_alloc_objects : int;
  (* Reusable snapshot buffer for iter_objects_on_card (see below). *)
  mutable card_scratch : int array;
}

let nil = -1
let no_slots : int array = [||]

let create config =
  if config.initial_bytes <= 0 || config.initial_bytes > config.max_bytes then
    invalid_arg "Heap.create: need 0 < initial_bytes <= max_bytes";
  let space =
    Space.create ~card_size:config.card_size ~initial_bytes:config.initial_bytes
      ~max_bytes:config.max_bytes ()
  in
  let n_granules = Layout.granules_of_bytes config.max_bytes in
  {
    config;
    space;
    freelist = Freelist.create space;
    cards = Card_table.create ~card_size:config.card_size ~max_heap_bytes:config.max_bytes;
    ages = Age_table.create ~max_heap_bytes:config.max_bytes;
    remset = Remset.create ~max_heap_bytes:config.max_bytes;
    layout = Layout.make_tables ~max_heap_bytes:config.max_bytes ~card_size:config.card_size;
    colors = Bytes.make n_granules (Color.to_byte Color.Blue);
    slots = Array.make n_granules no_slots;
    datas = Array.make n_granules no_slots;
    total_alloc_bytes = 0;
    total_alloc_objects = 0;
    card_scratch = Array.make 64 0;
  }

let config t = t.config
let space t = t.space
let cards t = t.cards
let ages t = t.ages
let remset t = t.remset
let freelist t = t.freelist
let layout t = t.layout

let gi = Layout.granule_index

let color t addr = Color.of_byte (Bytes.get t.colors (gi addr))
let set_color t addr c = Bytes.set t.colors (gi addr) (Color.to_byte c)

let is_object t addr =
  addr >= 0
  && addr < Space.capacity t.space
  && addr land (Layout.granule - 1) = 0
  && Space.is_block_start t.space addr
  && Space.kind_of t.space addr = Space.Allocated

let size t addr = Space.block_size t.space addr
let n_slots t addr = Array.length t.slots.(gi addr)

let get_slot t x i = t.slots.(gi x).(i)
let set_slot t x i y = t.slots.(gi x).(i) <- y

let n_data t addr = Array.length t.datas.(gi addr)
let get_data t x i = t.datas.(gi x).(i)
let set_data t x i v = t.datas.(gi x).(i) <- v

let iter_slots t x f =
  let s = t.slots.(gi x) in
  for i = 0 to Array.length s - 1 do
    if s.(i) <> nil then f s.(i)
  done

let alloc t ~size ~n_slots ~color =
  let min_size = 16 + (8 * n_slots) in
  if size < min_size then
    invalid_arg
      (Printf.sprintf "Heap.alloc: size %d too small for %d slots" size n_slots);
  match Freelist.pop t.freelist ~bytes_wanted:size with
  | None -> None
  | Some addr ->
      Space.set_kind t.space addr Space.Allocated;
      set_color t addr color;
      Age_table.set t.ages addr 0;
      t.slots.(gi addr) <- (if n_slots = 0 then no_slots else Array.make n_slots nil);
      let real = Space.block_size t.space addr in
      (* the bytes beyond the header and the pointer slots are scalar
         fields, one 8-byte word each *)
      let n_data = (real - 16 - (8 * n_slots)) / 8 in
      t.datas.(gi addr) <- (if n_data = 0 then no_slots else Array.make n_data 0);
      t.total_alloc_bytes <- t.total_alloc_bytes + real;
      t.total_alloc_objects <- t.total_alloc_objects + 1;
      Some addr

(* --- Reserved blocks (real-domains allocation caches) ---------------

   A reserved block has been popped from the free list and claimed by one
   mutator's cache, but not yet issued as an object: kind [Allocated] so
   no other allocation can take it, color [Blue] so every collector walk
   (sweep, census, card scan, full-collection init) recognises it as
   not-an-object and skips it.  The simulator never creates this state,
   so all simulated figures are untouched.  [reserve]/[release_reserved]
   mutate the block structure and must run under the runtime's heap lock;
   [issue] touches only the block's own granule entries and runs
   lock-free on the owning mutator's domain. *)

let reserve t ~size =
  match Freelist.pop t.freelist ~bytes_wanted:size with
  | None -> None
  | Some addr ->
      Space.set_kind t.space addr Space.Allocated;
      set_color t addr Color.Blue;
      Some addr

let issue t addr ~n_slots ~color =
  set_color t addr color;
  Age_table.set t.ages addr 0;
  t.slots.(gi addr) <- (if n_slots = 0 then no_slots else Array.make n_slots nil);
  let real = Space.block_size t.space addr in
  let n_data = (real - 16 - (8 * n_slots)) / 8 in
  t.datas.(gi addr) <- (if n_data = 0 then no_slots else Array.make n_data 0);
  real

let release_reserved t addr =
  set_color t addr Color.Blue;
  Space.set_kind t.space addr Space.Free;
  Freelist.push t.freelist addr

let add_alloc_stats t ~bytes ~objects =
  t.total_alloc_bytes <- t.total_alloc_bytes + bytes;
  t.total_alloc_objects <- t.total_alloc_objects + objects

let free t addr =
  if not (is_object t addr) then
    invalid_arg (Printf.sprintf "Heap.free: %d is not an allocated object" addr);
  set_color t addr Color.Blue;
  t.slots.(gi addr) <- no_slots;
  t.datas.(gi addr) <- no_slots;
  (* drop the remembered-set dedup flag, or a new object reusing this
     granule could never be recorded again *)
  Remset.forget t.remset addr;
  Space.set_kind t.space addr Space.Free;
  Freelist.push t.freelist addr

let merge_free_prev t addr =
  if Space.kind_of t.space addr <> Space.Free then
    invalid_arg "Heap.merge_free_prev: block is not free";
  match Space.prev_block t.space addr with
  | Some p when Space.kind_of t.space p = Space.Free ->
      ignore (Space.coalesce_with_next t.space p : bool);
      Freelist.push t.freelist p;
      p
  | _ -> addr

let grow t ~want_bytes =
  match Space.grow t.space ~want_bytes with
  | None -> false
  | Some (addr, _size) ->
      (* Space.grow deliberately never merges the new block with a trailing
         free block (boundaries ahead of a concurrent sweep cursor must not
         disappear), so no freelist entry can have gone stale here: the new
         block just needs its own entry.  The next sweep merges the seam. *)
      Freelist.push t.freelist addr;
      true

let iter_objects t f =
  Space.iter_blocks t.space (fun addr kind _size ->
      if kind = Space.Allocated then f addr)

(* The space's crossing map (same card geometry as the card table) jumps
   straight to the card's first block; the allocated starts are snapshotted
   into a reusable scratch buffer BEFORE the callback runs.  The snapshot
   is semantically load-bearing, not just a loop shape: the collector's
   card-scan callbacks contain scheduling points, so under fine-grained
   interleaving a mutator may split blocks on this very card mid-scan, and
   an incremental walk would see objects the old list-returning API (which
   also snapshotted) never did.  Not reentrant: the callback must not
   itself call iter_objects_on_card (the collector scans one card at a
   time). *)
let iter_objects_on_card t card f =
  let scratch = ref t.card_scratch in
  let len = ref 0 in
  Space.iter_block_starts_on_card t.space card (fun addr kind _size ->
      if kind = Space.Allocated then begin
        if !len = Array.length !scratch then begin
          let bigger = Array.make (2 * !len) 0 in
          Array.blit !scratch 0 bigger 0 !len;
          t.card_scratch <- bigger;
          scratch := bigger
        end;
        Array.unsafe_set !scratch !len addr;
        incr len
      end);
  let scratch = !scratch in
  for i = 0 to !len - 1 do
    f (Array.unsafe_get scratch i)
  done

(* Same walk with a caller-owned scratch buffer, so several collector
   workers can scan disjoint cards concurrently (the shared
   [t.card_scratch] above makes the default variant single-caller). *)
let iter_objects_on_card_buf t ~scratch card f =
  let len = ref 0 in
  Space.iter_block_starts_on_card t.space card (fun addr kind _size ->
      if kind = Space.Allocated then begin
        if !len = Array.length !scratch then begin
          let bigger = Array.make (2 * !len) 0 in
          Array.blit !scratch 0 bigger 0 !len;
          scratch := bigger
        end;
        Array.unsafe_set !scratch !len addr;
        incr len
      end);
  let buf = !scratch in
  for i = 0 to !len - 1 do
    f (Array.unsafe_get buf i)
  done

let objects_on_card t card =
  let acc = ref [] in
  iter_objects_on_card t card (fun addr -> acc := addr :: !acc);
  List.rev !acc

let capacity t = Space.capacity t.space
let max_capacity t = Space.max_capacity t.space
let allocated_bytes t = Space.allocated_bytes t.space
let free_bytes t = Space.free_bytes t.space
let total_allocated_bytes t = t.total_alloc_bytes
let total_allocated_objects t = t.total_alloc_objects

let reset_allocation_stats t =
  t.total_alloc_bytes <- 0;
  t.total_alloc_objects <- 0

let object_count t =
  let n = ref 0 in
  iter_objects t (fun _ -> incr n);
  !n

let check ?(check_slots = true) t =
  match Space.check t.space with
  | Error _ as e -> e
  | Ok () ->
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      Space.iter_blocks t.space (fun addr kind _size ->
          match kind with
          | Space.Free ->
              if not (Color.equal (color t addr) Color.Blue) then
                fail "free block %d is %s, expected blue" addr
                  (Color.to_string (color t addr))
          | Space.Allocated ->
              if Color.equal (color t addr) Color.Blue then
                fail "allocated object %d is blue" addr;
              if check_slots then
                iter_slots t addr (fun y ->
                    if not (is_object t y) then
                      fail "object %d has dangling slot -> %d" addr y));
      (match !err with None -> Ok () | Some e -> Error e)
