(** Object colors for the on-the-fly tri-color collectors.

    The paper uses five colors: [Blue] for free chunks, [Gray] and [Black]
    for the classic tri-color trace, and a pair of colors whose roles as
    "white" (clear color — candidates for reclamation) and "yellow"
    (allocation color — objects created during the current cycle) are
    exchanged by the color-toggle trick of Section 5.  We name the pair
    {!C0} and {!C1}; which one is currently the clear color is runtime
    state of each collector, not a property of the color itself. *)

type t = Blue | C0 | C1 | Gray | Black

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_byte : t -> char
(** Encoding used by the per-granule color table. *)

val of_byte : char -> t
(** Inverse of {!to_byte}.  Raises [Invalid_argument] on junk. *)

val other : t -> t
(** [other c] is the partner of a toggling color: [other C0 = C1] and vice
    versa.  Raises [Invalid_argument] on non-toggling colors. *)
