(** Page-touch accounting for Figure 15.

    The paper measures "the pages touched during trace and sweep, including
    all the tables the collector uses (such as the card table)".  The
    collector records every virtual byte range it reads or writes — heap
    object headers and slots, color-table entries, age-table entries and
    card-mark bytes — against the {!Layout.tables} virtual layout; the
    cardinality of the resulting 4 KB page set is the figure's metric. *)

type t

val create : Layout.tables -> t
(** Empty page set spanning the whole virtual layout. *)

val reset : t -> unit

val count : t -> int
(** Number of distinct pages touched since the last [reset]. *)

val merge_into : src:t -> dst:t -> unit
(** Union [src]'s touched pages into [dst].  Both must have been created
    from the same {!Layout.tables}.  Used by the parallel crew: workers
    touch private sets, merged into the shared one at the cycle barrier. *)

val touch_range : t -> int -> int -> unit
(** [touch_range t addr len] records the pages covering
    [addr .. addr+len-1]. *)

val touch_heap_object : t -> addr:int -> size:int -> unit
(** Heap pages occupied by an object. *)

val touch_color : t -> int -> unit
(** Color-table byte for the object at the given heap address. *)

val touch_age : t -> int -> unit
(** Age-table byte for the object at the given heap address. *)

val touch_card : t -> card_size:int -> int -> unit
(** Card-mark byte covering the given heap address. *)

val touch_card_index : t -> card_index:int -> unit
(** Card-mark byte by card index (card size encoded in the layout). *)

val touch_remset : t -> int -> unit
(** Remembered-set flag covering the given heap address. *)
