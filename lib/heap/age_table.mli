(** Side table of object ages for the aging collector (Section 6).

    One byte per granule (the paper keeps "a byte per age (although two or
    three bits are usually enough)"), indexed by the object's start
    address.  Kept outside the objects for sweep locality, exactly as the
    paper argues. *)

type t

val create : max_heap_bytes:int -> t

val get : t -> int -> int
(** Age of the object starting at the given heap address. *)

val set : t -> int -> int -> unit
(** Ages are clamped to [0, 255]. *)

val incr : t -> int -> unit
(** Add one to the age (saturating at 255). *)
