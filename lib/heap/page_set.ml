type t = { tables : Layout.tables; pages : Otfgc_support.Bitset.t }

let create tables =
  let n_pages = (tables.Layout.virtual_span + Layout.page_size - 1) / Layout.page_size in
  { tables; pages = Otfgc_support.Bitset.create n_pages }

let reset t = Otfgc_support.Bitset.clear t.pages

(* Per-worker page sets under a multi-worker crew: each worker records
   its own touches, and the orchestrator unions them into the shared set
   at the cycle barrier — the union over any partition of the work
   equals the serial set.  Both sets must span the same layout. *)
let merge_into ~src ~dst = Otfgc_support.Bitset.union_into ~dst:dst.pages src.pages

let count t = Otfgc_support.Bitset.cardinal t.pages

let touch_range t addr len =
  if len > 0 then begin
    let first = Layout.page_of_addr addr in
    let last = Layout.page_of_addr (addr + len - 1) in
    (* One word-blitting range-add instead of a bit store per page, so
       sweeping a large span costs O(pages/8) table writes. *)
    Otfgc_support.Bitset.add_range t.pages first (last - first + 1)
  end

let touch_heap_object t ~addr ~size = touch_range t addr size

let touch_color t heap_addr =
  touch_range t (Layout.color_entry_addr t.tables heap_addr) 1

let touch_age t heap_addr =
  touch_range t (Layout.age_entry_addr t.tables heap_addr) 1

let touch_card t ~card_size heap_addr =
  touch_range t (Layout.card_entry_addr t.tables ~card_size heap_addr) 1

let touch_card_index t ~card_index =
  touch_range t (t.tables.Layout.card_table_base + card_index) 1

let touch_remset t heap_addr =
  touch_range t (Layout.remset_entry_addr t.tables heap_addr) 1
