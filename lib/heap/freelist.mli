(** Segregated free lists over a {!Space.t}.

    Allocation policy: exact-fit from the size class, then best-effort
    split of a block from a larger class.  Each class is an int-array
    stack (entries pushed LIFO) and a one-word occupancy bitmap locates
    the smallest non-empty class with a single ctz probe, so the common
    [pop] is allocation-free and touches no empty class.  Because sweeping
    coalesces neighbouring free blocks behind the list's back, entries may
    go stale — [pop] validates each candidate against the space and
    discards stale ones in place (the standard trick for lock-free
    sweeping allocators, and cheap here), counting the discards.

    The DLG collector relies on thread-local allocation buffers to avoid
    mutator/collector contention; in the simulator every free-list
    operation is a single atomic step, which models the same absence of
    fine-grained interference. *)

type t

val create : Space.t -> t
(** Free lists seeded with every free block currently in the space. *)

val push : t -> int -> unit
(** [push t addr] registers the free block starting at [addr]. *)

val pop : t -> bytes_wanted:int -> int option
(** [pop t ~bytes_wanted] removes and returns the address of a free block
    resized to exactly [bytes_wanted] (granule-rounded): an exact-class
    block if available, otherwise a larger block is split and its remainder
    pushed back.  The returned block is still [Free] in the space; the
    caller marks it allocated.  [None] if nothing fits. *)

val rebuild : t -> unit
(** Drop all entries and re-seed from the space's current free blocks.
    Used after bulk coalescing at the end of a sweep. *)

val class_of_bytes : int -> int
(** Size-class index used internally; exposed for tests. *)

val entry_count : t -> int
(** Number of (possibly stale) entries currently queued; O(1). *)

val stale_entries : t -> int
(** Cumulative count of stale entries discarded by [pop] since creation
    ({!rebuild} drops entries wholesale and does not count them) — the
    invalidation pressure the sweep's coalescing puts on the lists; for
    stats and benchmarks. *)
