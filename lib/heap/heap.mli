(** The simulated Java heap: block space + free lists + object slots +
    color/age/card side tables.

    Objects are non-moving blocks with a granule-aligned start address, a
    byte size and a number of pointer slots.  Pointer slots hold object
    addresses or {!nil}.  Colors live in a side table (one byte per
    granule); the collectors read and write them through {!color} /
    {!set_color}, which are single atomic steps under the simulator's
    scheduling model.

    This module performs no garbage collection itself — the collectors in
    [lib/core] drive it — and no synchronisation: each exported operation
    models one atomic action of the paper's machine model (individual
    loads/stores are atomic; allocation is atomic because DLG mutators
    allocate from thread-local buffers). *)

type t

type config = {
  initial_bytes : int;  (** starting heap size (paper: 1 MB) *)
  max_bytes : int;      (** hard maximum (paper: 32 MB) *)
  card_size : int;      (** card-marking granularity, 16..4096 *)
}

val default_config : config
(** 1 MB initial, 8 MB max, 16-byte cards — the simulator's scaled-down
    defaults (see DESIGN.md section 4). *)

val create : config -> t

val config : t -> config
val space : t -> Space.t
val cards : t -> Card_table.t
val ages : t -> Age_table.t

(* The remembered set used when the collector is configured with
   remembered-set inter-generational tracking instead of card marking. *)
val remset : t -> Remset.t

(* The segregated free lists (read-only occupancy view for the census:
   [Freelist.entry_count] / [Freelist.stale_entries]). *)
val freelist : t -> Freelist.t
val layout : t -> Layout.tables

val nil : int
(** The null pointer ([-1]). *)

(** {2 Allocation} *)

val alloc : t -> size:int -> n_slots:int -> color:Color.t -> int option
(** Allocate a block of at least [size] bytes (granule-rounded) with
    [n_slots] pointer slots initialised to {!nil}, painted [color], age 0.
    Returns the object's address, or [None] if no free block fits (the
    caller decides whether to grow or to wait for the collector).
    [n_slots * 8 + 16 <= size] must hold: slots are 8-byte fields behind a
    16-byte header, as in the prototype JVM. *)

val free : t -> int -> unit
(** Reclaim the object at the given address: paint it {!Color.Blue},
    release its slots and return its block to the free lists.  Does not
    coalesce — sweep does, via {!merge_free_prev}. *)

(** {2 Reserved blocks (real-domains allocation caches)}

    A reserved block is claimed by one mutator's domain-local cache but
    not yet an object: kind [Allocated] (no other allocation can take
    it), color {!Color.Blue} (every collector walk skips it).  The
    simulator never creates this state.  {!reserve} and
    {!release_reserved} change shared block structure — call them under
    the runtime's heap lock; {!issue} touches only the block's own
    entries and is called lock-free by the owning mutator. *)

val reserve : t -> size:int -> int option
(** Pop a free block of exactly [size] bytes and park it reserved.  Does
    not touch the allocation counters ({!add_alloc_stats} flushes them in
    batches when objects are actually issued). *)

val issue : t -> int -> n_slots:int -> color:Color.t -> int
(** Turn a reserved block into a live object: paint [color], age 0,
    [n_slots] pointer slots at {!nil}, scalar words zeroed.  Returns the
    block's real byte size, which the caller accumulates for
    {!add_alloc_stats}. *)

val release_reserved : t -> int -> unit
(** Return a still-reserved block to the free list (cache drain at
    mutator retirement). *)

val add_alloc_stats : t -> bytes:int -> objects:int -> unit
(** Batched counterpart of the counter updates {!alloc} performs inline:
    add issued bytes/objects to the lifetime totals. *)

val merge_free_prev : t -> int -> int
(** [merge_free_prev t addr] merges the free block at [addr] into its
    predecessor if that predecessor is also free, returning the merged
    block's start (and pushing it to the free lists); otherwise returns
    [addr] unchanged.  Sweep calls this on every free block it passes, so
    runs of free blocks coalesce leftward without ever disturbing block
    boundaries ahead of the sweep cursor. *)

val grow : t -> want_bytes:int -> bool
(** Extend the heap towards [max_bytes]; [false] if already at maximum. *)

(** {2 Objects} *)

val is_object : t -> int -> bool
(** Whether an allocated object starts at the given address. *)

val size : t -> int -> int
(** Byte size of the object (its whole block). *)

val n_slots : t -> int -> int

val get_slot : t -> int -> int -> int
(** [get_slot t x i] is slot [i] of object [x] ([heap\[x,i\]]), possibly
    {!nil}. *)

val set_slot : t -> int -> int -> int -> unit
(** [set_slot t x i y] performs the raw store [heap\[x,i\] <- y] with no
    barrier — the collectors wrap it. *)

val iter_slots : t -> int -> (int -> unit) -> unit
(** Apply to every non-{!nil} slot value of the object. *)

(** {2 Scalar fields}

    The bytes of an object beyond its header and pointer slots are scalar
    (non-pointer) 8-byte words — character data, numbers.  They carry no
    write barrier: the collector never needs to see them (the paper's
    barrier fires only on stores of references). *)

val n_data : t -> int -> int
(** Number of scalar words of the object. *)

val get_data : t -> int -> int -> int
val set_data : t -> int -> int -> int -> unit

val color : t -> int -> Color.t
val set_color : t -> int -> Color.t -> unit

val iter_objects : t -> (int -> unit) -> unit
(** Every allocated object address, in address order.  The callback must
    not free objects at or after the current address (sweep uses the block
    iteration below instead). *)

val iter_objects_on_card : t -> int -> (int -> unit) -> unit
(** Apply to the address of every allocated object whose start address
    lies on the given card, in address order (an object "on a card" in
    the paper's sense: the card scan walks objects starting on the card).
    Powered by the space's crossing map — one lookup, then
    header-to-header hops — with no per-card allocation: the object set
    is snapshotted into an internal scratch buffer before the callback
    runs, so the iteration is insensitive to blocks the callback (or a
    mutator at one of its scheduling points) splits on the card.  Not
    reentrant. *)

val iter_objects_on_card_buf :
  t -> scratch:int array ref -> int -> (int -> unit) -> unit
(** {!iter_objects_on_card} with a caller-owned scratch buffer (grown in
    place as needed), so parallel collector workers scanning disjoint
    cards never share snapshot state. *)

val objects_on_card : t -> int -> int list
(** Same object set as a fresh list; for tests — the collector uses
    {!iter_objects_on_card}. *)

(** {2 Accounting} *)

val capacity : t -> int
val max_capacity : t -> int
val allocated_bytes : t -> int
val free_bytes : t -> int
val total_allocated_bytes : t -> int
(** Cumulative bytes ever allocated. *)

val total_allocated_objects : t -> int

val reset_allocation_stats : t -> unit
(** Zero the cumulative allocation counters (end-of-warmup reset). *)

val object_count : t -> int
(** Currently live (allocated) object count; O(heap). *)

val check : ?check_slots:bool -> t -> (unit, string) result
(** Structural invariants: space consistency, free blocks are blue,
    allocated objects are not blue and — with [check_slots] (default
    [true]) — slot pointers reference allocated objects or nil.  The slot
    check is only meaningful at quiescence after garbage has been fully
    collected: an {e unreachable} object may legitimately point to an
    already-reclaimed one mid-run (sweep order, floating garbage), which is
    harmless precisely because nothing reachable can see it. *)
