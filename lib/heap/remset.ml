type t = {
  bits : Bytes.t; (* one "already remembered" flag per granule *)
  mutable buffer : int list; (* recorded object addresses, newest first *)
  mutable size : int;
  mutable max_size : int;
}

let create ~max_heap_bytes =
  { bits = Bytes.make (Layout.granules_of_bytes max_heap_bytes) '\000';
    buffer = [];
    size = 0;
    max_size = 0 }

let idx addr = Layout.granule_index addr

let mem t addr = Bytes.get t.bits (idx addr) <> '\000'

let record t addr =
  if mem t addr then false
  else begin
    Bytes.set t.bits (idx addr) '\001';
    t.buffer <- addr :: t.buffer;
    t.size <- t.size + 1;
    if t.size > t.max_size then t.max_size <- t.size;
    true
  end

let size t = t.size
let max_size t = t.max_size

let drain t =
  let entries = List.rev t.buffer in
  List.iter (fun a -> Bytes.set t.bits (idx a) '\000') entries;
  t.buffer <- [];
  t.size <- 0;
  entries

let clear t = ignore (drain t : int list)

let forget t addr = Bytes.set t.bits (idx addr) '\000'
