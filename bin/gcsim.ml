(* gcsim — command-line driver for the on-the-fly GC simulator.

   Subcommands:
     gcsim list                         available workloads and figures
     gcsim run -w anagram -m gen ...    run one workload, print its summary
     gcsim compare -w anagram ...       run generational vs baseline
     gcsim fig fig9 ...                 reproduce selected paper figures *)

open Cmdliner
module Heap = Otfgc_heap.Heap
module Gc_config = Otfgc.Gc_config
module Profile = Otfgc_workloads.Profile
module Driver = Otfgc_workloads.Driver
module Run_result = Otfgc_metrics.Run_result
module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Textable = Otfgc_support.Textable

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  let doc =
    "Workload to run: mtrt, compress, db, jess, javac, jack, anagram, or \
     raytracer-N (N render threads)."
  in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc)

let mode_arg =
  let doc =
    "Collector: gen (default), nongen, aging:N (tenure threshold N),      remset (generational with remembered sets), or adaptive (dynamic      tenuring)."
  in
  Arg.(value & opt string "gen" & info [ "m"; "mode" ] ~doc)

let card_arg =
  let doc = "Card size in bytes (power of two, 16..4096)." in
  Arg.(value & opt int 16 & info [ "card" ] ~doc)

let young_arg =
  let doc = "Young-generation trigger in KiB (paper 4 MB = 512 here)." in
  Arg.(value & opt int 512 & info [ "young" ] ~doc)

let scale_arg =
  let doc = "Allocation-volume scale factor." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Random seed (scheduler and workload)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let parse_workload name =
  match Profile.find name with
  | Some p -> Ok p
  | None -> (
      match String.index_opt name '-' with
      | Some i when String.sub name 0 i = "raytracer" -> (
          match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
          | Some n when n >= 1 -> Ok (Profile.raytracer ~threads:n)
          | _ -> Error (`Msg (Printf.sprintf "bad thread count in %S" name)))
      | _ -> Error (`Msg (Printf.sprintf "unknown workload %S (try: gcsim list)" name)))

let parse_mode ~young s =
  let young_bytes = young * 1024 in
  match s with
  | "gen" -> Ok (Gc_config.generational ~young_bytes:young_bytes ())
  | "nongen" ->
      Ok { Gc_config.non_generational with Gc_config.young_bytes }
  | "remset" ->
      Ok
        (Gc_config.generational ~young_bytes
           ~intergen:Gc_config.Remembered_set ())
  | "adaptive" -> Ok (Gc_config.adaptive ~young_bytes ())
  | s when String.length s > 6 && String.sub s 0 6 = "aging:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 1 -> Ok (Gc_config.aging ~young_bytes ~oldest_age:n ())
      | _ -> Error (`Msg "aging threshold must be a positive integer"))
  | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown mode %S (gen|nongen|aging:N|remset|adaptive)" s))

let heap_of_card card = { Driver.default_heap with Heap.card_size = card }

(* ------------------------------------------------------------------ *)
(* gcsim list                                                          *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "Workloads (synthetic models of the paper's benchmarks):";
    List.iter
      (fun p -> Printf.printf "  %-10s %s\n" p.Profile.name p.Profile.description)
      Profile.all;
    Printf.printf "  %-10s %s\n" "raytracer-N"
      (Profile.raytracer ~threads:2).Profile.description;
    print_newline ();
    print_endline "Figures (paper evaluation tables; see EXPERIMENTS.md):";
    List.iter
      (fun e -> Printf.printf "  %-6s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and reproducible figures.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* gcsim run                                                           *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let trace_arg =
    let doc = "Print the collector's phase-event timeline after the run." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run workload mode card young scale seed trace =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc ->
            let heap = heap_of_card card in
            if trace then begin
              (* re-create the driver's wiring with the event log enabled *)
              let rt = Otfgc.Runtime.create ~heap_config:heap ~gc_config:gc () in
              Otfgc.Runtime.set_fine_grained rt false;
              let st = Otfgc.Runtime.state rt in
              Otfgc.Event_log.set_enabled st.Otfgc.State.events true;
              let module Sched = Otfgc_sched.Sched in
              let module Rng = Otfgc_support.Rng in
              let master = Rng.make seed in
              let sched =
                Sched.create ~policy:(Sched.random_policy (Rng.split master)) ()
              in
              ignore (Otfgc.Runtime.spawn_collector rt sched);
              let quota =
                Stdlib.max 1
                  (int_of_float (float_of_int profile.Profile.total_alloc *. scale))
              in
              for i = 0 to profile.Profile.threads - 1 do
                let name = Printf.sprintf "t%d" i in
                let m = Otfgc.Runtime.new_mutator rt ~name () in
                let rng = Rng.split master in
                ignore
                  (Sched.spawn sched ~name (fun () ->
                       Otfgc_workloads.Engine.run_thread rt m rng ~profile ~quota ();
                       Otfgc.Runtime.retire_mutator rt m))
              done;
              Sched.run sched;
              Format.printf "%a@." Run_result.pp
                (Run_result.of_runtime ~workload:profile.Profile.name rt);
              Format.printf "@.phase timeline (elapsed work units):@.%a@?"
                Otfgc.Event_log.pp_timeline st.Otfgc.State.events
            end
            else begin
              let r = Driver.run ~heap ~seed ~scale ~gc profile in
              Format.printf "%a@." Run_result.pp r
            end;
            0)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one collector and print its summary.")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* gcsim compare                                                       *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run workload mode card young scale seed =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc ->
            let cand, base =
              Driver.run_pair ~heap:(heap_of_card card) ~seed ~scale ~gc profile
            in
            Format.printf "--- %s ---@.%a@.@." cand.Run_result.mode
              Run_result.pp cand;
            Format.printf "--- baseline (%s) ---@.%a@.@." base.Run_result.mode
              Run_result.pp base;
            Format.printf
              "improvement: %.1f%% (multiprocessor), %.1f%% (uniprocessor)@."
              (Run_result.improvement_pct ~baseline:base cand ~multiprocessor:true)
              (Run_result.improvement_pct ~baseline:base cand
                 ~multiprocessor:false);
            0)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run a workload under the chosen collector and the non-generational \
          baseline; print both summaries and the improvement.")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* gcsim fig                                                           *)
(* ------------------------------------------------------------------ *)

let fig_cmd =
  let ids_arg =
    let doc = "Figure ids (fig7..fig23); none = all." in
    Arg.(value & pos_all string [] & info [] ~docv:"FIG" ~doc)
  in
  let jobs_arg =
    let doc =
      "Simulation parallelism: fan independent runs out across N domains \
       (default: $(b,OTFGC_JOBS) or the recommended domain count; 1 = \
       sequential).  Results are identical for every N."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~doc)
  in
  let no_cache_arg =
    let doc = "Do not read or write the persistent _cache/ directory." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let run ids scale seed jobs no_cache =
    let entries =
      if ids = [] then Registry.all
      else
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown figure id %s\n" id;
                None)
          ids
    in
    let jobs = if jobs >= 1 then Some jobs else None in
    let cache_dir = if no_cache then None else Some "_cache" in
    let lab = Lab.create ~scale ~seed ?jobs ~cache_dir () in
    (* Submit every selected figure's grid as one batch, then render. *)
    Lab.prefetch lab (List.concat_map (fun e -> e.Registry.configs) entries);
    List.iter (fun e -> Textable.print (e.Registry.run lab)) entries;
    let c = Lab.counters lab in
    Printf.eprintf "cache: %d runs simulated, %d disk hits\n" c.Lab.computed
      c.Lab.disk_hits;
    0
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Reproduce paper figures (see EXPERIMENTS.md).")
    Term.(const run $ ids_arg $ scale_arg $ seed_arg $ jobs_arg $ no_cache_arg)

let () =
  let doc =
    "Simulator for 'A Generational On-the-fly Garbage Collector for Java' \
     (Domani, Kolodner, Petrank; PLDI 2000)."
  in
  let info = Cmd.info "gcsim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; compare_cmd; fig_cmd ]))
