(* gcsim — command-line driver for the on-the-fly GC simulator.

   Subcommands:
     gcsim list                         available workloads and figures
     gcsim run -w anagram -m gen ...    run one workload, print its summary
     gcsim compare -w anagram ...       run generational vs baseline
     gcsim fig fig9 ...                 reproduce selected paper figures *)

open Cmdliner
module Heap = Otfgc_heap.Heap
module Gc_config = Otfgc.Gc_config
module Profile = Otfgc_workloads.Profile
module Driver = Otfgc_workloads.Driver
module Run_result = Otfgc_metrics.Run_result
module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Textable = Otfgc_support.Textable
module Json = Otfgc_support.Json
module Telemetry_report = Otfgc_metrics.Telemetry
module Trace_export = Otfgc_metrics.Trace_export
module Report = Otfgc_metrics.Report
module Timeseries = Otfgc_support.Timeseries
module Observer = Otfgc_metrics.Observer
module Openmetrics = Otfgc_metrics.Openmetrics

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  let doc =
    "Workload to run: mtrt, compress, db, jess, javac, jack, anagram, or \
     raytracer-N (N render threads)."
  in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc)

let mode_arg =
  let doc =
    "Collector: gen (default), nongen, aging:N (tenure threshold N),      remset (generational with remembered sets), or adaptive (dynamic      tenuring)."
  in
  Arg.(value & opt string "gen" & info [ "m"; "mode" ] ~doc)

let card_arg =
  let doc = "Card size in bytes (power of two, 16..4096)." in
  Arg.(value & opt int 16 & info [ "card" ] ~doc)

let young_arg =
  let doc = "Young-generation trigger in KiB (paper 4 MB = 512 here)." in
  Arg.(value & opt int 512 & info [ "young" ] ~doc)

let scale_arg =
  let doc = "Allocation-volume scale factor." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Random seed (scheduler and workload)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let substrate_arg =
  let doc =
    "Execution substrate: sim (default; deterministic cooperative \
     simulator) or domains (every mutator and the collector on its own \
     OCaml domain — real atomics, real wall clock, schedules not \
     reproducible)."
  in
  Arg.(value & opt string "sim" & info [ "substrate" ] ~doc)

let mutators_arg =
  let doc =
    "Override the workload's mutator thread count (e.g. for domain-count \
     sweeps)."
  in
  Arg.(value & opt (some int) None & info [ "mutators" ] ~docv:"N" ~doc)

let gc_workers_arg =
  let doc =
    "Collection crew width: the collector domain plus N-1 helper domains \
     share card scanning, tracing (work-stealing deques) and sweeping.  \
     Requires --substrate domains when > 1; 1 (default) is the serial \
     collector."
  in
  Arg.(value & opt int 1 & info [ "gc-workers" ] ~docv:"N" ~doc)

let parse_substrate = function
  | "sim" -> Ok Otfgc_sched.Substrate.Sim
  | "domains" -> Ok Otfgc_sched.Substrate.Domains
  | s -> Error (`Msg (Printf.sprintf "unknown substrate %S (sim|domains)" s))

let parse_workload name =
  match Profile.find name with
  | Some p -> Ok p
  | None -> (
      match String.index_opt name '-' with
      | Some i when String.sub name 0 i = "raytracer" -> (
          match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
          | Some n when n >= 1 -> Ok (Profile.raytracer ~threads:n)
          | _ -> Error (`Msg (Printf.sprintf "bad thread count in %S" name)))
      | _ -> Error (`Msg (Printf.sprintf "unknown workload %S (try: gcsim list)" name)))

let parse_mode ~young s =
  let young_bytes = young * 1024 in
  match s with
  | "gen" -> Ok (Gc_config.generational ~young_bytes:young_bytes ())
  | "nongen" ->
      Ok { Gc_config.non_generational with Gc_config.young_bytes }
  | "remset" ->
      Ok
        (Gc_config.generational ~young_bytes
           ~intergen:Gc_config.Remembered_set ())
  | "adaptive" -> Ok (Gc_config.adaptive ~young_bytes ())
  | s when String.length s > 6 && String.sub s 0 6 = "aging:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 1 -> Ok (Gc_config.aging ~young_bytes ~oldest_age:n ())
      | _ -> Error (`Msg "aging threshold must be a positive integer"))
  | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown mode %S (gen|nongen|aging:N|remset|adaptive)" s))

let heap_of_card card = { Driver.default_heap with Heap.card_size = card }

let telemetry_arg =
  let doc =
    "Enable the latency instruments and print the telemetry report (work \
     attribution, event counters, histograms) after the summary."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome/Perfetto trace-event JSON file of the run's timeline \
     (one track per mutator plus the collector); load it at \
     ui.perfetto.dev or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let sample_every_arg ~default =
  let doc =
    "Arm the heap observatory: take a census row (per-color occupancy, \
     generation sizes, freelist/card/gray state, floating garbage) every \
     $(docv) simulated cost units; 0 disarms.  Sampling is out of band — \
     it charges no cost and cannot change the run."
  in
  Arg.(value & opt int default & info [ "sample-every" ] ~docv:"UNITS" ~doc)

(* Enable recording before any mutator starts; [Driver.run_rt] calls this
   right after creating the runtime.  On the domains substrate a trace or
   telemetry request also arms the flight recorder (wall-clock per-domain
   rings; [Runtime.arm_recorder] is a no-op under the simulator). *)
let instrument_for ~trace ~telemetry ~trace_out ?(sample_every = 0) rt =
  if trace || trace_out <> None then
    Otfgc.Event_log.set_enabled (Otfgc.Runtime.events rt) true;
  if telemetry || trace_out <> None then
    Otfgc.Telemetry.set_enabled (Otfgc.Runtime.telemetry rt) true;
  if telemetry || trace_out <> None then Otfgc.Runtime.arm_recorder rt;
  if sample_every > 0 then
    Otfgc.Sampler.configure (Otfgc.Runtime.sampler rt) ~every:sample_every

let warn_if_dropped rt =
  let d = Otfgc.Event_log.dropped (Otfgc.Runtime.events rt) in
  if d > 0 then
    Printf.eprintf
      "warning: event ring overflowed — %d events dropped (oldest first); \
       timeline-derived output is incomplete for the run's start\n"
      d

let warn_if_flight_dropped rt =
  let fr = Otfgc.Runtime.recorder rt in
  if Otfgc.Flight_recorder.armed fr then begin
    let d = Otfgc.Flight_recorder.dropped fr in
    if d > 0 then
      Printf.eprintf
        "warning: flight-recorder ring(s) overflowed — %d events overwritten \
         (oldest first); the trace and contention profile are incomplete for \
         the run's start\n"
        d
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

(* Prefer the flight recorder's wall-clock multi-track trace when it was
   armed and recorded anything (domains runs); fall back to the event-log
   reconstruction (simulated-time) otherwise. *)
let write_trace rt ~workload path =
  let fr = Otfgc.Runtime.recorder rt in
  let doc =
    if Otfgc.Flight_recorder.armed fr && Otfgc.Flight_recorder.events fr <> []
    then Trace_export.of_flight ~workload fr
    else Trace_export.of_runtime ~workload rt
  in
  write_file path (Json.to_string doc);
  warn_if_dropped rt;
  warn_if_flight_dropped rt;
  Printf.printf "trace written to %s\n" path

(* ------------------------------------------------------------------ *)
(* gcsim list                                                          *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "Workloads (synthetic models of the paper's benchmarks):";
    List.iter
      (fun p -> Printf.printf "  %-10s %s\n" p.Profile.name p.Profile.description)
      Profile.all;
    Printf.printf "  %-10s %s\n" "raytracer-N"
      (Profile.raytracer ~threads:2).Profile.description;
    print_newline ();
    print_endline "Figures (paper evaluation tables; see EXPERIMENTS.md):";
    List.iter
      (fun e -> Printf.printf "  %-6s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and reproducible figures.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* gcsim run                                                           *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let trace_arg =
    let doc = "Print the collector's phase-event timeline after the run." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let metrics_every_arg =
    let doc =
      "Launch the observer domain: take a lock-free metrics snapshot every \
       $(docv) wall-clock milliseconds and export it as OpenMetrics text \
       plus JSONL (see --metrics-out).  0 (default) disarms.  Requires \
       --substrate domains."
    in
    Arg.(value & opt float 0. & info [ "metrics-every-ms" ] ~docv:"MS" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Base path for the observer's sinks: $(docv).om (OpenMetrics text \
       exposition, rewritten whole at each snapshot) and $(docv).jsonl \
       (one snapshot object per line)."
    in
    Arg.(value & opt string "metrics" & info [ "metrics-out" ] ~docv:"BASE" ~doc)
  in
  let live_arg =
    let doc =
      "Refresh a two-line ANSI view per snapshot (heap-occupancy ribbon, \
       collector phase, allocation rate, young size, dirty cards, gray \
       depth, cycles, p99 handshake).  Implies a 200 ms cadence when \
       --metrics-every-ms is unset, and arms the latency instruments so \
       the p99 is populated.  Requires --substrate domains."
    in
    Arg.(value & flag & info [ "live" ] ~doc)
  in
  let run workload mode card young scale seed substrate mutators gc_workers
      trace telemetry trace_out sample_every metrics_every_ms metrics_out live
      =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc -> (
          match parse_substrate substrate with
          | Error (`Msg m) -> prerr_endline m; 1
          | Ok substrate ->
            if gc_workers > 1 && substrate <> Otfgc_sched.Substrate.Domains
            then begin
              prerr_endline "--gc-workers > 1 requires --substrate domains";
              1
            end
            else if
              (metrics_every_ms > 0. || live)
              && substrate <> Otfgc_sched.Substrate.Domains
            then begin
              prerr_endline
                "--metrics-every-ms / --live require --substrate domains";
              1
            end
            else begin
            let heap = heap_of_card card in
            let observer =
              if metrics_every_ms > 0. || live then
                Some
                  (Observer.create
                     {
                       Observer.every_ms =
                         (if metrics_every_ms > 0. then metrics_every_ms
                          else 200.);
                       om_path = Some (metrics_out ^ ".om");
                       jsonl_path = Some (metrics_out ^ ".jsonl");
                       live;
                       labels =
                         [
                           ("workload", workload);
                           ("mode", mode);
                           ("substrate", "domains");
                           ("seed", string_of_int seed);
                         ];
                     })
              else None
            in
            let t0 = Unix.gettimeofday () in
            let r, rt =
              Driver.run_rt ~heap ~seed ~scale ~substrate ?threads:mutators
                ~gc_workers
                ~instrument:
                  (instrument_for ~trace ~telemetry:(telemetry || live)
                     ~trace_out ~sample_every)
                ?observer ~gc profile
            in
            (match observer with
            | Some o ->
                Printf.printf
                  "metrics: %d snapshot(s) -> %s.om (OpenMetrics), %s.jsonl\n"
                  (List.length (Observer.snapshots o))
                  metrics_out metrics_out
            | None -> ());
            if substrate = Otfgc_sched.Substrate.Domains then
              Printf.printf
                "domains substrate: %.2f s wall, %d mutator domain(s) + \
                 %d collector worker(s)\n"
                (Unix.gettimeofday () -. t0)
                (match mutators with
                | Some n -> n
                | None -> profile.Profile.threads)
                gc_workers;
            Format.printf "%a@." Run_result.pp r;
            if telemetry then begin
              print_newline ();
              Telemetry_report.print
                (Telemetry_report.of_runtime ~workload:profile.Profile.name rt);
              let fr = Otfgc.Runtime.recorder rt in
              if Otfgc.Flight_recorder.armed fr then
                Otfgc_metrics.Contention.print
                  (Otfgc_metrics.Contention.of_flight fr)
            end;
            if trace then
              Format.printf "@.phase timeline (elapsed work units):@.%a@?"
                Otfgc.Event_log.pp_timeline (Otfgc.Runtime.events rt);
            if sample_every > 0 then
              Printf.printf
                "observatory: %d census rows sampled (export with 'gcsim \
                 census' or render with 'gcsim report')\n"
                (Timeseries.length
                   (Otfgc.Sampler.series (Otfgc.Runtime.sampler rt)));
            Option.iter
              (write_trace rt ~workload:profile.Profile.name)
              trace_out;
            0
            end))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one collector and print its summary.")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg $ substrate_arg $ mutators_arg $ gc_workers_arg $ trace_arg
      $ telemetry_arg $ trace_out_arg
      $ sample_every_arg ~default:0
      $ metrics_every_arg $ metrics_out_arg $ live_arg)

(* ------------------------------------------------------------------ *)
(* gcsim compare                                                       *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run workload mode card young scale seed telemetry trace_out =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc ->
            let heap = heap_of_card card in
            let instrument =
              instrument_for ~trace:false ~telemetry ~trace_out
            in
            let cand, cand_rt =
              Driver.run_rt ~heap ~seed ~scale ~instrument ~gc profile
            in
            let base, base_rt =
              Driver.run_rt ~heap ~seed ~scale ~instrument
                ~gc:{ gc with Gc_config.mode = Gc_config.Non_generational }
                profile
            in
            let report title (r : Run_result.t) rt =
              Format.printf "--- %s ---@.%a@.@." title Run_result.pp r;
              if telemetry then begin
                Telemetry_report.print
                  (Telemetry_report.of_runtime ~workload:profile.Profile.name
                     rt);
                print_newline ()
              end
            in
            report cand.Run_result.mode cand cand_rt;
            report ("baseline (" ^ base.Run_result.mode ^ ")") base base_rt;
            Format.printf
              "improvement: %.1f%% (multiprocessor), %.1f%% (uniprocessor)@."
              (Run_result.improvement_pct ~baseline:base cand ~multiprocessor:true)
              (Run_result.improvement_pct ~baseline:base cand
                 ~multiprocessor:false);
            (* the candidate's trace; the baseline run is for the numbers *)
            Option.iter
              (write_trace cand_rt ~workload:profile.Profile.name)
              trace_out;
            0)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run a workload under the chosen collector and the non-generational \
          baseline; print both summaries and the improvement.")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg $ telemetry_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* gcsim stats                                                         *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let format_arg =
    let doc = "Output format: text (tables), json, or csv." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "format" ] ~doc)
  in
  let run workload mode card young scale seed substrate mutators gc_workers
      format =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc -> (
            match parse_substrate substrate with
            | Error (`Msg m) -> prerr_endline m; 1
            | Ok substrate ->
                if gc_workers > 1 && substrate <> Otfgc_sched.Substrate.Domains
                then begin
                  prerr_endline "--gc-workers > 1 requires --substrate domains";
                  1
                end
                else begin
                  let _, rt =
                    Driver.run_rt ~heap:(heap_of_card card) ~seed ~scale
                      ~substrate ?threads:mutators ~gc_workers
                      ~instrument:(fun rt ->
                        (* the event log too, so the events-logged/dropped
                           counters report the ring's real load; under
                           domains the flight recorder adds wall-clock
                           handshake/stall latencies and the contention
                           profile *)
                        Otfgc.Event_log.set_enabled (Otfgc.Runtime.events rt)
                          true;
                        Otfgc.Telemetry.set_enabled
                          (Otfgc.Runtime.telemetry rt) true;
                        Otfgc.Runtime.arm_recorder rt)
                      ~gc profile
                  in
                  let s =
                    Telemetry_report.of_runtime ~workload:profile.Profile.name
                      rt
                  in
                  let fr = Otfgc.Runtime.recorder rt in
                  let flight = Otfgc.Flight_recorder.armed fr in
                  (match format with
                  | `Text ->
                      Telemetry_report.print s;
                      if flight then
                        Otfgc_metrics.Contention.print
                          (Otfgc_metrics.Contention.of_flight fr)
                  | `Json ->
                      let doc = Telemetry_report.to_json s in
                      let doc =
                        if flight then
                          match doc with
                          | Json.Obj kvs ->
                              Json.Obj
                                (kvs
                                @ [
                                    ( "contention",
                                      Otfgc_metrics.Contention.to_json
                                        (Otfgc_metrics.Contention.of_flight fr)
                                    );
                                  ])
                          | j -> j
                        else doc
                      in
                      print_endline (Json.to_string doc)
                  | `Csv -> print_string (Telemetry_report.to_csv s));
                  warn_if_dropped rt;
                  warn_if_flight_dropped rt;
                  0
                end))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one workload with telemetry enabled and print the phase-level \
          work attribution, event counters, latency histograms and the SLO \
          table (wall-clock under --substrate domains, where the flight \
          recorder also adds a contention profile).")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg $ substrate_arg $ mutators_arg $ gc_workers_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* gcsim validate-trace                                                *)
(* ------------------------------------------------------------------ *)

let validate_trace_cmd =
  let file_arg =
    let doc = "Trace-event JSON file to validate." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Json.of_string contents with
    | Error e ->
        Printf.eprintf "%s: JSON parse error: %s\n" file e;
        1
    | Ok doc -> (
        match Trace_export.validate doc with
        | Error e ->
            Printf.eprintf "%s: invalid trace: %s\n" file e;
            1
        | Ok () ->
            Printf.printf "%s: valid trace\n" file;
            0)
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:
         "Check that a file written by --trace-out is well-formed \
          trace-event JSON (used by CI).")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* gcsim census                                                        *)
(* ------------------------------------------------------------------ *)

let out_arg ~what =
  let doc = Printf.sprintf "Write the %s to $(docv) instead of stdout." what in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let census_cmd =
  let format_arg =
    let doc = "Output format: csv (one line per sample) or json (columnar)." in
    Arg.(
      value
      & opt (enum [ ("csv", `Csv); ("json", `Json) ]) `Csv
      & info [ "format" ] ~doc)
  in
  let run workload mode card young scale seed sample_every format out =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc ->
            if sample_every <= 0 then begin
              prerr_endline "--sample-every must be positive for a census";
              1
            end
            else begin
              let _, rt =
                Driver.run_rt ~heap:(heap_of_card card) ~seed ~scale
                  ~instrument:
                    (instrument_for ~trace:false ~telemetry:false
                       ~trace_out:None ~sample_every)
                  ~gc profile
              in
              (* close the series with the end-of-run heap state *)
              Otfgc.Observatory.sample_now (Otfgc.Runtime.state rt);
              let series =
                Otfgc.Sampler.series (Otfgc.Runtime.sampler rt)
              in
              let contents =
                match format with
                | `Csv -> Timeseries.to_csv series
                | `Json -> Json.to_string (Timeseries.to_json series) ^ "\n"
              in
              (match out with
              | None -> print_string contents
              | Some path ->
                  let oc = open_out path in
                  output_string oc contents;
                  close_out oc;
                  Printf.printf "census written to %s (%d samples)\n" path
                    (Timeseries.length series));
              0
            end)
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Run one workload with the heap observatory armed and dump the \
          census time series (per-color occupancy, generation sizes, \
          freelist/card/gray state, floating garbage) as CSV or JSON.")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg
      $ sample_every_arg ~default:20_000
      $ format_arg
      $ out_arg ~what:"census series")

(* ------------------------------------------------------------------ *)
(* gcsim report                                                        *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let out_arg =
    let doc = "Write the HTML report to $(docv)." in
    Arg.(
      value & opt string "report.html" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run workload mode card young scale seed sample_every out =
    match parse_workload workload with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok profile -> (
        match parse_mode ~young mode with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok gc ->
            if sample_every <= 0 then begin
              prerr_endline "--sample-every must be positive for a report";
              1
            end
            else begin
              let _, rt =
                Driver.run_rt ~heap:(heap_of_card card) ~seed ~scale
                  ~instrument:
                    (instrument_for ~trace:true ~telemetry:true
                       ~trace_out:None ~sample_every)
                  ~gc profile
              in
              Otfgc.Observatory.sample_now (Otfgc.Runtime.state rt);
              match Report.of_runtime ~workload:profile.Profile.name rt with
              | Error e -> prerr_endline e; 1
              | Ok html ->
                  write_file out html;
                  warn_if_dropped rt;
                  Printf.printf "report written to %s (%d samples)\n" out
                    (Timeseries.length
                       (Otfgc.Sampler.series (Otfgc.Runtime.sampler rt)));
                  0
            end)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run one workload with the observatory and event log armed and \
          render a self-contained HTML/SVG report: occupancy ribbons per \
          color, cycle/handshake/stall strips, promotion-rate line (the \
          paper's Figure 7-9 presentation, over simulated time).")
    Term.(
      const run $ workload_arg $ mode_arg $ card_arg $ young_arg $ scale_arg
      $ seed_arg
      $ sample_every_arg ~default:20_000
      $ out_arg)

(* ------------------------------------------------------------------ *)
(* gcsim validate-report                                               *)
(* ------------------------------------------------------------------ *)

let validate_report_cmd =
  let file_arg =
    let doc = "HTML report file to validate." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Report.validate contents with
    | Error e ->
        Printf.eprintf "%s: invalid report: %s\n" file e;
        1
    | Ok () ->
        Printf.printf "%s: valid report\n" file;
        0
  in
  Cmd.v
    (Cmd.info "validate-report"
       ~doc:
         "Check that a file written by 'gcsim report' is a well-formed \
          self-contained HTML/SVG report (used by CI).")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* gcsim validate-metrics                                              *)
(* ------------------------------------------------------------------ *)

let validate_metrics_cmd =
  let file_arg =
    let doc = "OpenMetrics text file to validate (the --metrics-out .om)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Openmetrics.validate contents with
    | Error e ->
        Printf.eprintf "%s: invalid OpenMetrics exposition: %s\n" file e;
        1
    | Ok () ->
        Printf.printf "%s: valid OpenMetrics exposition\n" file;
        0
  in
  Cmd.v
    (Cmd.info "validate-metrics"
       ~doc:
         "Check that a file written by --metrics-out is a well-formed \
          OpenMetrics text exposition (used by CI).")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* gcsim fig                                                           *)
(* ------------------------------------------------------------------ *)

let fig_cmd =
  let ids_arg =
    let doc = "Figure ids (fig7..fig23); none = all." in
    Arg.(value & pos_all string [] & info [] ~docv:"FIG" ~doc)
  in
  let jobs_arg =
    let doc =
      "Simulation parallelism: fan independent runs out across N domains \
       (default: $(b,OTFGC_JOBS) or the recommended domain count; 1 = \
       sequential).  Results are identical for every N."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~doc)
  in
  let no_cache_arg =
    let doc = "Do not read or write the persistent _cache/ directory." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let json_arg =
    let doc =
      "Also emit the figure tables as a JSON array, to $(docv) ('-' = \
       stdout instead of the rendered tables)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run ids scale seed jobs no_cache json_out =
    let entries =
      if ids = [] then Registry.all
      else
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown figure id %s\n" id;
                None)
          ids
    in
    let jobs = if jobs >= 1 then Some jobs else None in
    let cache_dir = if no_cache then None else Some "_cache" in
    let lab = Lab.create ~scale ~seed ?jobs ~cache_dir () in
    (* Submit every selected figure's grid as one batch, then render. *)
    Lab.prefetch lab (List.concat_map (fun e -> e.Registry.configs) entries);
    let tables = List.map (fun e -> (e, e.Registry.run lab)) entries in
    (match json_out with
    | Some "-" ->
        print_endline
          (Json.to_string
             (Json.List (List.map (fun (_, t) -> Textable.to_json t) tables)))
    | out ->
        List.iter (fun (_, t) -> Textable.print t) tables;
        Option.iter
          (fun path ->
            write_file path
              (Json.to_string
                 (Json.List
                    (List.map (fun (_, t) -> Textable.to_json t) tables))))
          out);
    let c = Lab.counters lab in
    Printf.eprintf "cache: %d runs simulated, %d disk hits\n" c.Lab.computed
      c.Lab.disk_hits;
    0
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Reproduce paper figures (see EXPERIMENTS.md).")
    Term.(
      const run $ ids_arg $ scale_arg $ seed_arg $ jobs_arg $ no_cache_arg
      $ json_arg)

let () =
  let doc =
    "Simulator for 'A Generational On-the-fly Garbage Collector for Java' \
     (Domani, Kolodner, Petrank; PLDI 2000)."
  in
  let info = Cmd.info "gcsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            compare_cmd;
            stats_cmd;
            census_cmd;
            report_cmd;
            fig_cmd;
            validate_trace_cmd;
            validate_report_cmd;
            validate_metrics_cmd;
          ]))
