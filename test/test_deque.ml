(* Work-stealing deque tests: the Chase–Lev deque behind the parallel
   trace must (a) behave exactly like a LIFO stack for its single owner,
   (b) never lose or duplicate an element under concurrent stealing, and
   (c) slot into Gray_queue without disturbing the serial path.

   The differential model in (a) is QCheck-driven: an arbitrary
   push/pop program runs against the deque and a plain list stack; any
   divergence is a counterexample.  The stress in (b) spawns real
   domains: one owner pushing and popping, several thieves stealing,
   and at the end every pushed value must have been consumed exactly
   once — the "no lost, no duplicated work" contract the trace
   termination argument relies on. *)

module Ws_deque = Otfgc_sched.Ws_deque
module Gray_queue = Otfgc.Gray_queue

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Owner-only differential model: deque == list stack                  *)
(* ------------------------------------------------------------------ *)

(* A program is a list of operations: [Some x] pushes x, [None] pops.
   With no thieves, push/pop must be exactly a stack. *)
let prop_owner_lifo =
  QCheck.Test.make ~name:"owner-only deque is a stack" ~count:500
    QCheck.(list (option (int_bound 1_000_000)))
    (fun prog ->
      let d = Ws_deque.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some x ->
              Ws_deque.push d x;
              model := x :: !model
          | None -> (
              let got = Ws_deque.pop d in
              match (got, !model) with
              | None, [] -> ()
              | Some x, y :: rest when x = y -> model := rest
              | _ ->
                  QCheck.Test.fail_reportf
                    "pop diverged from stack model: got %s, model head %s"
                    (match got with
                    | None -> "None"
                    | Some x -> string_of_int x)
                    (match !model with
                    | [] -> "empty"
                    | y :: _ -> string_of_int y)))
        prog;
      (* drain: remaining contents must equal the model, in LIFO order *)
      List.iter
        (fun y ->
          match Ws_deque.pop d with
          | Some x when x = y -> ()
          | got ->
              QCheck.Test.fail_reportf "drain diverged: got %s, wanted %d"
                (match got with
                | None -> "None"
                | Some x -> string_of_int x)
                y)
        !model;
      Ws_deque.pop d = None && Ws_deque.is_empty d)

(* Growth: push far past the initial 64-slot ring, then drain. *)
let test_grow () =
  let d = Ws_deque.create () in
  let n = 10_000 in
  for i = 1 to n do
    Ws_deque.push d i
  done;
  check_int "size after pushes" n (Ws_deque.size d);
  for i = n downto 1 do
    match Ws_deque.pop d with
    | Some x -> check_int "LIFO drain across growth" i x
    | None -> Alcotest.fail "deque empty too early"
  done;
  check_int "empty after drain" 0 (Ws_deque.size d);
  Alcotest.(check bool) "max_size saw the high water" true (Ws_deque.max_size d >= n)

(* Steal from the top = FIFO order when the owner only pushes. *)
let test_steal_fifo () =
  let d = Ws_deque.create () in
  for i = 1 to 100 do
    Ws_deque.push d i
  done;
  for i = 1 to 100 do
    match Ws_deque.steal d with
    | Some x -> check_int "steal takes oldest first" i x
    | None -> Alcotest.fail "steal found deque empty too early"
  done;
  Alcotest.(check bool) "empty after steals" true (Ws_deque.is_empty d)

(* ------------------------------------------------------------------ *)
(* Concurrent-steal stress on real domains                             *)
(* ------------------------------------------------------------------ *)

(* One owner pushes [n_items] values (popping a few back, as the trace
   does), [n_thieves] domains steal concurrently.  Every value carries
   its index; at the end the union of owner-popped and thief-stolen
   values must be exactly {0..n_items-1}, each exactly once. *)
let steal_stress ~n_thieves ~n_items () =
  let d = Ws_deque.create () in
  let seen = Array.make n_items 0 in
  let seen_lock = Mutex.create () in
  let consume xs =
    Mutex.lock seen_lock;
    List.iter (fun x -> seen.(x) <- seen.(x) + 1) xs;
    Mutex.unlock seen_lock
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let got = ref [] in
    let rec loop misses =
      match Ws_deque.steal d with
      | Some x ->
          got := x :: !got;
          loop 0
      | None ->
          if Atomic.get done_pushing && Ws_deque.is_empty d && misses > 100
          then ()
          else begin
            Domain.cpu_relax ();
            loop (misses + 1)
          end
    in
    loop 0;
    consume !got
  in
  let thieves = Array.init n_thieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 0 to n_items - 1 do
    Ws_deque.push d i;
    (* pop a few back, like the trace interleaving marks with pushes *)
    if i mod 7 = 0 then
      match Ws_deque.pop d with
      | Some x -> mine := x :: !mine
      | None -> ()
  done;
  (* owner drains what the thieves leave behind *)
  let rec drain () =
    match Ws_deque.pop d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_pushing true;
  Array.iter Domain.join thieves;
  consume !mine;
  Array.iteri
    (fun i c ->
      if c <> 1 then
        Alcotest.failf "item %d consumed %d times (want exactly once)" i c)
    seen

let test_steal_stress_2 () = steal_stress ~n_thieves:2 ~n_items:20_000 ()
let test_steal_stress_3 () = steal_stress ~n_thieves:3 ~n_items:20_000 ()

(* ------------------------------------------------------------------ *)
(* Gray_queue sharding                                                 *)
(* ------------------------------------------------------------------ *)

(* With no crew armed, the sharded entry points are inert: push/pop are
   the plain shared queue, exactly what the sim digest guard runs on. *)
let test_gray_queue_serial_untouched () =
  let q = Gray_queue.create () in
  check_int "no deques by default" 0 (Gray_queue.n_workers q);
  Gray_queue.push q 10;
  Gray_queue.push q 20;
  check_int "size" 2 (Gray_queue.size q);
  (match Gray_queue.pop q with
  | Some x -> check_int "LIFO pop (mark stack)" 20 x
  | None -> Alcotest.fail "pop on non-empty queue");
  Alcotest.(check bool) "all_empty sees the shared tail" false
    (Gray_queue.all_empty q)

(* With a crew armed, a worker's pushes land on its own deque (locally
   poppable, stealable by others), while unregistered threads still go
   through the shared queue. *)
let test_gray_queue_sharded_routing () =
  let q = Gray_queue.create () in
  Gray_queue.set_workers q 2;
  check_int "two deques armed" 2 (Gray_queue.n_workers q);
  (* this thread is unregistered (worker_id -1): shared queue *)
  Gray_queue.push q 1;
  check_int "unregistered push goes shared" 1 (Gray_queue.size q);
  Alcotest.(check (option int)) "pop_local 0 empty" None
    (Gray_queue.pop_local q ~w:0);
  (* register as worker 0: pushes now land on deque 0 *)
  Gray_queue.set_worker_id q 0;
  Gray_queue.push q 2;
  Gray_queue.push q 3;
  Alcotest.(check (option int)) "steal from worker 0 takes oldest" (Some 2)
    (Gray_queue.steal q ~victim:0);
  Alcotest.(check (option int)) "pop_local 0 takes newest" (Some 3)
    (Gray_queue.pop_local q ~w:0);
  (* the shared item is still there; all_empty only after it drains *)
  Alcotest.(check bool) "not all empty yet" false (Gray_queue.all_empty q);
  (match Gray_queue.pop q with
  | Some x -> check_int "shared pop" 1 x
  | None -> Alcotest.fail "shared queue lost its item");
  Alcotest.(check bool) "all empty after drain" true (Gray_queue.all_empty q);
  (* unregister so later tests on this domain see the serial behaviour *)
  Gray_queue.set_worker_id q (-1)

let suites =
  [
    ( "deque",
      [
        QCheck_alcotest.to_alcotest prop_owner_lifo;
        Alcotest.test_case "growth keeps LIFO order" `Quick test_grow;
        Alcotest.test_case "steal is FIFO" `Quick test_steal_fifo;
        Alcotest.test_case "2 thieves: exactly-once consumption" `Slow
          test_steal_stress_2;
        Alcotest.test_case "3 thieves: exactly-once consumption" `Slow
          test_steal_stress_3;
        Alcotest.test_case "gray queue: serial path untouched" `Quick
          test_gray_queue_serial_untouched;
        Alcotest.test_case "gray queue: sharded routing" `Quick
          test_gray_queue_sharded_routing;
      ] );
  ]
