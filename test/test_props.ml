(* Property tests: random mutator programs under random fine-grained
   schedules, for all three collector modes.

   Properties checked:
   - safety: at no observed instant is a reachable object freed (a checker
     daemon snapshots reachability every few scheduling steps, and slot
     integrity is verified at the end);
   - completeness: after quiescence, two full collections reclaim every
     unreachable object;
   - structural invariants of the heap hold throughout. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let kb = 1024

(* One random mutator op.  All references live in mutator registers, per
   the rooting contract. *)
let random_op rng rt m =
  let n_regs = Mutator.n_regs m in
  let reg () = Rng.int rng n_regs in
  match Rng.int rng 100 with
  | n when n < 35 ->
      (* allocate into a register *)
      let n_slots = Rng.int_in rng 0 4 in
      let size = 16 + (8 * n_slots) + (16 * Rng.int rng 4) in
      let a = Runtime.alloc rt m ~size ~n_slots in
      Mutator.set_reg m (reg ()) a
  | n when n < 65 ->
      (* store reg -> reg (or nil) through the barrier *)
      let x = Mutator.get_reg m (reg ()) in
      if x <> Heap.nil && Heap.n_slots (Runtime.heap rt) x > 0 then begin
        let i = Rng.int rng (Heap.n_slots (Runtime.heap rt) x) in
        let y = if Rng.chance rng 0.2 then Heap.nil else Mutator.get_reg m (reg ()) in
        Runtime.store rt m ~x ~i ~y
      end
  | n when n < 80 ->
      (* load a slot into a register *)
      let x = Mutator.get_reg m (reg ()) in
      if x <> Heap.nil && Heap.n_slots (Runtime.heap rt) x > 0 then begin
        let i = Rng.int rng (Heap.n_slots (Runtime.heap rt) x) in
        let v = Runtime.load rt m ~x ~i in
        Mutator.set_reg m (reg ()) v
      end
  | n when n < 88 ->
      (* drop a root *)
      Mutator.clear_reg m (reg ())
  | n when n < 94 ->
      (* push/pop the stack *)
      if Rng.bool rng && Mutator.stack_depth m < 32 then
        Mutator.push m (Mutator.get_reg m (reg ()))
      else if Mutator.stack_depth m > 0 then
        Mutator.set_reg m (reg ()) (Mutator.pop m)
  | _ -> Runtime.work rt m (Rng.int_in rng 1 5)

let run_random_program ~mode ~seed ~n_mutators ~ops_per_mutator =
  let heap_config =
    { Heap.initial_bytes = 8 * kb; max_bytes = 32 * kb; card_size = 16 }
  in
  let gc_config =
    match mode with
    | `Gen -> Gc_config.generational ~young_bytes:(2 * kb) ()
    | `NonGen -> Gc_config.non_generational
    | `Aging -> Gc_config.aging ~young_bytes:(2 * kb) ~oldest_age:3 ()
    | `Remset ->
        Gc_config.generational ~young_bytes:(2 * kb)
          ~intergen:Gc_config.Remembered_set ()
    | `Adaptive -> Gc_config.adaptive ~young_bytes:(2 * kb) ()
  in
  let rt = Runtime.create ~heap_config ~gc_config () in
  let master = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
  ignore (Runtime.spawn_collector rt sched);
  let safety_violation = ref None in
  (* Checker daemon: every ~64 steps take an instantaneous reachability
     snapshot and verify no reachable address has been freed. *)
  ignore
    (Sched.spawn sched ~daemon:true ~name:"checker" (fun () ->
         while true do
           for _ = 1 to 64 do
             Sched.yield ()
           done;
           (match Oracle.check_safety (Runtime.state rt) with
           | Ok () -> ()
           | Error e -> if !safety_violation = None then safety_violation := Some e);
           (* The card/remset invariant can be asserted at ANY
              between-cycles instant for the simple-promotion modes: their
              barriers publish the card mark / remset entry BEFORE the
              store, so there is no transient window (the aging barrier
              marks after the store, per Figure 4, so it is excluded). *)
           (match mode with
           | (`Gen | `Remset)
             when not (Atomic.get (Runtime.state rt).State.collecting) -> (
               match Oracle.check_intergen_invariant (Runtime.state rt) with
               | Ok () -> ()
               | Error e ->
                   if !safety_violation = None then safety_violation := Some e)
           | _ -> ());
           (* structural check only — an unreachable object may point at
              freed memory mid-run, which is harmless *)
           match Heap.check ~check_slots:false (Runtime.heap rt) with
           | Ok () -> ()
           | Error e -> if !safety_violation = None then safety_violation := Some e
         done));
  let mutators =
    List.init n_mutators (fun i ->
        Runtime.new_mutator rt ~name:(Printf.sprintf "m%d" i) ())
  in
  let last = List.nth mutators (n_mutators - 1) in
  let completeness = ref None in
  List.iteri
    (fun i m ->
      let rng = Rng.split master in
      ignore
        (Sched.spawn sched ~name:(Printf.sprintf "m%d" i) (fun () ->
             for _ = 1 to ops_per_mutator do
               random_op rng rt m
             done;
             if Mutator.id m <> Mutator.id last then
               Runtime.retire_mutator rt m
             else begin
               (* the last mutator drives the completeness check: once the
                  others are gone and the world is quiescent, two full
                  collections must leave exactly the reachable objects *)
               (* keep cooperating while waiting: a handshake may need this
                  mutator while another one blocks on an exhausted heap *)
               Sched.wait_until (fun () ->
                   Runtime.cooperate rt m;
                   List.for_all
                     (fun m' ->
                       Mutator.id m' = Mutator.id last || not (Mutator.active m'))
                     mutators);
               ignore (Runtime.collect_and_wait rt m ~full:true);
               ignore (Runtime.collect_and_wait rt m ~full:true);
               let live = Oracle.live_count (Runtime.state rt) in
               let remaining = Heap.object_count (Runtime.heap rt) in
               completeness := Some (live, remaining);
               (* quiescent point: the generational card/remset invariant
                  must hold exactly here *)
               (match Oracle.check_intergen_invariant (Runtime.state rt) with
               | Ok () -> ()
               | Error e ->
                   if !safety_violation = None then safety_violation := Some e);
               Runtime.retire_mutator rt m
             end)))
    mutators;
  Sched.run ~max_steps:80_000_000 sched;
  let st = Runtime.state rt in
  (match !safety_violation with
  | Some e -> Alcotest.failf "safety violated during run: %s" e
  | None -> ());
  (match Oracle.check_safety st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety violated at end: %s" e);
  (match Heap.check (Runtime.heap rt) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "heap invariants violated: %s" e);
  match !completeness with
  | None -> Alcotest.fail "completeness check never ran"
  | Some (live, remaining) ->
      if remaining <> live then
        Alcotest.failf
          "completeness: %d objects remain after quiescent full collections, \
           %d reachable"
          remaining live

let prop_safety_and_completeness mode name =
  QCheck.Test.make ~name ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      run_random_program ~mode ~seed ~n_mutators:2 ~ops_per_mutator:800;
      true)

let prop_gen = prop_safety_and_completeness `Gen "generational: random programs safe & complete"
let prop_nongen =
  prop_safety_and_completeness `NonGen "non-generational: random programs safe & complete"
let prop_aging =
  prop_safety_and_completeness `Aging "aging: random programs safe & complete"

let prop_remset =
  prop_safety_and_completeness `Remset
    "remembered sets: random programs safe & complete"

let prop_adaptive =
  prop_safety_and_completeness `Adaptive
    "adaptive tenuring: random programs safe & complete"

let prop_three_mutators =
  QCheck.Test.make ~name:"three mutators, heavier contention" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      run_random_program ~mode:`Gen ~seed:(seed + 77) ~n_mutators:3
        ~ops_per_mutator:500;
      true)

(* Differential check of the bitmap/array freelist against a direct port
   of the original list-based implementation (same validity rule, same
   candidate order: LIFO per exact class, ascending classes, first-fit
   from the newest entry in the large class), each driving its own
   identical space.  Every pop must return the same address under random
   alloc / free / behind-the-back coalesce / rebuild traffic — the
   byte-identical simulation figures depend on exactly this. *)
module Hspace = Otfgc_heap.Space
module Hlayout = Otfgc_heap.Layout
module Hfreelist = Otfgc_heap.Freelist

module Ref_freelist = struct
  let n_exact = 63
  let n_classes = n_exact + 1
  let class_of_granules gr = if gr <= n_exact then gr - 1 else n_exact

  type t = { space : Hspace.t; lists : int list array }

  let push_raw t addr =
    let cls =
      class_of_granules (Hspace.block_size t.space addr / Hlayout.granule)
    in
    t.lists.(cls) <- addr :: t.lists.(cls)

  let create space =
    let t = { space; lists = Array.make n_classes [] } in
    Hspace.iter_blocks space (fun addr kind _size ->
        if kind = Hspace.Free then push_raw t addr);
    t

  let valid t cls addr =
    Hspace.is_block_start t.space addr
    && Hspace.kind_of t.space addr = Hspace.Free
    && class_of_granules (Hspace.block_size t.space addr / Hlayout.granule)
       = cls

  let rec pop_class t cls =
    match t.lists.(cls) with
    | [] -> None
    | addr :: rest ->
        t.lists.(cls) <- rest;
        if valid t cls addr then Some addr else pop_class t cls

  let pop_large t ~granules =
    let rec scan acc = function
      | [] ->
          t.lists.(n_exact) <- List.rev acc;
          None
      | addr :: rest ->
          if not (valid t n_exact addr) then scan acc rest
          else if
            Hspace.block_size t.space addr / Hlayout.granule >= granules
          then begin
            t.lists.(n_exact) <- List.rev_append acc rest;
            Some addr
          end
          else scan (addr :: acc) rest
    in
    scan [] t.lists.(n_exact)

  let pop t ~bytes_wanted =
    let want_g = Hlayout.granules_of_bytes (Stdlib.max 1 bytes_wanted) in
    let want_b = Hlayout.bytes_of_granules want_g in
    let exact = if want_g <= n_exact then pop_class t (want_g - 1) else None in
    match exact with
    | Some addr -> Some addr
    | None ->
        let found = ref None in
        let cls = ref (if want_g <= n_exact then want_g else n_exact) in
        while !found = None && !cls < n_exact do
          (match pop_class t !cls with
          | Some addr -> found := Some addr
          | None -> ());
          incr cls
        done;
        let found =
          match !found with
          | Some a -> Some a
          | None -> pop_large t ~granules:want_g
        in
        (match found with
        | None -> None
        | Some addr ->
            let have = Hspace.block_size t.space addr in
            if have > want_b then begin
              let rest = Hspace.split t.space addr ~first_bytes:want_b in
              push_raw t rest
            end;
            Some addr)

  let rebuild t =
    Array.fill t.lists 0 n_classes [];
    Hspace.iter_blocks t.space (fun addr kind _size ->
        if kind = Hspace.Free then push_raw t addr)

  let entry_count t =
    Array.fold_left (fun acc l -> acc + List.length l) 0 t.lists
end

let prop_freelist_differential =
  QCheck.Test.make ~name:"freelist matches list-based reference" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.make seed in
      let mk () =
        Hspace.create ~initial_bytes:(16 * kb) ~max_bytes:(16 * kb) ()
      in
      let sa = mk () and sb = mk () in
      let fl = Hfreelist.create sa in
      let rf = Ref_freelist.create sb in
      let blocks_of_kind s kind =
        let acc = ref [] in
        Hspace.iter_blocks s (fun a k _ -> if k = kind then acc := a :: !acc);
        !acc
      in
      let ok = ref true in
      let fail msg = QCheck.Test.fail_reportf "%s (seed %d)" msg seed in
      for _ = 1 to 300 do
        if !ok then begin
          (match Rng.int rng 100 with
          | r when r < 45 ->
              (* alloc: sizes spanning exact classes and the large class *)
              let size =
                if Rng.bool rng then 16 * Rng.int_in rng 1 12
                else 16 * Rng.int_in rng 60 160
              in
              let a = Hfreelist.pop fl ~bytes_wanted:size in
              let b = Ref_freelist.pop rf ~bytes_wanted:size in
              if a <> b then ok := fail "pop addresses diverge"
              else (
                match a with
                | Some addr ->
                    Hspace.set_kind sa addr Hspace.Allocated;
                    Hspace.set_kind sb addr Hspace.Allocated
                | None -> ())
          | r when r < 75 -> (
              (* free a random allocated block (push to both lists) *)
              match blocks_of_kind sa Hspace.Allocated with
              | [] -> ()
              | allocated ->
                  let addr =
                    List.nth allocated (Rng.int rng (List.length allocated))
                  in
                  Hspace.set_kind sa addr Hspace.Free;
                  Hspace.set_kind sb addr Hspace.Free;
                  Hfreelist.push fl addr;
                  Ref_freelist.push_raw rf addr)
          | r when r < 95 -> (
              (* coalesce behind the lists' backs, staling entries *)
              match blocks_of_kind sa Hspace.Free with
              | [] -> ()
              | free ->
                  let addr = List.nth free (Rng.int rng (List.length free)) in
                  let ma = Hspace.coalesce_with_next sa addr in
                  let mb = Hspace.coalesce_with_next sb addr in
                  if ma <> mb then ok := fail "spaces diverged")
          | _ ->
              Hfreelist.rebuild fl;
              Ref_freelist.rebuild rf);
          if !ok && Hfreelist.entry_count fl <> Ref_freelist.entry_count rf
          then ok := fail "entry counts diverge"
        end
      done;
      (* drain both to exhaustion: the full remaining candidate order must
         also agree *)
      let draining = ref !ok in
      while !draining do
        let a = Hfreelist.pop fl ~bytes_wanted:16 in
        let b = Ref_freelist.pop rf ~bytes_wanted:16 in
        if a <> b then begin
          ok := fail "drain order diverges";
          draining := false
        end
        else
          match a with
          | Some addr ->
              Hspace.set_kind sa addr Hspace.Allocated;
              Hspace.set_kind sb addr Hspace.Allocated
          | None -> draining := false
      done;
      !ok)

(* Determinism of the whole simulator: same seed, same everything. *)
let test_determinism () =
  let snapshot seed =
    let heap_config =
      { Heap.initial_bytes = 8 * kb; max_bytes = 32 * kb; card_size = 16 }
    in
    let rt =
      Runtime.create ~heap_config
        ~gc_config:(Gc_config.generational ~young_bytes:(2 * kb) ())
        ()
    in
    let master = Rng.make seed in
    let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
    ignore (Runtime.spawn_collector rt sched);
    let m = Runtime.new_mutator rt ~name:"m" () in
    let rng = Rng.split master in
    ignore
      (Sched.spawn sched ~name:"m" (fun () ->
           for _ = 1 to 600 do
             random_op rng rt m
           done;
           Runtime.retire_mutator rt m));
    Sched.run sched;
    ( Heap.total_allocated_objects (Runtime.heap rt),
      Heap.allocated_bytes (Runtime.heap rt),
      Cost.elapsed_multi (Runtime.cost rt),
      List.length (Gc_stats.cycles (Runtime.stats rt)),
      Sched.steps sched )
  in
  let a = snapshot 123 and b = snapshot 123 in
  Alcotest.(check bool) "identical replay" true (a = b)

(* Regression: this seed once exposed a lost object in the aging collector —
   a young parent's pointer became inter-generational when the parent was
   promoted by the same cycle's sweep, after ClearCards (scanning only old
   objects, as Figure 6 literally says) had already cleared the card.  The
   fix keeps a card dirty whenever any object on it references a young
   object. *)
let test_aging_promotion_card_regression () =
  run_random_program ~mode:`Aging ~seed:3669 ~n_mutators:2 ~ops_per_mutator:800

(* Regressions: adaptive tenuring lost objects in two ways when the
   threshold rose mid-run.  (1) Figure 6's age-qualified "old" test
   skipped earlier promotions during the card scan — fixed by classifying
   old by color alone (black <=> promoted, whatever the threshold).
   (2) The sweep de-promoted earlier promotions (age+1 < new threshold),
   turning old->old edges into old->young edges on legitimately clean
   cards — fixed by making promotion monotone (age sentinel 255). *)
let test_adaptive_threshold_rise_regression () =
  List.iter
    (fun seed ->
      run_random_program ~mode:`Adaptive ~seed ~n_mutators:2
        ~ops_per_mutator:800)
    [ 486; 694; 3564; 5017; 5221; 8137 ]

let suites =
  [
    ( "props",
      [
        Alcotest.test_case "aging promotion/card regression" `Quick
          test_aging_promotion_card_regression;
        Alcotest.test_case "adaptive threshold-rise regression" `Quick
          test_adaptive_threshold_rise_regression;
        QCheck_alcotest.to_alcotest prop_gen;
        QCheck_alcotest.to_alcotest prop_nongen;
        QCheck_alcotest.to_alcotest prop_aging;
        QCheck_alcotest.to_alcotest prop_remset;
        QCheck_alcotest.to_alcotest prop_adaptive;
        QCheck_alcotest.to_alcotest prop_three_mutators;
        QCheck_alcotest.to_alcotest prop_freelist_differential;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
  ]
