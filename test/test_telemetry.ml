(* Tests for the telemetry layer: the histogram and JSON support modules,
   the bounded event ring, the phase/category attribution invariants, the
   Run_result JSON round-trip and the Perfetto trace export. *)

open Otfgc
module Histogram = Otfgc_support.Histogram
module Json = Otfgc_support.Json
module Run_result = Otfgc_metrics.Run_result
module Telemetry_report = Otfgc_metrics.Telemetry
module Trace_export = Otfgc_metrics.Trace_export
module Driver = Otfgc_workloads.Driver
module Profile = Otfgc_workloads.Profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_basic () =
  let h = Histogram.create () in
  check_int "empty count" 0 (Histogram.count h);
  check_int "empty percentile" 0 (Histogram.percentile h 50.);
  List.iter (Histogram.record h) [ 5; 10; 20; 1000 ];
  check_int "count" 4 (Histogram.count h);
  check_int "total" 1035 (Histogram.total h);
  check_int "min" 5 (Histogram.min_value h);
  check_int "max" 1000 (Histogram.max_value h);
  check "mean" true (abs_float (Histogram.mean h -. 258.75) < 1e-9);
  Histogram.clear h;
  check_int "cleared" 0 (Histogram.count h);
  check_int "cleared total" 0 (Histogram.total h)

let test_hist_negative_clamped () =
  let h = Histogram.create () in
  Histogram.record h (-7);
  check_int "clamped count" 1 (Histogram.count h);
  check_int "clamped min" 0 (Histogram.min_value h);
  check_int "clamped max" 0 (Histogram.max_value h)

let test_hist_percentile_monotone () =
  let h = Histogram.create () in
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 1000 do
    Histogram.record h (Random.State.int st 1_000_000)
  done;
  let prev = ref 0 in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      check "percentile monotone" true (v >= !prev);
      prev := v)
    [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ];
  check_int "p100 = max" (Histogram.max_value h) (Histogram.percentile h 100.)

(* Each sample must land in a bucket whose [lo..hi] range contains it and
   whose width is within the advertised ~6% relative precision. *)
let test_hist_bucket_precision () =
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      let seen = ref false in
      Histogram.iter h (fun ~lo ~hi ~count ->
          check_int "single sample" 1 count;
          check "bucket contains sample" true (lo <= v && v <= hi);
          check "bucket narrow enough" true (hi - lo <= max 1 (v / 8));
          seen := true);
      check "bucket visited" true !seen)
    [ 0; 1; 15; 16; 17; 100; 1023; 1024; 65535; 1_000_000; max_int / 2 ]

(* percentile_lower brackets the percentile from below: never above the
   upper-bound convention, never below the histogram minimum, and the
   pair tracks the same bucket (~6% relative width apart at most). *)
let test_hist_percentile_lower_brackets () =
  let h = Histogram.create () in
  check_int "empty lower" 0 (Histogram.percentile_lower h 50.);
  let st = Random.State.make [| 23 |] in
  for _ = 1 to 1000 do
    Histogram.record h (1 + Random.State.int st 1_000_000)
  done;
  List.iter
    (fun p ->
      let lo = Histogram.percentile_lower h p in
      let hi = Histogram.percentile h p in
      check "lower <= upper" true (lo <= hi);
      check "lower >= min" true (lo >= Histogram.min_value h);
      check "pair brackets one bucket" true (hi - lo <= max 1 (hi / 8)))
    [ 0.; 10.; 50.; 90.; 99.; 100. ];
  check_int "p0 lower = min" (Histogram.min_value h)
    (Histogram.percentile_lower h 0.);
  (* exact small values: bucket resolution is 1, so the pair pins the
     sample itself *)
  let e = Histogram.create () in
  List.iter (Histogram.record e) [ 3; 3; 3; 9 ];
  check_int "exact p50 lower" 3 (Histogram.percentile_lower e 50.);
  check_int "exact p50 upper" 3 (Histogram.percentile e 50.);
  check_int "exact p100 lower" 9 (Histogram.percentile_lower e 100.)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 5; 10; 20 ];
  List.iter (Histogram.record b) [ 1; 1000; 50_000 ];
  let m = Histogram.merge a b in
  check_int "merged count" 6 (Histogram.count m);
  check_int "merged total" (35 + 51_001) (Histogram.total m);
  check_int "merged min" 1 (Histogram.min_value m);
  check_int "merged max" 50_000 (Histogram.max_value m);
  (* inputs untouched *)
  check_int "a count unchanged" 3 (Histogram.count a);
  check_int "b count unchanged" 3 (Histogram.count b);
  (* merged table equals one table fed both streams, bucket by bucket *)
  let direct = Histogram.create () in
  List.iter (Histogram.record direct) [ 5; 10; 20; 1; 1000; 50_000 ];
  let buckets h =
    let acc = ref [] in
    Histogram.iter h (fun ~lo ~hi ~count -> acc := (lo, hi, count) :: !acc);
    List.rev !acc
  in
  check "bucket-identical to direct recording" true
    (buckets m = buckets direct);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "p%.0f matches direct" p)
        (Histogram.percentile direct p) (Histogram.percentile m p))
    [ 50.; 90.; 99. ]

let test_hist_merge_empty () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 7; 70 ];
  let m1 = Histogram.merge a b and m2 = Histogram.merge b a in
  check_int "merge with empty keeps count" 2 (Histogram.count m1);
  check_int "min survives empty side" 7 (Histogram.min_value m1);
  check_int "max survives empty side" 70 (Histogram.max_value m2);
  let e = Histogram.merge b (Histogram.create ()) in
  check_int "empty + empty count" 0 (Histogram.count e);
  check_int "empty + empty min" 0 (Histogram.min_value e)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 0.1);
        ("c", Json.String "he said \"hi\"\n\t\\");
        ("d", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("e", Json.Obj [ ("nested", Json.List [ Json.Int (-7) ]) ]);
        ("f", Json.Float 1e-300);
        ("g", Json.Float (-3.0));
        ("h", Json.Int min_int);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok doc' -> check "tree preserved" true (doc = doc')

let test_json_int_float_distinct () =
  (match Json.of_string "[1, 1.0]" with
  | Ok (Json.List [ Json.Int 1; Json.Float 1.0 ]) -> ()
  | _ -> Alcotest.fail "int/float not distinguished");
  (* a float that prints without a fraction must come back as a float *)
  match Json.of_string (Json.to_string (Json.Float 2.0)) with
  | Ok (Json.Float 2.0) -> ()
  | _ -> Alcotest.fail "whole float did not round-trip as float"

let test_json_errors () =
  check "trailing garbage" true
    (Result.is_error (Json.of_string "{} extra"));
  check "bad token" true (Result.is_error (Json.of_string "{bad}"));
  check "unterminated string" true
    (Result.is_error (Json.of_string "\"abc"));
  check "empty input" true (Result.is_error (Json.of_string "  "))

let test_json_unicode_escape () =
  match Json.of_string {|"Aé"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape"

(* ------------------------------------------------------------------ *)
(* Event ring                                                          *)
(* ------------------------------------------------------------------ *)

let test_ring_bounded () =
  let log = Event_log.create ~max_events:4 () in
  Event_log.set_enabled log true;
  for i = 0 to 9 do
    Event_log.emit log ~at:i (Event_log.Trace_complete { traced = i })
  done;
  check_int "length capped" 4 (Event_log.length log);
  check_int "dropped" 6 (Event_log.dropped log);
  let ats = List.map (fun e -> e.Event_log.at) (Event_log.events log) in
  Alcotest.(check (list int)) "oldest-first tail" [ 6; 7; 8; 9 ] ats;
  Event_log.clear log;
  check_int "clear resets length" 0 (Event_log.length log);
  check_int "clear resets dropped" 0 (Event_log.dropped log);
  check "clear keeps enabled" true (Event_log.enabled log)

let test_ring_growth_preserves_order () =
  let log = Event_log.create () in
  Event_log.set_enabled log true;
  (* starts at 64-event capacity; 500 emits force several doublings *)
  for i = 0 to 499 do
    Event_log.emit log ~at:i Event_log.Cycle_end
  done;
  check_int "all kept" 500 (Event_log.length log);
  check_int "nothing dropped" 0 (Event_log.dropped log);
  let expected = List.init 500 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" expected
    (List.map (fun e -> e.Event_log.at) (Event_log.events log))

let test_ring_payload_roundtrip () =
  let log = Event_log.create () in
  Event_log.set_enabled log true;
  let phases =
    [
      Event_log.Cycle_start { kind = Gc_stats.Partial; full = false };
      Event_log.Cycle_start { kind = Gc_stats.Full; full = true };
      Event_log.Init_full_done;
      Event_log.Handshake_posted Status.Sync1;
      Event_log.Handshake_complete Status.Sync2;
      Event_log.Intergen_scanned { seeds = 17 };
      Event_log.Colors_toggled;
      Event_log.Trace_complete { traced = 123 };
      Event_log.Sweep_complete { freed = 45; bytes = 678 };
      Event_log.Cycle_end;
      Event_log.Heap_grown { capacity = 1 lsl 20 };
      Event_log.Mutator_ack { mid = 3; status = Status.Async };
      Event_log.Stall_begin { mid = 2 };
      Event_log.Stall_end { mid = 2 };
      Event_log.Promoted { count = 9 };
    ]
  in
  List.iteri (fun i p -> Event_log.emit log ~at:i p) phases;
  let decoded = List.map (fun e -> e.Event_log.phase) (Event_log.events log) in
  check "payloads decode" true (decoded = phases)

(* ------------------------------------------------------------------ *)
(* Run_result JSON round-trip                                          *)
(* ------------------------------------------------------------------ *)

let small_run ?(mode = Gc_config.generational ()) () =
  Driver.run ~scale:0.02 ~gc:mode (Profile.anagram)

let test_run_result_roundtrip () =
  let r = small_run () in
  match Json.of_string (Json.to_string (Run_result.to_json r)) with
  | Error e -> Alcotest.fail ("reparse: " ^ e)
  | Ok j -> (
      match Run_result.of_json j with
      | Error e -> Alcotest.fail ("of_json: " ^ e)
      | Ok r' -> check "exact round-trip" true (r = r'))

let test_run_result_of_json_errors () =
  let j = Run_result.to_json (small_run ()) in
  (* drop one field: must be reported by name *)
  let mutilated =
    match j with
    | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "stall_work") fields)
    | _ -> assert false
  in
  match Run_result.of_json mutilated with
  | Error msg -> check "names the field" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "missing field accepted"

(* ------------------------------------------------------------------ *)
(* Attribution invariants                                              *)
(* ------------------------------------------------------------------ *)

let instrumented_run ?(scale = 0.02) ~seed ~gc profile =
  Driver.run_rt ~seed ~scale
    ~instrument:(fun rt ->
      Event_log.set_enabled (Runtime.events rt) true;
      Telemetry.set_enabled (Runtime.telemetry rt) true)
    ~gc profile

let sum_phase cost =
  List.fold_left (fun acc p -> acc + Cost.phase_work cost p) 0 Cost.phases

let sum_category cost =
  List.fold_left (fun acc c -> acc + Cost.category_work cost c) 0 Cost.categories

(* Handshake latency gaps recomputed from the event log; [None] when a
   ring overflow makes the log unreliable. *)
let latency_from_events log =
  if Event_log.dropped log > 0 then None
  else begin
    let posted = ref None in
    let acc = Array.make 3 0 and counts = Array.make 3 0 in
    let ordered = ref true in
    let prev = ref min_int in
    Event_log.iter log (fun { Event_log.at; phase } ->
        if at < !prev then ordered := false;
        prev := at;
        match phase with
        | Event_log.Handshake_posted s -> posted := Some (at, s)
        | Event_log.Handshake_complete s ->
            (match !posted with
            | Some (t0, s0) when Status.equal s s0 ->
                let i = Status.index s in
                acc.(i) <- acc.(i) + (at - t0);
                counts.(i) <- counts.(i) + 1
            | _ -> ());
            posted := None
        | _ -> ());
    if !ordered then Some (acc, counts) else None
  end

let check_invariants name (gc : Gc_config.t) seed =
  let r, rt = instrumented_run ~seed ~gc (Profile.anagram) in
  let cost = Runtime.cost rt in
  let tel = Runtime.telemetry rt in
  check_int
    (name ^ ": phase work sums to collector_work")
    (Cost.collector_work cost) (sum_phase cost);
  check_int
    (name ^ ": category work sums to mutator_work")
    (Cost.mutator_work cost) (sum_category cost);
  check_int
    (name ^ ": ledger matches run result")
    r.Run_result.collector_work (Cost.collector_work cost);
  (match latency_from_events (Runtime.events rt) with
  | None -> ()
  | Some (gaps, counts) ->
      List.iter
        (fun s ->
          let i = Status.index s in
          let h = Telemetry.handshake_latency tel s in
          check_int
            (Printf.sprintf "%s: %s latency count = completes" name
               (Status.to_string s))
            counts.(i) (Histogram.count h);
          check_int
            (Printf.sprintf "%s: %s latency total = sum of event gaps" name
               (Status.to_string s))
            gaps.(i) (Histogram.total h);
          check
            (Printf.sprintf "%s: %s samples non-negative" name
               (Status.to_string s))
            true
            (Histogram.min_value h >= 0))
        [ Status.Async; Status.Sync1; Status.Sync2 ]);
  (* cycle progress: one sample per completed cycle *)
  let cycles = List.length (Gc_stats.cycles (Runtime.stats rt)) in
  check_int
    (name ^ ": one progress sample per cycle")
    cycles
    (Histogram.count (Telemetry.cycle_progress tel))

let test_invariants_gen () = check_invariants "gen" (Gc_config.generational ()) 7

let test_invariants_nongen () =
  check_invariants "nongen" Gc_config.non_generational 7

let test_invariants_aging () =
  check_invariants "aging" (Gc_config.aging ~oldest_age:3 ()) 7

let test_invariants_qcheck =
  QCheck.Test.make ~count:6 ~name:"telemetry invariants hold for any seed"
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, mode_i) ->
      let gc =
        match mode_i with
        | 0 -> Gc_config.generational ()
        | 1 -> Gc_config.non_generational
        | 2 -> Gc_config.aging ~oldest_age:2 ()
        | _ -> Gc_config.adaptive ()
      in
      let _, rt = instrumented_run ~seed ~gc (Profile.anagram) in
      let cost = Runtime.cost rt in
      sum_phase cost = Cost.collector_work cost
      && sum_category cost = Cost.mutator_work cost
      && Histogram.min_value
           (Telemetry.stall_latency (Runtime.telemetry rt))
         >= 0)

(* Telemetry enabled/disabled must not change the result: the digest tests
   pin this globally; here the same claim is made directly. *)
let test_telemetry_inert () =
  let r_plain = small_run () in
  let r_instr, _ =
    instrumented_run ~seed:42 ~gc:(Gc_config.generational ())
      (Profile.anagram)
  in
  check "identical run result" true (r_plain = r_instr)

let test_disabled_by_default () =
  let rt = Runtime.create () in
  check "telemetry instruments off" false (Telemetry.enabled (Runtime.telemetry rt));
  check "event log off" false (Event_log.enabled (Runtime.events rt))

(* ------------------------------------------------------------------ *)
(* Telemetry report                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_summary () =
  let _, rt =
    instrumented_run ~seed:42 ~gc:(Gc_config.generational ())
      (Profile.anagram)
  in
  let s = Telemetry_report.of_runtime ~workload:"anagram" rt in
  let phase_sum = List.fold_left (fun a (_, v) -> a + v) 0 s.Telemetry_report.phase_work in
  check_int "report phase sum" s.Telemetry_report.collector_work phase_sum;
  let cat_sum =
    List.fold_left (fun a (_, v) -> a + v) 0 s.Telemetry_report.category_work
  in
  check_int "report category sum" s.Telemetry_report.mutator_work cat_sum;
  check "barriers counted" true (s.Telemetry_report.barrier_updates > 0);
  check "acks counted" true (s.Telemetry_report.handshake_acks > 0);
  (* export forms *)
  let j = Telemetry_report.to_json s in
  check "json reparses" true
    (Result.is_ok (Json.of_string (Json.to_string j)));
  let csv = Telemetry_report.to_csv s in
  check "csv header" true
    (String.length csv > 13 && String.sub csv 0 13 = "metric,value\n");
  check "csv has phases" true
    (List.exists
       (fun line ->
         String.length line > 6 && String.sub line 0 6 = "phase.")
       (String.split_on_char '\n' csv))

(* Full summary JSON round-trip: [of_json (to_json s)] restores every
   field exactly, including the new crew counters.  One real run and one
   synthetic summary with the parallel-only fields nonzero (serial runs
   keep steals/lock_waits at 0, which would leave those paths untested). *)
let test_report_json_roundtrip () =
  let _, rt =
    instrumented_run ~seed:42 ~gc:(Gc_config.generational ())
      (Profile.anagram)
  in
  let s = Telemetry_report.of_runtime ~workload:"anagram" rt in
  (match Json.of_string (Json.to_string (Telemetry_report.to_json s)) with
  | Error e -> Alcotest.failf "summary json does not reparse: %s" e
  | Ok j -> (
      match Telemetry_report.of_json j with
      | Error e -> Alcotest.failf "summary of_json failed: %s" e
      | Ok s' -> check "real summary round-trips" true (s = s')));
  let synthetic =
    {
      s with
      Telemetry_report.steals = 123;
      steal_failures = 45;
      lock_waits = 17;
      lock_waits_by_class = [ (0, 3); (7, 12); (64, 2) ];
      trace_workers = 4;
    }
  in
  match
    Json.of_string (Json.to_string (Telemetry_report.to_json synthetic))
  with
  | Error e -> Alcotest.failf "synthetic summary does not reparse: %s" e
  | Ok j -> (
      match Telemetry_report.of_json j with
      | Error e -> Alcotest.failf "synthetic of_json failed: %s" e
      | Ok s' -> check "crew counters round-trip" true (synthetic = s'))

let test_report_of_json_rejects () =
  let s =
    Telemetry_report.of_runtime ~workload:"x"
      (snd
         (instrumented_run ~seed:1 ~gc:(Gc_config.generational ())
            (Profile.anagram)))
  in
  (match Telemetry_report.to_json s with
  | Json.Obj kvs ->
      (* dropping any one field must produce a descriptive error *)
      let without k = Json.Obj (List.remove_assoc k kvs) in
      List.iter
        (fun k ->
          match Telemetry_report.of_json (without k) with
          | Ok _ -> Alcotest.failf "of_json accepted summary missing %S" k
          | Error _ -> ())
        [ "workload"; "steals"; "lock_waits_by_class"; "trace_workers";
          "stall_latency" ]
  | _ -> Alcotest.fail "to_json did not produce an object");
  match Telemetry_report.of_json (Json.String "nope") with
  | Ok _ -> Alcotest.fail "of_json accepted a non-object"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Perfetto trace export                                               *)
(* ------------------------------------------------------------------ *)

let trace_doc () =
  (* Scale 0.05 so the measured lap contains at least one cycle that runs
     to completion; at smaller scales the sole mutator can retire between
     trace and sweep, ending the run mid-cycle. *)
  let _, rt =
    instrumented_run ~scale:0.05 ~seed:42 ~gc:(Gc_config.generational ())
      (Profile.anagram)
  in
  Trace_export.of_runtime ~workload:"anagram" rt

let event_list doc =
  match Option.bind (Json.member "traceEvents" doc) Json.as_list with
  | Some l -> l
  | None -> Alcotest.fail "no traceEvents"

let test_trace_golden () =
  let doc = trace_doc () in
  (* the writer's own validator accepts it... *)
  (match Trace_export.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("validate: " ^ e));
  (* ...and so does a full serialize/reparse lap *)
  (match Json.of_string (Json.to_string doc) with
  | Ok reparsed -> (
      match Trace_export.validate reparsed with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("validate after reparse: " ^ e))
  | Error e -> Alcotest.fail ("reparse: " ^ e));
  let events = event_list doc in
  let name_of e =
    Option.value ~default:"" (Option.bind (Json.member "name" e) Json.as_string)
  in
  let names = List.map name_of events in
  List.iter
    (fun expected ->
      check ("has " ^ expected) true (List.mem expected names))
    [ "thread_name"; "handshake sync1"; "handshake sync2"; "trace"; "sweep" ];
  check "has a cycle slice" true
    (List.exists
       (fun n -> n = "cycle partial" || n = "cycle full" || n = "cycle non-gen")
       names);
  (* every event is track-addressed *)
  List.iter
    (fun e ->
      check "has pid" true (Json.member "pid" e <> None);
      check "has tid" true (Json.member "tid" e <> None))
    events;
  (* one track per mutator beside the collector *)
  let tids =
    List.filter_map (fun e -> Option.bind (Json.member "tid" e) Json.as_int) events
    |> List.sort_uniq compare
  in
  check "collector track present" true (List.mem Trace_export.collector_tid tids);
  check "mutator track present" true
    (List.exists (fun t -> t <> Trace_export.collector_tid) tids);
  (* durations non-negative and slices time-ordered per track *)
  let slices_of tid =
    List.filter_map
      (fun e ->
        match Option.bind (Json.member "ph" e) Json.as_string with
        | Some "X" when Option.bind (Json.member "tid" e) Json.as_int = Some tid
          ->
            Some
              ( Option.get (Option.bind (Json.member "ts" e) Json.as_int),
                Option.get (Option.bind (Json.member "dur" e) Json.as_int) )
        | _ -> None)
      events
  in
  List.iter
    (fun tid ->
      List.iter
        (fun (_, dur) -> check "dur >= 0" true (dur >= 0))
        (slices_of tid))
    tids

let test_trace_validate_rejects () =
  let bogus =
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "x");
                  ("ph", Json.String "X");
                  ("ts", Json.Int 5);
                  ("dur", Json.Int (-1));
                  ("pid", Json.Int 1);
                  ("tid", Json.Int 0);
                ];
            ] );
      ]
  in
  check "negative dur rejected" true (Result.is_error (Trace_export.validate bogus));
  check "missing traceEvents rejected" true
    (Result.is_error (Trace_export.validate (Json.Obj [])));
  (* partial overlap on one track *)
  let overlap =
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "thread_name");
                  ("ph", Json.String "M");
                  ("pid", Json.Int 1);
                  ("tid", Json.Int 0);
                  ("args", Json.Obj [ ("name", Json.String "collector") ]);
                ];
              Json.Obj
                [
                  ("name", Json.String "a");
                  ("ph", Json.String "X");
                  ("ts", Json.Int 0);
                  ("dur", Json.Int 10);
                  ("pid", Json.Int 1);
                  ("tid", Json.Int 0);
                ];
              Json.Obj
                [
                  ("name", Json.String "b");
                  ("ph", Json.String "X");
                  ("ts", Json.Int 5);
                  ("dur", Json.Int 10);
                  ("pid", Json.Int 1);
                  ("tid", Json.Int 0);
                ];
            ] );
      ]
  in
  check "partial overlap rejected" true
    (Result.is_error (Trace_export.validate overlap))

let suites =
  [
    ( "telemetry.histogram",
      [
        Alcotest.test_case "basic stats" `Quick test_hist_basic;
        Alcotest.test_case "negative clamped" `Quick test_hist_negative_clamped;
        Alcotest.test_case "percentile monotone" `Quick
          test_hist_percentile_monotone;
        Alcotest.test_case "bucket precision" `Quick test_hist_bucket_precision;
        Alcotest.test_case "percentile_lower brackets" `Quick
          test_hist_percentile_lower_brackets;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "merge with empty" `Quick test_hist_merge_empty;
      ] );
    ( "telemetry.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "int/float distinct" `Quick
          test_json_int_float_distinct;
        Alcotest.test_case "errors" `Quick test_json_errors;
        Alcotest.test_case "unicode escape" `Quick test_json_unicode_escape;
      ] );
    ( "telemetry.ring",
      [
        Alcotest.test_case "bounded" `Quick test_ring_bounded;
        Alcotest.test_case "growth preserves order" `Quick
          test_ring_growth_preserves_order;
        Alcotest.test_case "payload roundtrip" `Quick test_ring_payload_roundtrip;
      ] );
    ( "telemetry.run_result",
      [
        Alcotest.test_case "json roundtrip" `Quick test_run_result_roundtrip;
        Alcotest.test_case "of_json errors" `Quick test_run_result_of_json_errors;
      ] );
    ( "telemetry.invariants",
      [
        Alcotest.test_case "generational" `Quick test_invariants_gen;
        Alcotest.test_case "non-generational" `Quick test_invariants_nongen;
        Alcotest.test_case "aging" `Quick test_invariants_aging;
        QCheck_alcotest.to_alcotest test_invariants_qcheck;
        Alcotest.test_case "telemetry is inert" `Quick test_telemetry_inert;
        Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
      ] );
    ( "telemetry.report",
      [
        Alcotest.test_case "summary" `Quick test_report_summary;
        Alcotest.test_case "json round-trip" `Quick
          test_report_json_roundtrip;
        Alcotest.test_case "of_json rejects malformed" `Quick
          test_report_of_json_rejects;
      ] );
    ( "telemetry.trace",
      [
        Alcotest.test_case "golden export" `Quick test_trace_golden;
        Alcotest.test_case "validator rejects" `Quick test_trace_validate_rejects;
      ] );
  ]
