(* Tests for the simulated heap substrate: layout arithmetic, the block
   space with boundary tags, segregated free lists with stale-entry
   tolerance, object allocation, card and age tables, page accounting. *)

open Otfgc_heap
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_granules () =
  check_int "granule" 16 Layout.granule;
  check_int "round up" 2 (Layout.granules_of_bytes 17);
  check_int "exact" 1 (Layout.granules_of_bytes 16);
  check_int "bytes" 48 (Layout.bytes_of_granules 3);
  check_int "page" 1 (Layout.page_of_addr 4096);
  check_int "page 0" 0 (Layout.page_of_addr 4095)

let test_layout_tables_disjoint () =
  let t = Layout.make_tables ~max_heap_bytes:(64 * kb) ~card_size:16 in
  check "color table above heap" true (t.Layout.color_table_base >= 64 * kb);
  check "age above color" true (t.Layout.age_table_base > t.Layout.color_table_base);
  check "cards above age" true (t.Layout.card_table_base > t.Layout.age_table_base);
  check "span covers all" true (t.Layout.virtual_span > t.Layout.card_table_base)

let test_layout_entry_addrs () =
  let t = Layout.make_tables ~max_heap_bytes:(64 * kb) ~card_size:256 in
  check_int "color of granule 2" (t.Layout.color_table_base + 2)
    (Layout.color_entry_addr t 32);
  check_int "card of addr 512" (t.Layout.card_table_base + 2)
    (Layout.card_entry_addr t ~card_size:256 512)

let test_layout_bad_card_size () =
  check "rejects non-power-of-two" true
    (match Layout.make_tables ~max_heap_bytes:kb ~card_size:48 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Space                                                               *)
(* ------------------------------------------------------------------ *)

let mk_space ?(initial = 4 * kb) ?(max = 16 * kb) () =
  Space.create ~initial_bytes:initial ~max_bytes:max ()

let test_space_initial () =
  let s = mk_space () in
  check_int "capacity" (4 * kb) (Space.capacity s);
  check_int "max" (16 * kb) (Space.max_capacity s);
  check "one free block" true (Space.kind_of s 0 = Space.Free);
  check_int "block covers all" (4 * kb) (Space.block_size s 0);
  check_int "nothing allocated" 0 (Space.allocated_bytes s);
  check "invariants" true (Space.check s = Ok ())

let test_space_split_and_kinds () =
  let s = mk_space () in
  let rest = Space.split s 0 ~first_bytes:64 in
  check_int "rest addr" 64 rest;
  check_int "first size" 64 (Space.block_size s 0);
  check_int "rest size" (4 * kb - 64) (Space.block_size s rest);
  Space.set_kind s 0 Space.Allocated;
  check "allocated" true (Space.kind_of s 0 = Space.Allocated);
  check_int "accounting" 64 (Space.allocated_bytes s);
  check_int "free accounting" (4 * kb - 64) (Space.free_bytes s);
  check "invariants" true (Space.check s = Ok ())

let test_space_iteration () =
  let s = mk_space () in
  let rest = Space.split s 0 ~first_bytes:32 in
  let _rest2 = Space.split s rest ~first_bytes:48 in
  Space.set_kind s rest Space.Allocated;
  let blocks = ref [] in
  Space.iter_blocks s (fun a k sz -> blocks := (a, k, sz) :: !blocks);
  Alcotest.(check int) "three blocks" 3 (List.length !blocks);
  check "middle allocated" true
    (match List.rev !blocks with
    | [ (0, Space.Free, 32); (32, Space.Allocated, 48); (80, Space.Free, _) ] ->
        true
    | _ -> false)

let test_space_next_prev () =
  let s = mk_space () in
  let rest = Space.split s 0 ~first_bytes:32 in
  check "next of 0" true (Space.next_block s 0 = Some rest);
  check "prev of rest" true (Space.prev_block s rest = Some 0);
  check "prev of 0" true (Space.prev_block s 0 = None);
  check "next of last" true (Space.next_block s rest = None)

let test_space_coalesce () =
  let s = mk_space () in
  let b = Space.split s 0 ~first_bytes:32 in
  let _c = Space.split s b ~first_bytes:32 in
  check "merge" true (Space.coalesce_with_next s 0);
  check_int "merged size" 64 (Space.block_size s 0);
  check "merge rest" true (Space.coalesce_with_next s 0);
  check_int "all merged" (4 * kb) (Space.block_size s 0);
  check "no more merges" false (Space.coalesce_with_next s 0);
  check "invariants" true (Space.check s = Ok ())

let test_space_no_merge_with_allocated () =
  let s = mk_space () in
  let b = Space.split s 0 ~first_bytes:32 in
  Space.set_kind s b Space.Allocated;
  check "no merge into allocated" false (Space.coalesce_with_next s 0);
  check "invariants" true (Space.check s = Ok ())

let test_space_grow () =
  let s = mk_space ~initial:(4 * kb) ~max:(8 * kb) () in
  (match Space.grow s ~want_bytes:(2 * kb) with
  | Some (addr, size) ->
      check_int "grown at end" (4 * kb) addr;
      check_int "grown size" (2 * kb) size
  | None -> Alcotest.fail "grow failed");
  check_int "capacity" (6 * kb) (Space.capacity s);
  (* growth clamps at max *)
  (match Space.grow s ~want_bytes:(64 * kb) with
  | Some (_, size) -> check_int "clamped" (2 * kb) size
  | None -> Alcotest.fail "grow failed");
  check "at max now" true (Space.grow s ~want_bytes:16 = None);
  check "invariants" true (Space.check s = Ok ())

let test_space_find_block_start () =
  let s = mk_space () in
  let b = Space.split s 0 ~first_bytes:64 in
  check_int "interior resolves" 0 (Space.find_block_start s 40);
  check_int "start resolves" b (Space.find_block_start s b)

let test_space_single_granule_blocks () =
  let s = mk_space () in
  let rest = Space.split s 0 ~first_bytes:16 in
  check_int "one granule" 16 (Space.block_size s 0);
  let rest2 = Space.split s rest ~first_bytes:16 in
  check_int "second one granule" 16 (Space.block_size s rest);
  ignore rest2;
  check "prev over single" true (Space.prev_block s rest = Some 0);
  check "merge singles" true (Space.coalesce_with_next s 0);
  check_int "merged" 32 (Space.block_size s 0);
  check "invariants" true (Space.check s = Ok ())

(* Crossing map: iter_block_starts_on_card must list exactly the blocks
   whose header lies in the card's window, in address order, as splits,
   coalesces and growth move block boundaries around.  Space.check
   cross-validates the map against a from-scratch walk, so the trailing
   invariant checks below do real work. *)

let starts_on_card s card =
  let acc = ref [] in
  Space.iter_block_starts_on_card s card (fun a _k _sz -> acc := a :: !acc);
  List.rev !acc

let test_space_crossing_map_basic () =
  let s =
    Space.create ~card_size:128 ~initial_bytes:(4 * kb) ~max_bytes:(8 * kb) ()
  in
  Alcotest.(check (list int)) "one start" [ 0 ] (starts_on_card s 0);
  Alcotest.(check (list int)) "interior card empty" [] (starts_on_card s 1);
  let b = Space.split s 0 ~first_bytes:32 in
  let _c = Space.split s b ~first_bytes:32 in
  Alcotest.(check (list int)) "splits on card 0" [ 0; 32; 64 ] (starts_on_card s 0);
  check "merge" true (Space.coalesce_with_next s b);
  Alcotest.(check (list int)) "after coalesce" [ 0; 32 ] (starts_on_card s 0);
  check "merge again" true (Space.coalesce_with_next s 0);
  Alcotest.(check (list int)) "single start again" [ 0 ] (starts_on_card s 0);
  check "invariants (incl. crossing map)" true (Space.check s = Ok ())

let test_space_crossing_map_coalesce_across_cards () =
  let s =
    Space.create ~card_size:128 ~initial_bytes:(4 * kb) ~max_bytes:(4 * kb) ()
  in
  let b = Space.split s 0 ~first_bytes:128 in
  let _c = Space.split s b ~first_bytes:32 in
  Alcotest.(check (list int)) "card 1 starts" [ 128; 160 ] (starts_on_card s 1);
  (* merging [0,128) with [128,160) erases card 1's first start; the
     following block at 160 still starts on card 1 and must take over *)
  check "merge" true (Space.coalesce_with_next s 0);
  Alcotest.(check (list int)) "160 promoted" [ 160 ] (starts_on_card s 1);
  check "invariants" true (Space.check s = Ok ());
  (* merging across the rest of card 1: the following block would start
     past the card (indeed past the heap), so the card goes empty *)
  check "merge rest" true (Space.coalesce_with_next s 0);
  Alcotest.(check (list int)) "card 1 empty" [] (starts_on_card s 1);
  Alcotest.(check (list int)) "card 0 intact" [ 0 ] (starts_on_card s 0);
  check "invariants" true (Space.check s = Ok ())

let test_space_crossing_map_grow () =
  let s = Space.create ~card_size:128 ~initial_bytes:256 ~max_bytes:kb () in
  Alcotest.(check (list int)) "card 2 empty before grow" []
    (starts_on_card s 2);
  (match Space.grow s ~want_bytes:128 with
  | Some (addr, _) ->
      check_int "grown block addr" 256 addr;
      Alcotest.(check (list int)) "grown start recorded" [ 256 ]
        (starts_on_card s 2)
  | None -> Alcotest.fail "grow failed");
  check "invariants" true (Space.check s = Ok ())

(* ------------------------------------------------------------------ *)
(* Freelist                                                            *)
(* ------------------------------------------------------------------ *)

let test_freelist_exact_fit () =
  let s = mk_space () in
  let fl = Freelist.create s in
  match Freelist.pop fl ~bytes_wanted:64 with
  | None -> Alcotest.fail "no block"
  | Some addr ->
      check_int "block size granule-exact" 64 (Space.block_size s addr);
      check "still free until claimed" true (Space.kind_of s addr = Space.Free)

let test_freelist_split_remainder () =
  let s = mk_space () in
  let fl = Freelist.create s in
  (match Freelist.pop fl ~bytes_wanted:64 with
  | Some addr ->
      Space.set_kind s addr Space.Allocated;
      (* remainder should be allocatable *)
      (match Freelist.pop fl ~bytes_wanted:128 with
      | Some addr2 ->
          check "disjoint" true (addr2 >= addr + 64 || addr2 + 128 <= addr)
      | None -> Alcotest.fail "remainder lost")
  | None -> Alcotest.fail "no block");
  check "invariants" true (Space.check s = Ok ())

let test_freelist_exhaustion () =
  let s = Space.create ~initial_bytes:64 ~max_bytes:64 () in
  let fl = Freelist.create s in
  (match Freelist.pop fl ~bytes_wanted:64 with
  | Some a -> Space.set_kind s a Space.Allocated
  | None -> Alcotest.fail "first alloc failed");
  check "exhausted" true (Freelist.pop fl ~bytes_wanted:16 = None)

let test_freelist_push_pop_roundtrip () =
  let s = Space.create ~initial_bytes:64 ~max_bytes:64 () in
  let fl = Freelist.create s in
  let a = Option.get (Freelist.pop fl ~bytes_wanted:64) in
  Space.set_kind s a Space.Allocated;
  Space.set_kind s a Space.Free;
  Freelist.push fl a;
  check "pop returns pushed" true (Freelist.pop fl ~bytes_wanted:64 = Some a)

let test_freelist_stale_entries_skipped () =
  let s = mk_space () in
  let fl = Freelist.create s in
  let a = Option.get (Freelist.pop fl ~bytes_wanted:32) in
  let b = Option.get (Freelist.pop fl ~bytes_wanted:32) in
  check "adjacent" true (b = a + 32 || a = b + 32);
  (* push both as free, then coalesce behind the list's back *)
  Freelist.push fl a;
  Freelist.push fl b;
  let lo = Stdlib.min a b in
  check "merged" true (Space.coalesce_with_next s lo);
  (* the two 32-byte entries are stale; a 64-byte request must still be
     satisfiable via the merged block or the big remainder *)
  (match Freelist.pop fl ~bytes_wanted:64 with
  | Some _ -> ()
  | None -> Alcotest.fail "stale entries broke allocation");
  check "invariants" true (Space.check s = Ok ())

let test_freelist_large_class () =
  let s = Space.create ~initial_bytes:(64 * kb) ~max_bytes:(64 * kb) () in
  let fl = Freelist.create s in
  (* larger than the largest exact class (63 granules = 1008 B) *)
  match Freelist.pop fl ~bytes_wanted:(8 * kb) with
  | Some addr -> check_int "big block" (8 * kb) (Space.block_size s addr)
  | None -> Alcotest.fail "large allocation failed"

let test_freelist_class_of_bytes () =
  check_int "16 bytes -> class 0" 0 (Freelist.class_of_bytes 16);
  check_int "17 bytes -> class 1" 1 (Freelist.class_of_bytes 17);
  check_int "1008 bytes -> class 62" 62 (Freelist.class_of_bytes 1008);
  check_int "big -> large class" 63 (Freelist.class_of_bytes 4096)

let test_freelist_counters () =
  let s = mk_space () in
  let fl = Freelist.create s in
  check_int "seeded entries" 1 (Freelist.entry_count fl);
  check_int "no stale drops yet" 0 (Freelist.stale_entries fl);
  let a = Option.get (Freelist.pop fl ~bytes_wanted:32) in
  Space.set_kind s a Space.Allocated;
  check_int "split remainder queued" 1 (Freelist.entry_count fl);
  let b = Option.get (Freelist.pop fl ~bytes_wanted:32) in
  Space.set_kind s b Space.Allocated;
  check "adjacent" true (b = a + 32);
  Space.set_kind s a Space.Free;
  Space.set_kind s b Space.Free;
  Freelist.push fl a;
  Freelist.push fl b;
  check_int "entries count possibly-stale too" 3 (Freelist.entry_count fl);
  (* merge behind the list's back: b's entry stops being a block start
     and a's entry changes size class — both are now stale *)
  check "merged" true (Space.coalesce_with_next s a);
  check_int "counters are lazy" 3 (Freelist.entry_count fl);
  check_int "staleness discovered only on pop" 0 (Freelist.stale_entries fl);
  (match Freelist.pop fl ~bytes_wanted:32 with
  | Some addr -> Space.set_kind s addr Space.Allocated
  | None -> Alcotest.fail "pop failed");
  check_int "both stale entries counted" 2 (Freelist.stale_entries fl);
  check_int "remaining entries" 1 (Freelist.entry_count fl);
  Freelist.rebuild fl;
  check_int "rebuild reseeds from space" 2 (Freelist.entry_count fl);
  check_int "stale count is cumulative" 2 (Freelist.stale_entries fl)

let prop_freelist_random_alloc_free =
  QCheck.Test.make ~name:"freelist/space random alloc-free keeps invariants"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.make seed in
      let s = Space.create ~initial_bytes:(8 * kb) ~max_bytes:(8 * kb) () in
      let fl = Freelist.create s in
      let live = ref [] in
      for _ = 1 to 200 do
        if Rng.bool rng || !live = [] then begin
          let size = 16 * Rng.int_in rng 1 8 in
          match Freelist.pop fl ~bytes_wanted:size with
          | Some a ->
              Space.set_kind s a Space.Allocated;
              live := a :: !live
          | None -> ()
        end
        else begin
          let n = Rng.int rng (List.length !live) in
          let a = List.nth !live n in
          live := List.filteri (fun i _ -> i <> n) !live;
          Space.set_kind s a Space.Free;
          Freelist.push fl a
        end
      done;
      Space.check s = Ok ())

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let mk_heap ?(initial = 16 * kb) ?(max = 64 * kb) ?(card = 16) () =
  Heap.create { Heap.initial_bytes = initial; max_bytes = max; card_size = card }

let test_heap_alloc_basic () =
  let h = mk_heap () in
  match Heap.alloc h ~size:48 ~n_slots:2 ~color:Color.C0 with
  | None -> Alcotest.fail "alloc failed"
  | Some a ->
      check "is object" true (Heap.is_object h a);
      check_int "size" 48 (Heap.size h a);
      check_int "slots" 2 (Heap.n_slots h a);
      check "color" true (Color.equal (Heap.color h a) Color.C0);
      check_int "age zero" 0 (Age_table.get (Heap.ages h) a);
      check_int "slot nil" Heap.nil (Heap.get_slot h a 0);
      check_int "accounting" 48 (Heap.allocated_bytes h);
      check_int "cumulative" 48 (Heap.total_allocated_bytes h);
      check_int "objects" 1 (Heap.total_allocated_objects h)

let test_heap_alloc_size_check () =
  let h = mk_heap () in
  check "slots need room" true
    (match Heap.alloc h ~size:16 ~n_slots:2 ~color:Color.C0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_heap_slots_roundtrip () =
  let h = mk_heap () in
  let a = Option.get (Heap.alloc h ~size:48 ~n_slots:2 ~color:Color.C0) in
  let b = Option.get (Heap.alloc h ~size:32 ~n_slots:1 ~color:Color.C0) in
  Heap.set_slot h a 0 b;
  Heap.set_slot h a 1 b;
  check_int "slot stored" b (Heap.get_slot h a 0);
  let seen = ref 0 in
  Heap.iter_slots h a (fun y ->
      incr seen;
      check_int "iter value" b y);
  check_int "iter count" 2 !seen;
  check "check ok" true (Heap.check h = Ok ())

let test_heap_free_recycles () =
  let h = mk_heap () in
  let a = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C0) in
  Heap.free h a;
  check "freed not object" false (Heap.is_object h a);
  check "blue" true (Color.equal (Heap.color h a) Color.Blue);
  check_int "accounting back to zero" 0 (Heap.allocated_bytes h);
  let b = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C1) in
  check_int "address reused" a b

let test_heap_free_validation () =
  let h = mk_heap () in
  check "free of non-object rejected" true
    (match Heap.free h 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_heap_merge_free_prev () =
  let h = mk_heap ~initial:kb ~max:kb () in
  let a = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C0) in
  let b = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C0) in
  check "adjacent allocation" true (b = a + 64);
  Heap.free h a;
  Heap.free h b;
  let merged = Heap.merge_free_prev h b in
  check_int "merged into predecessor" a merged;
  check_int "merged size" 128 (Space.block_size (Heap.space h) a);
  check "check ok" true (Heap.check h = Ok ())

let test_heap_grow () =
  let h = mk_heap ~initial:kb ~max:(2 * kb) () in
  check_int "initial cap" kb (Heap.capacity h);
  check "grows" true (Heap.grow h ~want_bytes:kb);
  check_int "grown" (2 * kb) (Heap.capacity h);
  check "cannot grow past max" false (Heap.grow h ~want_bytes:kb);
  (* new space is allocatable *)
  check "new space usable" true
    (Heap.alloc h ~size:(2 * kb - 32) ~n_slots:0 ~color:Color.C0 <> None
    || Heap.alloc h ~size:kb ~n_slots:0 ~color:Color.C0 <> None)

let test_heap_grow_no_merge_with_trailing_free () =
  (* Heap.grow must never merge the grown block into a trailing free
     block: sweep's cursor may sit on that block, and merging would move
     a block boundary ahead of the cursor.  Regression test for the
     comment in Heap.grow that used to claim the opposite. *)
  let h = mk_heap ~initial:kb ~max:(2 * kb) () in
  let a = Option.get (Heap.alloc h ~size:(kb - 64) ~n_slots:0 ~color:Color.C0) in
  let s = Heap.space h in
  let tail = a + (kb - 64) in
  check "trailing block free" true (Space.kind_of s tail = Space.Free);
  check_int "trailing size" 64 (Space.block_size s tail);
  check "grows" true (Heap.grow h ~want_bytes:kb);
  (* still two separate free blocks *)
  check_int "trailing block kept its size" 64 (Space.block_size s tail);
  check "grown block is its own block" true (Space.is_block_start s kb);
  check_int "grown block size" kb (Space.block_size s kb);
  (* both reach the free lists: the exact-fit pop takes the old tail, the
     large pop takes the grown block *)
  let b = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C0) in
  check_int "tail allocated" tail b;
  let c = Option.get (Heap.alloc h ~size:kb ~n_slots:0 ~color:Color.C0) in
  check_int "grown block allocated" kb c;
  check "check ok" true (Heap.check h = Ok ())

let test_heap_exhaustion_returns_none () =
  let h = mk_heap ~initial:128 ~max:128 () in
  let _a = Option.get (Heap.alloc h ~size:128 ~n_slots:0 ~color:Color.C0) in
  check "exhausted" true (Heap.alloc h ~size:16 ~n_slots:0 ~color:Color.C0 = None)

let test_heap_objects_on_card () =
  let h = mk_heap ~card:64 () in
  let a = Option.get (Heap.alloc h ~size:16 ~n_slots:0 ~color:Color.C0) in
  let b = Option.get (Heap.alloc h ~size:16 ~n_slots:0 ~color:Color.C0) in
  let c = Option.get (Heap.alloc h ~size:64 ~n_slots:0 ~color:Color.C0) in
  (* a, b and two granules of padding fill card 0; c starts on card 1 *)
  let d = Option.get (Heap.alloc h ~size:16 ~n_slots:0 ~color:Color.C0) in
  ignore d;
  let card0 = Card_table.card_of_addr (Heap.cards h) a in
  let objs = Heap.objects_on_card h card0 in
  check "a on card" true (List.mem a objs);
  check "b on card" true (List.mem b objs);
  check "c not on card 0" true
    (Card_table.card_of_addr (Heap.cards h) c <> card0 || List.mem c objs)

let test_heap_iter_objects_on_card_agrees () =
  (* iter_objects_on_card (crossing-map driven) against an independent
     reference: filter the full object walk by the card's byte bounds. *)
  let h = mk_heap ~initial:(8 * kb) ~max:(8 * kb) ~card:256 () in
  let objs = ref [] in
  for i = 0 to 40 do
    let size = 16 * (1 + (i mod 5)) in
    match Heap.alloc h ~size ~n_slots:0 ~color:Color.C0 with
    | Some a -> objs := a :: !objs
    | None -> Alcotest.fail "alloc failed"
  done;
  (* punch holes so cards mix allocated blocks, free blocks and interior
     granules *)
  List.iteri (fun i a -> if i mod 3 = 0 then Heap.free h a) (List.rev !objs);
  let cards = Heap.cards h in
  for card = 0 to Card_table.n_cards cards - 1 do
    let lo, hi = Card_table.card_bounds cards card in
    let expected = ref [] in
    Heap.iter_objects h (fun x ->
        if x >= lo && x < hi then expected := x :: !expected);
    let seen = ref [] in
    Heap.iter_objects_on_card h card (fun x -> seen := x :: !seen);
    Alcotest.(check (list int))
      (Printf.sprintf "card %d" card)
      (List.rev !expected) (List.rev !seen);
    Alcotest.(check (list int))
      (Printf.sprintf "card %d list" card)
      (List.rev !expected)
      (Heap.objects_on_card h card)
  done

let test_heap_iter_objects_order () =
  let h = mk_heap () in
  let a = Option.get (Heap.alloc h ~size:32 ~n_slots:0 ~color:Color.C0) in
  let b = Option.get (Heap.alloc h ~size:32 ~n_slots:0 ~color:Color.C0) in
  let seen = ref [] in
  Heap.iter_objects h (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "address order" [ a; b ] (List.rev !seen);
  check_int "object count" 2 (Heap.object_count h)

let test_heap_check_detects_dangling () =
  let h = mk_heap () in
  let a = Option.get (Heap.alloc h ~size:32 ~n_slots:1 ~color:Color.C0) in
  let b = Option.get (Heap.alloc h ~size:32 ~n_slots:0 ~color:Color.C0) in
  Heap.set_slot h a 0 b;
  Heap.free h b;
  check "dangling caught" true (Heap.check h <> Ok ())

(* ------------------------------------------------------------------ *)
(* Card table                                                          *)
(* ------------------------------------------------------------------ *)

let test_cards_basic () =
  let t = Card_table.create ~card_size:256 ~max_heap_bytes:(4 * kb) in
  check_int "count" 16 (Card_table.n_cards t);
  check_int "card of addr" 3 (Card_table.card_of_addr t 800);
  check "clean initially" false (Card_table.is_dirty t 3);
  Card_table.mark t 800;
  check "dirty after mark" true (Card_table.is_dirty t 3);
  check_int "dirty count" 1 (Card_table.dirty_count t);
  Card_table.clear_card t 3;
  check "clean after clear" false (Card_table.is_dirty t 3)

let test_cards_bounds () =
  let t = Card_table.create ~card_size:16 ~max_heap_bytes:kb in
  let lo, hi = Card_table.card_bounds t 2 in
  check_int "lo" 32 lo;
  check_int "hi" 48 hi

let test_cards_clear_all_and_iter () =
  let t = Card_table.create ~card_size:16 ~max_heap_bytes:kb in
  Card_table.mark t 0;
  Card_table.mark t 100;
  Card_table.mark t 1000;
  let seen = ref [] in
  Card_table.iter_dirty t (fun c -> seen := c :: !seen);
  check_int "three dirty" 3 (List.length !seen);
  check "ascending" true (!seen = List.rev (List.sort compare !seen));
  Card_table.clear_all t;
  check_int "none dirty" 0 (Card_table.dirty_count t)

let test_cards_size_validation () =
  check "rejects 8" true
    (match Card_table.create ~card_size:8 ~max_heap_bytes:kb with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "rejects 8192" true
    (match Card_table.create ~card_size:8192 ~max_heap_bytes:kb with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The word-level [dirty_count]/[iter_dirty] must agree with the naive
   one-byte-per-card loop they replaced, on any mark pattern and on card
   counts that are not multiples of the 8-card probe width. *)

let naive_dirty_cards t =
  let dirty = ref [] in
  for card = Card_table.n_cards t - 1 downto 0 do
    if Card_table.is_dirty t card then dirty := card :: !dirty
  done;
  !dirty

let prop_cards_wordscan_matches_naive =
  QCheck.Test.make ~name:"word-level card scan agrees with byte loop" ~count:200
    QCheck.(pair (int_range 1 200) (list (int_bound 10_000)))
    (fun (n_cards, marks) ->
      (* 16-byte cards: n_cards covers every residue mod 8, including
         tables smaller than one probe word *)
      let t = Card_table.create ~card_size:16 ~max_heap_bytes:(16 * n_cards) in
      List.iter (fun m -> Card_table.mark_card t (m mod n_cards)) marks;
      let expected = naive_dirty_cards t in
      let seen = ref [] in
      Card_table.iter_dirty t (fun c -> seen := c :: !seen);
      List.rev !seen = expected
      && Card_table.dirty_count t = List.length expected)

let prop_cards_wordscan_dense =
  QCheck.Test.make ~name:"word-level card scan on dense/sparse extremes"
    ~count:50
    QCheck.(pair (int_range 1 300) bool)
    (fun (n_cards, dense) ->
      let t = Card_table.create ~card_size:16 ~max_heap_bytes:(16 * n_cards) in
      if dense then
        for c = 0 to n_cards - 1 do
          Card_table.mark_card t c
        done
      else if n_cards > 1 then Card_table.mark_card t (n_cards - 1);
      let expected = naive_dirty_cards t in
      let seen = ref [] in
      Card_table.iter_dirty t (fun c -> seen := c :: !seen);
      List.rev !seen = expected
      && Card_table.dirty_count t = List.length expected)

let test_cards_iter_dirty_clearing_callback () =
  (* the collector's own usage: the callback cleans each card it visits *)
  let t = Card_table.create ~card_size:16 ~max_heap_bytes:(16 * 37) in
  List.iter (Card_table.mark_card t) [ 0; 7; 8; 20; 35; 36 ];
  let seen = ref [] in
  Card_table.iter_dirty t (fun c ->
      seen := c :: !seen;
      Card_table.clear_card t c);
  check "visited all once, in order" true
    (List.rev !seen = [ 0; 7; 8; 20; 35; 36 ]);
  check_int "all clean afterwards" 0 (Card_table.dirty_count t)

(* ------------------------------------------------------------------ *)
(* Age table                                                           *)
(* ------------------------------------------------------------------ *)

let test_ages () =
  let t = Age_table.create ~max_heap_bytes:kb in
  check_int "fresh" 0 (Age_table.get t 64);
  Age_table.incr t 64;
  Age_table.incr t 64;
  check_int "incremented" 2 (Age_table.get t 64);
  check_int "neighbour untouched" 0 (Age_table.get t 80);
  Age_table.set t 64 300;
  check_int "clamped" 255 (Age_table.get t 64);
  Age_table.incr t 64;
  check_int "saturates" 255 (Age_table.get t 64)

(* ------------------------------------------------------------------ *)
(* Page set                                                            *)
(* ------------------------------------------------------------------ *)

let test_pages_basic () =
  let tables = Layout.make_tables ~max_heap_bytes:(64 * kb) ~card_size:16 in
  let p = Page_set.create tables in
  check_int "empty" 0 (Page_set.count p);
  Page_set.touch_range p 0 1;
  Page_set.touch_range p 100 1;
  check_int "same page" 1 (Page_set.count p);
  Page_set.touch_range p 4096 1;
  check_int "two pages" 2 (Page_set.count p);
  Page_set.touch_range p 0 8193;
  check_int "range covers three" 3 (Page_set.count p);
  Page_set.reset p;
  check_int "reset" 0 (Page_set.count p)

let test_pages_tables_distinct () =
  let tables = Layout.make_tables ~max_heap_bytes:(64 * kb) ~card_size:16 in
  let p = Page_set.create tables in
  Page_set.touch_heap_object p ~addr:0 ~size:16;
  Page_set.touch_color p 0;
  Page_set.touch_age p 0;
  Page_set.touch_card p ~card_size:16 0;
  (* heap page + color page + age page + card page are all distinct *)
  check_int "four distinct pages" 4 (Page_set.count p)

(* ------------------------------------------------------------------ *)
(* Color                                                               *)
(* ------------------------------------------------------------------ *)

let test_color_byte_roundtrip () =
  List.iter
    (fun c ->
      check "roundtrip" true (Color.equal c (Color.of_byte (Color.to_byte c))))
    [ Color.Blue; Color.C0; Color.C1; Color.Gray; Color.Black ]

let test_color_other () =
  check "other c0" true (Color.equal (Color.other Color.C0) Color.C1);
  check "other c1" true (Color.equal (Color.other Color.C1) Color.C0);
  check "other black rejected" true
    (match Color.other Color.Black with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suites =
  [
    ( "heap.layout",
      [
        Alcotest.test_case "granules" `Quick test_layout_granules;
        Alcotest.test_case "tables disjoint" `Quick test_layout_tables_disjoint;
        Alcotest.test_case "entry addrs" `Quick test_layout_entry_addrs;
        Alcotest.test_case "bad card size" `Quick test_layout_bad_card_size;
      ] );
    ( "heap.space",
      [
        Alcotest.test_case "initial" `Quick test_space_initial;
        Alcotest.test_case "split and kinds" `Quick test_space_split_and_kinds;
        Alcotest.test_case "iteration" `Quick test_space_iteration;
        Alcotest.test_case "next/prev" `Quick test_space_next_prev;
        Alcotest.test_case "coalesce" `Quick test_space_coalesce;
        Alcotest.test_case "no merge with allocated" `Quick
          test_space_no_merge_with_allocated;
        Alcotest.test_case "grow" `Quick test_space_grow;
        Alcotest.test_case "find block start" `Quick test_space_find_block_start;
        Alcotest.test_case "crossing map basic" `Quick
          test_space_crossing_map_basic;
        Alcotest.test_case "crossing map coalesce across cards" `Quick
          test_space_crossing_map_coalesce_across_cards;
        Alcotest.test_case "crossing map grow" `Quick
          test_space_crossing_map_grow;
        Alcotest.test_case "single granule blocks" `Quick
          test_space_single_granule_blocks;
      ] );
    ( "heap.freelist",
      [
        Alcotest.test_case "exact fit" `Quick test_freelist_exact_fit;
        Alcotest.test_case "split remainder" `Quick test_freelist_split_remainder;
        Alcotest.test_case "exhaustion" `Quick test_freelist_exhaustion;
        Alcotest.test_case "push/pop roundtrip" `Quick
          test_freelist_push_pop_roundtrip;
        Alcotest.test_case "stale entries" `Quick test_freelist_stale_entries_skipped;
        Alcotest.test_case "large class" `Quick test_freelist_large_class;
        Alcotest.test_case "class_of_bytes" `Quick test_freelist_class_of_bytes;
        Alcotest.test_case "entry/stale counters" `Quick test_freelist_counters;
        QCheck_alcotest.to_alcotest prop_freelist_random_alloc_free;
      ] );
    ( "heap.heap",
      [
        Alcotest.test_case "alloc basic" `Quick test_heap_alloc_basic;
        Alcotest.test_case "alloc size check" `Quick test_heap_alloc_size_check;
        Alcotest.test_case "slots roundtrip" `Quick test_heap_slots_roundtrip;
        Alcotest.test_case "free recycles" `Quick test_heap_free_recycles;
        Alcotest.test_case "free validation" `Quick test_heap_free_validation;
        Alcotest.test_case "merge free prev" `Quick test_heap_merge_free_prev;
        Alcotest.test_case "grow" `Quick test_heap_grow;
        Alcotest.test_case "grow keeps trailing free block" `Quick
          test_heap_grow_no_merge_with_trailing_free;
        Alcotest.test_case "exhaustion" `Quick test_heap_exhaustion_returns_none;
        Alcotest.test_case "objects on card" `Quick test_heap_objects_on_card;
        Alcotest.test_case "card iteration agrees with full walk" `Quick
          test_heap_iter_objects_on_card_agrees;
        Alcotest.test_case "iter objects" `Quick test_heap_iter_objects_order;
        Alcotest.test_case "check detects dangling" `Quick
          test_heap_check_detects_dangling;
      ] );
    ( "heap.cards",
      [
        Alcotest.test_case "basic" `Quick test_cards_basic;
        Alcotest.test_case "bounds" `Quick test_cards_bounds;
        Alcotest.test_case "clear all / iter" `Quick test_cards_clear_all_and_iter;
        Alcotest.test_case "size validation" `Quick test_cards_size_validation;
        Alcotest.test_case "iter_dirty with clearing callback" `Quick
          test_cards_iter_dirty_clearing_callback;
        QCheck_alcotest.to_alcotest prop_cards_wordscan_matches_naive;
        QCheck_alcotest.to_alcotest prop_cards_wordscan_dense;
      ] );
    ("heap.ages", [ Alcotest.test_case "ages" `Quick test_ages ]);
    ( "heap.pages",
      [
        Alcotest.test_case "basic" `Quick test_pages_basic;
        Alcotest.test_case "tables distinct" `Quick test_pages_tables_distinct;
      ] );
    ( "heap.color",
      [
        Alcotest.test_case "byte roundtrip" `Quick test_color_byte_roundtrip;
        Alcotest.test_case "other" `Quick test_color_other;
      ] );
  ]
