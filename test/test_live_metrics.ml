(* Live observability: lock-free metrics snapshots, the OpenMetrics
   emitter/validator, the observer domain, trajectory schema v2 with
   regression attribution, and the cross-run dashboard.

   The load-bearing property is the quiescence contract: a snapshot
   taken after the domains run reaches quiescence but before the driver
   folds the per-mutator ledgers must equal the post-run
   Gc_stats/Telemetry totals exactly — the observer's final snapshot is
   taken at precisely that point, so the end-to-end test below compares
   it field by field against the merged ledgers. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Substrate = Otfgc_sched.Substrate
module Driver = Otfgc_workloads.Driver
module Profile = Otfgc_workloads.Profile
module Metrics_snapshot = Otfgc_metrics.Metrics_snapshot
module Openmetrics = Otfgc_metrics.Openmetrics
module Observer = Otfgc_metrics.Observer
module Trajectory = Otfgc_metrics.Trajectory
module Dashboard = Otfgc_metrics.Dashboard
module Json = Otfgc_support.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let small_rt () =
  Runtime.create
    ~heap_config:
      { Heap.initial_bytes = 64 * 1024; max_bytes = 64 * 1024; card_size = 16 }
    ~gc_config:(Gc_config.generational ()) ()

(* ------------------------------------------------------------------ *)
(* Metrics_snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let test_snapshot_fresh () =
  let rt = small_rt () in
  let s = Metrics_snapshot.take (Runtime.state rt) in
  check_int "no work yet" 0 s.Metrics_snapshot.mutator_work;
  check_int "no cycles yet" 0
    (s.Metrics_snapshot.cycles_partial + s.Metrics_snapshot.cycles_full
   + s.Metrics_snapshot.cycles_non_gen);
  check "capacity gauge positive" true (s.Metrics_snapshot.heap_capacity > 0);
  check "all counters non-negative" true
    (List.for_all (fun (_, v) -> v >= 0) (Metrics_snapshot.counters s));
  check_str "idle phase" "idle" s.Metrics_snapshot.phase

let test_snapshot_monotone_delta () =
  let rt = small_rt () in
  let st = Runtime.state rt in
  let s1 = Metrics_snapshot.take ~seq:0 st in
  let tel = Runtime.telemetry rt in
  Telemetry.hit_barrier tel;
  Telemetry.hit_barrier tel;
  Telemetry.add_promotions tel 3;
  Cost.mutator (Runtime.cost rt) 17;
  let s2 = Metrics_snapshot.take ~seq:1 st in
  let d = Metrics_snapshot.delta ~earlier:s1 ~later:s2 in
  check_int "barrier delta" 2 d.Metrics_snapshot.barrier_updates;
  check_int "promotions delta" 3 d.Metrics_snapshot.promotions;
  check_int "mutator work delta" 17 d.Metrics_snapshot.mutator_work;
  check_int "delta keeps later seq" 1 d.Metrics_snapshot.seq;
  check "every counter delta non-negative" true
    (List.for_all (fun (_, v) -> v >= 0) (Metrics_snapshot.counters d))

let test_snapshot_json_roundtrip () =
  let rt = small_rt () in
  let tel = Runtime.telemetry rt in
  Telemetry.hit_barrier tel;
  Telemetry.hit_card_mark tel;
  Cost.collector (Runtime.cost rt) 5;
  let s = Metrics_snapshot.take ~seq:7 ~at_ms:123.5 (Runtime.state rt) in
  match Metrics_snapshot.of_json (Metrics_snapshot.to_json s) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok s' ->
      check_int "seq" s.Metrics_snapshot.seq s'.Metrics_snapshot.seq;
      check_str "phase" s.Metrics_snapshot.phase s'.Metrics_snapshot.phase;
      Alcotest.(check (list (pair string int)))
        "counters survive" (Metrics_snapshot.counters s)
        (Metrics_snapshot.counters s');
      Alcotest.(check (list (pair string int)))
        "gauges survive" (Metrics_snapshot.gauges s)
        (Metrics_snapshot.gauges s')

let test_snapshot_json_rejects () =
  check "garbage rejected" true
    (Result.is_error (Metrics_snapshot.of_json (Json.String "nope")));
  check "empty object rejected" true
    (Result.is_error (Metrics_snapshot.of_json (Json.Obj [])))

(* ------------------------------------------------------------------ *)
(* OpenMetrics emitter + validator                                     *)
(* ------------------------------------------------------------------ *)

let sample_snapshot () =
  let rt = small_rt () in
  let tel = Runtime.telemetry rt in
  Telemetry.hit_barrier tel;
  Telemetry.add_promotions tel 2;
  Metrics_snapshot.take ~seq:3 ~at_ms:10. (Runtime.state rt)

let test_om_render_validates () =
  let doc =
    Openmetrics.render
      ~labels:[ ("workload", "anagram"); ("mode", "gen") ]
      (sample_snapshot ())
  in
  match Openmetrics.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitter output rejected: %s\n%s" e doc

let test_om_deterministic_order () =
  let s = sample_snapshot () in
  check_str "same snapshot renders identically" (Openmetrics.render s)
    (Openmetrics.render s);
  (* counter families appear in Metrics_snapshot.counters order *)
  let doc = Openmetrics.render s in
  let pos name =
    let needle = "# TYPE otfgc_" ^ name ^ " " in
    let rec find i =
      if i + String.length needle > String.length doc then
        Alcotest.failf "family %s missing" name
      else if String.sub doc i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  ignore
    (List.fold_left
       (fun prev (name, _) ->
         let p = pos name in
         check (name ^ " after its predecessor") true (p > prev);
         p)
       (-1)
       (Metrics_snapshot.counters s))

let test_om_escaping () =
  check_str "backslash, quote, newline escaped" "a\\\\b\\\"c\\nd"
    (Openmetrics.escape_label_value "a\\b\"c\nd");
  let doc =
    Openmetrics.render
      ~labels:[ ("workload", "we\"ird\\name\nhere") ]
      (sample_snapshot ())
  in
  match Openmetrics.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "escaped labels rejected: %s" e

let test_om_validator_rejects () =
  let ok doc = Result.is_error (Openmetrics.validate doc) in
  check "missing EOF" true (ok "# TYPE x counter\nx_total 1\n");
  check "missing trailing newline" true
    (ok "# TYPE x counter\nx_total 1\n# EOF");
  check "content after EOF" true
    (ok "# TYPE x counter\nx_total 1\n# EOF\nx_total 2\n");
  check "blank line" true (ok "# TYPE x counter\n\nx_total 1\n# EOF\n");
  check "sample before any TYPE" true (ok "x_total 1\n# EOF\n");
  check "duplicate family" true
    (ok "# TYPE x counter\nx_total 1\n# TYPE x counter\nx_total 2\n# EOF\n");
  check "counter sample without _total" true
    (ok "# TYPE x counter\nx 1\n# EOF\n");
  check "sample outside its family block" true
    (ok
       "# TYPE x counter\nx_total 1\n# TYPE y gauge\nx_total 2\n# EOF\n");
  check "unknown type" true (ok "# TYPE x histogram\nx 1\n# EOF\n");
  check "non-finite value" true (ok "# TYPE x gauge\nx nan\n# EOF\n");
  check "bad escape in label" true
    (ok "# TYPE x gauge\nx{l=\"a\\q\"} 1\n# EOF\n");
  check "unterminated label block" true
    (ok "# TYPE x gauge\nx{l=\"a\" 1\n# EOF\n");
  check "family with no samples" true
    (ok "# TYPE x gauge\n# TYPE y gauge\ny 1\n# EOF\n")

let test_om_validator_accepts_labels () =
  match
    Openmetrics.validate
      "# HELP x help text\n# TYPE x gauge\nx{a=\"1\",b=\"t\\\"wo\"} 3.5\n# EOF\n"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "labelled sample rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Observer end-to-end on the domains substrate                        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_with_observer ~every_ms =
  let om = Filename.temp_file "otfgc_metrics" ".om" in
  let jsonl = Filename.temp_file "otfgc_metrics" ".jsonl" in
  let obs =
    Observer.create
      {
        Observer.every_ms;
        om_path = Some om;
        jsonl_path = Some jsonl;
        live = false;
        labels = [ ("workload", "anagram") ];
      }
  in
  let _, rt =
    Driver.run_rt ~seed:42 ~scale:0.04 ~substrate:Substrate.Domains
      ~threads:2 ~observer:obs
      ~gc:(Gc_config.generational ()) Profile.anagram
  in
  (obs, rt, om, jsonl)

let test_observer_final_exact () =
  let obs, rt, om, jsonl = run_with_observer ~every_ms:5. in
  let snaps = Observer.snapshots obs in
  check "snapshots taken" true (snaps <> []);
  let final = List.nth snaps (List.length snaps - 1) in
  (* after Driver's ledger fold the shared ledgers hold the whole-run
     totals; the final snapshot (taken before the fold, summing shared +
     own) must equal them exactly *)
  let cost = Runtime.cost rt in
  let tel = Runtime.telemetry rt in
  let stats = Runtime.stats rt in
  check_int "mutator work exact" (Cost.mutator_work cost)
    final.Metrics_snapshot.mutator_work;
  check_int "collector work exact" (Cost.collector_work cost)
    final.Metrics_snapshot.collector_work;
  check_int "stall work exact" (Cost.stall_work cost)
    final.Metrics_snapshot.stall_work;
  List.iter
    (fun p ->
      check_int
        ("phase work exact: " ^ Cost.phase_name p)
        (Cost.phase_work cost p)
        (List.assoc
           (Metrics_snapshot.metric_name_of_phase p)
           final.Metrics_snapshot.phase_work))
    Cost.phases;
  check_int "barrier updates exact" (Telemetry.barrier_updates tel)
    final.Metrics_snapshot.barrier_updates;
  check_int "handshake acks exact" (Telemetry.handshake_acks tel)
    final.Metrics_snapshot.handshake_acks;
  check_int "card marks exact" (Telemetry.card_marks tel)
    final.Metrics_snapshot.card_marks;
  check_int "partial cycles exact"
    (Gc_stats.n_completed_of stats Gc_stats.Partial)
    final.Metrics_snapshot.cycles_partial;
  check_int "full cycles exact" (Gc_stats.n_completed_of stats Gc_stats.Full)
    final.Metrics_snapshot.cycles_full;
  check_int "freed bytes exact" (Gc_stats.live_bytes_freed stats)
    final.Metrics_snapshot.gc_bytes_freed;
  check_int "promotions aggregate exact" (Gc_stats.live_promotions stats)
    final.Metrics_snapshot.gc_promotions;
  (* seq numbering is dense *)
  List.iteri
    (fun i s -> check_int "dense seq" i s.Metrics_snapshot.seq)
    snaps;
  (* the OM sink holds the final snapshot and validates *)
  (match Openmetrics.validate (read_file om) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "om sink invalid: %s" e);
  (* JSONL parse-back: one valid line per snapshot, last line = final *)
  let lines =
    String.split_on_char '\n' (read_file jsonl)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one JSONL line per snapshot" (List.length snaps)
    (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Result.bind (Json.of_string l) Metrics_snapshot.of_json with
        | Ok s -> s
        | Error e -> Alcotest.failf "JSONL line unparsable: %s" e)
      lines
  in
  let last = List.nth parsed (List.length parsed - 1) in
  Alcotest.(check (list (pair string int)))
    "last JSONL line is the final snapshot"
    (Metrics_snapshot.counters final)
    (Metrics_snapshot.counters last);
  Sys.remove om;
  Sys.remove jsonl

let test_observer_zero_cadence_ticks () =
  (* cadence far beyond the run length: the stop-time snapshot is still
     taken, so every sink gets exactly one record *)
  let obs, _rt, om, jsonl = run_with_observer ~every_ms:60_000. in
  check_int "exactly the final snapshot" 1
    (List.length (Observer.snapshots obs));
  (match Openmetrics.validate (read_file om) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "om sink invalid: %s" e);
  check_int "one JSONL line" 1
    (List.length
       (String.split_on_char '\n' (read_file jsonl)
       |> List.filter (fun l -> l <> "")));
  Sys.remove om;
  Sys.remove jsonl

let test_observer_rejects_sim () =
  let obs =
    Observer.create
      {
        Observer.every_ms = 10.;
        om_path = None;
        jsonl_path = None;
        live = false;
        labels = [];
      }
  in
  check "observer on sim substrate rejected" true
    (match
       Driver.run_rt ~scale:0.01 ~observer:obs
         ~gc:(Gc_config.generational ()) Profile.anagram
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Trajectory schema v2 + attribution                                  *)
(* ------------------------------------------------------------------ *)

let mk_traj metrics =
  Trajectory.make ~scale:0.05 ~seed:42 ~quick:true
    [ { Trajectory.name = "s1"; wall_ms = 1.; metrics } ]

let v2_metrics =
  [
    ("elapsed_multi", 1000.);
    ("collector_work", 400.);
    ("phase_trace", 300.);
    ("phase_sweep", 100.);
    ("ctr_promotions", 50.);
  ]

let test_trajectory_v2_roundtrip () =
  let t = mk_traj v2_metrics in
  check_int "current schema is v2" 2 Trajectory.schema_version;
  match Trajectory.of_json (Trajectory.to_json t) with
  | Error e -> Alcotest.failf "v2 round-trip failed: %s" e
  | Ok t' ->
      check_int "version" t.Trajectory.schema_version t'.Trajectory.schema_version;
      Alcotest.(check (list (pair string (float 1e-9))))
        "metrics survive"
        (List.hd t.Trajectory.scenarios).Trajectory.metrics
        (List.hd t'.Trajectory.scenarios).Trajectory.metrics

let v1_json =
  Json.Obj
    [
      ("schema", Json.String "otfgc-bench-trajectory");
      ("schema_version", Json.Int 1);
      ("scale", Json.Float 0.05);
      ("seed", Json.Int 42);
      ("quick", Json.Bool true);
      ( "scenarios",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "s1");
                ("wall_ms", Json.Float 1.);
                ("metrics", Json.Obj [ ("elapsed_multi", Json.Float 9.) ]);
              ];
          ] );
    ]

let test_trajectory_reads_v1 () =
  match Trajectory.of_json v1_json with
  | Error e -> Alcotest.failf "v1 record rejected: %s" e
  | Ok t -> check_int "v1 version preserved" 1 t.Trajectory.schema_version

let test_trajectory_rejects_v3 () =
  let j =
    match v1_json with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function
               | "schema_version", _ -> ("schema_version", Json.Int 3)
               | kv -> kv)
             kvs)
    | _ -> assert false
  in
  check "future version rejected" true (Result.is_error (Trajectory.of_json j))

let test_attribution_ranks_movement () =
  let baseline = mk_traj v2_metrics in
  let current =
    mk_traj
      [
        ("elapsed_multi", 1100.);
        ("collector_work", 520.);
        ("phase_trace", 430.); (* +43.3% — the mover *)
        ("phase_sweep", 105.); (* +5% *)
        ("ctr_promotions", 55.); (* +10% *)
      ]
  in
  let rows = Trajectory.attribution ~baseline ~current in
  check "three movers found" true (List.length rows = 3);
  check_str "biggest mover first" "phase_trace"
    (List.hd rows).Trajectory.r_metric;
  let rendered = Trajectory.render_attribution rows in
  check "table names the mover" true
    (contains ~affix:"phase_trace" rendered);
  (* gated aggregates are not attribution rows *)
  check "aggregates excluded" true
    (not (List.exists (fun r -> r.Trajectory.r_metric = "collector_work") rows))

let test_attribution_empty_for_v1 () =
  let baseline = mk_traj [ ("elapsed_multi", 9.) ] in
  let current = mk_traj v2_metrics in
  check "no shared phase/ctr metrics" true
    (Trajectory.attribution ~baseline ~current = []);
  check "render explains absence" true
    (contains ~affix:"schema v2"
       (Trajectory.render_attribution []))

let test_diff_worst_offender_line () =
  let baseline = mk_traj v2_metrics in
  let current =
    mk_traj (List.map (fun (k, v) -> (k, v *. 2.)) v2_metrics)
  in
  match Trajectory.diff ~baseline ~current () with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok regs ->
      check "regressions found" true (regs <> []);
      let verdict = Trajectory.render_diff ~baseline ~current regs in
      check "worst offender named" true
        (contains ~affix:"worst offender: scenario s1" verdict)

(* ------------------------------------------------------------------ *)
(* Dashboard                                                           *)
(* ------------------------------------------------------------------ *)

let test_dashboard_renders_and_validates () =
  let r1 = mk_traj v2_metrics in
  let r2 = mk_traj (List.map (fun (k, v) -> (k, v *. 1.1)) v2_metrics) in
  match Dashboard.render ~runs:[ ("BENCH_0001", r1); ("current", r2) ] with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok html -> (
      match Dashboard.validate html with
      | Ok () -> ()
      | Error e -> Alcotest.failf "dashboard invalid: %s" e)

let test_dashboard_single_run () =
  match Dashboard.render ~runs:[ ("current", mk_traj v2_metrics) ] with
  | Error e -> Alcotest.failf "single-run render failed: %s" e
  | Ok html -> (
      match Dashboard.validate html with
      | Ok () -> ()
      | Error e -> Alcotest.failf "single-run dashboard invalid: %s" e)

let test_dashboard_empty_rejected () =
  check "empty runs rejected" true (Result.is_error (Dashboard.render ~runs:[]));
  check "junk html rejected" true
    (Result.is_error (Dashboard.validate "<!DOCTYPE html>\n<html></html>"))

let suites =
  [
    ( "live_metrics.snapshot",
      [
        Alcotest.test_case "fresh runtime" `Quick test_snapshot_fresh;
        Alcotest.test_case "monotone delta" `Quick test_snapshot_monotone_delta;
        Alcotest.test_case "json round-trip" `Quick test_snapshot_json_roundtrip;
        Alcotest.test_case "json rejects garbage" `Quick
          test_snapshot_json_rejects;
      ] );
    ( "live_metrics.openmetrics",
      [
        Alcotest.test_case "render validates" `Quick test_om_render_validates;
        Alcotest.test_case "deterministic ordering" `Quick
          test_om_deterministic_order;
        Alcotest.test_case "label escaping" `Quick test_om_escaping;
        Alcotest.test_case "validator rejects" `Quick test_om_validator_rejects;
        Alcotest.test_case "validator accepts labels" `Quick
          test_om_validator_accepts_labels;
      ] );
    ( "live_metrics.observer",
      [
        Alcotest.test_case "final snapshot exact" `Quick
          test_observer_final_exact;
        Alcotest.test_case "zero cadence ticks" `Quick
          test_observer_zero_cadence_ticks;
        Alcotest.test_case "rejected on sim" `Quick test_observer_rejects_sim;
      ] );
    ( "live_metrics.trajectory",
      [
        Alcotest.test_case "v2 round-trip" `Quick test_trajectory_v2_roundtrip;
        Alcotest.test_case "reads v1" `Quick test_trajectory_reads_v1;
        Alcotest.test_case "rejects v3" `Quick test_trajectory_rejects_v3;
        Alcotest.test_case "attribution ranks movement" `Quick
          test_attribution_ranks_movement;
        Alcotest.test_case "attribution empty for v1" `Quick
          test_attribution_empty_for_v1;
        Alcotest.test_case "worst offender line" `Quick
          test_diff_worst_offender_line;
      ] );
    ( "live_metrics.dashboard",
      [
        Alcotest.test_case "renders and validates" `Quick
          test_dashboard_renders_and_validates;
        Alcotest.test_case "single run" `Quick test_dashboard_single_run;
        Alcotest.test_case "empty rejected" `Quick test_dashboard_empty_rejected;
      ] );
  ]
