(* Unit tests for the small core-library modules: Status, Gray_queue,
   Cost, Gc_stats, Card_cache, Gc_config, Mutator and the Oracle. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

let test_status_cycle () =
  check "async -> sync1" true (Status.next Status.Async = Status.Sync1);
  check "sync1 -> sync2" true (Status.next Status.Sync1 = Status.Sync2);
  check "sync2 -> async" true (Status.next Status.Sync2 = Status.Async);
  check "three steps loop" true
    (Status.next (Status.next (Status.next Status.Async)) = Status.Async)

let test_status_equal () =
  check "equal" true (Status.equal Status.Sync1 Status.Sync1);
  check "not equal" false (Status.equal Status.Sync1 Status.Sync2);
  Alcotest.(check string) "to_string" "sync2" (Status.to_string Status.Sync2)

(* ------------------------------------------------------------------ *)
(* Gray_queue                                                          *)
(* ------------------------------------------------------------------ *)

let test_gray_queue_lifo () =
  let q = Gray_queue.create () in
  check "empty" true (Gray_queue.is_empty q);
  check "pop empty" true (Gray_queue.pop q = None);
  Gray_queue.push q 1;
  Gray_queue.push q 2;
  check_int "size" 2 (Gray_queue.size q);
  check "lifo order" true (Gray_queue.pop q = Some 2);
  check "then first" true (Gray_queue.pop q = Some 1);
  check "empty again" true (Gray_queue.is_empty q)

let test_gray_queue_high_water () =
  let q = Gray_queue.create () in
  for i = 1 to 10 do
    Gray_queue.push q i
  done;
  for _ = 1 to 5 do
    ignore (Gray_queue.pop q)
  done;
  Gray_queue.push q 99;
  check_int "max size tracks high water" 10 (Gray_queue.max_size q);
  Gray_queue.clear q;
  check "cleared" true (Gray_queue.is_empty q);
  check_int "max survives clear" 10 (Gray_queue.max_size q)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let test_cost_ledger () =
  let c = Cost.create () in
  Cost.mutator c 10;
  Cost.collector c 5;
  Cost.stall c 3;
  check_int "mutator" 10 (Cost.mutator_work c);
  check_int "collector" 5 (Cost.collector_work c);
  check_int "stall" 3 (Cost.stall_work c);
  check_int "multi = m+c+s" 18 (Cost.elapsed_multi c);
  check_int "uni doubles stalls" 21 (Cost.elapsed_uni c);
  Cost.reset c;
  check_int "reset" 0 (Cost.elapsed_multi c)

let test_cost_constants_sane () =
  (* tracing an average object must dominate an allocation, sweep a block
     must not (the calibration the figures depend on) *)
  check "trace > alloc" true (Cost.c_trace_obj > Cost.c_alloc);
  check "sweep block < trace obj" true (Cost.c_sweep_block < Cost.c_trace_obj);
  check "barrier cheap" true (Cost.c_mark_card + Cost.c_card_miss < Cost.c_trace_obj)

(* ------------------------------------------------------------------ *)
(* Gc_stats                                                            *)
(* ------------------------------------------------------------------ *)

let test_gc_stats_aggregation () =
  let s = Gc_stats.create () in
  let c1 = Gc_stats.begin_cycle s Gc_stats.Partial in
  c1.Gc_stats.objects_freed <- 10;
  c1.Gc_stats.work <- 100;
  Gc_stats.end_cycle s c1;
  let c2 = Gc_stats.begin_cycle s Gc_stats.Partial in
  c2.Gc_stats.objects_freed <- 20;
  c2.Gc_stats.work <- 300;
  Gc_stats.end_cycle s c2;
  let c3 = Gc_stats.begin_cycle s Gc_stats.Full in
  c3.Gc_stats.work <- 1000;
  Gc_stats.end_cycle s c3;
  check_int "partial count" 2 (Gc_stats.count s Gc_stats.Partial);
  check_int "full count" 1 (Gc_stats.count s Gc_stats.Full);
  check_int "seq increases" 2 c3.Gc_stats.seq;
  Alcotest.(check (float 1e-9)) "mean freed partial" 15.
    (Gc_stats.mean s Gc_stats.Partial (fun c -> float_of_int c.Gc_stats.objects_freed));
  Alcotest.(check (float 1e-9)) "sum work partial" 400.
    (Gc_stats.sum s Gc_stats.Partial (fun c -> float_of_int c.Gc_stats.work));
  check_int "total work" 1400 (Gc_stats.total_collector_work s);
  check "has full" true (Gc_stats.has s Gc_stats.Full);
  check "no nongen" false (Gc_stats.has s Gc_stats.Non_gen);
  Gc_stats.reset s;
  check_int "reset drops cycles" 0 (List.length (Gc_stats.cycles s))

let test_gc_stats_incomplete_cycle_ignored () =
  let s = Gc_stats.create () in
  let _abandoned = Gc_stats.begin_cycle s Gc_stats.Partial in
  check_int "not counted until ended" 0 (Gc_stats.count s Gc_stats.Partial)

(* ------------------------------------------------------------------ *)
(* Card_cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_card_cache_hits_and_misses () =
  let c = Card_cache.create ~n_lines:4 () in
  check "first access misses" false (Card_cache.access c 0);
  check "same line hits" true (Card_cache.access c 1);
  check "same line hits again" true (Card_cache.access c 63);
  check "next line misses" false (Card_cache.access c 64);
  check_int "hits" 2 (Card_cache.hits c);
  check_int "misses" 2 (Card_cache.misses c)

let test_card_cache_eviction () =
  let c = Card_cache.create ~n_lines:2 () in
  ignore (Card_cache.access c 0);
  (* line 0, set 0 *)
  ignore (Card_cache.access c 128);
  (* line 2, also set 0: evicts *)
  check "original evicted" false (Card_cache.access c 0)

let test_card_cache_validation () =
  check "rejects non power of two" true
    (match Card_cache.create ~n_lines:3 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Gc_config                                                           *)
(* ------------------------------------------------------------------ *)

let test_gc_config () =
  Alcotest.(check string) "gen name" "generational"
    (Gc_config.mode_name Gc_config.Generational);
  Alcotest.(check string) "aging name" "generational-aging(6)"
    (Gc_config.mode_name (Gc_config.Generational_aging { oldest_age = 6 }));
  check "gen is generational" true (Gc_config.is_generational Gc_config.Generational);
  check "nongen is not" false (Gc_config.is_generational Gc_config.Non_generational);
  check "aging rejects 0" true
    (match Gc_config.aging ~oldest_age:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mutator                                                             *)
(* ------------------------------------------------------------------ *)

let test_mutator_registers_and_stack () =
  let m = Mutator.create ~id:3 ~name:"t" ~n_regs:4 in
  check_int "id" 3 (Mutator.id m);
  check_int "regs" 4 (Mutator.n_regs m);
  check_int "fresh reg is nil" Heap.nil (Mutator.get_reg m 0);
  Mutator.set_reg m 0 160;
  Mutator.push m 320;
  Mutator.push m Heap.nil;
  Mutator.push m 480;
  check_int "depth" 3 (Mutator.stack_depth m);
  let roots = ref [] in
  Mutator.iter_roots m (fun r -> roots := r :: !roots);
  check "roots = non-nil regs + stack" true
    (List.sort compare !roots = [ 160; 320; 480 ]);
  check_int "pop" 480 (Mutator.pop m);
  Mutator.clear_reg m 0;
  check_int "cleared" Heap.nil (Mutator.get_reg m 0);
  check "pop empty raises" true
    (let m2 = Mutator.create ~id:0 ~name:"e" ~n_regs:1 in
     match Mutator.pop m2 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_mutator_stack_growth () =
  let m = Mutator.create ~id:0 ~name:"g" ~n_regs:1 in
  for i = 1 to 100 do
    Mutator.push m (i * 16)
  done;
  check_int "deep stack" 100 (Mutator.stack_depth m);
  for i = 100 downto 1 do
    check_int "lifo" (i * 16) (Mutator.pop m)
  done

let test_mutator_retire () =
  let m = Mutator.create ~id:0 ~name:"r" ~n_regs:1 in
  check "active" true (Mutator.active m);
  Mutator.retire m;
  check "retired" false (Mutator.active m)

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_oracle_reachability () =
  let heap =
    Heap.create { Heap.initial_bytes = 4096; max_bytes = 4096; card_size = 16 }
  in
  let st = State.create heap (Gc_config.generational ()) in
  let m = Mutator.create ~id:0 ~name:"m" ~n_regs:2 in
  State.register_mutator st m;
  let a = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.C0) in
  let b = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.C0) in
  let orphan = Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:Color.C0) in
  Heap.set_slot heap a 0 b;
  Mutator.set_reg m 0 a;
  check_int "two reachable" 2 (Oracle.live_count st);
  Alcotest.(check (list int)) "orphan is garbage" [ orphan ] (Oracle.garbage st);
  check "safety ok" true (Oracle.check_safety st = Ok ());
  (* free the reachable child behind the oracle's back: violation *)
  Heap.free heap b;
  check "safety violation detected" true (Oracle.check_safety st <> Ok ());
  (* globals are roots too *)
  Heap.set_slot heap a 0 Heap.nil;
  st.State.globals <- [ orphan ];
  check "global rescues orphan" true (Oracle.garbage st = [])

let suites =
  [
    ( "core.status",
      [
        Alcotest.test_case "cycle" `Quick test_status_cycle;
        Alcotest.test_case "equal" `Quick test_status_equal;
      ] );
    ( "core.gray_queue",
      [
        Alcotest.test_case "lifo" `Quick test_gray_queue_lifo;
        Alcotest.test_case "high water" `Quick test_gray_queue_high_water;
      ] );
    ( "core.cost",
      [
        Alcotest.test_case "ledger" `Quick test_cost_ledger;
        Alcotest.test_case "constants sane" `Quick test_cost_constants_sane;
      ] );
    ( "core.gc_stats",
      [
        Alcotest.test_case "aggregation" `Quick test_gc_stats_aggregation;
        Alcotest.test_case "incomplete ignored" `Quick
          test_gc_stats_incomplete_cycle_ignored;
      ] );
    ( "core.card_cache",
      [
        Alcotest.test_case "hits and misses" `Quick test_card_cache_hits_and_misses;
        Alcotest.test_case "eviction" `Quick test_card_cache_eviction;
        Alcotest.test_case "validation" `Quick test_card_cache_validation;
      ] );
    ("core.gc_config", [ Alcotest.test_case "config" `Quick test_gc_config ]);
    ( "core.mutator",
      [
        Alcotest.test_case "registers and stack" `Quick
          test_mutator_registers_and_stack;
        Alcotest.test_case "stack growth" `Quick test_mutator_stack_growth;
        Alcotest.test_case "retire" `Quick test_mutator_retire;
      ] );
    ("core.oracle", [ Alcotest.test_case "reachability" `Quick test_oracle_reachability ]);
  ]
