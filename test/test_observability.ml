(* Tests for the observability surface: the collector's phase-event log
   and the ASCII heap renderer. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Heap_render = Otfgc_heap.Heap_render
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

(* Run a short generational workload with the log enabled; return the
   events. *)
let collect_events ~gc =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 64 * kb; card_size = 16 }
      ~gc_config:gc ()
  in
  let st = Runtime.state rt in
  Event_log.set_enabled st.State.events true;
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 3)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let a = Runtime.alloc rt m ~size:32 ~n_slots:1 in
         Mutator.set_reg m 0 a;
         for _ = 1 to 50 do
           ignore (Runtime.alloc rt m ~size:32 ~n_slots:0)
         done;
         ignore (Runtime.collect_and_wait rt m ~full:false);
         ignore (Runtime.collect_and_wait rt m ~full:true);
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:50_000_000 sched;
  Event_log.events st.State.events

let index_of pred events =
  let rec go i = function
    | [] -> None
    | e :: rest -> if pred e.Event_log.phase then Some i else go (i + 1) rest
  in
  go 0 events

let test_phase_ordering () =
  let events = collect_events ~gc:(Gc_config.generational ()) in
  check "events recorded" true (List.length events > 6);
  let idx p = index_of p events in
  let start = idx (function Event_log.Cycle_start _ -> true | _ -> false) in
  let hs1 =
    idx (function Event_log.Handshake_posted Status.Sync1 -> true | _ -> false)
  in
  let toggle = idx (function Event_log.Colors_toggled -> true | _ -> false) in
  let trace = idx (function Event_log.Trace_complete _ -> true | _ -> false) in
  let sweep = idx (function Event_log.Sweep_complete _ -> true | _ -> false) in
  let ends = idx (function Event_log.Cycle_end -> true | _ -> false) in
  let get = function Some i -> i | None -> Alcotest.fail "missing phase" in
  check "start < hs1" true (get start < get hs1);
  check "hs1 < toggle" true (get hs1 < get toggle);
  check "toggle < trace" true (get toggle < get trace);
  check "trace < sweep" true (get trace < get sweep);
  check "sweep < end" true (get sweep < get ends)

let test_timestamps_monotonic () =
  let events = collect_events ~gc:(Gc_config.generational ()) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Event_log.at <= b.Event_log.at && mono rest
    | _ -> true
  in
  check "timestamps non-decreasing" true (mono events)

let test_full_cycle_has_init () =
  let events = collect_events ~gc:(Gc_config.generational ()) in
  check "InitFullCollection logged for the full cycle" true
    (List.exists
       (fun e -> e.Event_log.phase = Event_log.Init_full_done)
       events)

let test_disabled_by_default () =
  let rt = Runtime.create () in
  let st = Runtime.state rt in
  check "off by default" false (Event_log.enabled st.State.events);
  Event_log.emit st.State.events ~at:0 Event_log.Cycle_end;
  check_int "disabled emit is dropped" 0
    (List.length (Event_log.events st.State.events))

let test_timeline_renders () =
  let events_log = Event_log.create () in
  Event_log.set_enabled events_log true;
  Event_log.emit events_log ~at:10
    (Event_log.Cycle_start { kind = Gc_stats.Partial; full = false });
  Event_log.emit events_log ~at:20 (Event_log.Trace_complete { traced = 7 });
  let s = Format.asprintf "%a" Event_log.pp_timeline events_log in
  check "two lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 2);
  Event_log.clear events_log;
  check_int "cleared" 0 (List.length (Event_log.events events_log))

(* ------------------------------------------------------------------ *)
(* Heap renderer                                                       *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_render_empty_heap () =
  let heap =
    Heap.create { Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
  in
  let s = Heap_render.ascii ~width:32 ~rows:8 heap in
  check "has header" true (contains s "heap 64 KB");
  check "all free" true (contains s "....");
  (* the map body (everything after the legend line) is free space only *)
  let body =
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  check "no objects drawn" false
    (String.exists (fun c -> c <> '.' && c <> '\n') body)

let test_render_shows_generations () =
  let heap =
    Heap.create { Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
  in
  (* an old region then a young region, big enough to dominate buckets *)
  for _ = 1 to 64 do
    ignore (Heap.alloc heap ~size:256 ~n_slots:0 ~color:Color.Black)
  done;
  for _ = 1 to 64 do
    ignore (Heap.alloc heap ~size:256 ~n_slots:0 ~color:Color.C0)
  done;
  let s = Heap_render.ascii ~width:32 ~rows:16 heap in
  check "old region rendered" true (contains s "BB");
  check "young region rendered" true (contains s "oo");
  check "free tail rendered" true (contains s "..")

let test_render_width_validation () =
  let heap =
    Heap.create { Heap.initial_bytes = kb; max_bytes = kb; card_size = 16 }
  in
  check "narrow width rejected" true
    (match Heap_render.ascii ~width:4 heap with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suites =
  [
    ( "observability.events",
      [
        Alcotest.test_case "phase ordering" `Quick test_phase_ordering;
        Alcotest.test_case "timestamps monotonic" `Quick test_timestamps_monotonic;
        Alcotest.test_case "full cycle init" `Quick test_full_cycle_has_init;
        Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
        Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
      ] );
    ( "observability.render",
      [
        Alcotest.test_case "empty heap" `Quick test_render_empty_heap;
        Alcotest.test_case "generations visible" `Quick test_render_shows_generations;
        Alcotest.test_case "width validation" `Quick test_render_width_validation;
      ] );
  ]
