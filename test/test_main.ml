(* Entry point aggregating all test suites; see the sibling test_*.ml
   modules. *)

let () =
  Alcotest.run "otfgc"
    (List.concat
       [
         Test_support.suites;
         Test_sched.suites;
         Test_heap.suites;
         Test_collector.suites;
         Test_props.suites;
         Test_races.suites;
         Test_core_units.suites;
         Test_differential.suites;
         Test_extensions.suites;
         Test_observability.suites;
         Test_observatory.suites;
         Test_telemetry.suites;
         Test_flight.suites;
         Test_runtime.suites;
         Test_deque.suites;
         Test_parallel.suites;
         Test_structs.suites;
         Test_workloads.suites;
         Test_harness.suites;
         Test_live_metrics.suites;
       ])
