(* Tests for the two extensions beyond the paper's implementation:
   remembered-set inter-generational tracking (Section 3.1's road not
   taken) and adaptive tenuring (Section 6's future-work remark). *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Remset = Otfgc_heap.Remset
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

(* ------------------------------------------------------------------ *)
(* Remset data structure                                               *)
(* ------------------------------------------------------------------ *)

let test_remset_record_dedup () =
  let rs = Remset.create ~max_heap_bytes:kb in
  check "first record is new" true (Remset.record rs 32);
  check "second record deduplicated" false (Remset.record rs 32);
  check "member" true (Remset.mem rs 32);
  check "non-member" false (Remset.mem rs 64);
  check_int "size" 1 (Remset.size rs)

let test_remset_drain_clears () =
  let rs = Remset.create ~max_heap_bytes:kb in
  ignore (Remset.record rs 16);
  ignore (Remset.record rs 48);
  ignore (Remset.record rs 16);
  Alcotest.(check (list int)) "recording order, deduplicated" [ 16; 48 ]
    (Remset.drain rs);
  check_int "empty after drain" 0 (Remset.size rs);
  check "bits cleared" true (Remset.record rs 16);
  check_int "high water" 2 (Remset.max_size rs)

let test_remset_forget_allows_rerecord () =
  let rs = Remset.create ~max_heap_bytes:kb in
  ignore (Remset.record rs 32);
  Remset.forget rs 32;
  check "re-recordable after forget" true (Remset.record rs 32);
  (* the stale first entry remains in the buffer; drain shows both *)
  check_int "stale entry retained" 2 (List.length (Remset.drain rs))

let test_remset_heap_free_forgets () =
  let heap =
    Heap.create { Heap.initial_bytes = kb; max_bytes = kb; card_size = 16 }
  in
  let a = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.C0) in
  ignore (Remset.record (Heap.remset heap) a);
  Heap.free heap a;
  (* the granule's dedup flag must drop with the object *)
  let b = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.C0) in
  check_int "address reused" a b;
  check "new object recordable" true (Remset.record (Heap.remset heap) b)

(* ------------------------------------------------------------------ *)
(* Remset collector end-to-end                                         *)
(* ------------------------------------------------------------------ *)

let with_runtime ~gc body =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 64 * kb; card_size = 16 }
      ~gc_config:gc ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 11)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         body rt m;
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:50_000_000 sched

let remset_gc = Gc_config.generational ~intergen:Gc_config.Remembered_set ()

let test_remset_intergen_pointer_keeps_young_alive () =
  with_runtime ~gc:remset_gc (fun rt m ->
      let heap = Runtime.heap rt in
      let old = Runtime.alloc rt m ~size:32 ~n_slots:1 in
      Mutator.set_reg m 0 old;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "old promoted" true (Color.equal (Heap.color heap old) Color.Black);
      (* young object referenced only through the old object *)
      let young = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      Runtime.store rt m ~x:old ~i:0 ~y:young;
      check "store recorded the old object" true
        (Remset.mem (Heap.remset heap) old);
      let cycle = Runtime.collect_and_wait rt m ~full:false in
      check "remset seeded the trace" true (cycle.Gc_stats.intergen_scanned >= 1);
      check "young survived via remset" true (Heap.is_object heap young);
      check "set drained by the scan" false (Remset.mem (Heap.remset heap) old))

let test_remset_young_garbage_still_collected () =
  with_runtime ~gc:remset_gc (fun rt m ->
      let g = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      ignore m;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "garbage reclaimed" false (Heap.is_object (Runtime.heap rt) g))

let test_remset_full_collection_clears_set () =
  with_runtime ~gc:remset_gc (fun rt m ->
      let heap = Runtime.heap rt in
      let old = Runtime.alloc rt m ~size:32 ~n_slots:1 in
      Mutator.set_reg m 0 old;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      let young = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      Runtime.store rt m ~x:old ~i:0 ~y:young;
      ignore (Runtime.collect_and_wait rt m ~full:true);
      check "set cleared by full collection" true
        (Remset.size (Heap.remset heap) = 0);
      check "young traced by full anyway" true (Heap.is_object heap young))

let test_remset_rejected_for_aging () =
  check "config validation" true
    (match
       Runtime.create
         ~gc_config:
           { (Gc_config.aging ~oldest_age:4 ()) with
             Gc_config.intergen = Gc_config.Remembered_set;
           }
         ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_remset_churn_safe () =
  (* mixed churn under the remset collector, oracle-checked at the end *)
  with_runtime ~gc:remset_gc (fun rt m ->
      for i = 1 to 3000 do
        let node = Runtime.alloc rt m ~size:48 ~n_slots:2 in
        Mutator.set_reg m 1 node;
        let head = Mutator.get_reg m 0 in
        if head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:head;
        Mutator.set_reg m 0 node;
        Mutator.clear_reg m 1;
        if i mod 100 = 0 then Mutator.clear_reg m 0
      done;
      ignore (Runtime.collect_and_wait rt m ~full:true);
      match Oracle.check_safety (Runtime.state rt) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "remset collector lost an object: %s" e)

(* ------------------------------------------------------------------ *)
(* Adaptive tenuring                                                   *)
(* ------------------------------------------------------------------ *)

let test_adaptive_threshold_rises_under_survival () =
  (* a workload whose young objects all survive drives the threshold up *)
  with_runtime ~gc:(Gc_config.adaptive ~young_bytes:(2 * kb) ()) (fun rt m ->
      let st = Runtime.state rt in
      check_int "starts at 1" 1 st.State.tenure_threshold;
      for _ = 1 to 200 do
        (* everything stays reachable: low death rate *)
        let node = Runtime.alloc rt m ~size:48 ~n_slots:2 in
        Mutator.set_reg m 1 node;
        let head = Mutator.get_reg m 0 in
        if head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:head;
        Mutator.set_reg m 0 node;
        Mutator.clear_reg m 1
      done;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "threshold rose (many survivors)" true (st.State.tenure_threshold > 1))

let test_adaptive_threshold_falls_when_all_die () =
  with_runtime ~gc:(Gc_config.adaptive ~young_bytes:(2 * kb) ()) (fun rt m ->
      let st = Runtime.state rt in
      st.State.tenure_threshold <- 5;
      for _ = 1 to 200 do
        (* pure garbage: everything dies young *)
        ignore (Runtime.alloc rt m ~size:48 ~n_slots:0)
      done;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "threshold fell (nothing survives)" true (st.State.tenure_threshold < 5))

let test_adaptive_threshold_bounded () =
  with_runtime ~gc:(Gc_config.adaptive ~young_bytes:kb ()) (fun rt m ->
      let st = Runtime.state rt in
      for round = 1 to 12 do
        for _ = 1 to 80 do
          let node = Runtime.alloc rt m ~size:48 ~n_slots:2 in
          Mutator.set_reg m 1 node;
          let head = Mutator.get_reg m 0 in
          if head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:head;
          Mutator.set_reg m 0 node;
          Mutator.clear_reg m 1
        done;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        if round mod 3 = 0 then Mutator.clear_reg m 0;
        check "threshold within [1,7]" true
          (st.State.tenure_threshold >= 1 && st.State.tenure_threshold <= 7)
      done)

let test_adaptive_collects_garbage () =
  with_runtime ~gc:(Gc_config.adaptive ()) (fun rt m ->
      for _ = 1 to 2000 do
        ignore (Runtime.alloc rt m ~size:64 ~n_slots:1)
      done;
      ignore (Runtime.collect_and_wait rt m ~full:true);
      ignore (Runtime.collect_and_wait rt m ~full:true);
      check_int "all garbage reclaimed" 0 (Heap.object_count (Runtime.heap rt)))

let suites =
  [
    ( "remset.unit",
      [
        Alcotest.test_case "record/dedup" `Quick test_remset_record_dedup;
        Alcotest.test_case "drain clears" `Quick test_remset_drain_clears;
        Alcotest.test_case "forget" `Quick test_remset_forget_allows_rerecord;
        Alcotest.test_case "heap free forgets" `Quick test_remset_heap_free_forgets;
      ] );
    ( "remset.collector",
      [
        Alcotest.test_case "inter-gen pointer roots" `Quick
          test_remset_intergen_pointer_keeps_young_alive;
        Alcotest.test_case "young garbage collected" `Quick
          test_remset_young_garbage_still_collected;
        Alcotest.test_case "full clears set" `Quick
          test_remset_full_collection_clears_set;
        Alcotest.test_case "rejected for aging" `Quick test_remset_rejected_for_aging;
        Alcotest.test_case "churn safe" `Quick test_remset_churn_safe;
      ] );
    ( "adaptive",
      [
        Alcotest.test_case "threshold rises" `Quick
          test_adaptive_threshold_rises_under_survival;
        Alcotest.test_case "threshold falls" `Quick
          test_adaptive_threshold_falls_when_all_die;
        Alcotest.test_case "threshold bounded" `Quick test_adaptive_threshold_bounded;
        Alcotest.test_case "collects garbage" `Quick test_adaptive_collects_garbage;
      ] );
  ]
