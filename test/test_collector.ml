(* End-to-end tests of the three collectors: safety (no live object is ever
   freed), completeness (garbage is reclaimed), promotion, the yellow
   color, the color toggle, inter-generational pointers via card marking,
   aging, and triggering. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Age_table = Otfgc_heap.Age_table
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

let heap_cfg ?(initial = 16 * kb) ?(max = 64 * kb) ?(card = 16) () =
  { Heap.initial_bytes = initial; max_bytes = max; card_size = card }

(* Run [body] as a single mutator alongside a collector daemon.  The body
   receives the runtime and its mutator handle. *)
let with_runtime ?heap:(hc = heap_cfg ()) ?(gc = Gc_config.generational ())
    ?(seed = 1) body =
  let rt = Runtime.create ~heap_config:hc ~gc_config:gc () in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make seed)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m0" () in
  ignore
    (Sched.spawn sched ~name:"m0" (fun () ->
         body rt m;
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:50_000_000 sched;
  rt

(* Allocate a list node [next; payload slots] and link it in front.

   Rooting discipline: every reference that must survive a scheduling point
   has to sit in a mutator register or stack slot — OCaml locals are not
   roots (they model values the compiled code would keep in machine
   registers, which *are* the root set; here the Mutator regs play that
   role).  So the new node is parked in a scratch register before the
   store, and the old head stays in [reg] until the link is written. *)
let scratch = 15

let push_node rt m ~size reg =
  let node = Runtime.alloc rt m ~size ~n_slots:2 in
  Mutator.set_reg m scratch node;
  let old = Mutator.get_reg m reg in
  if old <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:old;
  Mutator.set_reg m reg node;
  Mutator.clear_reg m scratch;
  node

(* Cooperate until the collector is idle and nothing is pending, so
   triggered cycles finish before the mutator exits. *)
let drain rt m =
  let st = Runtime.state rt in
  while
    Atomic.get st.State.collecting
    || Atomic.get st.State.gc_request <> State.No_request
  do
    Runtime.cooperate rt m;
    Sched.yield ()
  done

let list_length rt m reg =
  let rec go acc x =
    if x = Heap.nil then acc else go (acc + 1) (Runtime.load rt m ~x ~i:0)
  in
  go 0 (Mutator.get_reg m reg)

(* ------------------------------------------------------------------ *)
(* Basic collection behaviour, one test per collector mode             *)
(* ------------------------------------------------------------------ *)

let churn_and_check gc () =
  (* Allocate far more than the heap holds; everything but a small live
     list dies.  The run can only complete if collection reclaims. *)
  let live_every = 50 in
  let rt =
    with_runtime ~gc (fun rt m ->
        for i = 1 to 4000 do
          if i mod live_every = 0 then ignore (push_node rt m ~size:64 0)
          else begin
            (* garbage node, referenced only transiently from a register *)
            let g = Runtime.alloc rt m ~size:64 ~n_slots:2 in
            Mutator.set_reg m 1 g;
            Runtime.store rt m ~x:g ~i:1 ~y:g;
            Mutator.clear_reg m 1
          end
        done;
        check_int "live list intact" (4000 / live_every) (list_length rt m 0))
  in
  let st = Runtime.state rt in
  check "some collections ran" true (Gc_stats.cycles (Runtime.stats rt) <> []);
  check "heap invariants hold" true
    (Heap.check ~check_slots:false (Runtime.heap rt) = Ok ());
  check "oracle safety" true (Oracle.check_safety st = Ok ());
  (* total allocation was ~4000*64 = 256 KB against a 64 KB max heap *)
  check "reclamation happened" true
    (Heap.allocated_bytes (Runtime.heap rt) < 64 * kb)

let test_churn_generational = churn_and_check (Gc_config.generational ())
let test_churn_non_generational = churn_and_check Gc_config.non_generational
let test_churn_aging = churn_and_check (Gc_config.aging ~oldest_age:4 ())

(* ------------------------------------------------------------------ *)
(* Promotion and generations                                           *)
(* ------------------------------------------------------------------ *)

let test_simple_promotion_blackens_survivors () =
  let rt =
    with_runtime (fun rt m ->
        let a = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Mutator.set_reg m 0 a;
        let st = Runtime.state rt in
        let cycle = Runtime.collect_and_wait rt m ~full:false in
        check "partial cycle" true (cycle.Gc_stats.kind = Gc_stats.Partial);
        check "survivor promoted to black" true
          (Color.equal (Heap.color st.State.heap a) Color.Black))
  in
  ignore rt

let test_partial_does_not_reclaim_old_garbage () =
  let rt =
    with_runtime (fun rt m ->
        let a = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Mutator.set_reg m 0 a;
        (* promote a *)
        ignore (Runtime.collect_and_wait rt m ~full:false);
        (* drop it: now it is old garbage *)
        Mutator.clear_reg m 0;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "old garbage survives partials" true (Heap.is_object (Runtime.heap rt) a);
        ignore (Runtime.collect_and_wait rt m ~full:true);
        check "full collection reclaims it" false (Heap.is_object (Runtime.heap rt) a))
  in
  ignore rt

let test_young_garbage_freed_by_partial () =
  let rt =
    with_runtime (fun rt m ->
        let g = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        (* g is garbage immediately (never stored anywhere) *)
        let cycle = Runtime.collect_and_wait rt m ~full:false in
        ignore m;
        check "young garbage reclaimed by partial" false
          (Heap.is_object (Runtime.heap rt) g);
        check "freed counted" true (cycle.Gc_stats.objects_freed >= 1))
  in
  ignore rt

let test_intergen_pointer_keeps_young_alive () =
  let rt =
    with_runtime (fun rt m ->
        let old = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Mutator.set_reg m 0 old;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "old is black" true
          (Color.equal (Heap.color (Runtime.heap rt) old) Color.Black);
        (* create young object referenced ONLY from the old object *)
        let young = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Runtime.store rt m ~x:old ~i:0 ~y:young;
        (* the store dirtied old's card; drop all register refs to young *)
        let cycle = Runtime.collect_and_wait rt m ~full:false in
        check "dirty card seeded the trace" true
          (cycle.Gc_stats.intergen_scanned >= 1);
        check "young object survived via inter-gen pointer" true
          (Heap.is_object (Runtime.heap rt) young);
        check "young object promoted" true
          (Color.equal (Heap.color (Runtime.heap rt) young) Color.Black))
  in
  ignore rt

let test_card_cleared_after_scan () =
  let rt =
    with_runtime (fun rt m ->
        let old = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Mutator.set_reg m 0 old;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        let young = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Runtime.store rt m ~x:old ~i:0 ~y:young;
        let cards = Heap.cards (Runtime.heap rt) in
        let c = Card_table.card_of_addr cards old in
        check "card dirty after store" true (Card_table.is_dirty cards c);
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "card clean after simple-mode scan" false (Card_table.is_dirty cards c))
  in
  ignore rt

let test_color_toggle_swaps () =
  let rt =
    with_runtime (fun rt m ->
        ignore m;
        let st = Runtime.state rt in
        let a0 = st.State.allocation_color and c0 = st.State.clear_color in
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "allocation color toggled" true
          (Color.equal st.State.allocation_color c0);
        check "clear color toggled" true (Color.equal st.State.clear_color a0))
  in
  ignore rt

let test_full_collection_demotes_then_reclaims_everything_dead () =
  let rt =
    with_runtime (fun rt m ->
        (* build a live list and a lot of promoted garbage *)
        for _ = 1 to 10 do
          ignore (push_node rt m ~size:32 0)
        done;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        (* all ten promoted; drop the whole list *)
        Mutator.clear_reg m 0;
        ignore (Runtime.collect_and_wait rt m ~full:true);
        check_int "only globals remain" 0 (Heap.object_count (Runtime.heap rt)))
  in
  ignore rt

(* ------------------------------------------------------------------ *)
(* Aging                                                               *)
(* ------------------------------------------------------------------ *)

let test_aging_tenure_threshold () =
  (* paper threshold 4 = tenured after surviving 3 collections *)
  let rt =
    with_runtime ~gc:(Gc_config.aging ~oldest_age:4 ()) (fun rt m ->
        let heap = Runtime.heap rt in
        let a = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Mutator.set_reg m 0 a;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "still young after 1 survival" false
          (Color.equal (Heap.color heap a) Color.Black);
        check_int "age 1" 1 (Age_table.get (Heap.ages heap) a);
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "still young after 2 survivals" false
          (Color.equal (Heap.color heap a) Color.Black);
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "tenured after 3 survivals" true
          (Color.equal (Heap.color heap a) Color.Black);
        (* age stops advancing once old *)
        let age_now = Age_table.get (Heap.ages heap) a in
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check_int "age frozen" age_now (Age_table.get (Heap.ages heap) a))
  in
  ignore rt

let test_aging_young_garbage_freed_quickly () =
  let rt =
    with_runtime ~gc:(Gc_config.aging ~oldest_age:4 ()) (fun rt m ->
        let g = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        ignore m;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "young garbage freed by first partial" false
          (Heap.is_object (Runtime.heap rt) g))
  in
  ignore rt

let test_aging_card_stays_dirty_while_target_young () =
  let rt =
    with_runtime ~gc:(Gc_config.aging ~oldest_age:2 ()) (fun rt m ->
        let heap = Runtime.heap rt in
        let old = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Mutator.set_reg m 0 old;
        (* tenure old: threshold 2 => old after surviving 1 collection *)
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "old tenured" true (Color.equal (Heap.color heap old) Color.Black);
        (* young target referenced only from old *)
        let young = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Runtime.store rt m ~x:old ~i:0 ~y:young;
        Mutator.set_reg m 1 young;
        let cards = Heap.cards heap in
        let c = Card_table.card_of_addr cards old in
        (* first partial: young survives (register+card), not yet tenured?
           With threshold 2 it tenures after one survival, so use the cycle
           where it is still young: scan must re-mark the card. *)
        check "card dirty before cycle" true (Card_table.is_dirty cards c);
        Mutator.clear_reg m 1;
        ignore (Runtime.collect_and_wait rt m ~full:false);
        check "young kept alive through card" true (Heap.is_object heap young))
  in
  ignore rt

(* ------------------------------------------------------------------ *)
(* Non-generational baseline specifics                                 *)
(* ------------------------------------------------------------------ *)

let test_non_gen_no_black_between_cycles () =
  let rt =
    with_runtime ~gc:Gc_config.non_generational (fun rt m ->
        for _ = 1 to 5 do
          ignore (push_node rt m ~size:32 0)
        done;
        ignore (Runtime.collect_and_wait rt m ~full:true);
        let heap = Runtime.heap rt in
        Heap.iter_objects heap (fun x ->
            check "no black or gray objects between cycles" false
              (Color.equal (Heap.color heap x) Color.Black
              || Color.equal (Heap.color heap x) Color.Gray)))
  in
  ignore rt

let test_non_gen_reclaims_all_garbage_each_cycle () =
  let rt =
    with_runtime ~gc:Gc_config.non_generational (fun rt m ->
        for _ = 1 to 20 do
          ignore (push_node rt m ~size:32 0)
        done;
        Mutator.clear_reg m 0;
        ignore (Runtime.collect_and_wait rt m ~full:true);
        check_int "all reclaimed in one cycle" 0
          (Heap.object_count (Runtime.heap rt)))
  in
  ignore rt

(* ------------------------------------------------------------------ *)
(* Triggering                                                          *)
(* ------------------------------------------------------------------ *)

let test_partial_trigger_by_allocation_volume () =
  let gc = Gc_config.generational ~young_bytes:(4 * kb) () in
  let rt =
    with_runtime ~gc (fun rt m ->
        (* allocate ~48 KB of garbage against a 4 KB young generation *)
        for _ = 1 to 1536 do
          ignore (Runtime.alloc rt m ~size:32 ~n_slots:0)
        done;
        drain rt m)
  in
  let stats = Runtime.stats rt in
  check "at least two partial collections triggered" true
    (Gc_stats.count stats Gc_stats.Partial >= 2);
  check_int "no full collections needed" 0 (Gc_stats.count stats Gc_stats.Full)

let test_full_trigger_when_heap_fills () =
  (* live data accumulates: partials promote everything, occupancy crosses
     the full trigger, a full collection must happen *)
  let gc = Gc_config.generational ~young_bytes:(2 * kb) () in
  let rt =
    with_runtime ~heap:(heap_cfg ~initial:(8 * kb) ~max:(16 * kb) ())
      ~gc
      (fun rt m ->
        for i = 1 to 900 do
          ignore (push_node rt m ~size:32 0);
          (* periodically drop the list so fulls can reclaim *)
          if i mod 150 = 0 then Mutator.clear_reg m 0
        done;
        drain rt m)
  in
  check "a full collection was triggered" true
    (Gc_stats.count (Runtime.stats rt) Gc_stats.Full >= 1)

let test_heap_grows_under_live_pressure () =
  let rt =
    with_runtime ~heap:(heap_cfg ~initial:(4 * kb) ~max:(64 * kb) ())
      (fun rt m ->
        (* live set ~32 KB cannot fit in 4 KB: heap must grow *)
        for _ = 1 to 512 do
          ignore (push_node rt m ~size:64 0)
        done;
        check_int "all live" 512 (list_length rt m 0))
  in
  check "heap grew" true (Heap.capacity (Runtime.heap rt) > 4 * kb)

let test_out_of_memory () =
  check "raises Out_of_memory" true
    (match
       with_runtime ~heap:(heap_cfg ~initial:(4 * kb) ~max:(4 * kb) ())
         (fun rt m ->
           for _ = 1 to 500 do
             ignore (push_node rt m ~size:64 0)
           done)
     with
    | _ -> false
    | exception Runtime.Out_of_memory -> true)

(* ------------------------------------------------------------------ *)
(* Statistics plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_cycle_statistics_populated () =
  let rt =
    with_runtime (fun rt m ->
        for _ = 1 to 20 do
          ignore (push_node rt m ~size:32 0)
        done;
        let g = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        ignore g;
        let cycle = Runtime.collect_and_wait rt m ~full:false in
        check "traced something" true (cycle.Gc_stats.objects_traced >= 20);
        check "freed garbage" true (cycle.Gc_stats.objects_freed >= 1);
        check "bytes freed" true (cycle.Gc_stats.bytes_freed >= 32);
        check "work accounted" true (cycle.Gc_stats.work > 0);
        check "pages touched" true (cycle.Gc_stats.pages_touched > 0);
        check "young census taken" true (cycle.Gc_stats.young_objects_at_start >= 21))
  in
  ignore rt

let test_globals_are_roots () =
  let rt =
    with_runtime (fun rt m ->
        let statics = Runtime.alloc rt m ~size:32 ~n_slots:1 in
        Runtime.add_global rt statics;
        let v = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Runtime.store rt m ~x:statics ~i:0 ~y:v;
        (* no register refs; only the global chain keeps both alive *)
        ignore (Runtime.collect_and_wait rt m ~full:true);
        ignore (Runtime.collect_and_wait rt m ~full:true);
        check "global kept" true (Heap.is_object (Runtime.heap rt) statics);
        check "global's child kept" true (Heap.is_object (Runtime.heap rt) v))
  in
  ignore rt

let suites =
  [
    ( "collector.basic",
      [
        Alcotest.test_case "churn generational" `Quick test_churn_generational;
        Alcotest.test_case "churn non-generational" `Quick
          test_churn_non_generational;
        Alcotest.test_case "churn aging" `Quick test_churn_aging;
      ] );
    ( "collector.generations",
      [
        Alcotest.test_case "promotion blackens survivors" `Quick
          test_simple_promotion_blackens_survivors;
        Alcotest.test_case "partial spares old garbage" `Quick
          test_partial_does_not_reclaim_old_garbage;
        Alcotest.test_case "partial frees young garbage" `Quick
          test_young_garbage_freed_by_partial;
        Alcotest.test_case "inter-gen pointer roots" `Quick
          test_intergen_pointer_keeps_young_alive;
        Alcotest.test_case "card cleared after scan" `Quick
          test_card_cleared_after_scan;
        Alcotest.test_case "color toggle" `Quick test_color_toggle_swaps;
        Alcotest.test_case "full demotes and reclaims" `Quick
          test_full_collection_demotes_then_reclaims_everything_dead;
      ] );
    ( "collector.aging",
      [
        Alcotest.test_case "tenure threshold" `Quick test_aging_tenure_threshold;
        Alcotest.test_case "young garbage freed" `Quick
          test_aging_young_garbage_freed_quickly;
        Alcotest.test_case "card persistence" `Quick
          test_aging_card_stays_dirty_while_target_young;
      ] );
    ( "collector.non-gen",
      [
        Alcotest.test_case "no black between cycles" `Quick
          test_non_gen_no_black_between_cycles;
        Alcotest.test_case "reclaims all each cycle" `Quick
          test_non_gen_reclaims_all_garbage_each_cycle;
      ] );
    ( "collector.triggering",
      [
        Alcotest.test_case "partial by volume" `Quick
          test_partial_trigger_by_allocation_volume;
        Alcotest.test_case "full when heap fills" `Quick
          test_full_trigger_when_heap_fills;
        Alcotest.test_case "heap grows" `Quick test_heap_grows_under_live_pressure;
        Alcotest.test_case "out of memory" `Quick test_out_of_memory;
      ] );
    ( "collector.stats",
      [
        Alcotest.test_case "cycle statistics" `Quick test_cycle_statistics_populated;
        Alcotest.test_case "globals are roots" `Quick test_globals_are_roots;
      ] );
  ]
