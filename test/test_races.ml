(* The card-mark race of Section 7.2.

   A mutator stores an inter-generational pointer (old object -> young
   object) and then sets the card mark, while the collector is clearing and
   re-checking card marks.  With the naive check-then-clear protocol the
   collector can erase a mark just set for a pointer its scan did not see,
   and the young object is then reclaimed although reachable.  The paper's
   3-step protocol (clear, scan, re-mark) tolerates the race.

   The first two tests drive [Collector.clear_cards] directly against a
   single racing store under hundreds of random fine-grained schedules:
   the 3-step protocol must never leave an inter-generational pointer on a
   clean card; the naive protocol demonstrably does.  The remaining tests
   run the full system as integration coverage. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let kb = 1024

(* One controlled race attempt: an old object [o] on a dirty card with a
   nil slot; the collector scans cards while the mutator stores young [y]
   into [o] at a random moment.  Returns [true] iff the invariant
   "inter-generational pointers live only on dirty cards" is broken at the
   end. *)
let attempt ~naive ~seed =
  let heap_config =
    { Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
  in
  let gc_config =
    { (Gc_config.aging ~young_bytes:(8 * kb) ~oldest_age:2 ()) with
      Gc_config.naive_card_clear = naive;
    }
  in
  let rt = Runtime.create ~heap_config ~gc_config () in
  let st = Runtime.state rt in
  let heap = st.State.heap in
  (* old object: black (tenured), with one empty slot, on a dirty card *)
  let o = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.Black) in
  Card_table.mark (Heap.cards heap) o;
  (* young object the mutator is about to publish through [o] *)
  let y =
    Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:st.State.clear_color)
  in
  let m = Runtime.new_mutator rt ~name:"mut" () in
  Mutator.set_reg m 0 y;
  let rng = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split rng)) () in
  let cycle = Gc_stats.begin_cycle st.State.stats Gc_stats.Partial in
  ignore
    (Sched.spawn sched ~name:"collector" (fun () ->
         Collector.clear_cards st cycle));
  let delay = Rng.int rng 60 in
  ignore
    (Sched.spawn sched ~name:"mutator" (fun () ->
         for _ = 1 to delay do
           Sched.yield ()
         done;
         (* async, not tracing: the aging barrier does store-then-MarkCard,
            the exact pair the Section 7.2 argument is about *)
         Collector.update st m ~x:o ~i:0 ~y));
  Sched.run sched;
  let cards = Heap.cards heap in
  let card = Card_table.card_of_addr cards o in
  Heap.get_slot heap o 0 = y && not (Card_table.is_dirty cards card)

let n_attempts = 400

let test_three_step_protocol_is_safe () =
  for seed = 0 to n_attempts - 1 do
    if attempt ~naive:false ~seed then
      Alcotest.failf
        "3-step protocol left an inter-gen pointer on a clean card (seed %d)"
        seed
  done

let test_naive_protocol_loses_marks () =
  let lost = ref 0 in
  for seed = 0 to n_attempts - 1 do
    if attempt ~naive:true ~seed then incr lost
  done;
  if !lost = 0 then
    Alcotest.fail
      "the naive check-then-clear protocol never exhibited the Section 7.2 \
       race in 400 schedules";
  (* the window is a few steps wide, so it should show up repeatedly *)
  Alcotest.(check bool) "race reproducible" true (!lost >= 2)

(* End-to-end: the same race under the full collector, checked by the
   reachability oracle.  The 3-step protocol must never lose an object. *)
let run_system_hammer ~gc ~seed =
  let heap_config =
    { Heap.initial_bytes = 8 * kb; max_bytes = 32 * kb; card_size = 16 }
  in
  let rt = Runtime.create ~heap_config ~gc_config:gc () in
  let master = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
  ignore (Runtime.spawn_collector rt sched);
  let violation = ref None in
  ignore
    (Sched.spawn sched ~daemon:true ~name:"checker" (fun () ->
         while true do
           for _ = 1 to 32 do
             Sched.yield ()
           done;
           match Oracle.check_safety (Runtime.state rt) with
           | Ok () -> ()
           | Error e -> if !violation = None then violation := Some e
         done));
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let o = Runtime.alloc rt m ~size:64 ~n_slots:4 in
         Mutator.set_reg m 0 o;
         ignore (Runtime.collect_and_wait rt m ~full:false);
         for i = 1 to 400 do
           let slot = i mod 4 in
           Runtime.store rt m ~x:o ~i:slot ~y:Heap.nil;
           let y = Runtime.alloc rt m ~size:32 ~n_slots:0 in
           Mutator.set_reg m 1 y;
           Runtime.store rt m ~x:o ~i:slot ~y;
           Mutator.clear_reg m 1;
           ignore (Runtime.alloc rt m ~size:48 ~n_slots:0)
         done;
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:60_000_000 sched;
  (match Oracle.check_safety (Runtime.state rt) with
  | Ok () -> ()
  | Error e -> if !violation = None then violation := Some e);
  !violation

let test_aging_system_safe () =
  for seed = 0 to 11 do
    match
      run_system_hammer ~gc:(Gc_config.aging ~young_bytes:kb ~oldest_age:2 ()) ~seed
    with
    | None -> ()
    | Some e -> Alcotest.failf "aging collector lost an object (seed %d): %s" seed e
  done

let test_simple_system_safe () =
  for seed = 0 to 11 do
    match
      run_system_hammer ~gc:(Gc_config.generational ~young_bytes:kb ()) ~seed:(seed + 1000)
    with
    | None -> ()
    | Some e ->
        Alcotest.failf "simple collector lost an object (seed %d): %s" seed e
  done

let suites =
  [
    ( "races.cards",
      [
        Alcotest.test_case "3-step protocol safe" `Slow
          test_three_step_protocol_is_safe;
        Alcotest.test_case "naive protocol loses marks" `Slow
          test_naive_protocol_loses_marks;
        Alcotest.test_case "aging system safe" `Slow test_aging_system_safe;
        Alcotest.test_case "simple system safe" `Slow test_simple_system_safe;
      ] );
  ]
