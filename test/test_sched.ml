(* Tests for the effects-based deterministic scheduler: interleaving,
   determinism, daemons, stall detection, quantum behaviour. *)

open Otfgc_sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_single_process () =
  let s = Sched.create () in
  let hits = ref 0 in
  let p =
    Sched.spawn s ~name:"p" (fun () ->
        for _ = 1 to 5 do
          incr hits;
          Sched.yield ()
        done)
  in
  Sched.run s;
  check_int "ran to completion" 5 !hits;
  check "finished" true (Sched.finished s p)

let test_round_robin_interleaving () =
  let s = Sched.create ~policy:Sched.round_robin () in
  let log = Buffer.create 16 in
  let mk name =
    ignore
      (Sched.spawn s ~name (fun () ->
           for _ = 1 to 3 do
             Buffer.add_string log name;
             Sched.yield ()
           done))
  in
  mk "a";
  mk "b";
  Sched.run s;
  Alcotest.(check string) "strict alternation" "ababab" (Buffer.contents log)

let test_random_policy_deterministic () =
  let trace seed =
    let s = Sched.create ~policy:(Sched.random_policy (Rng.make seed)) () in
    let log = Buffer.create 64 in
    let mk name =
      ignore
        (Sched.spawn s ~name (fun () ->
             for _ = 1 to 10 do
               Buffer.add_string log name;
               Sched.yield ()
             done))
    in
    mk "a";
    mk "b";
    mk "c";
    Sched.run s;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed same schedule" (trace 5) (trace 5);
  check "different seed differs" true (trace 5 <> trace 6)

let test_daemon_does_not_block_exit () =
  let s = Sched.create () in
  let spins = ref 0 in
  ignore
    (Sched.spawn s ~daemon:true ~name:"daemon" (fun () ->
         while true do
           incr spins;
           Sched.yield ()
         done));
  ignore (Sched.spawn s ~name:"worker" (fun () -> Sched.yield ()));
  Sched.run s;
  check "daemon ran but did not block exit" true (!spins > 0)

let test_wait_until () =
  let s = Sched.create () in
  let flag = ref false in
  let woke = ref false in
  ignore
    (Sched.spawn s ~name:"waiter" (fun () ->
         Sched.wait_until (fun () -> !flag);
         woke := true));
  ignore
    (Sched.spawn s ~name:"setter" (fun () ->
         for _ = 1 to 3 do
           Sched.yield ()
         done;
         flag := true));
  Sched.run s;
  check "waiter woke after flag" true !woke

let test_stall_detection () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s ~name:"livelock" (fun () -> Sched.wait_until (fun () -> false)));
  check "raises Stalled" true
    (match Sched.run ~max_steps:1000 s with
    | () -> false
    | exception Sched.Stalled _ -> true)

let test_exception_propagates () =
  let s = Sched.create () in
  ignore (Sched.spawn s ~name:"boom" (fun () -> failwith "boom"));
  Alcotest.check_raises "propagates" (Failure "boom") (fun () -> Sched.run s)

let test_yield_outside_process () =
  check "yield outside run fails" true
    (match Sched.yield () with
    | () -> false
    | exception Failure _ -> true)

let test_spawn_during_run () =
  let s = Sched.create () in
  let child_ran = ref false in
  ignore
    (Sched.spawn s ~name:"parent" (fun () ->
         ignore
           (Sched.spawn s ~name:"child" (fun () -> child_ran := true));
         Sched.yield ()));
  Sched.run s;
  check "child spawned mid-run executes" true !child_ran

let test_self_name () =
  let s = Sched.create () in
  let seen = ref "" in
  ignore (Sched.spawn s ~name:"iam" (fun () -> seen := Sched.self_name ()));
  Sched.run s;
  Alcotest.(check string) "self name" "iam" !seen

let test_quantum_batches () =
  (* With quantum 3, a process should run 3 yields before the other gets a
     turn. *)
  let s = Sched.create ~policy:Sched.round_robin ~quantum:3 () in
  let log = Buffer.create 16 in
  let mk name =
    ignore
      (Sched.spawn s ~name (fun () ->
           for _ = 1 to 6 do
             Buffer.add_string log name;
             Sched.yield ()
           done))
  in
  mk "a";
  mk "b";
  Sched.run s;
  Alcotest.(check string) "batched" "aaabbbaaabbb" (Buffer.contents log)

let test_on_switch_hook () =
  let s = Sched.create () in
  let switches = ref [] in
  Sched.set_on_switch s (Some (fun n -> switches := n :: !switches));
  ignore (Sched.spawn s ~name:"x" (fun () -> Sched.yield ()));
  Sched.run s;
  check "hook fired" true (List.length !switches >= 1);
  check "hook saw name" true (List.for_all (( = ) "x") !switches)

let test_steps_counted () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s ~name:"p" (fun () ->
         for _ = 1 to 4 do
           Sched.yield ()
         done));
  Sched.run s;
  check "steps positive" true (Sched.steps s > 0)

let prop_random_schedules_complete =
  QCheck.Test.make ~name:"random schedules always complete all processes"
    ~count:50 QCheck.(pair small_int (int_bound 5))
    (fun (seed, extra) ->
      let s = Sched.create ~policy:(Sched.random_policy (Rng.make seed)) () in
      let n = 2 + extra in
      let done_count = ref 0 in
      for i = 0 to n - 1 do
        ignore
          (Sched.spawn s ~name:(string_of_int i) (fun () ->
               for _ = 1 to 5 do
                 Sched.yield ()
               done;
               incr done_count))
      done;
      Sched.run s;
      !done_count = n)

let suites =
  [
    ( "sched",
      [
        Alcotest.test_case "single process" `Quick test_single_process;
        Alcotest.test_case "round robin" `Quick test_round_robin_interleaving;
        Alcotest.test_case "random deterministic" `Quick
          test_random_policy_deterministic;
        Alcotest.test_case "daemons" `Quick test_daemon_does_not_block_exit;
        Alcotest.test_case "wait_until" `Quick test_wait_until;
        Alcotest.test_case "stall detection" `Quick test_stall_detection;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "yield outside" `Quick test_yield_outside_process;
        Alcotest.test_case "spawn during run" `Quick test_spawn_during_run;
        Alcotest.test_case "self name" `Quick test_self_name;
        Alcotest.test_case "quantum" `Quick test_quantum_batches;
        Alcotest.test_case "on_switch hook" `Quick test_on_switch_hook;
        Alcotest.test_case "steps counted" `Quick test_steps_counted;
        QCheck_alcotest.to_alcotest prop_random_schedules_complete;
      ] );
  ]
