(* Runtime lifecycle tests: collector shutdown, mutator registration
   around collections, request coalescing, custom register files. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

let test_shutdown_terminates_collector () =
  let rt = Runtime.create () in
  let sched = Sched.create () in
  (* non-daemon collector: the run can only end if shutdown works *)
  let _pid =
    Sched.spawn sched ~name:"collector" (fun () ->
        Collector.collector_loop (Runtime.state rt))
  in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         for _ = 1 to 10 do
           Sched.yield ()
         done;
         Runtime.shutdown rt));
  (* terminates (Stalled would fail the test) *)
  Sched.run ~max_steps:1_000_000 sched;
  check "collector exited" true true

let test_request_collection_coalesces () =
  let rt = Runtime.create () in
  let st = Runtime.state rt in
  Runtime.request_collection rt ~full:false;
  (* a second request while one is pending does not upgrade or replace *)
  Runtime.request_collection rt ~full:true;
  check "first request kept" true
    (Atomic.get st.State.gc_request = State.Want_partial)

let test_new_mutator_waits_for_idle_collector () =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 32 * kb; card_size = 16 }
      ~gc_config:(Gc_config.generational ())
      ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 4)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"first" () in
  let second_registered = ref false in
  ignore
    (Sched.spawn sched ~name:"first" (fun () ->
         let a = Runtime.alloc rt m ~size:32 ~n_slots:0 in
         Mutator.set_reg m 0 a;
         Runtime.request_collection rt ~full:false;
         (* while the cycle runs, a second thread registers; it must not
            join mid-handshake *)
         ignore
           (Sched.spawn sched ~name:"second" (fun () ->
                let m2 = Runtime.new_mutator rt ~name:"second" () in
                second_registered := true;
                ignore (Runtime.alloc rt m2 ~size:32 ~n_slots:0);
                Runtime.retire_mutator rt m2));
         (* keep cooperating until the cycle completes *)
         let st = Runtime.state rt in
         Sched.wait_until (fun () ->
             Runtime.cooperate rt m;
             (not (Atomic.get st.State.collecting))
             && Atomic.get st.State.gc_request = State.No_request
             && !second_registered);
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:20_000_000 sched;
  check "second mutator ran" true !second_registered

let test_custom_register_file () =
  let rt = Runtime.create () in
  let sched = Sched.create () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" ~n_regs:2 () in
  check_int "two registers" 2 (Mutator.n_regs m);
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let a = Runtime.alloc rt m ~size:32 ~n_slots:0 in
         Mutator.set_reg m 1 a;
         Runtime.retire_mutator rt m));
  Sched.run sched

let test_globals_registered_before_run () =
  (* a global set up outside any process still roots its object *)
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 32 * kb; card_size = 16 }
      ()
  in
  let heap = Runtime.heap rt in
  let statics =
    Option.get
      (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Otfgc_heap.Color.C0)
  in
  Runtime.add_global rt statics;
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 6)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         ignore (Runtime.collect_and_wait rt m ~full:true);
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:20_000_000 sched;
  check "global survived a full collection" true (Heap.is_object heap statics)

let test_load_returns_stored_value () =
  let rt = Runtime.create () in
  let sched = Sched.create () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  let ok = ref false in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let a = Runtime.alloc rt m ~size:32 ~n_slots:2 in
         Mutator.set_reg m 0 a;
         let b = Runtime.alloc rt m ~size:32 ~n_slots:0 in
         Mutator.set_reg m 1 b;
         Runtime.store rt m ~x:a ~i:1 ~y:b;
         ok := Runtime.load rt m ~x:a ~i:1 = b && Runtime.load rt m ~x:a ~i:0 = Heap.nil;
         Runtime.retire_mutator rt m));
  Sched.run sched;
  check "load round-trips" true !ok

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "shutdown" `Quick test_shutdown_terminates_collector;
        Alcotest.test_case "request coalescing" `Quick test_request_collection_coalesces;
        Alcotest.test_case "mutator joins around a cycle" `Quick
          test_new_mutator_waits_for_idle_collector;
        Alcotest.test_case "custom registers" `Quick test_custom_register_file;
        Alcotest.test_case "globals before run" `Quick
          test_globals_registered_before_run;
        Alcotest.test_case "load/store roundtrip" `Quick test_load_returns_stored_value;
      ] );
  ]
