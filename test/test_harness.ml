(* Tests for the domain-parallel experiment harness: Lab.run_many must
   be independent of the jobs count (every simulation is deterministic
   in its configuration), and the persistent disk cache must round-trip
   results, fall back to recomputation on corrupt or stale records, and
   expose its activity through the lab counters. *)

module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Profile = Otfgc_workloads.Profile
module R = Otfgc_metrics.Run_result

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_scale = 0.01

(* A fresh directory name under the system temp dir; the lab itself
   creates it on first store. *)
let fresh_cache_dir () =
  let f = Filename.temp_file "otfgc-harness" ".cache" in
  Sys.remove f;
  f

let no_cache = (None : string option)

(* ------------------------------------------------------------------ *)
(* run_many: batching and determinism                                  *)
(* ------------------------------------------------------------------ *)

(* Eight distinct configurations across profiles, modes, card and young
   sizes — the grid the acceptance criterion asks for. *)
let grid =
  [
    Lab.cfg Profile.jack;
    Lab.cfg ~mode:Lab.Non_gen Profile.jack;
    Lab.cfg ~mode:(Lab.Aging 2) Profile.jack;
    Lab.cfg ~mode:Lab.Adaptive Profile.jack;
    Lab.cfg ~young:(256 * 1024) Profile.jack;
    Lab.cfg Profile.anagram;
    Lab.cfg ~mode:Lab.Non_gen Profile.anagram;
    Lab.cfg ~card:64 Profile.anagram;
  ]

let test_run_many_parallel_equals_sequential () =
  let seq_lab = Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:no_cache () in
  let par_lab = Lab.create ~scale:tiny_scale ~jobs:4 ~cache_dir:no_cache () in
  let seq = Lab.run_many seq_lab grid in
  let par = Lab.run_many par_lab grid in
  check_int "sequential computed the whole grid" (List.length grid)
    (Lab.counters seq_lab).Lab.computed;
  check_int "parallel computed the whole grid" (List.length grid)
    (Lab.counters par_lab).Lab.computed;
  check "jobs>1 results identical to sequential" true
    (List.for_all2 (fun a b -> compare a b = 0) seq par)

let test_run_many_order_and_dedup () =
  let lab = Lab.create ~scale:tiny_scale ~jobs:2 ~cache_dir:no_cache () in
  let cfgs =
    [ Lab.cfg Profile.jack; Lab.cfg Profile.anagram; Lab.cfg Profile.jack ]
  in
  let rs = Lab.run_many lab cfgs in
  check_int "three results" 3 (List.length rs);
  check "results align with submissions" true
    (List.for_all2
       (fun c r -> c.Lab.profile.Profile.name = r.R.workload)
       cfgs rs);
  check_int "duplicate simulated once" 2 (Lab.counters lab).Lab.computed;
  check "duplicates share the memoised run" true
    (List.nth rs 0 == List.nth rs 2)

let test_run_many_agrees_with_run () =
  let lab = Lab.create ~scale:tiny_scale ~jobs:2 ~cache_dir:no_cache () in
  let batched = Lab.run_many lab [ Lab.cfg ~card:64 Profile.jack ] in
  let single = Lab.run lab ~card:64 Profile.jack in
  check "same memoised result" true (List.hd batched == single)

(* Byte-identity guard for the hot-path data structures (bitmap
   segregated freelist, array gray stack, card crossing map): they are
   pure representation changes, so every simulated figure must stay
   bit-for-bit what the original list-based structures produced.  The
   digests below were recorded from the list-based implementation over
   the same grid (Marshal of the full Run_result at scale 0.05 — large
   enough that every configuration digests differently).  A mismatch
   means an allocation decision, scan order or schedule changed.

   Re-recorded when Run_result gained the floating-garbage fields
   (avg/max floating objects and bytes): adding record fields changes
   the Marshal bytes even when the simulation is identical.  The switch
   was verified behaviour-preserving by digesting the JSON projection
   of the *old* fields before and after the change — all eight
   projections matched bit for bit; only the record layout moved. *)
let recorded_digests =
  [
    "ff3899bf00127bb57893990a38a5d97a";
    "5d6dd7d4ea5b4335c5fb9800a3e26094";
    "d8d671f4b2185001ed676dd22468876f";
    "7d70780d4c70524291ed7d09ac36a164";
    "4bb1612589a0cfcff83842d17a4291fe";
    "8bbb532a3574760e424c302336e9765b";
    "44f83d4f3f202678977fa9e1f0415564";
    "005db066dad16578e1a643890edc08d3";
  ]

let test_run_many_byte_identical_to_recorded () =
  let lab = Lab.create ~scale:0.05 ~jobs:1 ~cache_dir:no_cache () in
  let digests =
    List.map
      (fun r -> Digest.to_hex (Digest.string (Marshal.to_string r [])))
      (Lab.run_many lab grid)
  in
  (* all eight configurations really behave differently at this scale *)
  check_int "digests distinct"
    (List.length grid)
    (List.length (List.sort_uniq compare digests));
  List.iteri
    (fun i (want, got) ->
      Alcotest.(check string) (Printf.sprintf "config %d digest" i) want got)
    (List.combine recorded_digests digests)

let test_registry_grids_cover_figures () =
  (* every figure both declares a grid and renders entirely from it:
     after a prefetch of [configs], running the figure simulates nothing *)
  List.iter
    (fun id ->
      let e = Option.get (Registry.find id) in
      let lab = Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:no_cache () in
      Lab.prefetch lab e.Registry.configs;
      let computed_before = (Lab.counters lab).Lab.computed in
      check "grid is non-empty" true (e.Registry.configs <> []);
      ignore (e.Registry.run lab : Otfgc_support.Textable.t);
      check_int
        (Printf.sprintf "%s renders with zero extra simulations" id)
        computed_before (Lab.counters lab).Lab.computed)
    [ "fig8"; "fig10" ];
  check "every registry entry has a grid" true
    (List.for_all (fun e -> e.Registry.configs <> []) Registry.all)

(* ------------------------------------------------------------------ *)
(* Persistent cache                                                    *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  let dir = fresh_cache_dir () in
  let mk () =
    Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:(Some dir) ()
  in
  let lab1 = mk () in
  let r1 = Lab.run lab1 Profile.jack in
  let c1 = Lab.counters lab1 in
  check_int "cold lab simulates" 1 c1.Lab.computed;
  check_int "cold lab reads nothing" 0 c1.Lab.disk_hits;
  let path = Option.get (Lab.cache_path lab1 (Lab.cfg Profile.jack)) in
  check "record written" true (Sys.file_exists path);
  (* a fresh lab (fresh process, in effect) resolves from disk *)
  let lab2 = mk () in
  let r2 = Lab.run lab2 Profile.jack in
  let c2 = Lab.counters lab2 in
  check_int "warm lab simulates nothing" 0 c2.Lab.computed;
  check_int "warm lab hits disk" 1 c2.Lab.disk_hits;
  check "reloaded result equals computed result" true (compare r1 r2 = 0)

let test_cache_corrupt_record_recomputes () =
  let dir = fresh_cache_dir () in
  let mk () =
    Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:(Some dir) ()
  in
  let lab1 = mk () in
  ignore (Lab.run lab1 Profile.jack : R.t);
  let path = Option.get (Lab.cache_path lab1 (Lab.cfg Profile.jack)) in
  let oc = open_out_bin path in
  output_string oc "not a marshalled record";
  close_out oc;
  let lab2 = mk () in
  ignore (Lab.run lab2 Profile.jack : R.t);
  let c2 = Lab.counters lab2 in
  check_int "corrupt record ignored, run recomputed" 1 c2.Lab.computed;
  check_int "no disk hit" 0 c2.Lab.disk_hits

let test_cache_version_mismatch_recomputes () =
  let dir = fresh_cache_dir () in
  let mk () =
    Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:(Some dir) ()
  in
  let lab1 = mk () in
  let r1 = Lab.run lab1 Profile.jack in
  let path = Option.get (Lab.cache_path lab1 (Lab.cfg Profile.jack)) in
  let key = Filename.chop_suffix (Filename.basename path) ".run" in
  (* rewrite the record as if a future schema version had produced it *)
  let oc = open_out_bin path in
  Marshal.to_channel oc (Lab.cache_version + 1, key, r1) [];
  close_out oc;
  let lab2 = mk () in
  ignore (Lab.run lab2 Profile.jack : R.t);
  let c2 = Lab.counters lab2 in
  check_int "stale version ignored, run recomputed" 1 c2.Lab.computed;
  check_int "no disk hit" 0 c2.Lab.disk_hits;
  (* recomputation repaired the record at the current version *)
  let lab3 = mk () in
  ignore (Lab.run lab3 Profile.jack : R.t);
  check_int "repaired record hits" 1 (Lab.counters lab3).Lab.disk_hits

let test_cache_disabled () =
  let lab = Lab.create ~scale:tiny_scale ~jobs:1 ~cache_dir:no_cache () in
  check "no cache path" true (Lab.cache_path lab (Lab.cfg Profile.jack) = None);
  ignore (Lab.run lab Profile.jack : R.t);
  check_int "computed" 1 (Lab.counters lab).Lab.computed

let suites =
  [
    ( "harness.run_many",
      [
        Alcotest.test_case "parallel equals sequential" `Quick
          test_run_many_parallel_equals_sequential;
        Alcotest.test_case "order and dedup" `Quick test_run_many_order_and_dedup;
        Alcotest.test_case "agrees with run" `Quick test_run_many_agrees_with_run;
        Alcotest.test_case "byte-identical to recorded digests" `Quick
          test_run_many_byte_identical_to_recorded;
        Alcotest.test_case "registry grids cover figures" `Quick
          test_registry_grids_cover_figures;
      ] );
    ( "harness.cache",
      [
        Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
        Alcotest.test_case "corrupt record" `Quick
          test_cache_corrupt_record_recomputes;
        Alcotest.test_case "version mismatch" `Quick
          test_cache_version_mismatch_recomputes;
        Alcotest.test_case "disabled" `Quick test_cache_disabled;
      ] );
  ]
