(* Tests for the heap data-structure library (strings, lists, hash
   tables) — including their behaviour across concurrent collections. *)

open Otfgc
open Otfgc_structs
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Run [body] with a runtime, collector daemon and one mutator. *)
let session ?(gc = Gc_config.generational ~young_bytes:(8 * 1024) ()) body =
  let rt =
    Runtime.create
      ~heap_config:
        { Heap.initial_bytes = 64 * 1024; max_bytes = 256 * 1024; card_size = 16 }
      ~gc_config:gc ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 17)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         body rt m;
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:80_000_000 sched

(* ------------------------------------------------------------------ *)
(* Hstring                                                             *)
(* ------------------------------------------------------------------ *)

let test_hstring_roundtrip () =
  session (fun rt m ->
      List.iter
        (fun s ->
          let h = Hstring.alloc rt m s in
          Mutator.set_reg m 0 h;
          check_int (s ^ " length") (String.length s) (Hstring.length rt m h);
          check_str (s ^ " contents") s (Hstring.to_string rt m h))
        [ ""; "a"; "abcdefg"; "exactly8"; "morethaneightchars"; "tangles" ])

let test_hstring_equal_and_hash () =
  session (fun rt m ->
      let a = Hstring.alloc rt m "tangles" in
      Mutator.set_reg m 0 a;
      let b = Hstring.alloc rt m "tangles" in
      Mutator.set_reg m 1 b;
      let c = Hstring.alloc rt m "tangled" in
      Mutator.set_reg m 2 c;
      check "same content equal" true (Hstring.equal rt m a b);
      check "physical equal" true (Hstring.equal rt m a a);
      check "different content" false (Hstring.equal rt m a c);
      check "equal strings hash equal" true
        (Hstring.hash rt m a = Hstring.hash rt m b);
      check "hash non-negative" true (Hstring.hash rt m c >= 0))

let test_hstring_survives_collection () =
  session (fun rt m ->
      let h = Hstring.alloc rt m "persistent-data" in
      Mutator.set_reg m 0 h;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      ignore (Runtime.collect_and_wait rt m ~full:true);
      check_str "contents intact after collections" "persistent-data"
        (Hstring.to_string rt m h))

(* ------------------------------------------------------------------ *)
(* Hlist                                                               *)
(* ------------------------------------------------------------------ *)

let test_hlist_build_and_iter () =
  session (fun rt m ->
      (* list of heap strings "w0".."w9", built front to back *)
      let cells = ref Heap.nil in
      for i = 9 downto 0 do
        let s = Hstring.alloc rt m (Printf.sprintf "w%d" i) in
        Mutator.set_reg m 1 s;
        let cell = Hlist.cons rt m ~head:s ~tail:!cells in
        Mutator.set_reg m 0 cell;
        Mutator.clear_reg m 1;
        cells := cell
      done;
      check_int "length" 10 (Hlist.length rt m !cells);
      let collected = ref [] in
      Hlist.iter rt m
        (fun s -> collected := Hstring.to_string rt m s :: !collected)
        !cells;
      Alcotest.(check (list string))
        "front to back" (List.init 10 (Printf.sprintf "w%d"))
        (List.rev !collected))

let test_hlist_survives_churn () =
  session (fun rt m ->
      let s = Hstring.alloc rt m "anchor" in
      Mutator.set_reg m 1 s;
      let cell = Hlist.cons rt m ~head:s ~tail:Heap.nil in
      Mutator.set_reg m 0 cell;
      Mutator.clear_reg m 1;
      (* churn enough to force several partial collections *)
      for _ = 1 to 2000 do
        ignore (Runtime.alloc rt m ~size:32 ~n_slots:0)
      done;
      check_int "still one cell" 1 (Hlist.length rt m (Mutator.get_reg m 0));
      check_str "head intact" "anchor"
        (Hstring.to_string rt m (Hlist.head rt m (Mutator.get_reg m 0))))

(* ------------------------------------------------------------------ *)
(* Htable                                                              *)
(* ------------------------------------------------------------------ *)

let test_htable_add_find () =
  session (fun rt m ->
      let table = Htable.create rt m ~buckets:7 in
      Mutator.set_reg m 0 table;
      (* 40 keys into 7 buckets: plenty of collisions *)
      for i = 0 to 39 do
        let key = Hstring.alloc rt m (Printf.sprintf "key-%d" i) in
        Mutator.push m key;
        let v = Hstring.alloc rt m (Printf.sprintf "val-%d" i) in
        Mutator.push m v;
        Htable.add rt m ~table ~key ~value:v;
        ignore (Mutator.pop m : int);
        ignore (Mutator.pop m : int)
      done;
      check_int "count" 40 (Htable.count rt m ~table);
      for i = 0 to 39 do
        let probe = Hstring.alloc rt m (Printf.sprintf "key-%d" i) in
        Mutator.push m probe;
        (match Htable.find rt m ~table ~key:probe with
        | None -> Alcotest.failf "key-%d missing" i
        | Some v ->
            check_str "value" (Printf.sprintf "val-%d" i)
              (Hstring.to_string rt m v));
        ignore (Mutator.pop m : int)
      done;
      let missing = Hstring.alloc rt m "absent" in
      Mutator.set_reg m 1 missing;
      check "absent key" false (Htable.mem rt m ~table ~key:missing))

let test_htable_newest_binding_wins () =
  session (fun rt m ->
      let table = Htable.create rt m ~buckets:3 in
      Mutator.set_reg m 0 table;
      let key = Hstring.alloc rt m "dup" in
      Mutator.set_reg m 1 key;
      let v1 = Hstring.alloc rt m "first" in
      Mutator.set_reg m 2 v1;
      Htable.add rt m ~table ~key ~value:v1;
      let v2 = Hstring.alloc rt m "second" in
      Mutator.set_reg m 3 v2;
      Htable.add rt m ~table ~key ~value:v2;
      match Htable.find rt m ~table ~key with
      | Some v -> check_str "newest wins" "second" (Hstring.to_string rt m v)
      | None -> Alcotest.fail "key missing")

let test_htable_under_collection_pressure () =
  (* the anagram pattern: resident table + probe churn across many
     partials, verified under all three collector families *)
  List.iter
    (fun gc ->
      session ~gc (fun rt m ->
          let table = Htable.create rt m ~buckets:31 in
          Mutator.set_reg m 0 table;
          for i = 0 to 150 do
            let key = Hstring.alloc rt m (Printf.sprintf "w%d" i) in
            Mutator.push m key;
            Htable.add rt m ~table ~key ~value:Heap.nil;
            ignore (Mutator.pop m : int)
          done;
          ignore (Runtime.collect_and_wait rt m ~full:true);
          (* probe with fresh (young, immediately-dead) strings *)
          let hits = ref 0 in
          for round = 0 to 3 do
            ignore round;
            for i = 0 to 150 do
              let probe = Hstring.alloc rt m (Printf.sprintf "w%d" i) in
              Mutator.push m probe;
              if Htable.mem rt m ~table ~key:probe then incr hits;
              ignore (Mutator.pop m : int)
            done
          done;
          check_int "every probe hits through collections" (4 * 151) !hits;
          check_int "table intact" 151 (Htable.count rt m ~table)))
    [
      Gc_config.generational ~young_bytes:(8 * 1024) ();
      Gc_config.generational ~young_bytes:(8 * 1024)
        ~intergen:Gc_config.Remembered_set ();
      Gc_config.aging ~young_bytes:(8 * 1024) ~oldest_age:3 ();
    ]

let test_htable_bucket_validation () =
  session (fun rt m ->
      check "zero buckets rejected" true
        (match Htable.create rt m ~buckets:0 with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Scalar data words                                                   *)
(* ------------------------------------------------------------------ *)

let test_data_words_roundtrip () =
  session (fun rt m ->
      let a = Runtime.alloc rt m ~size:64 ~n_slots:2 in
      Mutator.set_reg m 0 a;
      (* 64 bytes - 16 header - 16 slots = 4 data words *)
      check_int "data words" 4 (Heap.n_data (Runtime.heap rt) a);
      Runtime.store_data rt m ~x:a ~i:0 ~v:12345;
      Runtime.store_data rt m ~x:a ~i:3 ~v:(-7);
      check_int "word 0" 12345 (Runtime.load_data rt m ~x:a ~i:0);
      check_int "word 3" (-7) (Runtime.load_data rt m ~x:a ~i:3);
      check_int "untouched word" 0 (Runtime.load_data rt m ~x:a ~i:1);
      (* survives a collection *)
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check_int "word 0 after GC" 12345 (Runtime.load_data rt m ~x:a ~i:0))

let suites =
  [
    ( "structs.hstring",
      [
        Alcotest.test_case "roundtrip" `Quick test_hstring_roundtrip;
        Alcotest.test_case "equal/hash" `Quick test_hstring_equal_and_hash;
        Alcotest.test_case "survives collection" `Quick
          test_hstring_survives_collection;
      ] );
    ( "structs.hlist",
      [
        Alcotest.test_case "build and iter" `Quick test_hlist_build_and_iter;
        Alcotest.test_case "survives churn" `Quick test_hlist_survives_churn;
      ] );
    ( "structs.htable",
      [
        Alcotest.test_case "add/find" `Quick test_htable_add_find;
        Alcotest.test_case "newest binding" `Quick test_htable_newest_binding_wins;
        Alcotest.test_case "collection pressure" `Quick
          test_htable_under_collection_pressure;
        Alcotest.test_case "bucket validation" `Quick test_htable_bucket_validation;
      ] );
    ( "structs.data",
      [ Alcotest.test_case "data words" `Quick test_data_words_roundtrip ] );
  ]
