(* Cross-substrate validation: the real-domains substrate must reach the
   same end-of-run state as the deterministic simulator, up to scheduling.

   The driver aligns the per-thread rng streams across substrates, so the
   *program* each mutator executes is identical — only the interleaving
   (and hence collection timing) differs.  That gives us sharp invariants
   to compare:

   - allocation totals (bytes and objects) match exactly;
   - after the quiescent finale (two full collections) the reachability
     oracle finds zero lost/leaked objects and the heap checker passes;
   - promotion counts agree within a generous tolerance (promotion is
     timing-dependent: an object tenures iff it survives enough cycles,
     and the domains substrate runs a different number of cycles).

   Byte-identity of the event stream is deliberately NOT compared — that
   is the sim digest guard's job, and it is meaningless across real
   schedules. *)

open Otfgc_workloads
module Substrate = Otfgc_sched.Substrate
module Heap = Otfgc_heap.Heap
module State = Otfgc.State
module Oracle = Otfgc.Oracle
module Runtime = Otfgc.Runtime
module Gc_stats = Otfgc.Gc_stats
module Run_result = Otfgc_metrics.Run_result

let total_promotions rt =
  let stats = (Runtime.state rt).State.stats in
  let by kind = Gc_stats.sum stats kind (fun c -> float_of_int c.promotions) in
  int_of_float (by Partial +. by Full +. by Non_gen)

(* One grid point: run the same (profile, gc, threads, seed) on both
   substrates and check every cross-substrate invariant.  [gc_workers]
   applies to the domains side only (the sim reference is always serial) —
   the invariants must hold for any crew width. *)
let check_config ~name ~profile ~gc ~threads ~seed ~scale ?(gc_workers = 1) ()
    =
  let sim_res, sim_rt = Driver.run_rt ~seed ~scale ~threads ~gc profile in
  let dom_res, dom_rt =
    Driver.run_rt ~seed ~scale ~substrate:Substrate.Domains ~threads
      ~gc_workers ~gc profile
  in
  Alcotest.(check int)
    (name ^ ": total_alloc_bytes equal across substrates")
    sim_res.Run_result.total_alloc_bytes dom_res.Run_result.total_alloc_bytes;
  Alcotest.(check int)
    (name ^ ": total_alloc_objects equal across substrates")
    sim_res.Run_result.total_alloc_objects dom_res.Run_result.total_alloc_objects;
  (* Zero lost objects: everything unreachable was reclaimed by the
     finale, and nothing reachable was freed (the oracle would have
     tripped an assert inside the run if it had been). *)
  Alcotest.(check (list int))
    (name ^ ": oracle finds no garbage after the domains finale")
    [] (Oracle.garbage (Runtime.state dom_rt));
  (match Heap.check ~check_slots:true (Runtime.heap dom_rt) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: domains heap check failed: %s" name msg);
  (match Oracle.check_intergen_invariant (Runtime.state dom_rt) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: domains intergen invariant: %s" name msg);
  (* Live census: all workload roots are dropped at retirement, so after
     two quiescent full collections nothing should remain allocated. *)
  Alcotest.(check int)
    (name ^ ": domains heap empty at quiescence")
    0 (Heap.object_count (Runtime.heap dom_rt));
  (* Promotion tolerance: scheduling changes how many cycles an object
     lives through, so only order-of-magnitude agreement is meaningful. *)
  let sim_promoted = total_promotions sim_rt
  and dom_promoted = total_promotions dom_rt in
  let ceiling = (5 * sim_promoted) + 500 in
  if dom_promoted > ceiling then
    Alcotest.failf "%s: domains promoted %d objects, sim %d (ceiling %d)"
      name dom_promoted sim_promoted ceiling

let grid_case ~name ~profile ~gc ~threads ?(seed = 42) ?(scale = 0.04)
    ?(gc_workers = 1) () =
  Alcotest.test_case name `Slow (fun () ->
      check_config ~name ~profile ~gc ~threads ~seed ~scale ~gc_workers ())

let grid =
  let open Otfgc.Gc_config in
  [
    grid_case ~name:"anagram/gen/1" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:1 ();
    grid_case ~name:"anagram/gen/2" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:2 ();
    grid_case ~name:"anagram/nongen/1" ~profile:Profile.anagram
      ~gc:non_generational ~threads:1 ();
    grid_case ~name:"anagram/aging2/2" ~profile:Profile.anagram
      ~gc:(aging ~oldest_age:2 ()) ~threads:2 ();
    grid_case ~name:"anagram/adaptive/1" ~profile:Profile.anagram
      ~gc:(adaptive ()) ~threads:1 ();
    grid_case ~name:"jack/gen/2" ~profile:Profile.jack ~gc:(generational ())
      ~threads:2 ~seed:7 ();
    grid_case ~name:"raytracer/gen/2" ~profile:(Profile.raytracer ~threads:2)
      ~gc:(generational ()) ~threads:2 ~scale:0.02 ();
    (* Multi-worker crew: the same cross-substrate invariants must hold
       when card scan, trace and sweep run on 2 (and 3) worker domains
       with work-stealing deques and pooled allocation. *)
    grid_case ~name:"anagram/gen/2 + 2 gc workers" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:2 ~gc_workers:2 ();
    grid_case ~name:"anagram/aging2/2 + 2 gc workers"
      ~profile:Profile.anagram
      ~gc:(aging ~oldest_age:2 ())
      ~threads:2 ~gc_workers:2 ();
    grid_case ~name:"anagram/nongen/1 + 3 gc workers"
      ~profile:Profile.anagram ~gc:non_generational ~threads:1 ~gc_workers:3
      ();
    grid_case ~name:"raytracer/gen/2 + 2 gc workers"
      ~profile:(Profile.raytracer ~threads:2)
      ~gc:(generational ()) ~threads:2 ~scale:0.02 ~gc_workers:2 ();
    (* Guard: an explicitly armed crew of width 1 is the serial collector
       — exact allocation totals versus sim stay byte-identical. *)
    grid_case ~name:"anagram/gen/2 + explicit 1 gc worker"
      ~profile:Profile.anagram ~gc:(generational ()) ~threads:2 ~gc_workers:1
      ();
  ]

(* Stress: arm the substrate's jitter hook so every yield point may burn
   a random spin — this perturbs the interleaving at exactly the
   barrier/handshake-sensitive program points.  The invariants must hold
   under any schedule the jitter produces. *)
let stress_jitter () =
  let gc = Otfgc.Gc_config.generational () in
  Fun.protect ~finally:Substrate.clear_jitter (fun () ->
      List.iter
        (fun seed ->
          Substrate.set_jitter ~seed ~prob:0.05 ~max_spin:400;
          let name = Printf.sprintf "jitter seed %d" seed in
          check_config ~name ~profile:Profile.anagram ~gc ~threads:2 ~seed
            ~scale:0.03 ())
        [ 1; 2; 3 ])

let suites =
  [
    ( "parallel.cross-check",
      grid
      @ [ Alcotest.test_case "jitter stress at handshake points" `Slow
            stress_jitter ] );
  ]
