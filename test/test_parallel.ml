(* Cross-substrate validation: the real-domains substrate must reach the
   same end-of-run state as the deterministic simulator, up to scheduling.

   The driver aligns the per-thread rng streams across substrates, so the
   *program* each mutator executes is identical — only the interleaving
   (and hence collection timing) differs.  That gives us sharp invariants
   to compare:

   - allocation totals (bytes and objects) match exactly;
   - after the quiescent finale (two full collections) the reachability
     oracle finds zero lost/leaked objects and the heap checker passes;
   - promotion counts agree within a generous tolerance (promotion is
     timing-dependent: an object tenures iff it survives enough cycles,
     and the domains substrate runs a different number of cycles).

   Byte-identity of the event stream is deliberately NOT compared — that
   is the sim digest guard's job, and it is meaningless across real
   schedules. *)

open Otfgc_workloads
module Substrate = Otfgc_sched.Substrate
module Parallel = Otfgc_sched.Parallel
module Heap = Otfgc_heap.Heap
module State = Otfgc.State
module Oracle = Otfgc.Oracle
module Runtime = Otfgc.Runtime
module Mutator = Otfgc.Mutator
module Gc_stats = Otfgc.Gc_stats
module Run_result = Otfgc_metrics.Run_result

let total_promotions rt =
  let stats = (Runtime.state rt).State.stats in
  let by kind = Gc_stats.sum stats kind (fun c -> float_of_int c.promotions) in
  int_of_float (by Partial +. by Full +. by Non_gen)

(* One grid point: run the same (profile, gc, threads, seed) on both
   substrates and check every cross-substrate invariant.  [gc_workers]
   applies to the domains side only (the sim reference is always serial) —
   the invariants must hold for any crew width. *)
let check_config ~name ~profile ~gc ~threads ~seed ~scale ?(gc_workers = 1) ()
    =
  let sim_res, sim_rt = Driver.run_rt ~seed ~scale ~threads ~gc profile in
  let dom_res, dom_rt =
    Driver.run_rt ~seed ~scale ~substrate:Substrate.Domains ~threads
      ~gc_workers ~gc profile
  in
  Alcotest.(check int)
    (name ^ ": total_alloc_bytes equal across substrates")
    sim_res.Run_result.total_alloc_bytes dom_res.Run_result.total_alloc_bytes;
  Alcotest.(check int)
    (name ^ ": total_alloc_objects equal across substrates")
    sim_res.Run_result.total_alloc_objects dom_res.Run_result.total_alloc_objects;
  (* Zero lost objects: everything unreachable was reclaimed by the
     finale, and nothing reachable was freed (the oracle would have
     tripped an assert inside the run if it had been). *)
  Alcotest.(check (list int))
    (name ^ ": oracle finds no garbage after the domains finale")
    [] (Oracle.garbage (Runtime.state dom_rt));
  (match Heap.check ~check_slots:true (Runtime.heap dom_rt) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: domains heap check failed: %s" name msg);
  (match Oracle.check_intergen_invariant (Runtime.state dom_rt) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: domains intergen invariant: %s" name msg);
  (* Live census: all workload roots are dropped at retirement, so after
     two quiescent full collections nothing should remain allocated. *)
  Alcotest.(check int)
    (name ^ ": domains heap empty at quiescence")
    0 (Heap.object_count (Runtime.heap dom_rt));
  (* Promotion tolerance: scheduling changes how many cycles an object
     lives through, so only order-of-magnitude agreement is meaningful. *)
  let sim_promoted = total_promotions sim_rt
  and dom_promoted = total_promotions dom_rt in
  let ceiling = (5 * sim_promoted) + 500 in
  if dom_promoted > ceiling then
    Alcotest.failf "%s: domains promoted %d objects, sim %d (ceiling %d)"
      name dom_promoted sim_promoted ceiling

let grid_case ~name ~profile ~gc ~threads ?(seed = 42) ?(scale = 0.04)
    ?(gc_workers = 1) () =
  Alcotest.test_case name `Slow (fun () ->
      check_config ~name ~profile ~gc ~threads ~seed ~scale ~gc_workers ())

let grid =
  let open Otfgc.Gc_config in
  [
    grid_case ~name:"anagram/gen/1" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:1 ();
    grid_case ~name:"anagram/gen/2" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:2 ();
    grid_case ~name:"anagram/nongen/1" ~profile:Profile.anagram
      ~gc:non_generational ~threads:1 ();
    grid_case ~name:"anagram/aging2/2" ~profile:Profile.anagram
      ~gc:(aging ~oldest_age:2 ()) ~threads:2 ();
    grid_case ~name:"anagram/adaptive/1" ~profile:Profile.anagram
      ~gc:(adaptive ()) ~threads:1 ();
    grid_case ~name:"jack/gen/2" ~profile:Profile.jack ~gc:(generational ())
      ~threads:2 ~seed:7 ();
    grid_case ~name:"raytracer/gen/2" ~profile:(Profile.raytracer ~threads:2)
      ~gc:(generational ()) ~threads:2 ~scale:0.02 ();
    (* Multi-worker crew: the same cross-substrate invariants must hold
       when card scan, trace and sweep run on 2 (and 3) worker domains
       with work-stealing deques and pooled allocation. *)
    grid_case ~name:"anagram/gen/2 + 2 gc workers" ~profile:Profile.anagram
      ~gc:(generational ()) ~threads:2 ~gc_workers:2 ();
    grid_case ~name:"anagram/aging2/2 + 2 gc workers"
      ~profile:Profile.anagram
      ~gc:(aging ~oldest_age:2 ())
      ~threads:2 ~gc_workers:2 ();
    grid_case ~name:"anagram/nongen/1 + 3 gc workers"
      ~profile:Profile.anagram ~gc:non_generational ~threads:1 ~gc_workers:3
      ();
    grid_case ~name:"raytracer/gen/2 + 2 gc workers"
      ~profile:(Profile.raytracer ~threads:2)
      ~gc:(generational ()) ~threads:2 ~scale:0.02 ~gc_workers:2 ();
    (* Guard: an explicitly armed crew of width 1 is the serial collector
       — exact allocation totals versus sim stay byte-identical. *)
    grid_case ~name:"anagram/gen/2 + explicit 1 gc worker"
      ~profile:Profile.anagram ~gc:(generational ()) ~threads:2 ~gc_workers:1
      ();
  ]

(* Stress: arm the substrate's jitter hook so every yield point may burn
   a random spin — this perturbs the interleaving at exactly the
   barrier/handshake-sensitive program points.  The invariants must hold
   under any schedule the jitter produces. *)
let stress_jitter () =
  let gc = Otfgc.Gc_config.generational () in
  Fun.protect ~finally:Substrate.clear_jitter (fun () ->
      List.iter
        (fun seed ->
          Substrate.set_jitter ~seed ~prob:0.05 ~max_spin:400;
          let name = Printf.sprintf "jitter seed %d" seed in
          check_config ~name ~profile:Profile.anagram ~gc ~threads:2 ~seed
            ~scale:0.03 ())
        [ 1; 2; 3 ])

(* [pages_touched] must be exact, not approximate, at every crew width:
   the per-worker touched-page sets merged at cycle end must union to the
   set the serial collector computes.  To compare across widths the heap
   snapshot each cycle sees must be identical, so the single mutator only
   requests collections from quiescent points — it parks in
   [collect_and_wait] while the (1-, 2- or 3-wide) crew runs, and the
   heap is far below every automatic trigger. *)
let pages_at_width ~gc_workers =
  let kb = 1024 in
  let heap_config =
    { Heap.initial_bytes = 1024 * kb; max_bytes = 1024 * kb; card_size = 16 }
  in
  let rt =
    Runtime.create ~heap_config
      ~gc_config:(Otfgc.Gc_config.aging ~oldest_age:2 ())
      ()
  in
  Runtime.set_fine_grained rt false;
  Runtime.set_parallel rt true;
  Runtime.set_gc_workers rt gc_workers;
  let par = Parallel.create ~on_quiesce:(fun () -> Runtime.shutdown rt) () in
  Parallel.spawn par ~daemon:true ~name:"collector" (fun () ->
      Runtime.collector_loop rt);
  for wid = 1 to gc_workers - 1 do
    Parallel.spawn par ~daemon:true ~name:(Printf.sprintf "gc-worker-%d" wid)
      (fun () -> Runtime.gc_worker_loop rt wid)
  done;
  let m = Runtime.new_mutator rt ~name:"pages" () in
  let pages = ref (-1, -1) in
  Parallel.spawn par ~name:"pages" (fun () ->
      (* deterministic structure: a 200-node list hanging off one root *)
      let root = Runtime.alloc rt m ~size:64 ~n_slots:4 in
      Mutator.set_reg m 0 root;
      let prev = ref root in
      for _ = 2 to 200 do
        let o = Runtime.alloc rt m ~size:48 ~n_slots:4 in
        Mutator.set_reg m 1 o;
        Runtime.store rt m ~x:o ~i:0 ~y:!prev;
        prev := o
      done;
      Runtime.store rt m ~x:root ~i:1 ~y:!prev;
      Mutator.clear_reg m 1;
      (* full cycle ages/promotes the structure *)
      let c1 = Runtime.collect_and_wait rt m ~full:true in
      ignore (Runtime.collect_and_wait rt m ~full:true : Gc_stats.cycle);
      (* young allocs plus old->young stores to dirty some cards *)
      let o = ref root in
      for i = 1 to 50 do
        let y = Runtime.alloc rt m ~size:32 ~n_slots:0 in
        Mutator.set_reg m 1 y;
        Runtime.store rt m ~x:!o ~i:2 ~y;
        Mutator.clear_reg m 1;
        if i mod 2 = 0 then begin
          let next = Runtime.load rt m ~x:!o ~i:0 in
          o := (if next = Heap.nil then root else next)
        end
      done;
      let c2 = Runtime.collect_and_wait rt m ~full:false in
      pages :=
        (c1.Gc_stats.pages_touched, c2.Gc_stats.pages_touched);
      Runtime.retire_mutator rt m);
  Parallel.run par;
  Substrate.set_current Substrate.Sim;
  !pages

let test_pages_exact_across_widths () =
  let f1, p1 = pages_at_width ~gc_workers:1 in
  Alcotest.(check bool) "serial cycles touched pages" true (f1 > 0 && p1 > 0);
  List.iter
    (fun w ->
      let fw, pw = pages_at_width ~gc_workers:w in
      Alcotest.(check int)
        (Printf.sprintf "full-cycle pages identical at width %d" w)
        f1 fw;
      Alcotest.(check int)
        (Printf.sprintf "partial-cycle pages identical at width %d" w)
        p1 pw)
    [ 2; 3 ]

let suites =
  [
    ( "parallel.cross-check",
      grid
      @ [
          Alcotest.test_case "jitter stress at handshake points" `Slow
            stress_jitter;
          Alcotest.test_case "pages_touched exact across crew widths" `Slow
            test_pages_exact_across_widths;
        ] );
  ]
