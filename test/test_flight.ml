(* Flight recorder (DESIGN.md §12): ring mechanics with synthetic
   timestamps, the merged drain's ordering guarantee, and an end-to-end
   domains run whose drained rings must export to a valid multi-track
   Perfetto trace.  Plus the percentile and of_json edge cases the SLO
   report leans on. *)

module Fr = Otfgc.Flight_recorder
module Runtime = Otfgc.Runtime
module Histogram = Otfgc_support.Histogram
module Json = Otfgc_support.Json
module Telemetry_report = Otfgc_metrics.Telemetry
module Trace_export = Otfgc_metrics.Trace_export
module Driver = Otfgc_workloads.Driver
module Profile = Otfgc_workloads.Profile
module Substrate = Otfgc_sched.Substrate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ring mechanics (synthetic timestamps — no clock, no domains)        *)
(* ------------------------------------------------------------------ *)

let test_disarmed_is_inert () =
  let fr = Fr.create () in
  check "not armed" false (Fr.armed fr);
  check "no collector ring" true (Fr.collector_ring fr = None);
  check "no fresh ring" true (Fr.new_ring fr ~track:"x" ~tid:5 = None);
  check_int "no events" 0 (List.length (Fr.events fr));
  check_int "no drops" 0 (Fr.dropped fr)

let test_ring_records_and_drops () =
  let cap = 16 (* the smallest capacity [create] grants *) in
  let fr = Fr.create ~capacity:cap () in
  Fr.arm fr;
  check "armed" true (Fr.armed fr);
  let r = Option.get (Fr.collector_ring fr) in
  (* fill exactly to capacity: nothing dropped, everything drained *)
  for i = 0 to cap - 1 do
    Fr.span r Fr.Phase ~a:i ~t0:(i * 10) ~t1:((i * 10) + 5)
  done;
  check_int "full ring, no drops" 0 (Fr.dropped fr);
  check_int "full ring drains all" cap (List.length (Fr.events fr));
  (* overflow by 3: oldest overwritten, loss counted *)
  for i = cap to cap + 2 do
    Fr.span r Fr.Phase ~a:i ~t0:(i * 10) ~t1:((i * 10) + 5)
  done;
  check_int "overflow counted" 3 (Fr.dropped fr);
  let evs = Fr.events fr in
  check_int "ring still bounded" cap (List.length evs);
  (* survivors are the newest [cap] events: payloads 3..10 *)
  let payloads = List.sort compare (List.map (fun e -> e.Fr.a) evs) in
  check "oldest overwritten" true
    (payloads = List.init cap (fun i -> i + 3))

let test_merged_events_monotone () =
  let fr = Fr.create ~capacity:64 () in
  Fr.arm fr;
  let a = Option.get (Fr.new_ring fr ~track:"dom-a" ~tid:1) in
  let b = Option.get (Fr.new_ring fr ~track:"dom-b" ~tid:2) in
  (* interleave out of phase: a gets even starts, b odd, written in a
     shuffled order per ring — the drain must still come out sorted *)
  List.iter (fun t -> Fr.span a Fr.Steal ~a:1 ~t0:t ~t1:(t + 1))
    [ 40; 0; 20; 60 ];
  List.iter (fun t -> Fr.instant b Fr.Ack ~a:0 ~at:t) [ 50; 10; 30 ];
  let evs = Fr.events fr in
  check_int "all events drained" 7 (List.length evs);
  let rec monotone = function
    | e1 :: (e2 :: _ as rest) ->
        e1.Fr.t0_ns <= e2.Fr.t0_ns && monotone rest
    | _ -> true
  in
  check "merged stream monotone in t0_ns" true (monotone evs);
  check_int "tracks registered" 4 (List.length (Fr.tracks fr))

let test_span_duration_clamped () =
  let fr = Fr.create () in
  Fr.arm fr;
  let r = Option.get (Fr.collector_ring fr) in
  (* a clock hiccup (t1 < t0) must not produce a negative duration *)
  Fr.span r Fr.Idle ~a:0 ~t0:100 ~t1:40;
  match Fr.events fr with
  | [ e ] -> check "duration clamped to zero" true (e.Fr.dur_ns = 0)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* End-to-end: domains run -> drained rings -> valid Perfetto trace    *)
(* ------------------------------------------------------------------ *)

let test_domains_trace_multi_track () =
  let _result, rt =
    Driver.run_rt ~seed:42 ~scale:0.02 ~substrate:Substrate.Domains
      ~threads:2 ~gc_workers:2
      ~instrument:(fun rt -> Runtime.arm_recorder rt)
      ~gc:(Otfgc.Gc_config.generational ())
      Profile.anagram
  in
  let fr = Runtime.recorder rt in
  check "recorder armed" true (Fr.armed fr);
  let evs = Fr.events fr in
  check "recorded something" true (evs <> []);
  let tids = List.sort_uniq compare (List.map (fun e -> e.Fr.tid) evs) in
  check "at least 3 distinct tracks" true (List.length tids >= 3);
  check "collector track present" true (List.mem Fr.collector_tid tids);
  check "a worker track present" true (List.mem (Fr.worker_tid 1) tids);
  let doc = Trace_export.of_flight ~workload:"anagram" fr in
  (match Trace_export.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "flight trace invalid: %s" msg);
  (* the export must survive a serialisation round trip too *)
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "flight trace not parseable: %s" msg
  | Ok doc' -> (
      match Trace_export.validate doc' with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "reparsed flight trace invalid: %s" msg)

(* ------------------------------------------------------------------ *)
(* SLO report edge cases                                               *)
(* ------------------------------------------------------------------ *)

let test_percentile_edges () =
  let h = Histogram.create () in
  check_int "empty p50" 0 (Histogram.percentile h 50.);
  check_int "empty p99.9" 0 (Histogram.percentile h 99.9);
  Histogram.record h 37;
  (* a single sample is every percentile *)
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "single-sample p%g" p)
        37 (Histogram.percentile h p))
    [ 0.; 50.; 99.; 99.9; 100. ];
  check_int "single-sample count" 1 (Histogram.count h)

let test_of_json_rejects_malformed () =
  check "empty object rejected" true
    (Result.is_error (Telemetry_report.of_json (Json.Obj [])));
  check "wrong top-level type rejected" true
    (Result.is_error (Telemetry_report.of_json (Json.List [])));
  check "truncated document rejected" true
    (Result.is_error (Json.of_string {|{"workload": "x", "mode"|}));
  (* a syntactically valid summary with one histogram field mistyped *)
  let rt = Runtime.create () in
  let good = Telemetry_report.to_json (Telemetry_report.of_runtime rt) in
  let corrupted =
    match good with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "slo_handshake" then (k, Json.String "oops") else (k, v))
             fields)
    | _ -> Alcotest.fail "summary did not serialise to an object"
  in
  check "mistyped histogram field rejected" true
    (Result.is_error (Telemetry_report.of_json corrupted))

let suites =
  [
    ( "flight.recorder",
      [
        Alcotest.test_case "disarmed recorder is inert" `Quick
          test_disarmed_is_inert;
        Alcotest.test_case "ring records and counts drops" `Quick
          test_ring_records_and_drops;
        Alcotest.test_case "merged drain is monotone" `Quick
          test_merged_events_monotone;
        Alcotest.test_case "span duration clamped" `Quick
          test_span_duration_clamped;
        Alcotest.test_case "domains run exports a valid multi-track trace"
          `Slow test_domains_trace_multi_track;
      ] );
    ( "flight.slo",
      [
        Alcotest.test_case "percentile edge cases" `Quick
          test_percentile_edges;
        Alcotest.test_case "of_json rejects malformed input" `Quick
          test_of_json_rejects_malformed;
      ] );
  ]
