(* Differential testing across collectors, plus full-collection semantics
   that only the aging variant has.

   The same deterministic mutator program must leave exactly the same live
   object graph under all three collectors: addresses may differ (cycles
   interleave allocation differently), but the reachable object count and
   reachable byte volume are functions of the program alone. *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Age_table = Otfgc_heap.Age_table
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kb = 1024

(* Address-independent random program: all decisions depend only on the
   RNG and on register shapes, which are identical across collectors. *)
let program_op rng rt m =
  let reg () = Rng.int rng 8 in
  match Rng.int rng 100 with
  | n when n < 40 ->
      let n_slots = Rng.int_in rng 0 3 in
      let size = 16 + (8 * n_slots) + (16 * Rng.int rng 3) in
      let a = Runtime.alloc rt m ~size ~n_slots in
      Mutator.set_reg m (reg ()) a
  | n when n < 70 ->
      let x = Mutator.get_reg m (reg ()) in
      if x <> Heap.nil && Heap.n_slots (Runtime.heap rt) x > 0 then
        Runtime.store rt m ~x
          ~i:(Rng.int rng (Heap.n_slots (Runtime.heap rt) x))
          ~y:(Mutator.get_reg m (reg ()))
  | n when n < 85 ->
      let x = Mutator.get_reg m (reg ()) in
      if x <> Heap.nil && Heap.n_slots (Runtime.heap rt) x > 0 then begin
        let v =
          Runtime.load rt m ~x ~i:(Rng.int rng (Heap.n_slots (Runtime.heap rt) x))
        in
        Mutator.set_reg m (reg ()) v
      end
  | n when n < 95 -> Mutator.clear_reg m (reg ())
  | _ -> Runtime.work rt m 3

(* Run the program to quiescence under [gc]; return (live objects, live
   bytes) after two quiescent full collections. *)
let run_to_quiescence ~gc ~seed =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 8 * kb; max_bytes = 32 * kb; card_size = 16 }
      ~gc_config:gc ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make (seed + 9000))) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  let result = ref (0, 0) in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let rng = Rng.make seed in
         for _ = 1 to 700 do
           program_op rng rt m
         done;
         ignore (Runtime.collect_and_wait rt m ~full:true);
         ignore (Runtime.collect_and_wait rt m ~full:true);
         (* capture while this mutator's roots are still live *)
         let heap = Runtime.heap rt in
         let objects = Heap.object_count heap in
         check "quiescent heap is fully collected" true
           (objects = Oracle.live_count (Runtime.state rt));
         result := (objects, Heap.allocated_bytes heap);
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:80_000_000 sched;
  !result

let test_collectors_agree () =
  for seed = 0 to 7 do
    let gen = run_to_quiescence ~gc:(Gc_config.generational ~young_bytes:(2 * kb) ()) ~seed in
    let nongen = run_to_quiescence ~gc:Gc_config.non_generational ~seed in
    let aging =
      run_to_quiescence ~gc:(Gc_config.aging ~young_bytes:(2 * kb) ~oldest_age:3 ()) ~seed
    in
    if not (gen = nongen && nongen = aging) then
      Alcotest.failf
        "collectors disagree on seed %d: gen=(%d,%d) nongen=(%d,%d) aging=(%d,%d)"
        seed (fst gen) (snd gen) (fst nongen) (snd nongen) (fst aging) (snd aging)
  done

(* ------------------------------------------------------------------ *)
(* Aging-specific full-collection semantics (Section 6)                *)
(* ------------------------------------------------------------------ *)

let with_aging_runtime body =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 64 * kb; card_size = 16 }
      ~gc_config:(Gc_config.aging ~oldest_age:2 ())
      ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 31)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         body rt m;
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:50_000_000 sched

let test_aging_full_preserves_dirty_bits () =
  (* Section 6: InitFullCollection does not clear the dirty bits — they
     still flag inter-generational pointers for later partials. *)
  with_aging_runtime (fun rt m ->
      let heap = Runtime.heap rt in
      let o = Runtime.alloc rt m ~size:32 ~n_slots:1 in
      Mutator.set_reg m 0 o;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      (* o is old now (threshold 2); store a young pointer: card dirty *)
      let y = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      Runtime.store rt m ~x:o ~i:0 ~y;
      let cards = Heap.cards heap in
      let c = Card_table.card_of_addr cards o in
      check "dirty before full" true (Card_table.is_dirty cards c);
      ignore (Runtime.collect_and_wait rt m ~full:true);
      check "still dirty after aging full" true (Card_table.is_dirty cards c);
      (* and the young target survived the full via the root-reachable o *)
      check "young target alive" true (Heap.is_object heap y))

let test_simple_full_clears_dirty_bits () =
  (* The simple algorithm's InitFullCollection clears every card mark. *)
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * kb; max_bytes = 64 * kb; card_size = 16 }
      ~gc_config:(Gc_config.generational ())
      ()
  in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 32)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"m" () in
  ignore
    (Sched.spawn sched ~name:"m" (fun () ->
         let heap = Runtime.heap rt in
         let o = Runtime.alloc rt m ~size:32 ~n_slots:1 in
         Mutator.set_reg m 0 o;
         ignore (Runtime.collect_and_wait rt m ~full:false);
         let y = Runtime.alloc rt m ~size:32 ~n_slots:0 in
         Runtime.store rt m ~x:o ~i:0 ~y;
         let cards = Heap.cards heap in
         let c = Card_table.card_of_addr cards o in
         check "dirty before full" true (Card_table.is_dirty cards c);
         ignore (Runtime.collect_and_wait rt m ~full:true);
         check "cleared by simple full" false (Card_table.is_dirty cards c);
         check "young target alive (traced by full)" true (Heap.is_object heap y);
         Runtime.retire_mutator rt m));
  Sched.run ~max_steps:50_000_000 sched

let test_aging_full_keeps_old_objects_old () =
  (* Old objects stay old through a full collection: they are retraced and
     the sweep leaves them black with their age intact. *)
  with_aging_runtime (fun rt m ->
      let heap = Runtime.heap rt in
      let o = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      Mutator.set_reg m 0 o;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "tenured" true (Color.equal (Heap.color heap o) Color.Black);
      let age_before = Age_table.get (Heap.ages heap) o in
      ignore (Runtime.collect_and_wait rt m ~full:true);
      check "still black after full" true
        (Color.equal (Heap.color heap o) Color.Black);
      check_int "age preserved" age_before (Age_table.get (Heap.ages heap) o))

let test_aging_threshold_one_promotes_like_simple () =
  (* oldest_age = 2 in the paper's convention = promote after surviving
     one collection, the simple policy. *)
  with_aging_runtime (fun rt m ->
      let heap = Runtime.heap rt in
      let a = Runtime.alloc rt m ~size:32 ~n_slots:0 in
      Mutator.set_reg m 0 a;
      ignore (Runtime.collect_and_wait rt m ~full:false);
      check "promoted after one survival" true
        (Color.equal (Heap.color heap a) Color.Black))

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case "collectors agree on live graphs" `Slow
          test_collectors_agree;
      ] );
    ( "aging.full",
      [
        Alcotest.test_case "dirty bits preserved" `Quick
          test_aging_full_preserves_dirty_bits;
        Alcotest.test_case "simple full clears cards" `Quick
          test_simple_full_clears_dirty_bits;
        Alcotest.test_case "old stays old" `Quick
          test_aging_full_keeps_old_objects_old;
        Alcotest.test_case "threshold 2 = simple" `Quick
          test_aging_threshold_one_promotes_like_simple;
      ] );
  ]
