(* Tests for the heap observatory: the census time series and its
   support structures (Timeseries, Svg), the out-of-band guarantee
   (arming the sampler leaves every simulated figure bit-identical),
   the census accounting invariants (per-color bytes partition the
   heap; generations partition the allocated bytes), the HTML/SVG
   report emitter and its structural validator, and the cross-run
   trajectory store with its regression gate — including the committed
   BENCH_*.json baseline that arms the CI gate. *)

open Otfgc
module Timeseries = Otfgc_support.Timeseries
module Svg = Otfgc_support.Svg
module Json = Otfgc_support.Json
module Heap = Otfgc_heap.Heap
module Profile = Otfgc_workloads.Profile
module Driver = Otfgc_workloads.Driver
module Report = Otfgc_metrics.Report
module Trajectory = Otfgc_metrics.Trajectory
module R = Otfgc_metrics.Run_result

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let test_timeseries_basics () =
  let ts = Timeseries.create ~columns:[| "a"; "b"; "c" |] in
  check_int "no rows" 0 (Timeseries.length ts);
  check_int "three columns" 3 (Timeseries.n_columns ts);
  check "col_index" true (Timeseries.col_index ts "b" = Some 1);
  check "unknown column" true (Timeseries.col_index ts "z" = None);
  Timeseries.set ts 0 10;
  Timeseries.set ts 2 30;
  Timeseries.commit ts;
  (* staged values persist across commits unless overwritten *)
  Timeseries.set ts 1 99;
  Timeseries.commit ts;
  check_int "two rows" 2 (Timeseries.length ts);
  check_int "a0" 10 (Timeseries.get ts ~col:0 ~row:0);
  check_int "b0 defaulted" 0 (Timeseries.get ts ~col:1 ~row:0);
  check_int "c0" 30 (Timeseries.get ts ~col:2 ~row:0);
  check_int "a1 retained" 10 (Timeseries.get ts ~col:0 ~row:1);
  check_int "b1" 99 (Timeseries.get ts ~col:1 ~row:1);
  Timeseries.clear ts;
  check_int "cleared" 0 (Timeseries.length ts);
  Timeseries.commit ts;
  check_int "staged row zeroed by clear" 0 (Timeseries.get ts ~col:0 ~row:0)

let test_timeseries_growth () =
  let ts = Timeseries.create ~columns:[| "x" |] in
  for i = 1 to 1000 do
    Timeseries.set ts 0 i;
    Timeseries.commit ts
  done;
  check_int "all rows kept across doublings" 1000 (Timeseries.length ts);
  check_int "first" 1 (Timeseries.get ts ~col:0 ~row:0);
  check_int "last" 1000 (Timeseries.get ts ~col:0 ~row:999)

let test_timeseries_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "empty columns rejected" true
    (raises (fun () -> Timeseries.create ~columns:[||]));
  check "duplicate columns rejected" true
    (raises (fun () -> Timeseries.create ~columns:[| "a"; "a" |]));
  let ts = Timeseries.create ~columns:[| "a" |] in
  check "set out of range" true (raises (fun () -> Timeseries.set ts 1 0));
  check "get out of range" true
    (raises (fun () -> Timeseries.get ts ~col:0 ~row:0))

let test_timeseries_export () =
  let ts = Timeseries.create ~columns:[| "t"; "v" |] in
  Timeseries.set ts 0 1;
  Timeseries.set ts 1 5;
  Timeseries.commit ts;
  Timeseries.set ts 0 2;
  Timeseries.set ts 1 7;
  Timeseries.commit ts;
  check_str "csv" "t,v\n1,5\n2,7\n" (Timeseries.to_csv ts);
  let j = Timeseries.to_json ts in
  check "json length" true (Option.bind (Json.member "length" j) Json.as_int = Some 2);
  (match Option.bind (Json.member "series" j) (Json.member "v") with
  | Some (Json.List [ Json.Int 5; Json.Int 7 ]) -> ()
  | _ -> Alcotest.fail "json series.v should be [5, 7]")

(* ------------------------------------------------------------------ *)
(* Svg emitter                                                         *)
(* ------------------------------------------------------------------ *)

let test_svg_escaping () =
  let s =
    Svg.to_string
      (Svg.text ~x:1. ~y:2. ~attrs:[ ("data-x", "a<b&\"c\"") ] "x < y & z")
  in
  check "text escaped" true (contains s "x &lt; y &amp; z");
  check "attr escaped" true (contains s "a&lt;b&amp;&quot;c&quot;");
  check "no raw ampersand-quote" false (contains s "&\"")

let test_svg_shapes () =
  let s = Svg.to_string (Svg.rect ~x:0. ~y:0. ~w:10. ~h:5. ~cls:"box" ()) in
  check "self-closing" true (contains s "/>");
  check "class attr" true (contains s "class=\"box\"");
  let p =
    Svg.to_string (Svg.polyline ~points:[ (1.0, 2.5); (3.25, 4.0) ] ())
  in
  check "coords trimmed" true (contains p "points=\"1,2.5 3.25,4\"");
  check "coord formatting" true (Svg.fmt_coord 12.50 = "12.5" && Svg.fmt_coord 3.0 = "3");
  check "non-finite rejected" true
    (try ignore (Svg.fmt_coord Float.nan); false
     with Invalid_argument _ -> true);
  let root = Svg.to_string (Svg.svg ~w:10 ~h:20 []) in
  check "root has xmlns" true (contains root "xmlns=");
  check "root has viewBox" true (contains root "viewBox=\"0 0 10 20\"")

(* ------------------------------------------------------------------ *)
(* Census sampling                                                     *)
(* ------------------------------------------------------------------ *)

let default_gc = Gc_config.generational ~young_bytes:(512 * 1024) ()

let sampled_run ?(gc = default_gc) ?(card = 16) ?(seed = 42) ?(scale = 0.01)
    ?(events = false) ~every profile =
  Driver.run_rt
    ~heap:{ Driver.default_heap with Heap.card_size = card }
    ~seed ~scale
    ~instrument:(fun rt ->
      if events then Event_log.set_enabled (Runtime.events rt) true;
      Sampler.configure (Runtime.sampler rt) ~every)
    ~gc profile

(* the five color columns partition the heap capacity; the two
   generation columns partition the allocated bytes *)
let check_census_sums series =
  let get c r = Timeseries.get series ~col:c ~row:r in
  let bad = ref 0 in
  for r = 0 to Timeseries.length series - 1 do
    let colors =
      get Sampler.i_blue_bytes r + get Sampler.i_c0_bytes r
      + get Sampler.i_c1_bytes r + get Sampler.i_gray_bytes r
      + get Sampler.i_black_bytes r
    in
    let gens = get Sampler.i_young_bytes r + get Sampler.i_old_bytes r in
    if colors <> get Sampler.i_capacity r then incr bad;
    if gens <> get Sampler.i_allocated_bytes r then incr bad
  done;
  !bad

let test_census_partitions_heap () =
  let _, rt = sampled_run ~every:2_000 Profile.anagram in
  let series = Sampler.series (Runtime.sampler rt) in
  Observatory.sample_now (Runtime.state rt);
  check "several samples" true (Timeseries.length series > 3);
  check_int "every row partitions capacity and allocation" 0
    (check_census_sums series)

let prop_census_sums =
  QCheck.Test.make ~name:"census partitions hold for any seed and mode"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let gc =
        match seed mod 4 with
        | 0 -> default_gc
        | 1 -> { Gc_config.non_generational with Gc_config.young_bytes = 512 * 1024 }
        | 2 -> Gc_config.aging ~young_bytes:(512 * 1024) ~oldest_age:2 ()
        | _ -> Gc_config.adaptive ~young_bytes:(512 * 1024) ()
      in
      let _, rt = sampled_run ~gc ~seed ~every:1_500 Profile.anagram in
      Observatory.sample_now (Runtime.state rt);
      let series = Sampler.series (Runtime.sampler rt) in
      if Timeseries.length series = 0 then
        QCheck.Test.fail_report "no samples taken";
      check_census_sums series = 0)

(* Arming the sampler (census heap walks + reachability oracle per
   row) must leave the simulation bit-identical: same grid as the
   harness digest guard, Marshal digests compared between a plain and
   a sampled run of each configuration. *)
let grid =
  let young = 512 * 1024 in
  [
    (Profile.jack, Gc_config.generational ~young_bytes:young (), 16);
    ( Profile.jack,
      { Gc_config.non_generational with Gc_config.young_bytes = young },
      16 );
    (Profile.jack, Gc_config.aging ~young_bytes:young ~oldest_age:2 (), 16);
    (Profile.jack, Gc_config.adaptive ~young_bytes:young (), 16);
    (Profile.jack, Gc_config.generational ~young_bytes:(256 * 1024) (), 16);
    (Profile.anagram, Gc_config.generational ~young_bytes:young (), 16);
    ( Profile.anagram,
      { Gc_config.non_generational with Gc_config.young_bytes = young },
      16 );
    (Profile.anagram, Gc_config.generational ~young_bytes:young (), 64);
  ]

let test_sampling_is_out_of_band () =
  List.iteri
    (fun i (profile, gc, card) ->
      let heap = { Driver.default_heap with Heap.card_size = card } in
      let plain = Driver.run ~heap ~seed:42 ~scale:0.05 ~gc profile in
      let sampled, rt =
        sampled_run ~gc ~card ~scale:0.05 ~every:7_777 profile
      in
      check
        (Printf.sprintf "config %d sampled at least once" i)
        true
        (Timeseries.length (Sampler.series (Runtime.sampler rt)) > 0);
      check_str
        (Printf.sprintf "config %d digest unchanged by sampling" i)
        (Digest.to_hex (Digest.string (Marshal.to_string plain [])))
        (Digest.to_hex (Digest.string (Marshal.to_string sampled []))))
    grid

(* ------------------------------------------------------------------ *)
(* Report emitter and validator                                        *)
(* ------------------------------------------------------------------ *)

let render_report () =
  let _, rt = sampled_run ~scale:0.02 ~events:true ~every:5_000 Profile.jack in
  Observatory.sample_now (Runtime.state rt);
  match Report.of_runtime ~workload:"jack" rt with
  | Ok html -> html
  | Error e -> Alcotest.failf "report render failed: %s" e

let test_report_renders_and_validates () =
  let html = render_report () in
  check "validator accepts" true (Report.validate html = Ok ());
  List.iter
    (fun needle ->
      check (needle ^ " present") true (contains html needle))
    [ "<svg"; "ribbon-blue"; "ribbon-black"; "promotion"; "strip-cycle"; "jack" ]

let test_report_needs_samples () =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 16 * 1024; max_bytes = 64 * 1024; card_size = 16 }
      ~gc_config:default_gc ()
  in
  match Report.of_runtime rt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "report from an unsampled runtime should refuse"

let test_report_validator_rejects () =
  let html = render_report () in
  let rejects what doc =
    match Report.validate doc with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "validator accepted %s" what
  in
  rejects "empty document" "";
  rejects "missing doctype" "<html><body>hi</body></html>";
  rejects "truncated document" (String.sub html 0 (String.length html / 2));
  let inject needle extra =
    match String.index_opt html '<' with
    | None -> Alcotest.fail "no tags?"
    | Some _ ->
        let i = String.length html - String.length needle in
        let rec find j =
          if j < 0 then Alcotest.failf "%s not found" needle
          else if String.sub html j (String.length needle) = needle then j
          else find (j - 1)
        in
        let j = find i in
        String.sub html 0 j ^ extra ^ String.sub html j (String.length html - j)
  in
  rejects "script element" (inject "</body>" "<script>alert(1)</script>");
  rejects "external image" (inject "</body>" "<img src=\"http://x/y.png\"/>");
  rejects "unbalanced tag" (inject "</body>" "<g>");
  rejects "non-finite points"
    (inject "</body>" "<svg><polyline points=\"1,nan 2,3\"/></svg>")

(* ------------------------------------------------------------------ *)
(* Trajectory store and regression gate                                *)
(* ------------------------------------------------------------------ *)

let mk_scenario name v =
  {
    Trajectory.name;
    wall_ms = 12.5;
    metrics = List.map (fun m -> (m, v)) Trajectory.gated_metrics;
  }

let test_trajectory_roundtrip () =
  let t =
    Trajectory.make ~scale:0.2 ~seed:42 ~quick:false
      [ mk_scenario "a" 100.; mk_scenario "b" 250. ]
  in
  match Trajectory.of_json (Trajectory.to_json t) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok t' -> check "roundtrip preserves the record" true (compare t t' = 0)

let test_trajectory_schema_rejections () =
  let t = Trajectory.make ~scale:0.2 ~seed:42 ~quick:false [ mk_scenario "a" 1. ] in
  let patch k v =
    match Trajectory.to_json t with
    | Json.Obj kvs -> Json.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) kvs)
    | _ -> Alcotest.fail "to_json should produce an object"
  in
  let rejected j = match Trajectory.validate j with Error _ -> true | Ok () -> false in
  check "wrong schema tag" true (rejected (patch "schema" (Json.String "nope")));
  check "future schema version" true
    (rejected (patch "schema_version" (Json.Int (Trajectory.schema_version + 1))));
  check "empty scenarios" true (rejected (patch "scenarios" (Json.List [])));
  check "current record validates" true (not (rejected (Trajectory.to_json t)))

let test_trajectory_gate_fails_on_slowdown () =
  (* a real run feeds the current side; the baseline is the same run
     with elapsed_multi deflated 20% — i.e. the current build is an
     injected 25% slowdown over what was committed *)
  let r = Driver.run ~seed:42 ~scale:0.01 ~gc:default_gc Profile.anagram in
  let cur = Trajectory.scenario_of_result ~name:"anagram-gen" ~wall_ms:1. r in
  let deflate = function
    | ("elapsed_multi", v) -> ("elapsed_multi", v *. 0.8)
    | kv -> kv
  in
  let base = { cur with Trajectory.metrics = List.map deflate cur.Trajectory.metrics } in
  let baseline = Trajectory.make ~scale:0.01 ~seed:42 ~quick:true [ base ] in
  let current = Trajectory.make ~scale:0.01 ~seed:42 ~quick:true [ cur ] in
  match Trajectory.diff ~baseline ~current () with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok regs ->
      check_int "exactly the injected regression" 1 (List.length regs);
      let reg = List.hd regs in
      check_str "regressed metric" "elapsed_multi" reg.Trajectory.r_metric;
      check "delta is ~25%" true
        (abs_float (reg.Trajectory.r_delta_pct -. 25.) < 0.5);
      let table = Trajectory.render_diff ~baseline ~current regs in
      check "verdict names the scenario" true (contains table "anagram-gen");
      check "verdict shouts" true (contains table "REGRESSION")

let test_trajectory_gate_passes_identical () =
  let r = Driver.run ~seed:42 ~scale:0.01 ~gc:default_gc Profile.anagram in
  let s = Trajectory.scenario_of_result ~name:"anagram-gen" ~wall_ms:1. r in
  let t = Trajectory.make ~scale:0.01 ~seed:42 ~quick:true [ s ] in
  (match Trajectory.diff ~baseline:t ~current:t () with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "identical records should not regress"
  | Error e -> Alcotest.failf "diff refused: %s" e);
  (* wall-clock noise must never gate *)
  let noisy =
    Trajectory.make ~scale:0.01 ~seed:42 ~quick:true
      [ { s with Trajectory.wall_ms = s.Trajectory.wall_ms *. 50. } ]
  in
  match Trajectory.diff ~baseline:t ~current:noisy () with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "wall_ms is informational, not gated"
  | Error e -> Alcotest.failf "diff refused: %s" e

let test_trajectory_incompatible_baseline () =
  let a = Trajectory.make ~scale:0.2 ~seed:42 ~quick:false [ mk_scenario "a" 1. ] in
  let b = Trajectory.make ~scale:0.1 ~seed:42 ~quick:false [ mk_scenario "a" 1. ] in
  (match Trajectory.diff ~baseline:a ~current:b () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scale mismatch must not be gated silently");
  let c = Trajectory.make ~scale:0.2 ~seed:42 ~quick:true [ mk_scenario "a" 1. ] in
  match Trajectory.diff ~baseline:a ~current:c () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "quick mismatch must not be gated silently"

(* The baseline committed at the repo root (dune runs tests from
   _build/default/test, so walk up). *)
let test_committed_baseline_validates () =
  let rec find dir =
    let candidate = Filename.concat dir "BENCH_0005.json" in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  match find (Sys.getcwd ()) with
  | None -> Alcotest.fail "BENCH_0005.json not found in any parent directory"
  | Some path -> (
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string contents with
      | Error e -> Alcotest.failf "%s: parse error %s" path e
      | Ok j -> (
          match Trajectory.of_json j with
          | Error e -> Alcotest.failf "%s: %s" path e
          | Ok t ->
              check_int "eight scenarios" 8 (List.length t.Trajectory.scenarios);
              check "quick grid (the CI gate's shape)" true t.Trajectory.quick;
              List.iter
                (fun (s : Trajectory.scenario) ->
                  List.iter
                    (fun m ->
                      check
                        (Printf.sprintf "%s has %s" s.Trajectory.name m)
                        true
                        (List.mem_assoc m s.Trajectory.metrics))
                    Trajectory.gated_metrics)
                t.Trajectory.scenarios))

let suites =
  [
    ( "observatory.timeseries",
      [
        Alcotest.test_case "basics" `Quick test_timeseries_basics;
        Alcotest.test_case "growth" `Quick test_timeseries_growth;
        Alcotest.test_case "validation" `Quick test_timeseries_validation;
        Alcotest.test_case "export" `Quick test_timeseries_export;
      ] );
    ( "observatory.svg",
      [
        Alcotest.test_case "escaping" `Quick test_svg_escaping;
        Alcotest.test_case "shapes" `Quick test_svg_shapes;
      ] );
    ( "observatory.census",
      [
        Alcotest.test_case "partitions heap and allocation" `Quick
          test_census_partitions_heap;
        QCheck_alcotest.to_alcotest prop_census_sums;
        Alcotest.test_case "sampling is out of band (8-config digests)" `Quick
          test_sampling_is_out_of_band;
      ] );
    ( "observatory.report",
      [
        Alcotest.test_case "renders and validates" `Quick
          test_report_renders_and_validates;
        Alcotest.test_case "refuses unsampled runtime" `Quick
          test_report_needs_samples;
        Alcotest.test_case "validator rejects malformed documents" `Quick
          test_report_validator_rejects;
      ] );
    ( "observatory.trajectory",
      [
        Alcotest.test_case "json roundtrip" `Quick test_trajectory_roundtrip;
        Alcotest.test_case "schema rejections" `Quick
          test_trajectory_schema_rejections;
        Alcotest.test_case "gate fails on injected slowdown" `Quick
          test_trajectory_gate_fails_on_slowdown;
        Alcotest.test_case "gate passes identical and noisy-wall runs" `Quick
          test_trajectory_gate_passes_identical;
        Alcotest.test_case "incompatible baselines refuse to gate" `Quick
          test_trajectory_incompatible_baseline;
        Alcotest.test_case "committed BENCH_0005.json validates" `Quick
          test_committed_baseline_validates;
      ] );
  ]
