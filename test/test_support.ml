(* Unit and property tests for otfgc_support: RNG determinism and
   distribution sanity, bitset semantics, statistics accumulators and table
   rendering. *)

open Otfgc_support

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.make 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
      (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.make 9 in
  let child = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 child then incr same
  done;
  check "split stream independent" true (!same < 4)

let test_rng_int_range () =
  let r = Rng.make 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.make 4 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let v = Rng.int_in r 5 8 in
    check "in inclusive range" true (v >= 5 && v <= 8);
    if v = 5 then seen_lo := true;
    if v = 8 then seen_hi := true
  done;
  check "hits low endpoint" true !seen_lo;
  check "hits high endpoint" true !seen_hi

let test_rng_int_invalid () =
  let r = Rng.make 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.make 6 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    check "float in range" true (v >= 0. && v < 2.5)
  done

let test_rng_chance_extremes () =
  let r = Rng.make 7 in
  for _ = 1 to 50 do
    check "p=0 never" false (Rng.chance r 0.);
    check "p=1 always" true (Rng.chance r 1.)
  done

let test_rng_chance_mean () =
  let r = Rng.make 8 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.chance r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check "p=0.3 within tolerance" true (p > 0.27 && p < 0.33)

let test_rng_geometric_mean () =
  let r = Rng.make 9 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Rng.geometric r 0.25
  done;
  (* mean failures before success = (1-p)/p = 3 *)
  let mean = float_of_int !total /. float_of_int n in
  check "geometric mean ~3" true (mean > 2.7 && mean < 3.3)

let test_rng_exponential_mean () =
  let r = Rng.make 10 in
  let total = ref 0. in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r 5.0
  done;
  let mean = !total /. float_of_int n in
  check "exponential mean ~5" true (mean > 4.6 && mean < 5.4)

let test_rng_pick () =
  let r = Rng.make 11 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let v = Rng.pick r [| 0; 1; 2 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> check "roughly uniform" true (c > 800 && c < 1200)) counts

let test_rng_pick_weighted () =
  let r = Rng.make 12 in
  let heavy = ref 0 and light = ref 0 in
  for _ = 1 to 10_000 do
    match Rng.pick_weighted r [| ("heavy", 9.); ("light", 1.) |] with
    | "heavy" -> incr heavy
    | _ -> incr light
  done;
  check "weights respected" true
    (float_of_int !heavy /. float_of_int (!heavy + !light) > 0.85)

let test_rng_pick_weighted_zero () =
  let r = Rng.make 13 in
  Alcotest.check_raises "zero weights rejected"
    (Invalid_argument "Rng.pick_weighted: zero total weight") (fun () ->
      ignore (Rng.pick_weighted r [| ("a", 0.) |]))

let test_rng_shuffle_permutation () =
  let r = Rng.make 14 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check "fresh empty" false (Bitset.mem s 5);
  Bitset.add s 5;
  Bitset.add s 99;
  Bitset.add s 0;
  check "mem 5" true (Bitset.mem s 5);
  check "mem 99" true (Bitset.mem s 99);
  check "mem 0" true (Bitset.mem s 0);
  check "not mem 1" false (Bitset.mem s 1);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 5;
  check "removed" false (Bitset.mem s 5);
  check_int "cardinal after remove" 2 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8)

let test_bitset_clear () =
  let s = Bitset.create 64 in
  for i = 0 to 63 do
    Bitset.add s i
  done;
  check_int "full" 64 (Bitset.cardinal s);
  Bitset.clear s;
  check_int "cleared" 0 (Bitset.cardinal s)

let test_bitset_iter_order () =
  let s = Bitset.create 50 in
  List.iter (Bitset.add s) [ 40; 3; 17; 8 ];
  Alcotest.(check (list int)) "sorted order" [ 3; 8; 17; 40 ] (Bitset.to_list s)

let test_bitset_union () =
  let a = Bitset.create 32 and b = Bitset.create 32 in
  Bitset.add a 1;
  Bitset.add b 2;
  Bitset.add b 1;
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 2 ] (Bitset.to_list a)

let test_bitset_copy_independent () =
  let a = Bitset.create 16 in
  Bitset.add a 3;
  let b = Bitset.copy a in
  Bitset.add b 4;
  check "copy has both" true (Bitset.mem b 3 && Bitset.mem b 4);
  check "original unchanged" false (Bitset.mem a 4)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:200
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.to_list s))

let prop_bitset_add_range =
  QCheck.Test.make ~name:"add_range agrees with per-element add" ~count:300
    QCheck.(pair (int_bound 99) (int_bound 100))
    (fun (lo, len) ->
      let len = min len (100 - lo) in
      let fast = Bitset.create 100 and slow = Bitset.create 100 in
      (* a little pre-existing content that must survive *)
      List.iter
        (fun i ->
          Bitset.add fast i;
          Bitset.add slow i)
        [ 0; 31; 64; 99 ];
      Bitset.add_range fast lo len;
      for i = lo to lo + len - 1 do
        Bitset.add slow i
      done;
      Bitset.to_list fast = Bitset.to_list slow)

let test_bitset_add_range_bounds () =
  let s = Bitset.create 16 in
  Bitset.add_range s 0 0;
  Bitset.add_range s 15 1;
  check_int "edges" 1 (Bitset.cardinal s);
  Alcotest.check_raises "past end" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add_range s 10 7);
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bitset.add_range: negative length") (fun () ->
      Bitset.add_range s 2 (-1))

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)
(* ------------------------------------------------------------------ *)

let test_bits_log2_exact () =
  check_int "1" 0 (Bits.log2_exact 1);
  check_int "16" 4 (Bits.log2_exact 16);
  check_int "4096" 12 (Bits.log2_exact 4096);
  check "round trip" true
    (List.for_all (fun k -> Bits.log2_exact (1 lsl k) = k)
       [ 0; 1; 5; 12; 20; 30 ]);
  List.iter
    (fun bad ->
      check "rejects non-powers" true
        (match Bits.log2_exact bad with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ 0; -16; 3; 48; 4095 ]

let test_bits_is_pow2 () =
  check "16" true (Bits.is_pow2 16);
  check "1" true (Bits.is_pow2 1);
  check "0" false (Bits.is_pow2 0);
  check "neg" false (Bits.is_pow2 (-4));
  check "48" false (Bits.is_pow2 48)

let test_bits_ctz () =
  check_int "1" 0 (Bits.ctz 1);
  check_int "2" 1 (Bits.ctz 2);
  check_int "12" 2 (Bits.ctz 12);
  check_int "min_int" 62 (Bits.ctz min_int);
  check "every single bit" true
    (List.for_all (fun k -> Bits.ctz (1 lsl k) = k) (List.init 63 Fun.id));
  check "lowest of many" true
    (List.for_all
       (fun k -> Bits.ctz ((1 lsl k) lor (1 lsl 62)) = k)
       (List.init 62 Fun.id));
  check "rejects zero" true
    (match Bits.ctz 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* QCheck round-trips for the Bits helpers: any positive n decomposes as
   (n lsr ctz n) lsl ctz n with an odd quotient, log2_exact inverts
   1 lsl k, and is_pow2 agrees with the popcount characterisation. *)
let prop_bits_ctz_roundtrip =
  QCheck.Test.make ~name:"ctz round-trips any positive int" ~count:500
    QCheck.(map (fun n -> 1 + abs n) int)
    (fun n ->
      let k = Bits.ctz n in
      let q = n lsr k in
      q land 1 = 1 && q lsl k = n)

let prop_bits_log2_roundtrip =
  QCheck.Test.make ~name:"log2_exact inverts 1 lsl k" ~count:200
    QCheck.(int_bound 61)
    (fun k ->
      let n = 1 lsl k in
      Bits.log2_exact n = k && Bits.ctz n = k && Bits.is_pow2 n
      && Bits.popcount n = 1)

let prop_bits_pow2_popcount =
  QCheck.Test.make ~name:"is_pow2 iff popcount = 1" ~count:500
    QCheck.(map abs int)
    (fun n -> Bits.is_pow2 n = (n > 0 && Bits.popcount n = 1))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = Array.init 100 Fun.id in
      let ys = Pool.map p (fun x -> x * x) xs in
      check "order preserved" true (ys = Array.init 100 (fun i -> i * i)))

let test_pool_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun p ->
      check_int "jobs" 1 (Pool.jobs p);
      let ys = Pool.map p string_of_int [| 1; 2; 3 |] in
      check "seq map" true (ys = [| "1"; "2"; "3" |]))

let test_pool_empty_batch () =
  Pool.with_pool ~jobs:2 (fun p ->
      check_int "empty" 0 (Array.length (Pool.run p [||])))

let test_pool_reusable () =
  Pool.with_pool ~jobs:3 (fun p ->
      let a = Pool.map p succ (Array.init 10 Fun.id) in
      let b = Pool.map p pred (Array.init 10 Fun.id) in
      check "first batch" true (a = Array.init 10 succ);
      check "second batch" true (b = Array.init 10 pred))

let test_pool_exception_lowest_index () =
  Pool.with_pool ~jobs:3 (fun p ->
      match
        Pool.run p
          [|
            (fun () -> 1);
            (fun () -> failwith "first");
            (fun () -> failwith "second");
          |]
      with
      | _ -> check "should raise" true false
      | exception Failure m ->
          Alcotest.(check string) "lowest-index error wins" "first" m)

let test_pool_bad_jobs () =
  check "jobs < 1 rejected" true
    (match Pool.create ~jobs:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  Alcotest.(check (float 0.0)) "mean" 0. (Stats.mean s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4. ];
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.max s);
  Alcotest.(check (float 1e-9)) "sum" 10. (Stats.sum s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.;
  Stats.add b 5.;
  Stats.add b 3.;
  let m = Stats.merge a b in
  check_int "merged count" 3 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 3. (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged min" 1. (Stats.min m);
  Alcotest.(check (float 1e-9)) "merged max" 5. (Stats.max m)

let test_improvement_pct () =
  Alcotest.(check (float 1e-9)) "25% better" 25.
    (Stats.improvement_pct ~baseline:100. ~candidate:75.);
  Alcotest.(check (float 1e-9)) "4% worse" (-4.)
    (Stats.improvement_pct ~baseline:100. ~candidate:104.);
  Alcotest.(check (float 1e-9)) "zero baseline" 0.
    (Stats.improvement_pct ~baseline:0. ~candidate:10.)

let test_pct () =
  Alcotest.(check (float 1e-9)) "pct" 36.2 (Stats.pct 36.2 100.);
  Alcotest.(check (float 1e-9)) "pct zero whole" 0. (Stats.pct 5. 0.)

(* ------------------------------------------------------------------ *)
(* Textable                                                            *)
(* ------------------------------------------------------------------ *)

let test_textable_render () =
  let t = Textable.create ~title:"Demo" [ "Benchmark"; "Value" ] in
  Textable.add_row t [ "anagram"; "25.0" ];
  Textable.add_row t [ "jess" ];
  let s = Textable.render t in
  check "has title" true (String.length s > 0 && String.sub s 0 4 = "Demo");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "anagram present" true (contains s "anagram");
  check "padded row" true (contains s "jess")

let test_textable_too_many_cells () =
  let t = Textable.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Textable.add_row: too many cells") (fun () ->
      Textable.add_row t [ "1"; "2" ])

let test_textable_formats () =
  Alcotest.(check string) "pct" "-3.7" (Textable.fmt_pct (-3.7));
  Alcotest.(check string) "f2" "36.20" (Textable.fmt_f2 36.2);
  Alcotest.(check string) "int" "281" (Textable.fmt_int 280.7);
  Alcotest.(check string) "na" "N/A" Textable.na

let suites =
  [
    ( "support.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        Alcotest.test_case "chance mean" `Quick test_rng_chance_mean;
        Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "pick uniform" `Quick test_rng_pick;
        Alcotest.test_case "pick weighted" `Quick test_rng_pick_weighted;
        Alcotest.test_case "pick weighted zero" `Quick test_rng_pick_weighted_zero;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
      ] );
    ( "support.bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "clear" `Quick test_bitset_clear;
        Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
        Alcotest.test_case "union" `Quick test_bitset_union;
        Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
        QCheck_alcotest.to_alcotest prop_bitset_model;
        Alcotest.test_case "add_range bounds" `Quick test_bitset_add_range_bounds;
        QCheck_alcotest.to_alcotest prop_bitset_add_range;
      ] );
    ( "support.bits",
      [
        Alcotest.test_case "log2_exact" `Quick test_bits_log2_exact;
        Alcotest.test_case "is_pow2" `Quick test_bits_is_pow2;
        Alcotest.test_case "ctz" `Quick test_bits_ctz;
        QCheck_alcotest.to_alcotest prop_bits_ctz_roundtrip;
        QCheck_alcotest.to_alcotest prop_bits_log2_roundtrip;
        QCheck_alcotest.to_alcotest prop_bits_pow2_popcount;
      ] );
    ( "support.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_map_preserves_order;
        Alcotest.test_case "sequential fallback" `Quick test_pool_sequential_fallback;
        Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
        Alcotest.test_case "reusable" `Quick test_pool_reusable;
        Alcotest.test_case "exception lowest index" `Quick
          test_pool_exception_lowest_index;
        Alcotest.test_case "bad jobs" `Quick test_pool_bad_jobs;
      ] );
    ( "support.stats",
      [
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "improvement pct" `Quick test_improvement_pct;
        Alcotest.test_case "pct" `Quick test_pct;
      ] );
    ( "support.textable",
      [
        Alcotest.test_case "render" `Quick test_textable_render;
        Alcotest.test_case "too many cells" `Quick test_textable_too_many_cells;
        Alcotest.test_case "formats" `Quick test_textable_formats;
      ] );
  ]
