(* Tests for the workload layer (profiles, engine, driver), the metrics
   summaries and the experiment registry. *)

open Otfgc
open Otfgc_workloads
module R = Otfgc_metrics.Run_result
module Lab = Otfgc_experiments.Lab
module Registry = Otfgc_experiments.Registry
module Sweeps = Otfgc_experiments.Sweeps

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)
(* ------------------------------------------------------------------ *)

let test_profiles_validate () =
  List.iter Profile.validate Profile.all;
  Profile.validate (Profile.raytracer ~threads:10)

let test_profiles_find () =
  check "find anagram" true (Profile.find "anagram" <> None);
  check "find nonsense" true (Profile.find "nonsense" = None);
  check_int "seven fixed profiles" 7 (List.length Profile.all);
  check_int "six SPECjvm profiles" 6 (List.length Profile.spec_benchmarks)

let test_profile_lifetime_mix_sums_to_one () =
  List.iter
    (fun p ->
      let sum = p.Profile.p_immediate +. p.Profile.p_ring +. p.Profile.p_long in
      check (p.Profile.name ^ " mix") true (abs_float (sum -. 1.0) < 1e-6))
    Profile.all

let test_raytracer_bad_threads () =
  check "threads >= 1 enforced" true
    (match Profile.raytracer ~threads:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_invalid_profile_rejected () =
  let bad = { Profile.mtrt with Profile.p_immediate = 0.9; p_ring = 0.9 } in
  check "bad mix rejected" true
    (match Profile.validate bad with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let tiny_scale = 0.03

let test_driver_runs_every_profile () =
  List.iter
    (fun p ->
      let r = Driver.run ~scale:tiny_scale ~gc:(Gc_config.generational ()) p in
      check (p.Profile.name ^ " allocated") true (r.R.total_alloc_objects > 0);
      check (p.Profile.name ^ " no nongen cycles") true (r.R.n_non_gen = 0);
      check
        (p.Profile.name ^ " freed pct in range")
        true
        (r.R.pct_objects_freed_partial >= 0.
        && r.R.pct_objects_freed_partial <= 100.);
      check (p.Profile.name ^ " work accounted") true (r.R.mutator_work > 0))
    Profile.all

let test_driver_nongen_mode () =
  let r =
    Driver.run ~scale:tiny_scale ~gc:Gc_config.non_generational Profile.jess
  in
  check_int "no partials" 0 r.R.n_partial;
  check_int "no fulls" 0 r.R.n_full;
  Alcotest.(check string) "mode name" "non-generational" r.R.mode

let test_driver_deterministic () =
  let run () =
    Driver.run ~seed:5 ~scale:tiny_scale ~gc:(Gc_config.generational ())
      Profile.jack
  in
  let a = run () and b = run () in
  check "identical elapsed" true (a.R.elapsed_multi = b.R.elapsed_multi);
  check "identical cycles" true
    (a.R.n_partial = b.R.n_partial && a.R.n_full = b.R.n_full);
  check "identical allocation" true
    (a.R.total_alloc_bytes = b.R.total_alloc_bytes)

let test_driver_seed_changes_schedule () =
  let r s =
    Driver.run ~seed:s ~scale:tiny_scale ~gc:(Gc_config.generational ())
      Profile.jack
  in
  (* different interleavings make at least the cost ledger differ *)
  check "different seeds differ" true
    ((r 1).R.elapsed_multi <> (r 2).R.elapsed_multi)

let test_driver_run_pair () =
  let cand, base =
    Driver.run_pair ~scale:tiny_scale ~gc:(Gc_config.generational ())
      Profile.anagram
  in
  Alcotest.(check string) "candidate mode" "generational" cand.R.mode;
  Alcotest.(check string) "baseline mode" "non-generational" base.R.mode

let test_driver_aging_mode () =
  let r =
    Driver.run ~scale:tiny_scale
      ~gc:(Gc_config.aging ~oldest_age:4 ())
      Profile.jess
  in
  check "aging runs partials" true (r.R.n_partial > 0);
  Alcotest.(check string) "mode name" "generational-aging(4)" r.R.mode

let test_multithreaded_profile () =
  let p = Profile.raytracer ~threads:4 in
  let r = Driver.run ~scale:0.05 ~gc:(Gc_config.generational ()) p in
  check "threads allocate" true
    (r.R.total_alloc_objects > 4 * 100);
  check "collections happen" true (r.R.n_partial + r.R.n_full > 0)

(* ------------------------------------------------------------------ *)
(* Run_result                                                          *)
(* ------------------------------------------------------------------ *)

let test_improvement_direction () =
  let mk elapsed =
    let base =
      Driver.run ~scale:tiny_scale ~gc:Gc_config.non_generational Profile.jack
    in
    { base with R.elapsed_multi = elapsed; R.elapsed_uni = elapsed }
  in
  let baseline = mk 1000 in
  check "faster is positive" true
    (R.improvement_pct ~baseline (mk 900) ~multiprocessor:true > 0.);
  check "slower is negative" true
    (R.improvement_pct ~baseline (mk 1100) ~multiprocessor:true < 0.)

(* ------------------------------------------------------------------ *)
(* Lab and registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_lab_caches_runs () =
  let lab = Lab.create ~scale:tiny_scale () in
  let a = Lab.run lab Profile.jack in
  let b = Lab.run lab Profile.jack in
  check "memoised (physically equal)" true (a == b);
  let c = Lab.run lab ~card:64 Profile.jack in
  check "different card is a different run" true (a != c)

let test_registry_complete () =
  check_int "17 figures + 2 ablations" 19 (List.length Registry.all);
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  check "ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  check "find fig9" true (Registry.find "fig9" <> None);
  check "find junk" true (Registry.find "fig99" = None);
  check "find ablationA" true (Registry.find "ablationA" <> None)

let test_lab_all_modes () =
  let lab = Lab.create ~scale:0.02 () in
  List.iter
    (fun mode ->
      let r = Lab.run lab ~mode Profile.jack in
      check "allocated" true (r.R.total_alloc_objects > 0))
    [ Lab.Gen; Lab.Non_gen; Lab.Aging 4; Lab.Gen_remset; Lab.Adaptive ]

let test_sweep_axes () =
  check_int "nine card sizes" 9 (List.length Sweeps.card_sizes);
  check_int "four young sizes" 4 (List.length Sweeps.young_sizes);
  check "cards are powers of two" true
    (List.for_all (fun c -> c land (c - 1) = 0) Sweeps.card_sizes);
  check "young sizes ascend" true
    (let sizes = List.map snd Sweeps.young_sizes in
     sizes = List.sort compare sizes)

let test_figure_smoke () =
  (* run a light figure end to end and check the table renders rows *)
  let lab = Lab.create ~scale:0.02 () in
  let table = (Option.get (Registry.find "fig8")).Registry.run lab in
  let rendered = Otfgc_support.Textable.render table in
  check "has content" true (String.length rendered > 80);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "mentions Anagram" true (contains rendered "Anagram")

let suites =
  [
    ( "workloads.profiles",
      [
        Alcotest.test_case "validate all" `Quick test_profiles_validate;
        Alcotest.test_case "find" `Quick test_profiles_find;
        Alcotest.test_case "lifetime mix" `Quick test_profile_lifetime_mix_sums_to_one;
        Alcotest.test_case "raytracer threads" `Quick test_raytracer_bad_threads;
        Alcotest.test_case "invalid rejected" `Quick test_invalid_profile_rejected;
      ] );
    ( "workloads.driver",
      [
        Alcotest.test_case "runs every profile" `Slow test_driver_runs_every_profile;
        Alcotest.test_case "non-gen mode" `Quick test_driver_nongen_mode;
        Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_driver_seed_changes_schedule;
        Alcotest.test_case "run_pair" `Quick test_driver_run_pair;
        Alcotest.test_case "aging mode" `Quick test_driver_aging_mode;
        Alcotest.test_case "multithreaded" `Quick test_multithreaded_profile;
      ] );
    ( "metrics",
      [ Alcotest.test_case "improvement direction" `Quick test_improvement_direction ] );
    ( "experiments",
      [
        Alcotest.test_case "lab caching" `Quick test_lab_caches_runs;
        Alcotest.test_case "lab all modes" `Quick test_lab_all_modes;
        Alcotest.test_case "registry" `Quick test_registry_complete;
        Alcotest.test_case "sweep axes" `Quick test_sweep_axes;
        Alcotest.test_case "figure smoke" `Slow test_figure_smoke;
      ] );
  ]
