(* The card-mark race of Section 7.2, live.

   The paper's aging collector must clear card marks while mutators are
   setting them.  Done naively (check, then clear), a mutator can slip an
   inter-generational pointer store between the collector's check and its
   clear — the mark is lost, and the young object later dies while
   reachable.  The paper's 3-step protocol (clear first, then scan, then
   re-mark) makes the race harmless.

   Because every thread in this simulator is a deterministic coroutine,
   the race is not a heisenbug: this example replays the same few hundred
   schedules against both protocols and counts how often each loses the
   mark.

   Run with:  dune exec examples/race_lab.exe *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Color = Otfgc_heap.Color
module Card_table = Otfgc_heap.Card_table
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

(* One attempt: an old object [o] with a dirty card and an empty slot; the
   collector scans cards while the mutator stores a young object into [o]
   at a random point in the schedule.  Returns true iff the invariant
   "inter-generational pointers live only on dirty cards" broke. *)
let attempt ~naive ~seed =
  let kb = 1024 in
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 64 * kb; max_bytes = 64 * kb; card_size = 16 }
      ~gc_config:
        { (Gc_config.aging ~young_bytes:(8 * kb) ~oldest_age:2 ()) with
          Gc_config.naive_card_clear = naive;
        }
      ()
  in
  let st = Runtime.state rt in
  let heap = st.State.heap in
  let o = Option.get (Heap.alloc heap ~size:32 ~n_slots:1 ~color:Color.Black) in
  Card_table.mark (Heap.cards heap) o;
  let y =
    Option.get (Heap.alloc heap ~size:32 ~n_slots:0 ~color:st.State.clear_color)
  in
  let m = Runtime.new_mutator rt ~name:"mut" () in
  Mutator.set_reg m 0 y;
  let rng = Rng.make seed in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split rng)) () in
  let cycle = Gc_stats.begin_cycle st.State.stats Gc_stats.Partial in
  ignore
    (Sched.spawn sched ~name:"collector" (fun () ->
         Collector.clear_cards st cycle));
  let delay = Rng.int rng 60 in
  ignore
    (Sched.spawn sched ~name:"mutator" (fun () ->
         for _ = 1 to delay do
           Sched.yield ()
         done;
         Collector.update st m ~x:o ~i:0 ~y));
  Sched.run sched;
  let cards = Heap.cards heap in
  Heap.get_slot heap o 0 = y
  && not (Card_table.is_dirty cards (Card_table.card_of_addr cards o))

let count_losses ~naive =
  let lost = ref 0 in
  for seed = 0 to 399 do
    if attempt ~naive ~seed then incr lost
  done;
  !lost

let () =
  print_endline "Section 7.2 card-mark race, 400 random schedules each:\n";
  let naive = count_losses ~naive:true in
  Printf.printf
    "  naive check-then-clear: lost the card mark %3d/400 times  %s\n" naive
    (if naive > 0 then "(young objects would die while reachable!)" else "");
  let threestep = count_losses ~naive:false in
  Printf.printf "  paper's 3-step protocol: lost the card mark %3d/400 times\n"
    threestep;
  if threestep = 0 && naive > 0 then
    print_endline "\nThe 3-step protocol tolerates the race; the naive one does not."
